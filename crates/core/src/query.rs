//! The unified query plane: one predicate IR for every consumer intent.
//!
//! The paper's consumers express the same intent three ways — streaming
//! subscription filters at a gateway (event type / on-change / threshold,
//! §2.2), query-mode requests against archived history, and LDAP-style
//! directory searches.  This module gives all of them one language:
//!
//! * [`Predicate`] — a boolean IR (`And`/`Or`/`Not` over typed leaves)
//!   with a text grammar ([`Predicate::parse`], a superset of the
//!   directory's LDAP-ish filter syntax) and a round-trippable
//!   [`std::fmt::Display`] form;
//! * [`Predicate::compile`] — produces a [`Plan`]: an allocation-free
//!   evaluator over anything implementing [`Record`] (events, directory
//!   entries), plus extracted pushdown [`Facts`] (event-type and host
//!   sets, severity floor, time bounds, result limit) that the routing
//!   and storage layers use to skip work *before* touching data;
//! * [`Record`] — the evaluation surface a record type exposes, so one
//!   compiled plan answers against live events and directory entries
//!   alike.
//!
//! Identifier leaves (event types, hosts, attribute names) are interned
//! ([`Sym`]) at compile time, so steady-state evaluation hashes `u32`s and
//! allocates nothing per record.
//!
//! # Grammar
//!
//! Parenthesised prefix syntax, as in LDAP:
//!
//! | Form | Meaning |
//! |---|---|
//! | `(&(f1)(f2)...)` | conjunction (empty `(&)` matches everything) |
//! | `(\|(f1)(f2)...)` | disjunction (empty `(\|)` matches nothing) |
//! | `(!(f))` | negation |
//! | `(type=CPU_TOTAL)` / `(eventtype=...)` | exact event-type selection (feeds routing and pruning) |
//! | `(host=dpss1.lbl.gov)` | exact host selection (feeds pruning) |
//! | `(level>=warning)` | severity floor |
//! | `(time>=N)` / `(time<N)` | half-open time bounds, microseconds (`Ns` = seconds) |
//! | `(val>50)` `(val<50)` `(val>=..)` `(val<=..)` `(val=..)` `(val!=..)` | `VAL` reading comparisons |
//! | `(onchange)` | pass only when the reading differs from the previous one of its series |
//! | `(crosses=50)` | pass when the reading crosses the threshold in either direction |
//! | `(relchange=0.2)` | pass when the reading changed by more than the fraction |
//! | `(limit=100)` | result limit (a pushdown directive; always matches) |
//! | `(attr=value)` | case-insensitive attribute equality (directory entries; event pseudo-attrs) |
//! | `(attr~=value)` | case-insensitive equality on *any* attribute, including `host`/`type` (LDAP approximate match) |
//! | `(attr=*)` | attribute presence |
//! | `(attr=pa*ern)` | case-insensitive substring match (`*` wildcards) |
//!
//! Literal `(`, `)`, `*` and `\` inside values are escaped with a
//! backslash; [`Predicate`]'s `Display` form re-escapes them, so
//! parse → display → parse round-trips.
//!
//! `host=` / `type=` equality is **exact** (those leaves feed segment
//! pruning, whose catalogs are exact string sets); every other attribute
//! comparison is case-insensitive per LDAP convention.

use std::collections::HashMap;

use crate::intern::Sym;
use crate::sync::Mutex;

/// Canonical level names in severity order; index is the rank used by
/// [`Predicate::MinLevel`] (0 = Usage ... 8 = Emergency).  Kept in sync
/// with `jamm_ulm::Level::severity` (asserted by a test there).
pub const LEVEL_NAMES: [&str; 9] = [
    "Usage",
    "Debug",
    "Info",
    "Notice",
    "Warning",
    "Error",
    "Critical",
    "Alert",
    "Emergency",
];

/// The severity rank of a level name (case-insensitive), if known.
pub fn level_rank(name: &str) -> Option<u8> {
    LEVEL_NAMES
        .iter()
        .position(|n| n.eq_ignore_ascii_case(name))
        .map(|i| i as u8)
}

/// The canonical name of a severity rank (clamped to the table).
pub fn level_name(rank: u8) -> &'static str {
    LEVEL_NAMES[(rank as usize).min(LEVEL_NAMES.len() - 1)]
}

/// How a `VAL` reading is compared against a threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueCmp {
    /// Strictly greater than.
    Gt,
    /// Strictly less than.
    Lt,
    /// Greater than or equal.
    Ge,
    /// Less than or equal.
    Le,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl ValueCmp {
    fn apply(self, v: f64, t: f64) -> bool {
        match self {
            ValueCmp::Gt => v > t,
            ValueCmp::Lt => v < t,
            ValueCmp::Ge => v >= t,
            ValueCmp::Le => v <= t,
            ValueCmp::Eq => v == t,
            ValueCmp::Ne => v != t,
        }
    }

    fn op_str(self) -> &'static str {
        match self {
            ValueCmp::Gt => ">",
            ValueCmp::Lt => "<",
            ValueCmp::Ge => ">=",
            ValueCmp::Le => "<=",
            ValueCmp::Eq => "=",
            ValueCmp::Ne => "!=",
        }
    }
}

/// The predicate IR: what a consumer wants, independent of which layer
/// answers it.  Build one with the constructors, or parse the text grammar
/// with [`Predicate::parse`]; [`Predicate::compile`] turns it into an
/// executable [`Plan`].
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every record.
    True,
    /// All children must match.  `And(vec![])` matches everything.
    And(Vec<Predicate>),
    /// At least one child must match.  `Or(vec![])` matches nothing.
    Or(Vec<Predicate>),
    /// The child must not match.
    Not(Box<Predicate>),
    /// The record's event type is one of these (exact).  Feeds routing
    /// buckets and segment pruning.  An empty list matches nothing.
    EventTypes(Vec<String>),
    /// The record's host is one of these (exact).  Feeds segment pruning.
    Hosts(Vec<String>),
    /// The record's severity rank is at least this (see [`level_rank`]).
    MinLevel(u8),
    /// Half-open time bounds in microseconds: `from <= t < to`.
    TimeRange {
        /// Inclusive lower bound (micros).
        from_micros: Option<u64>,
        /// Exclusive upper bound (micros).
        to_micros: Option<u64>,
    },
    /// Compare the record's `VAL` reading against a threshold.  Records
    /// without a numeric reading never match.
    Value(ValueCmp, f64),
    /// Stateful: pass when the reading differs from the previous reading
    /// of the same `(host, event type)` series (first sighting passes).
    OnChange,
    /// Stateful: pass when the reading crosses the threshold in either
    /// direction relative to the previous reading of its series.
    Crosses(f64),
    /// Stateful: pass when the reading changed by more than the given
    /// fraction relative to the previous reading of its series.
    RelativeChange(f64),
    /// Case-insensitive attribute equality (`(attr=value)`).
    Equals(String, String),
    /// Attribute presence (`(attr=*)`).
    Present(String),
    /// Case-insensitive substring match: the parts are the literal
    /// segments between `*` wildcards.
    Substring(String, Vec<String>),
    /// Result-limit directive: always matches; the limit is carried as a
    /// pushdown fact for scans.
    Limit(usize),
}

impl Predicate {
    /// A predicate matching everything.
    pub fn everything() -> Predicate {
        Predicate::True
    }

    /// Conjunction.
    pub fn and(children: Vec<Predicate>) -> Predicate {
        Predicate::And(children)
    }

    /// Disjunction.
    pub fn or(children: Vec<Predicate>) -> Predicate {
        Predicate::Or(children)
    }

    /// Negation.
    pub fn negate(child: Predicate) -> Predicate {
        Predicate::Not(Box::new(child))
    }

    /// Exact event-type selection.
    pub fn types<I: IntoIterator<Item = S>, S: Into<String>>(types: I) -> Predicate {
        Predicate::EventTypes(types.into_iter().map(Into::into).collect())
    }

    /// Exact host selection.
    pub fn hosts<I: IntoIterator<Item = S>, S: Into<String>>(hosts: I) -> Predicate {
        Predicate::Hosts(hosts.into_iter().map(Into::into).collect())
    }

    /// Half-open time range `[from, to)` in microseconds.
    pub fn between_micros(from: u64, to: u64) -> Predicate {
        Predicate::TimeRange {
            from_micros: Some(from),
            to_micros: Some(to),
        }
    }

    /// `VAL` comparison.
    pub fn val(cmp: ValueCmp, threshold: f64) -> Predicate {
        Predicate::Value(cmp, threshold)
    }

    /// Case-insensitive attribute equality (attribute name is lowercased).
    pub fn attr_eq(attr: impl Into<String>, value: impl Into<String>) -> Predicate {
        Predicate::Equals(attr.into().to_ascii_lowercase(), value.into())
    }

    /// Attribute presence (attribute name is lowercased).
    pub fn attr_present(attr: impl Into<String>) -> Predicate {
        Predicate::Present(attr.into().to_ascii_lowercase())
    }

    /// Parse the text grammar (see the module docs for the leaf table).
    pub fn parse(input: &str) -> Result<Predicate, ParseError> {
        let mut p = Parser { input, pos: 0 };
        p.skip_ws();
        let f = p.parse_filter()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(p.err("trailing input after filter"));
        }
        Ok(f)
    }

    /// Compile into an executable [`Plan`]: identifier leaves are
    /// interned, pushdown [`Facts`] are extracted, and stateful leaves get
    /// their per-series memory.
    pub fn compile(&self) -> Plan {
        let root = compile_node(self);
        let mut facts = node_facts(&root);
        facts.limit = predicate_limit(self);
        let state = if node_is_stateful(&root) {
            Some(Mutex::new(HashMap::new()))
        } else {
            None
        };
        Plan { root, facts, state }
    }
}

/// Escape `\`, `(`, `)` and `*` in a value for the text form.
fn escape_into(out: &mut String, value: &str) {
    for c in value.chars() {
        if matches!(c, '\\' | '(' | ')' | '*') {
            out.push('\\');
        }
        out.push(c);
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn leaf_list(
            f: &mut std::fmt::Formatter<'_>,
            attr: &str,
            vals: &[String],
        ) -> std::fmt::Result {
            let one = |f: &mut std::fmt::Formatter<'_>, v: &String| {
                let mut s = String::new();
                escape_into(&mut s, v);
                write!(f, "({attr}={s})")
            };
            match vals.len() {
                0 => write!(f, "(|)"),
                1 => one(f, &vals[0]),
                _ => {
                    write!(f, "(|")?;
                    for v in vals {
                        one(f, v)?;
                    }
                    write!(f, ")")
                }
            }
        }
        match self {
            Predicate::True => write!(f, "(&)"),
            Predicate::And(cs) => {
                write!(f, "(&")?;
                for c in cs {
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(cs) => {
                write!(f, "(|")?;
                for c in cs {
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Predicate::Not(c) => write!(f, "(!{c})"),
            Predicate::EventTypes(ts) => leaf_list(f, "type", ts),
            Predicate::Hosts(hs) => leaf_list(f, "host", hs),
            Predicate::MinLevel(r) => write!(f, "(level>={})", level_name(*r)),
            Predicate::TimeRange {
                from_micros,
                to_micros,
            } => match (from_micros, to_micros) {
                (Some(a), Some(b)) => write!(f, "(&(time>={a})(time<{b}))"),
                (Some(a), None) => write!(f, "(time>={a})"),
                (None, Some(b)) => write!(f, "(time<{b})"),
                (None, None) => write!(f, "(&)"),
            },
            Predicate::Value(cmp, t) => write!(f, "(val{}{t})", cmp.op_str()),
            Predicate::OnChange => write!(f, "(onchange)"),
            Predicate::Crosses(t) => write!(f, "(crosses={t})"),
            Predicate::RelativeChange(r) => write!(f, "(relchange={r})"),
            Predicate::Equals(a, v) => {
                let mut s = String::new();
                escape_into(&mut s, v);
                // On attribute names the parser maps to typed exact leaves,
                // plain '=' would change semantics on re-parse; '~=' is the
                // grammar's case-insensitive equality and round-trips.
                if matches!(a.as_str(), "host" | "type" | "eventtype") {
                    write!(f, "({a}~={s})")
                } else {
                    write!(f, "({a}={s})")
                }
            }
            Predicate::Present(a) => write!(f, "({a}=*)"),
            Predicate::Substring(a, parts) => {
                write!(f, "({a}=")?;
                let mut s = String::new();
                for (i, part) in parts.iter().enumerate() {
                    if i > 0 {
                        s.push('*');
                    }
                    escape_into(&mut s, part);
                }
                write!(f, "{s})")
            }
            Predicate::Limit(n) => write!(f, "(limit={n})"),
        }
    }
}

/// A parse failure: where in the input, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.pos, self.reason)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            reason: reason.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(char::is_whitespace) {
            self.pos += self.input[self.pos..]
                .chars()
                .next()
                .map_or(1, char::len_utf8);
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.input[self.pos..].chars().next()
    }

    fn parse_filter(&mut self) -> Result<Predicate, ParseError> {
        self.expect('(')?;
        let f = match self.peek() {
            Some('&') => {
                self.pos += 1;
                Predicate::And(self.parse_list()?)
            }
            Some('|') => {
                self.pos += 1;
                Predicate::Or(self.parse_list()?)
            }
            Some('!') => {
                self.pos += 1;
                Predicate::Not(Box::new(self.parse_filter()?))
            }
            Some(_) => self.parse_simple()?,
            None => return Err(self.err("unexpected end of input")),
        };
        self.expect(')')?;
        Ok(f)
    }

    fn parse_list(&mut self) -> Result<Vec<Predicate>, ParseError> {
        let mut out = Vec::new();
        while self.peek() == Some('(') {
            out.push(self.parse_filter()?);
        }
        Ok(out)
    }

    /// Scan a simple leaf body up to (not including) the closing `)`,
    /// honouring backslash escapes.  Returns the raw body slice.
    fn scan_body(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        let mut chars = self.input[start..].char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    // Skip the escaped character (if the input ends here
                    // the backslash is literal and the ')' check fails).
                    let _ = chars.next();
                }
                ')' => {
                    self.pos = start + i;
                    return Ok(&self.input[start..start + i]);
                }
                _ => {}
            }
        }
        self.pos = self.input.len();
        Err(self.err("unterminated filter (missing ')')"))
    }

    fn parse_simple(&mut self) -> Result<Predicate, ParseError> {
        let body = self.scan_body()?;
        // Find the first unescaped comparator.
        let mut op: Option<(usize, &'static str)> = None;
        let bytes = body.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'>' | b'<' | b'!' | b'~' => {
                    let two = i + 1 < bytes.len() && bytes[i + 1] == b'=';
                    op = Some((
                        i,
                        match (bytes[i], two) {
                            (b'>', true) => ">=",
                            (b'>', false) => ">",
                            (b'<', true) => "<=",
                            (b'<', false) => "<",
                            (b'!', true) => "!=",
                            (b'~', true) => "~=",
                            // A bare '!' or '~' is not a comparator; treat
                            // as an ordinary character.
                            (_, false) => {
                                i += 1;
                                continue;
                            }
                            _ => unreachable!(),
                        },
                    ));
                    break;
                }
                b'=' => {
                    op = Some((i, "="));
                    break;
                }
                _ => i += 1,
            }
        }
        let Some((op_idx, op)) = op else {
            // Bare-word leaves.
            if body.trim().eq_ignore_ascii_case("onchange") {
                return Ok(Predicate::OnChange);
            }
            return Err(self.err(format!("missing comparator in leaf '{}'", body.trim())));
        };
        let attr = body[..op_idx].trim();
        let value = body[op_idx + op.len()..].trim();
        if attr.is_empty() {
            return Err(self.err("empty attribute name"));
        }
        let attr_lower = attr.to_ascii_lowercase();
        let num = |p: &Self| -> Result<f64, ParseError> {
            value
                .parse::<f64>()
                .map_err(|_| p.err(format!("expected a number, got '{value}'")))
        };
        let eq_only = |p: &Self| -> Result<(), ParseError> {
            if op == "=" {
                Ok(())
            } else {
                Err(p.err(format!("attribute '{attr_lower}' supports '=' only")))
            }
        };
        // Map an equality value to the exact / presence / substring leaf
        // shape shared by typed and generic attributes.
        enum Shape {
            Exact(String),
            Present,
            Parts(Vec<String>),
        }
        let shape = |raw: &str| -> Shape {
            if raw == "*" {
                return Shape::Present;
            }
            let parts = split_unescaped_stars(raw);
            if parts.len() > 1 {
                Shape::Parts(parts.into_iter().map(unescape).collect())
            } else {
                Shape::Exact(unescape(raw))
            }
        };
        Ok(match attr_lower.as_str() {
            // `~=` is LDAP's approximate match: case-insensitive equality
            // on any attribute — and the round-trippable `Display` form of
            // an `Equals` leaf on an otherwise-typed attribute name.
            "type" | "eventtype" => match op {
                "~=" => Predicate::Equals("eventtype".into(), unescape(value)),
                "=" => match shape(value) {
                    Shape::Exact(v) => Predicate::EventTypes(vec![v]),
                    Shape::Present => Predicate::Present("eventtype".into()),
                    Shape::Parts(parts) => Predicate::Substring("eventtype".into(), parts),
                },
                _ => return Err(self.err("event type supports '=' and '~=' only")),
            },
            "host" => match op {
                "~=" => Predicate::Equals("host".into(), unescape(value)),
                "=" => match shape(value) {
                    Shape::Exact(v) => Predicate::Hosts(vec![v]),
                    Shape::Present => Predicate::Present("host".into()),
                    Shape::Parts(parts) => Predicate::Substring("host".into(), parts),
                },
                _ => return Err(self.err("host supports '=' and '~=' only")),
            },
            "level" | "lvl" => match op {
                ">=" => Predicate::MinLevel(
                    level_rank(value)
                        .ok_or_else(|| self.err(format!("unknown level '{value}'")))?,
                ),
                "=" => Predicate::Equals("level".into(), unescape(value)),
                _ => return Err(self.err("level supports '>=' and '=' only")),
            },
            "time" => {
                let micros = parse_time_micros(value)
                    .ok_or_else(|| self.err(format!("expected a timestamp, got '{value}'")))?;
                match op {
                    ">=" => Predicate::TimeRange {
                        from_micros: Some(micros),
                        to_micros: None,
                    },
                    ">" => Predicate::TimeRange {
                        from_micros: Some(micros.saturating_add(1)),
                        to_micros: None,
                    },
                    "<" => Predicate::TimeRange {
                        from_micros: None,
                        to_micros: Some(micros),
                    },
                    "<=" => Predicate::TimeRange {
                        from_micros: None,
                        to_micros: Some(micros.saturating_add(1)),
                    },
                    "=" => Predicate::TimeRange {
                        from_micros: Some(micros),
                        to_micros: Some(micros.saturating_add(1)),
                    },
                    _ => return Err(self.err("time does not support '!='")),
                }
            }
            "val" => {
                if op == "=" && value == "*" {
                    Predicate::Present("val".into())
                } else {
                    let cmp = match op {
                        ">" => ValueCmp::Gt,
                        "<" => ValueCmp::Lt,
                        ">=" => ValueCmp::Ge,
                        "<=" => ValueCmp::Le,
                        "=" => ValueCmp::Eq,
                        "!=" => ValueCmp::Ne,
                        _ => unreachable!("comparator set is closed"),
                    };
                    Predicate::Value(cmp, num(self)?)
                }
            }
            "crosses" => {
                eq_only(self)?;
                Predicate::Crosses(num(self)?)
            }
            "relchange" => {
                eq_only(self)?;
                Predicate::RelativeChange(num(self)?)
            }
            "limit" => {
                eq_only(self)?;
                Predicate::Limit(
                    value
                        .parse::<usize>()
                        .map_err(|_| self.err(format!("expected a count, got '{value}'")))?,
                )
            }
            _ => match op {
                "~=" => Predicate::Equals(attr_lower, unescape(value)),
                "=" => match shape(value) {
                    Shape::Exact(v) => Predicate::Equals(attr_lower, v),
                    Shape::Present => Predicate::Present(attr_lower),
                    Shape::Parts(parts) => Predicate::Substring(attr_lower, parts),
                },
                _ => {
                    return Err(self.err(format!(
                        "attribute '{attr_lower}' supports '=' and '~=' only"
                    )))
                }
            },
        })
    }
}

/// `"123"` → micros, `"123s"` → seconds.  Second values too large to
/// express in microseconds are a parse error, not a silent wrap.
fn parse_time_micros(s: &str) -> Option<u64> {
    if let Some(secs) = s.strip_suffix(['s', 'S']) {
        secs.trim()
            .parse::<u64>()
            .ok()
            .and_then(|v| v.checked_mul(1_000_000))
    } else {
        s.parse::<u64>().ok()
    }
}

/// Split on unescaped `*`, keeping escapes in the pieces.
fn split_unescaped_stars(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'*' => {
                out.push(&s[start..i]);
                start = i + 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    out.push(&s[start.min(s.len())..]);
    out
}

/// Remove backslash escapes (a trailing backslash is kept literally).
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some(esc) => out.push(esc),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Case-insensitive glob match where `parts` are the literal segments
/// between `*` wildcards (empty leading/trailing segments anchor nothing).
pub fn substring_match(value: &str, parts: &[String]) -> bool {
    let value = value.to_ascii_lowercase();
    let mut pos = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        let p = part.to_ascii_lowercase();
        if i == 0 {
            if !value.starts_with(&p) {
                return false;
            }
            pos = p.len();
        } else if i == parts.len() - 1 {
            return value.len() >= pos && value[pos..].ends_with(&p);
        } else {
            match value[pos..].find(&p) {
                Some(found) => pos += found + p.len(),
                None => return false,
            }
        }
    }
    true
}

/// The evaluation surface a record type exposes to a compiled [`Plan`].
///
/// Events implement the typed accessors; directory entries answer through
/// the attribute methods (their `host()` / `event_type()` stay `None`, so
/// typed leaves fall back to multi-valued attribute matching).
pub trait Record {
    /// The record's host identity, when it has a single canonical one.
    fn host(&self) -> Option<&str> {
        None
    }

    /// The record's event type, when it has a single canonical one.
    fn event_type(&self) -> Option<&str> {
        None
    }

    /// Severity rank (see [`level_rank`]), when the record has one.
    fn level_rank(&self) -> Option<u8> {
        None
    }

    /// Timestamp in microseconds, when the record has one.
    fn time_micros(&self) -> Option<u64> {
        None
    }

    /// The conventional numeric `VAL` reading, when present.
    fn value(&self) -> Option<f64> {
        None
    }

    /// Visit the values of a (lowercased) attribute; true when `f`
    /// accepts any of them.
    fn attr_any(&self, attr: &str, f: &mut dyn FnMut(&str) -> bool) -> bool;

    /// True when the (lowercased) attribute is present.
    fn attr_present(&self, attr: &str) -> bool;
}

/// The compiled evaluator node tree: identifier leaves are interned.
#[derive(Debug, Clone)]
enum Node {
    True,
    And(Vec<Node>),
    Or(Vec<Node>),
    Not(Box<Node>),
    Types(Vec<Sym>),
    Hosts(Vec<Sym>),
    MinLevel(u8),
    Time { from: Option<u64>, to: Option<u64> },
    Value(ValueCmp, f64),
    OnChange,
    Crosses(f64),
    RelativeChange(f64),
    Equals(Sym, String),
    Present(Sym),
    Substring(Sym, Vec<String>),
}

fn compile_node(p: &Predicate) -> Node {
    match p {
        Predicate::True | Predicate::Limit(_) => Node::True,
        Predicate::And(cs) => Node::And(cs.iter().map(compile_node).collect()),
        Predicate::Or(cs) => Node::Or(cs.iter().map(compile_node).collect()),
        Predicate::Not(c) => Node::Not(Box::new(compile_node(c))),
        Predicate::EventTypes(ts) => {
            let mut syms: Vec<Sym> = ts.iter().map(|t| Sym::intern(t)).collect();
            syms.sort_unstable();
            syms.dedup();
            Node::Types(syms)
        }
        Predicate::Hosts(hs) => {
            let mut syms: Vec<Sym> = hs.iter().map(|h| Sym::intern(h)).collect();
            syms.sort_unstable();
            syms.dedup();
            Node::Hosts(syms)
        }
        Predicate::MinLevel(r) => Node::MinLevel(*r),
        Predicate::TimeRange {
            from_micros,
            to_micros,
        } => {
            if from_micros.is_none() && to_micros.is_none() {
                Node::True
            } else {
                Node::Time {
                    from: *from_micros,
                    to: *to_micros,
                }
            }
        }
        Predicate::Value(cmp, t) => Node::Value(*cmp, *t),
        Predicate::OnChange => Node::OnChange,
        Predicate::Crosses(t) => Node::Crosses(*t),
        Predicate::RelativeChange(r) => Node::RelativeChange(*r),
        Predicate::Equals(a, v) => Node::Equals(Sym::intern(a), v.clone()),
        Predicate::Present(a) => Node::Present(Sym::intern(a)),
        Predicate::Substring(a, parts) => Node::Substring(Sym::intern(a), parts.clone()),
    }
}

fn node_is_stateful(n: &Node) -> bool {
    match n {
        Node::OnChange | Node::Crosses(_) | Node::RelativeChange(_) => true,
        Node::And(cs) | Node::Or(cs) => cs.iter().any(node_is_stateful),
        Node::Not(c) => node_is_stateful(c),
        _ => false,
    }
}

/// What a predicate guarantees about every record it matches — the
/// pushdown surface.  The routing layer indexes subscriptions by `types`;
/// the storage engine prunes whole segments whose catalogs cannot satisfy
/// the facts; scans stop at `limit` results.
///
/// Facts are **sound, not complete**: a record matching the predicate
/// always satisfies its facts, but facts alone may admit records the full
/// predicate rejects (they are the cheap first tier, not the evaluator).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Facts {
    /// Event types any match must carry (`None` = unconstrained;
    /// `Some(vec![])` = nothing can match).
    pub types: Option<Vec<Sym>>,
    /// Hosts any match must carry.
    pub hosts: Option<Vec<Sym>>,
    /// Minimum severity rank of any match.
    pub level_floor: Option<u8>,
    /// Inclusive lower time bound (micros) of any match.
    pub from_micros: Option<u64>,
    /// Exclusive upper time bound (micros) of any match.
    pub to_micros: Option<u64>,
    /// Result limit requested by the predicate (`None` = unlimited).
    pub limit: Option<usize>,
}

impl Facts {
    /// Cheap first-tier check: could this record satisfy the facts?
    /// (Used by scan sources to pre-filter before the full evaluation.)
    pub fn admits<R: Record + ?Sized>(&self, rec: &R) -> bool {
        if let Some(from) = self.from_micros {
            if rec.time_micros().is_none_or(|t| t < from) {
                return false;
            }
        }
        if let Some(to) = self.to_micros {
            if rec.time_micros().is_none_or(|t| t >= to) {
                return false;
            }
        }
        if let Some(floor) = self.level_floor {
            if rec.level_rank().is_none_or(|l| l < floor) {
                return false;
            }
        }
        if let Some(types) = &self.types {
            let ok = rec
                .event_type()
                .and_then(Sym::lookup)
                .is_some_and(|s| types.contains(&s));
            if !ok {
                return false;
            }
        }
        if let Some(hosts) = &self.hosts {
            let ok = rec
                .host()
                .and_then(Sym::lookup)
                .is_some_and(|s| hosts.contains(&s));
            if !ok {
                return false;
            }
        }
        true
    }
}

fn intersect_syms(a: Vec<Sym>, b: &[Sym]) -> Vec<Sym> {
    a.into_iter().filter(|s| b.contains(s)).collect()
}

fn union_syms(mut a: Vec<Sym>, b: &[Sym]) -> Vec<Sym> {
    for s in b {
        if !a.contains(s) {
            a.push(*s);
        }
    }
    a.sort_unstable();
    a
}

fn and_facts(mut acc: Facts, f: &Facts) -> Facts {
    acc.types = match (acc.types, &f.types) {
        (None, t) => t.clone(),
        (t, None) => t,
        (Some(a), Some(b)) => Some(intersect_syms(a, b)),
    };
    acc.hosts = match (acc.hosts, &f.hosts) {
        (None, h) => h.clone(),
        (h, None) => h,
        (Some(a), Some(b)) => Some(intersect_syms(a, b)),
    };
    acc.level_floor = match (acc.level_floor, f.level_floor) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => a.or(b),
    };
    acc.from_micros = match (acc.from_micros, f.from_micros) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => a.or(b),
    };
    acc.to_micros = match (acc.to_micros, f.to_micros) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    acc.limit = match (acc.limit, f.limit) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    acc
}

/// Disjunction keeps only facts every branch guarantees (a match may come
/// from any branch), widening bounds instead of narrowing them.
fn or_facts(acc: Facts, f: &Facts) -> Facts {
    Facts {
        types: match (acc.types, &f.types) {
            (Some(a), Some(b)) => Some(union_syms(a, b)),
            _ => None,
        },
        hosts: match (acc.hosts, &f.hosts) {
            (Some(a), Some(b)) => Some(union_syms(a, b)),
            _ => None,
        },
        level_floor: match (acc.level_floor, f.level_floor) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        },
        from_micros: match (acc.from_micros, f.from_micros) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        },
        to_micros: match (acc.to_micros, f.to_micros) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        },
        limit: None,
    }
}

/// The most constrained facts: what an empty disjunction (match nothing)
/// guarantees.  Identity element of the or-fold.
fn bottom_facts() -> Facts {
    Facts {
        types: Some(Vec::new()),
        hosts: Some(Vec::new()),
        level_floor: Some(u8::MAX),
        from_micros: Some(u64::MAX),
        to_micros: Some(0),
        limit: None,
    }
}

fn node_facts(n: &Node) -> Facts {
    match n {
        Node::And(cs) => cs
            .iter()
            .map(node_facts)
            .fold(Facts::default(), |acc, f| and_facts(acc, &f)),
        Node::Or(cs) => cs
            .iter()
            .map(node_facts)
            .fold(bottom_facts(), |acc, f| or_facts(acc, &f)),
        Node::Types(ts) => Facts {
            types: Some(ts.clone()),
            ..Facts::default()
        },
        Node::Hosts(hs) => Facts {
            hosts: Some(hs.clone()),
            ..Facts::default()
        },
        Node::MinLevel(r) => Facts {
            level_floor: Some(*r),
            ..Facts::default()
        },
        Node::Time { from, to } => Facts {
            from_micros: *from,
            to_micros: *to,
            ..Facts::default()
        },
        // Negation, stateful leaves and attribute matching guarantee
        // nothing pushdown-safe.
        _ => Facts::default(),
    }
}

/// Limits are directives, not filters: they survive only through
/// conjunctions on the way to the root.
fn predicate_limit(p: &Predicate) -> Option<usize> {
    match p {
        Predicate::Limit(n) => Some(*n),
        Predicate::And(cs) => cs.iter().filter_map(predicate_limit).min(),
        _ => None,
    }
}

/// A compiled, executable predicate: the one evaluator every layer runs.
///
/// * [`Plan::eval`] answers "does this record match", allocation-free in
///   steady state (identifier membership is interned-`u32` comparison;
///   stateful per-series memory is `Sym`-keyed).
/// * [`Plan::facts`] exposes the extracted pushdown facts.
///
/// Stateful predicates (on-change, crosses, relative-change) keep their
/// per-series previous readings inside the plan behind a mutex, so `eval`
/// takes `&self` and a plan can sit in a routing table evaluated by
/// parallel delivery workers.  Cloning a plan starts **fresh** stateful
/// memory (a clone is "the same question asked anew", e.g. a new scan).
#[derive(Debug)]
pub struct Plan {
    root: Node,
    facts: Facts,
    /// Per-series previous readings, present only for stateful plans.
    state: Option<Mutex<HashMap<(Sym, Sym), f64>>>,
}

impl Clone for Plan {
    fn clone(&self) -> Plan {
        Plan {
            root: self.root.clone(),
            facts: self.facts.clone(),
            state: self.state.as_ref().map(|_| Mutex::new(HashMap::new())),
        }
    }
}

impl Plan {
    /// The pushdown facts extracted at compile time.
    pub fn facts(&self) -> &Facts {
        &self.facts
    }

    /// The event types this plan can ever match, if constrained — what
    /// the gateway's sharded router indexes subscriptions by.
    pub fn routed_types(&self) -> Option<&[Sym]> {
        self.facts.types.as_deref()
    }

    /// The result limit pushed down by the predicate, if any.
    pub fn limit(&self) -> Option<usize> {
        self.facts.limit
    }

    /// Whether the plan carries per-series memory (on-change / crosses /
    /// relative-change leaves).
    pub fn is_stateful(&self) -> bool {
        self.state.is_some()
    }

    /// Evaluate the plan against a record, updating per-series memory.
    ///
    /// Matching the legacy filter-chain semantics, the previous-reading
    /// memory is updated whenever the record carries a numeric reading —
    /// whether or not the record ultimately matches — so "on change" and
    /// "crosses" behave correctly even when another conjunct rejects a
    /// particular record.
    pub fn eval<R: Record + ?Sized>(&self, rec: &R) -> bool {
        let value = rec.value();
        // Resolve the record's interned identity once; a leaf then
        // compares u32s.  `lookup` (never `intern`) keeps never-seen
        // payload identifiers out of the leaking intern table — a leaf's
        // own strings were interned at compile time, so "not interned"
        // already means "matches no leaf".
        let host_sym = rec.host().and_then(Sym::lookup);
        let ty_sym = rec.event_type().and_then(Sym::lookup);
        let (prev, key) = match &self.state {
            Some(state) => match (rec.host(), rec.event_type()) {
                (Some(h), Some(t)) => {
                    // Stateful series keys must exist even on first
                    // sighting; hosts/types are bounded, so interning
                    // here is safe.
                    let key = (
                        host_sym.unwrap_or_else(|| Sym::intern(h)),
                        ty_sym.unwrap_or_else(|| Sym::intern(t)),
                    );
                    (state.lock().get(&key).copied(), Some(key))
                }
                _ => (None, None),
            },
            None => (None, None),
        };
        let ctx = Ctx {
            value,
            prev,
            host_sym,
            ty_sym,
        };
        let pass = eval_node(&self.root, rec, &ctx);
        if let (Some(state), Some(key), Some(v)) = (&self.state, key, value) {
            state.lock().insert(key, v);
        }
        pass
    }
}

/// Per-evaluation context resolved once up front.
struct Ctx {
    value: Option<f64>,
    prev: Option<f64>,
    host_sym: Option<Sym>,
    ty_sym: Option<Sym>,
}

fn eval_node<R: Record + ?Sized>(n: &Node, rec: &R, ctx: &Ctx) -> bool {
    match n {
        Node::True => true,
        Node::And(cs) => cs.iter().all(|c| eval_node(c, rec, ctx)),
        Node::Or(cs) => cs.iter().any(|c| eval_node(c, rec, ctx)),
        Node::Not(c) => !eval_node(c, rec, ctx),
        Node::Types(ts) => match rec.event_type() {
            Some(_) => ctx.ty_sym.is_some_and(|s| ts.contains(&s)),
            None => rec.attr_any("eventtype", &mut |v| ts.iter().any(|t| t.as_str() == v)),
        },
        Node::Hosts(hs) => match rec.host() {
            Some(_) => ctx.host_sym.is_some_and(|s| hs.contains(&s)),
            None => rec.attr_any("host", &mut |v| hs.iter().any(|h| h.as_str() == v)),
        },
        Node::MinLevel(r) => rec.level_rank().is_some_and(|l| l >= *r),
        Node::Time { from, to } => rec
            .time_micros()
            .is_some_and(|t| from.is_none_or(|f| t >= f) && to.is_none_or(|b| t < b)),
        Node::Value(cmp, t) => ctx.value.is_some_and(|v| cmp.apply(v, *t)),
        Node::OnChange => match (ctx.value, ctx.prev) {
            (Some(v), Some(p)) => v != p,
            (Some(_), None) => true,
            (None, _) => true,
        },
        Node::Crosses(t) => match (ctx.value, ctx.prev) {
            (Some(v), Some(p)) => (p <= *t && v > *t) || (p >= *t && v < *t),
            (Some(v), None) => v > *t,
            (None, _) => false,
        },
        Node::RelativeChange(frac) => match (ctx.value, ctx.prev) {
            (Some(v), Some(p)) if p.abs() > f64::EPSILON => ((v - p) / p).abs() > *frac,
            (Some(_), _) => true,
            (None, _) => false,
        },
        Node::Equals(a, v) => rec.attr_any(a.as_str(), &mut |x| x.eq_ignore_ascii_case(v)),
        Node::Present(a) => rec.attr_present(a.as_str()),
        Node::Substring(a, parts) => rec.attr_any(a.as_str(), &mut |x| substring_match(x, parts)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal event-like record for core-level tests (the real Event
    /// lives in jamm-ulm, which depends on this crate).
    struct Rec {
        host: &'static str,
        ty: &'static str,
        level: u8,
        time: u64,
        value: Option<f64>,
    }

    impl Record for Rec {
        fn host(&self) -> Option<&str> {
            Some(self.host)
        }
        fn event_type(&self) -> Option<&str> {
            Some(self.ty)
        }
        fn level_rank(&self) -> Option<u8> {
            Some(self.level)
        }
        fn time_micros(&self) -> Option<u64> {
            Some(self.time)
        }
        fn value(&self) -> Option<f64> {
            self.value
        }
        fn attr_any(&self, attr: &str, f: &mut dyn FnMut(&str) -> bool) -> bool {
            match attr {
                "host" => f(self.host),
                "eventtype" | "type" => f(self.ty),
                "level" => f(level_name(self.level)),
                _ => false,
            }
        }
        fn attr_present(&self, attr: &str) -> bool {
            matches!(attr, "host" | "eventtype" | "type" | "level")
        }
    }

    fn rec(host: &'static str, ty: &'static str, value: Option<f64>) -> Rec {
        Rec {
            host,
            ty,
            level: 0,
            time: 1_000_000,
            value,
        }
    }

    #[test]
    fn parse_ldap_subset_and_superset_leaves() {
        let p =
            Predicate::parse("(&(type=CPU_TOTAL)(host=dpss1)(level>=warning)(val>50))").unwrap();
        let plan = p.compile();
        assert!(plan.facts().types.is_some());
        assert!(plan.facts().hosts.is_some());
        assert_eq!(plan.facts().level_floor, Some(4));
        assert!(plan.eval(&Rec {
            host: "dpss1",
            ty: "CPU_TOTAL",
            level: 5,
            time: 0,
            value: Some(60.0),
        }));
        assert!(!plan.eval(&Rec {
            host: "dpss1",
            ty: "CPU_TOTAL",
            level: 5,
            time: 0,
            value: Some(40.0),
        }));
        assert!(!plan.eval(&Rec {
            host: "dpss1",
            ty: "CPU_TOTAL",
            level: 0,
            time: 0,
            value: Some(60.0),
        }));
    }

    #[test]
    fn parse_time_and_limit() {
        let p = Predicate::parse("(&(time>=5s)(time<10s)(limit=7))").unwrap();
        let plan = p.compile();
        assert_eq!(plan.facts().from_micros, Some(5_000_000));
        assert_eq!(plan.facts().to_micros, Some(10_000_000));
        assert_eq!(plan.limit(), Some(7));
        let mut r = rec("h", "X", None);
        r.time = 5_000_000;
        assert!(plan.eval(&r));
        r.time = 10_000_000;
        assert!(!plan.eval(&r));
    }

    #[test]
    fn stateful_leaves_track_per_series() {
        let plan = Predicate::parse("(onchange)").unwrap().compile();
        assert!(plan.is_stateful());
        assert!(plan.eval(&rec("h", "X", Some(5.0))));
        assert!(!plan.eval(&rec("h", "X", Some(5.0))));
        assert!(plan.eval(&rec("h", "X", Some(6.0))));
        // A different series is tracked independently.
        assert!(plan.eval(&rec("h2", "X", Some(6.0))));
        // A clone starts fresh.
        let clone = plan.clone();
        assert!(clone.eval(&rec("h", "X", Some(6.0))));
    }

    #[test]
    fn crosses_and_relative_change() {
        let plan = Predicate::parse("(crosses=50)").unwrap().compile();
        assert!(!plan.eval(&rec("h", "C", Some(30.0))));
        assert!(plan.eval(&rec("h", "C", Some(60.0))));
        assert!(!plan.eval(&rec("h", "C", Some(70.0))));
        assert!(plan.eval(&rec("h", "C", Some(40.0))));

        let plan = Predicate::parse("(relchange=0.2)").unwrap().compile();
        assert!(plan.eval(&rec("h", "R", Some(50.0))));
        assert!(!plan.eval(&rec("h", "R", Some(55.0))));
        assert!(plan.eval(&rec("h", "R", Some(70.0))));
    }

    #[test]
    fn or_facts_union_and_not_facts_drop() {
        let p = Predicate::parse("(|(type=A)(type=B))").unwrap();
        let f = p.compile();
        let types = f.facts().types.clone().unwrap();
        assert_eq!(types.len(), 2);
        // A disjunction with an unconstrained branch constrains nothing.
        let p = Predicate::parse("(|(type=A)(val>5))").unwrap();
        assert!(p.compile().facts().types.is_none());
        // Negation constrains nothing.
        let p = Predicate::parse("(!(type=A))").unwrap();
        assert!(p.compile().facts().types.is_none());
        // Conjunction intersects.
        let p = Predicate::parse("(&(|(type=A)(type=B))(type=B))").unwrap();
        let types = p.compile().facts().types.clone().unwrap();
        assert_eq!(types.len(), 1);
        assert_eq!(types[0].as_str(), "B");
    }

    #[test]
    fn display_round_trips_with_escaping() {
        for text in [
            "(&(type=CPU_TOTAL)(host=dpss1.lbl.gov))",
            "(|(objectclass=sensor)(objectclass=gateway))",
            "(!(status=stopped))",
            "(name=weird \\(value\\) with \\* and \\\\)",
            "(name=prefix*)",
            "(name=*mid*)",
            "(level>=Warning)",
            "(val>50)",
            "(val!=0)",
            "(onchange)",
            "(crosses=50)",
            "(relchange=0.2)",
            "(limit=100)",
            "(&)",
            "(|)",
        ] {
            let p = Predicate::parse(text).unwrap();
            let shown = p.to_string();
            let again =
                Predicate::parse(&shown).unwrap_or_else(|e| panic!("reparse of {shown:?}: {e}"));
            assert_eq!(again.to_string(), shown, "display fixed point for {text:?}");
            assert_eq!(again, p, "structure round-trips for {text:?}");
        }
    }

    #[test]
    fn approx_equality_is_case_insensitive_and_round_trips_typed_attrs() {
        // `~=` parses to a CI Equals leaf on any attribute, including the
        // ones plain `=` maps to typed exact leaves.
        let p = Predicate::parse("(host~=DPSS1.LBL.GOV)").unwrap();
        assert_eq!(p, Predicate::Equals("host".into(), "DPSS1.LBL.GOV".into()));
        struct Lower;
        impl Record for Lower {
            fn attr_any(&self, attr: &str, f: &mut dyn FnMut(&str) -> bool) -> bool {
                attr == "host" && f("dpss1.lbl.gov")
            }
            fn attr_present(&self, attr: &str) -> bool {
                attr == "host"
            }
        }
        assert!(p.compile().eval(&Lower));
        // A builder-constructed CI host equality displays as `~=` and so
        // re-parses to the same structure (the plain `=` form would have
        // become the exact-match Hosts leaf).
        let built = Predicate::attr_eq("host", "DPSS1.LBL.GOV");
        let shown = built.to_string();
        assert_eq!(shown, "(host~=DPSS1.LBL.GOV)");
        assert_eq!(Predicate::parse(&shown).unwrap(), built);
        assert_eq!(
            Predicate::parse("(type~=cpu_total)").unwrap(),
            Predicate::Equals("eventtype".into(), "cpu_total".into())
        );
    }

    #[test]
    fn oversized_second_timestamps_are_a_parse_error_not_a_wrap() {
        // u64::MAX seconds cannot be expressed in micros; must error, not
        // overflow (debug panic) or wrap (silent wrong bound in release).
        let err = Predicate::parse("(time>=18446744073709551615s)").expect_err("overflow");
        assert!(err.reason.contains("expected a timestamp"), "{err}");
        // The largest expressible value still parses.
        let max_secs = u64::MAX / 1_000_000;
        let p = Predicate::parse(&format!("(time>={max_secs}s)")).unwrap();
        assert_eq!(
            p,
            Predicate::TimeRange {
                from_micros: Some(max_secs * 1_000_000),
                to_micros: None
            }
        );
    }

    #[test]
    fn escaped_values_match_literally() {
        struct Star;
        impl Record for Star {
            fn attr_any(&self, attr: &str, f: &mut dyn FnMut(&str) -> bool) -> bool {
                attr == "name" && f("a*b")
            }
            fn attr_present(&self, attr: &str) -> bool {
                attr == "name"
            }
        }
        let exact = Predicate::parse("(name=a\\*b)").unwrap();
        assert_eq!(exact, Predicate::Equals("name".into(), "a*b".into()));
        assert!(exact.compile().eval(&Star));
        let wild = Predicate::parse("(name=a*b)").unwrap();
        assert!(matches!(wild, Predicate::Substring(..)));
        assert!(wild.compile().eval(&Star));
    }

    #[test]
    fn parse_errors_carry_position_and_reason() {
        for (bad, reason) in [
            ("", "expected '('"),
            ("(", "unexpected end of input"),
            ("(a=b", "unterminated"),
            ("()", "missing comparator"),
            ("(a)", "missing comparator"),
            ("(&(a=b)", "expected ')'"),
            ("(a=b))", "trailing input"),
            ("junk", "expected '('"),
            ("(=x)", "empty attribute name"),
            ("(val>abc)", "expected a number"),
            ("(level>=loud)", "unknown level"),
            ("(limit=many)", "expected a count"),
            ("(type>=X)", "supports '='"),
        ] {
            let err = Predicate::parse(bad).expect_err(bad);
            assert!(
                err.reason.contains(reason),
                "{bad:?}: got {:?}, wanted {reason:?}",
                err.reason
            );
            assert!(err.to_string().contains("parse error at byte"));
        }
    }

    #[test]
    fn parser_is_total_on_arbitrary_input() {
        crate::check::forall("query parser total", 256, |g| {
            let s = g.printable_string(60);
            let _ = Predicate::parse(&s);
        });
    }

    #[test]
    fn facts_admit_is_sound_for_matches() {
        crate::check::forall("facts sound", 128, |g| {
            let hosts = ["h1", "h2", "h3"];
            let types = ["A", "B", "C"];
            let preds = [
                "(&)",
                "(host=h1)",
                "(|(type=A)(type=B))",
                "(&(host=h2)(type=C)(level>=error))",
                "(&(time>=1000000)(time<2000000))",
                "(!(host=h1))",
                "(|(host=h1)(val>0.5))",
            ];
            let p = Predicate::parse(g.choice(&preds)).unwrap();
            let plan = p.compile();
            let r = Rec {
                host: g.choice(&hosts),
                ty: g.choice(&types),
                level: g.u64(9) as u8,
                time: g.u64(3_000_000),
                value: if g.bool(0.5) {
                    Some(g.f64_in(0.0, 1.0))
                } else {
                    None
                },
            };
            if plan.eval(&r) {
                assert!(
                    plan.facts().admits(&r),
                    "facts must admit every record the plan matches"
                );
            }
        });
    }
}
