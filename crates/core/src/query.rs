//! The unified query plane: one predicate IR for every consumer intent.
//!
//! The paper's consumers express the same intent three ways — streaming
//! subscription filters at a gateway (event type / on-change / threshold,
//! §2.2), query-mode requests against archived history, and LDAP-style
//! directory searches.  This module gives all of them one language:
//!
//! * [`Predicate`] — a boolean IR (`And`/`Or`/`Not` over typed leaves)
//!   with a text grammar ([`Predicate::parse`], a superset of the
//!   directory's LDAP-ish filter syntax) and a round-trippable
//!   [`std::fmt::Display`] form;
//! * [`Predicate::compile`] — produces a [`Plan`]: an allocation-free
//!   evaluator over anything implementing [`Record`] (events, directory
//!   entries), plus extracted pushdown [`Facts`] (event-type and host
//!   sets, severity floor, time bounds, result limit) that the routing
//!   and storage layers use to skip work *before* touching data;
//! * [`Record`] — the evaluation surface a record type exposes, so one
//!   compiled plan answers against live events and directory entries
//!   alike.
//!
//! Identifier leaves (event types, hosts, attribute names) are interned
//! ([`Sym`]) at compile time, so steady-state evaluation hashes `u32`s and
//! allocates nothing per record.
//!
//! # Grammar
//!
//! Parenthesised prefix syntax, as in LDAP:
//!
//! | Form | Meaning |
//! |---|---|
//! | `(&(f1)(f2)...)` | conjunction (empty `(&)` matches everything) |
//! | `(\|(f1)(f2)...)` | disjunction (empty `(\|)` matches nothing) |
//! | `(!(f))` | negation |
//! | `(type=CPU_TOTAL)` / `(eventtype=...)` | exact event-type selection (feeds routing and pruning) |
//! | `(host=dpss1.lbl.gov)` | exact host selection (feeds pruning) |
//! | `(level>=warning)` | severity floor |
//! | `(time>=N)` / `(time<N)` | half-open time bounds, microseconds (`Ns` = seconds) |
//! | `(val>50)` `(val<50)` `(val>=..)` `(val<=..)` `(val=..)` `(val!=..)` | `VAL` reading comparisons |
//! | `(onchange)` | pass only when the reading differs from the previous one of its series |
//! | `(crosses=50)` | pass when the reading crosses the threshold in either direction |
//! | `(relchange=0.2)` | pass when the reading changed by more than the fraction |
//! | `(limit=100)` | result limit (a pushdown directive; always matches) |
//! | `(groupby=host)` / `(groupby=type)` / `(groupby=host,type)` | aggregate directive: group matches by host and/or event type |
//! | `(topk=5)` | aggregate directive: keep the 5 highest-scoring groups |
//! | `(rate=60s)` | aggregate directive: report per-group event rate over a trailing window (`N` = micros, `Ns` = seconds) |
//! | `(attr=value)` | case-insensitive attribute equality (directory entries; event pseudo-attrs) |
//! | `(attr~=value)` | case-insensitive equality on *any* attribute, including `host`/`type` (LDAP approximate match) |
//! | `(attr=*)` | attribute presence |
//! | `(attr=pa*ern)` | case-insensitive substring match (`*` wildcards) |
//!
//! Literal `(`, `)`, `*` and `\` inside values are escaped with a
//! backslash; [`Predicate`]'s `Display` form re-escapes them, so
//! parse → display → parse round-trips.
//!
//! `host=` / `type=` equality is **exact** (those leaves feed segment
//! pruning, whose catalogs are exact string sets); every other attribute
//! comparison is case-insensitive per LDAP convention.

use std::collections::HashMap;

use crate::intern::Sym;
use crate::sync::Mutex;

/// Canonical level names in severity order; index is the rank used by
/// [`Predicate::MinLevel`] (0 = Usage ... 8 = Emergency).  Kept in sync
/// with `jamm_ulm::Level::severity` (asserted by a test there).
pub const LEVEL_NAMES: [&str; 9] = [
    "Usage",
    "Debug",
    "Info",
    "Notice",
    "Warning",
    "Error",
    "Critical",
    "Alert",
    "Emergency",
];

/// The severity rank of a level name (case-insensitive), if known.
pub fn level_rank(name: &str) -> Option<u8> {
    LEVEL_NAMES
        .iter()
        .position(|n| n.eq_ignore_ascii_case(name))
        .map(|i| i as u8)
}

/// The canonical name of a severity rank (clamped to the table).
pub fn level_name(rank: u8) -> &'static str {
    LEVEL_NAMES[(rank as usize).min(LEVEL_NAMES.len() - 1)]
}

/// How a `VAL` reading is compared against a threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueCmp {
    /// Strictly greater than.
    Gt,
    /// Strictly less than.
    Lt,
    /// Greater than or equal.
    Ge,
    /// Less than or equal.
    Le,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl ValueCmp {
    fn apply(self, v: f64, t: f64) -> bool {
        match self {
            ValueCmp::Gt => v > t,
            ValueCmp::Lt => v < t,
            ValueCmp::Ge => v >= t,
            ValueCmp::Le => v <= t,
            ValueCmp::Eq => v == t,
            ValueCmp::Ne => v != t,
        }
    }

    fn op_str(self) -> &'static str {
        match self {
            ValueCmp::Gt => ">",
            ValueCmp::Lt => "<",
            ValueCmp::Ge => ">=",
            ValueCmp::Le => "<=",
            ValueCmp::Eq => "=",
            ValueCmp::Ne => "!=",
        }
    }
}

/// The predicate IR: what a consumer wants, independent of which layer
/// answers it.  Build one with the constructors, or parse the text grammar
/// with [`Predicate::parse`]; [`Predicate::compile`] turns it into an
/// executable [`Plan`].
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every record.
    True,
    /// All children must match.  `And(vec![])` matches everything.
    And(Vec<Predicate>),
    /// At least one child must match.  `Or(vec![])` matches nothing.
    Or(Vec<Predicate>),
    /// The child must not match.
    Not(Box<Predicate>),
    /// The record's event type is one of these (exact).  Feeds routing
    /// buckets and segment pruning.  An empty list matches nothing.
    EventTypes(Vec<String>),
    /// The record's host is one of these (exact).  Feeds segment pruning.
    Hosts(Vec<String>),
    /// The record's severity rank is at least this (see [`level_rank`]).
    MinLevel(u8),
    /// Half-open time bounds in microseconds: `from <= t < to`.
    TimeRange {
        /// Inclusive lower bound (micros).
        from_micros: Option<u64>,
        /// Exclusive upper bound (micros).
        to_micros: Option<u64>,
    },
    /// Compare the record's `VAL` reading against a threshold.  Records
    /// without a numeric reading never match.
    Value(ValueCmp, f64),
    /// Stateful: pass when the reading differs from the previous reading
    /// of the same `(host, event type)` series (first sighting passes).
    OnChange,
    /// Stateful: pass when the reading crosses the threshold in either
    /// direction relative to the previous reading of its series.
    Crosses(f64),
    /// Stateful: pass when the reading changed by more than the given
    /// fraction relative to the previous reading of its series.
    RelativeChange(f64),
    /// Case-insensitive attribute equality (`(attr=value)`).
    Equals(String, String),
    /// Attribute presence (`(attr=*)`).
    Present(String),
    /// Case-insensitive substring match: the parts are the literal
    /// segments between `*` wildcards.
    Substring(String, Vec<String>),
    /// Result-limit directive: always matches; the limit is carried as a
    /// pushdown fact for scans.
    Limit(usize),
    /// Aggregate directive: group matching records by the given keys
    /// (always matches as a filter; the grouping is carried in the plan's
    /// [`AggregateSpec`]).
    GroupBy(Vec<GroupKey>),
    /// Aggregate directive: keep only the K highest-scoring groups.
    TopK(usize),
    /// Aggregate directive: report each group's event rate over a trailing
    /// window of this many microseconds.
    Rate(u64),
}

/// A grouping key for the aggregate directives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GroupKey {
    /// Group by the record's host.
    Host,
    /// Group by the record's event type.
    Type,
}

impl GroupKey {
    fn as_str(self) -> &'static str {
        match self {
            GroupKey::Host => "host",
            GroupKey::Type => "type",
        }
    }
}

impl Predicate {
    /// A predicate matching everything.
    pub fn everything() -> Predicate {
        Predicate::True
    }

    /// Conjunction.
    pub fn and(children: Vec<Predicate>) -> Predicate {
        Predicate::And(children)
    }

    /// Disjunction.
    pub fn or(children: Vec<Predicate>) -> Predicate {
        Predicate::Or(children)
    }

    /// Negation.
    pub fn negate(child: Predicate) -> Predicate {
        Predicate::Not(Box::new(child))
    }

    /// Exact event-type selection.
    pub fn types<I: IntoIterator<Item = S>, S: Into<String>>(types: I) -> Predicate {
        Predicate::EventTypes(types.into_iter().map(Into::into).collect())
    }

    /// Exact host selection.
    pub fn hosts<I: IntoIterator<Item = S>, S: Into<String>>(hosts: I) -> Predicate {
        Predicate::Hosts(hosts.into_iter().map(Into::into).collect())
    }

    /// Half-open time range `[from, to)` in microseconds.
    pub fn between_micros(from: u64, to: u64) -> Predicate {
        Predicate::TimeRange {
            from_micros: Some(from),
            to_micros: Some(to),
        }
    }

    /// `VAL` comparison.
    pub fn val(cmp: ValueCmp, threshold: f64) -> Predicate {
        Predicate::Value(cmp, threshold)
    }

    /// Case-insensitive attribute equality (attribute name is lowercased).
    pub fn attr_eq(attr: impl Into<String>, value: impl Into<String>) -> Predicate {
        Predicate::Equals(attr.into().to_ascii_lowercase(), value.into())
    }

    /// Attribute presence (attribute name is lowercased).
    pub fn attr_present(attr: impl Into<String>) -> Predicate {
        Predicate::Present(attr.into().to_ascii_lowercase())
    }

    /// Parse the text grammar (see the module docs for the leaf table).
    pub fn parse(input: &str) -> Result<Predicate, ParseError> {
        let mut p = Parser { input, pos: 0 };
        p.skip_ws();
        let f = p.parse_filter()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(p.err("trailing input after filter"));
        }
        Ok(f)
    }

    /// Compile into an executable [`Plan`]: identifier leaves are
    /// interned, pushdown [`Facts`] are extracted, and stateful leaves get
    /// their per-series memory.
    pub fn compile(&self) -> Plan {
        let root = compile_node(self);
        let mut facts = node_facts(&root);
        facts.limit = predicate_limit(self);
        let state = if node_is_stateful(&root) {
            Some(Mutex::new(HashMap::new()))
        } else {
            None
        };
        Plan {
            root,
            facts,
            state,
            aggregate: predicate_aggregate(self),
        }
    }
}

/// Escape `\`, `(`, `)` and `*` in a value for the text form.
fn escape_into(out: &mut String, value: &str) {
    for c in value.chars() {
        if matches!(c, '\\' | '(' | ')' | '*') {
            out.push('\\');
        }
        out.push(c);
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn leaf_list(
            f: &mut std::fmt::Formatter<'_>,
            attr: &str,
            vals: &[String],
        ) -> std::fmt::Result {
            let one = |f: &mut std::fmt::Formatter<'_>, v: &String| {
                let mut s = String::new();
                escape_into(&mut s, v);
                write!(f, "({attr}={s})")
            };
            match vals.len() {
                0 => write!(f, "(|)"),
                1 => one(f, &vals[0]),
                _ => {
                    write!(f, "(|")?;
                    for v in vals {
                        one(f, v)?;
                    }
                    write!(f, ")")
                }
            }
        }
        match self {
            Predicate::True => write!(f, "(&)"),
            Predicate::And(cs) => {
                write!(f, "(&")?;
                for c in cs {
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(cs) => {
                write!(f, "(|")?;
                for c in cs {
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Predicate::Not(c) => write!(f, "(!{c})"),
            Predicate::EventTypes(ts) => leaf_list(f, "type", ts),
            Predicate::Hosts(hs) => leaf_list(f, "host", hs),
            Predicate::MinLevel(r) => write!(f, "(level>={})", level_name(*r)),
            Predicate::TimeRange {
                from_micros,
                to_micros,
            } => match (from_micros, to_micros) {
                (Some(a), Some(b)) => write!(f, "(&(time>={a})(time<{b}))"),
                (Some(a), None) => write!(f, "(time>={a})"),
                (None, Some(b)) => write!(f, "(time<{b})"),
                (None, None) => write!(f, "(&)"),
            },
            Predicate::Value(cmp, t) => write!(f, "(val{}{t})", cmp.op_str()),
            Predicate::OnChange => write!(f, "(onchange)"),
            Predicate::Crosses(t) => write!(f, "(crosses={t})"),
            Predicate::RelativeChange(r) => write!(f, "(relchange={r})"),
            Predicate::Equals(a, v) => {
                let mut s = String::new();
                escape_into(&mut s, v);
                // On attribute names the parser maps to typed exact leaves,
                // plain '=' would change semantics on re-parse; '~=' is the
                // grammar's case-insensitive equality and round-trips.
                if matches!(a.as_str(), "host" | "type" | "eventtype") {
                    write!(f, "({a}~={s})")
                } else {
                    write!(f, "({a}={s})")
                }
            }
            Predicate::Present(a) => write!(f, "({a}=*)"),
            Predicate::Substring(a, parts) => {
                write!(f, "({a}=")?;
                let mut s = String::new();
                for (i, part) in parts.iter().enumerate() {
                    if i > 0 {
                        s.push('*');
                    }
                    escape_into(&mut s, part);
                }
                write!(f, "{s})")
            }
            Predicate::Limit(n) => write!(f, "(limit={n})"),
            Predicate::GroupBy(keys) => {
                write!(f, "(groupby=")?;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", k.as_str())?;
                }
                write!(f, ")")
            }
            Predicate::TopK(k) => write!(f, "(topk={k})"),
            Predicate::Rate(w) => write!(f, "(rate={w})"),
        }
    }
}

/// A parse failure: where in the input, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.pos, self.reason)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            reason: reason.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(char::is_whitespace) {
            self.pos += self.input[self.pos..]
                .chars()
                .next()
                .map_or(1, char::len_utf8);
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.input[self.pos..].chars().next()
    }

    fn parse_filter(&mut self) -> Result<Predicate, ParseError> {
        self.expect('(')?;
        let f = match self.peek() {
            Some('&') => {
                self.pos += 1;
                Predicate::And(self.parse_list()?)
            }
            Some('|') => {
                self.pos += 1;
                Predicate::Or(self.parse_list()?)
            }
            Some('!') => {
                self.pos += 1;
                Predicate::Not(Box::new(self.parse_filter()?))
            }
            Some(_) => self.parse_simple()?,
            None => return Err(self.err("unexpected end of input")),
        };
        self.expect(')')?;
        Ok(f)
    }

    fn parse_list(&mut self) -> Result<Vec<Predicate>, ParseError> {
        let mut out = Vec::new();
        while self.peek() == Some('(') {
            out.push(self.parse_filter()?);
        }
        Ok(out)
    }

    /// Scan a simple leaf body up to (not including) the closing `)`,
    /// honouring backslash escapes.  Returns the raw body slice.
    fn scan_body(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        let mut chars = self.input[start..].char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    // Skip the escaped character (if the input ends here
                    // the backslash is literal and the ')' check fails).
                    let _ = chars.next();
                }
                ')' => {
                    self.pos = start + i;
                    return Ok(&self.input[start..start + i]);
                }
                _ => {}
            }
        }
        self.pos = self.input.len();
        Err(self.err("unterminated filter (missing ')')"))
    }

    fn parse_simple(&mut self) -> Result<Predicate, ParseError> {
        let body = self.scan_body()?;
        // Find the first unescaped comparator.
        let mut op: Option<(usize, &'static str)> = None;
        let bytes = body.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'>' | b'<' | b'!' | b'~' => {
                    let two = i + 1 < bytes.len() && bytes[i + 1] == b'=';
                    op = Some((
                        i,
                        match (bytes[i], two) {
                            (b'>', true) => ">=",
                            (b'>', false) => ">",
                            (b'<', true) => "<=",
                            (b'<', false) => "<",
                            (b'!', true) => "!=",
                            (b'~', true) => "~=",
                            // A bare '!' or '~' is not a comparator; treat
                            // as an ordinary character.
                            (_, false) => {
                                i += 1;
                                continue;
                            }
                            _ => unreachable!(),
                        },
                    ));
                    break;
                }
                b'=' => {
                    op = Some((i, "="));
                    break;
                }
                _ => i += 1,
            }
        }
        let Some((op_idx, op)) = op else {
            // Bare-word leaves.
            if body.trim().eq_ignore_ascii_case("onchange") {
                return Ok(Predicate::OnChange);
            }
            return Err(self.err(format!("missing comparator in leaf '{}'", body.trim())));
        };
        let attr = body[..op_idx].trim();
        let value = body[op_idx + op.len()..].trim();
        if attr.is_empty() {
            return Err(self.err("empty attribute name"));
        }
        let attr_lower = attr.to_ascii_lowercase();
        let num = |p: &Self| -> Result<f64, ParseError> {
            value
                .parse::<f64>()
                .map_err(|_| p.err(format!("expected a number, got '{value}'")))
        };
        let eq_only = |p: &Self| -> Result<(), ParseError> {
            if op == "=" {
                Ok(())
            } else {
                Err(p.err(format!("attribute '{attr_lower}' supports '=' only")))
            }
        };
        // Map an equality value to the exact / presence / substring leaf
        // shape shared by typed and generic attributes.
        enum Shape {
            Exact(String),
            Present,
            Parts(Vec<String>),
        }
        let shape = |raw: &str| -> Shape {
            if raw == "*" {
                return Shape::Present;
            }
            let parts = split_unescaped_stars(raw);
            if parts.len() > 1 {
                Shape::Parts(parts.into_iter().map(unescape).collect())
            } else {
                Shape::Exact(unescape(raw))
            }
        };
        Ok(match attr_lower.as_str() {
            // `~=` is LDAP's approximate match: case-insensitive equality
            // on any attribute — and the round-trippable `Display` form of
            // an `Equals` leaf on an otherwise-typed attribute name.
            "type" | "eventtype" => match op {
                "~=" => Predicate::Equals("eventtype".into(), unescape(value)),
                "=" => match shape(value) {
                    Shape::Exact(v) => Predicate::EventTypes(vec![v]),
                    Shape::Present => Predicate::Present("eventtype".into()),
                    Shape::Parts(parts) => Predicate::Substring("eventtype".into(), parts),
                },
                _ => return Err(self.err("event type supports '=' and '~=' only")),
            },
            "host" => match op {
                "~=" => Predicate::Equals("host".into(), unescape(value)),
                "=" => match shape(value) {
                    Shape::Exact(v) => Predicate::Hosts(vec![v]),
                    Shape::Present => Predicate::Present("host".into()),
                    Shape::Parts(parts) => Predicate::Substring("host".into(), parts),
                },
                _ => return Err(self.err("host supports '=' and '~=' only")),
            },
            "level" | "lvl" => match op {
                ">=" => Predicate::MinLevel(
                    level_rank(value)
                        .ok_or_else(|| self.err(format!("unknown level '{value}'")))?,
                ),
                "=" => Predicate::Equals("level".into(), unescape(value)),
                _ => return Err(self.err("level supports '>=' and '=' only")),
            },
            "time" => {
                let micros = parse_time_micros(value)
                    .ok_or_else(|| self.err(format!("expected a timestamp, got '{value}'")))?;
                match op {
                    ">=" => Predicate::TimeRange {
                        from_micros: Some(micros),
                        to_micros: None,
                    },
                    ">" => Predicate::TimeRange {
                        from_micros: Some(micros.saturating_add(1)),
                        to_micros: None,
                    },
                    "<" => Predicate::TimeRange {
                        from_micros: None,
                        to_micros: Some(micros),
                    },
                    "<=" => Predicate::TimeRange {
                        from_micros: None,
                        to_micros: Some(micros.saturating_add(1)),
                    },
                    "=" => Predicate::TimeRange {
                        from_micros: Some(micros),
                        to_micros: Some(micros.saturating_add(1)),
                    },
                    _ => return Err(self.err("time does not support '!='")),
                }
            }
            "val" => {
                if op == "=" && value == "*" {
                    Predicate::Present("val".into())
                } else {
                    let cmp = match op {
                        ">" => ValueCmp::Gt,
                        "<" => ValueCmp::Lt,
                        ">=" => ValueCmp::Ge,
                        "<=" => ValueCmp::Le,
                        "=" => ValueCmp::Eq,
                        "!=" => ValueCmp::Ne,
                        _ => unreachable!("comparator set is closed"),
                    };
                    Predicate::Value(cmp, num(self)?)
                }
            }
            "crosses" => {
                eq_only(self)?;
                Predicate::Crosses(num(self)?)
            }
            "relchange" => {
                eq_only(self)?;
                Predicate::RelativeChange(num(self)?)
            }
            "limit" => {
                eq_only(self)?;
                Predicate::Limit(
                    value
                        .parse::<usize>()
                        .map_err(|_| self.err(format!("expected a count, got '{value}'")))?,
                )
            }
            "groupby" => {
                eq_only(self)?;
                let mut keys = Vec::new();
                for part in value.split(',') {
                    keys.push(match part.trim().to_ascii_lowercase().as_str() {
                        "host" => GroupKey::Host,
                        "type" | "eventtype" => GroupKey::Type,
                        other => {
                            return Err(
                                self.err(format!("unknown group key '{other}' (host, type)"))
                            )
                        }
                    });
                }
                keys.sort_unstable();
                keys.dedup();
                Predicate::GroupBy(keys)
            }
            "topk" => {
                eq_only(self)?;
                Predicate::TopK(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|k| *k > 0)
                        .ok_or_else(|| self.err(format!("expected a count, got '{value}'")))?,
                )
            }
            "rate" => {
                eq_only(self)?;
                Predicate::Rate(
                    parse_time_micros(value)
                        .filter(|w| *w > 0)
                        .ok_or_else(|| self.err(format!("expected a duration, got '{value}'")))?,
                )
            }
            _ => match op {
                "~=" => Predicate::Equals(attr_lower, unescape(value)),
                "=" => match shape(value) {
                    Shape::Exact(v) => Predicate::Equals(attr_lower, v),
                    Shape::Present => Predicate::Present(attr_lower),
                    Shape::Parts(parts) => Predicate::Substring(attr_lower, parts),
                },
                _ => {
                    return Err(self.err(format!(
                        "attribute '{attr_lower}' supports '=' and '~=' only"
                    )))
                }
            },
        })
    }
}

/// `"123"` → micros, `"123s"` → seconds.  Second values too large to
/// express in microseconds are a parse error, not a silent wrap.
fn parse_time_micros(s: &str) -> Option<u64> {
    if let Some(secs) = s.strip_suffix(['s', 'S']) {
        secs.trim()
            .parse::<u64>()
            .ok()
            .and_then(|v| v.checked_mul(1_000_000))
    } else {
        s.parse::<u64>().ok()
    }
}

/// Split on unescaped `*`, keeping escapes in the pieces.
fn split_unescaped_stars(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'*' => {
                out.push(&s[start..i]);
                start = i + 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    out.push(&s[start.min(s.len())..]);
    out
}

/// Remove backslash escapes (a trailing backslash is kept literally).
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some(esc) => out.push(esc),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Case-insensitive glob match where `parts` are the literal segments
/// between `*` wildcards (empty leading/trailing segments anchor nothing).
pub fn substring_match(value: &str, parts: &[String]) -> bool {
    let value = value.to_ascii_lowercase();
    let mut pos = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        let p = part.to_ascii_lowercase();
        if i == 0 {
            if !value.starts_with(&p) {
                return false;
            }
            pos = p.len();
        } else if i == parts.len() - 1 {
            return value.len() >= pos && value[pos..].ends_with(&p);
        } else {
            match value[pos..].find(&p) {
                Some(found) => pos += found + p.len(),
                None => return false,
            }
        }
    }
    true
}

/// The evaluation surface a record type exposes to a compiled [`Plan`].
///
/// Events implement the typed accessors; directory entries answer through
/// the attribute methods (their `host()` / `event_type()` stay `None`, so
/// typed leaves fall back to multi-valued attribute matching).
pub trait Record {
    /// The record's host identity, when it has a single canonical one.
    fn host(&self) -> Option<&str> {
        None
    }

    /// The record's event type, when it has a single canonical one.
    fn event_type(&self) -> Option<&str> {
        None
    }

    /// Severity rank (see [`level_rank`]), when the record has one.
    fn level_rank(&self) -> Option<u8> {
        None
    }

    /// Timestamp in microseconds, when the record has one.
    fn time_micros(&self) -> Option<u64> {
        None
    }

    /// The conventional numeric `VAL` reading, when present.
    fn value(&self) -> Option<f64> {
        None
    }

    /// Visit the values of a (lowercased) attribute; true when `f`
    /// accepts any of them.
    fn attr_any(&self, attr: &str, f: &mut dyn FnMut(&str) -> bool) -> bool;

    /// True when the (lowercased) attribute is present.
    fn attr_present(&self, attr: &str) -> bool;
}

/// The compiled evaluator node tree: identifier leaves are interned.
#[derive(Debug, Clone)]
enum Node {
    True,
    And(Vec<Node>),
    Or(Vec<Node>),
    Not(Box<Node>),
    Types(Vec<Sym>),
    Hosts(Vec<Sym>),
    MinLevel(u8),
    Time { from: Option<u64>, to: Option<u64> },
    Value(ValueCmp, f64),
    OnChange,
    Crosses(f64),
    RelativeChange(f64),
    Equals(Sym, String),
    Present(Sym),
    Substring(Sym, Vec<String>),
}

fn compile_node(p: &Predicate) -> Node {
    match p {
        Predicate::True
        | Predicate::Limit(_)
        | Predicate::GroupBy(_)
        | Predicate::TopK(_)
        | Predicate::Rate(_) => Node::True,
        Predicate::And(cs) => Node::And(cs.iter().map(compile_node).collect()),
        Predicate::Or(cs) => Node::Or(cs.iter().map(compile_node).collect()),
        Predicate::Not(c) => Node::Not(Box::new(compile_node(c))),
        Predicate::EventTypes(ts) => {
            let mut syms: Vec<Sym> = ts.iter().map(|t| Sym::intern(t)).collect();
            syms.sort_unstable();
            syms.dedup();
            Node::Types(syms)
        }
        Predicate::Hosts(hs) => {
            let mut syms: Vec<Sym> = hs.iter().map(|h| Sym::intern(h)).collect();
            syms.sort_unstable();
            syms.dedup();
            Node::Hosts(syms)
        }
        Predicate::MinLevel(r) => Node::MinLevel(*r),
        Predicate::TimeRange {
            from_micros,
            to_micros,
        } => {
            if from_micros.is_none() && to_micros.is_none() {
                Node::True
            } else {
                Node::Time {
                    from: *from_micros,
                    to: *to_micros,
                }
            }
        }
        Predicate::Value(cmp, t) => Node::Value(*cmp, *t),
        Predicate::OnChange => Node::OnChange,
        Predicate::Crosses(t) => Node::Crosses(*t),
        Predicate::RelativeChange(r) => Node::RelativeChange(*r),
        Predicate::Equals(a, v) => Node::Equals(Sym::intern(a), v.clone()),
        Predicate::Present(a) => Node::Present(Sym::intern(a)),
        Predicate::Substring(a, parts) => Node::Substring(Sym::intern(a), parts.clone()),
    }
}

fn node_is_stateful(n: &Node) -> bool {
    match n {
        Node::OnChange | Node::Crosses(_) | Node::RelativeChange(_) => true,
        Node::And(cs) | Node::Or(cs) => cs.iter().any(node_is_stateful),
        Node::Not(c) => node_is_stateful(c),
        _ => false,
    }
}

/// What a predicate guarantees about every record it matches — the
/// pushdown surface.  The routing layer indexes subscriptions by `types`;
/// the storage engine prunes whole segments whose catalogs cannot satisfy
/// the facts; scans stop at `limit` results.
///
/// Facts are **sound, not complete**: a record matching the predicate
/// always satisfies its facts, but facts alone may admit records the full
/// predicate rejects (they are the cheap first tier, not the evaluator).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Facts {
    /// Event types any match must carry (`None` = unconstrained;
    /// `Some(vec![])` = nothing can match).
    pub types: Option<Vec<Sym>>,
    /// Hosts any match must carry.
    pub hosts: Option<Vec<Sym>>,
    /// Minimum severity rank of any match.
    pub level_floor: Option<u8>,
    /// Inclusive lower time bound (micros) of any match.
    pub from_micros: Option<u64>,
    /// Exclusive upper time bound (micros) of any match.
    pub to_micros: Option<u64>,
    /// Result limit requested by the predicate (`None` = unlimited).
    pub limit: Option<usize>,
}

impl Facts {
    /// Cheap first-tier check: could this record satisfy the facts?
    /// (Used by scan sources to pre-filter before the full evaluation.)
    pub fn admits<R: Record + ?Sized>(&self, rec: &R) -> bool {
        if let Some(from) = self.from_micros {
            if rec.time_micros().is_none_or(|t| t < from) {
                return false;
            }
        }
        if let Some(to) = self.to_micros {
            if rec.time_micros().is_none_or(|t| t >= to) {
                return false;
            }
        }
        if let Some(floor) = self.level_floor {
            if rec.level_rank().is_none_or(|l| l < floor) {
                return false;
            }
        }
        if let Some(types) = &self.types {
            let ok = rec
                .event_type()
                .and_then(Sym::lookup)
                .is_some_and(|s| types.contains(&s));
            if !ok {
                return false;
            }
        }
        if let Some(hosts) = &self.hosts {
            let ok = rec
                .host()
                .and_then(Sym::lookup)
                .is_some_and(|s| hosts.contains(&s));
            if !ok {
                return false;
            }
        }
        true
    }
}

fn intersect_syms(a: Vec<Sym>, b: &[Sym]) -> Vec<Sym> {
    a.into_iter().filter(|s| b.contains(s)).collect()
}

fn union_syms(mut a: Vec<Sym>, b: &[Sym]) -> Vec<Sym> {
    for s in b {
        if !a.contains(s) {
            a.push(*s);
        }
    }
    a.sort_unstable();
    a
}

fn and_facts(mut acc: Facts, f: &Facts) -> Facts {
    acc.types = match (acc.types, &f.types) {
        (None, t) => t.clone(),
        (t, None) => t,
        (Some(a), Some(b)) => Some(intersect_syms(a, b)),
    };
    acc.hosts = match (acc.hosts, &f.hosts) {
        (None, h) => h.clone(),
        (h, None) => h,
        (Some(a), Some(b)) => Some(intersect_syms(a, b)),
    };
    acc.level_floor = match (acc.level_floor, f.level_floor) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => a.or(b),
    };
    acc.from_micros = match (acc.from_micros, f.from_micros) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => a.or(b),
    };
    acc.to_micros = match (acc.to_micros, f.to_micros) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    acc.limit = match (acc.limit, f.limit) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    acc
}

/// Disjunction keeps only facts every branch guarantees (a match may come
/// from any branch), widening bounds instead of narrowing them.
fn or_facts(acc: Facts, f: &Facts) -> Facts {
    Facts {
        types: match (acc.types, &f.types) {
            (Some(a), Some(b)) => Some(union_syms(a, b)),
            _ => None,
        },
        hosts: match (acc.hosts, &f.hosts) {
            (Some(a), Some(b)) => Some(union_syms(a, b)),
            _ => None,
        },
        level_floor: match (acc.level_floor, f.level_floor) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        },
        from_micros: match (acc.from_micros, f.from_micros) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        },
        to_micros: match (acc.to_micros, f.to_micros) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        },
        limit: None,
    }
}

/// The most constrained facts: what an empty disjunction (match nothing)
/// guarantees.  Identity element of the or-fold.
fn bottom_facts() -> Facts {
    Facts {
        types: Some(Vec::new()),
        hosts: Some(Vec::new()),
        level_floor: Some(u8::MAX),
        from_micros: Some(u64::MAX),
        to_micros: Some(0),
        limit: None,
    }
}

fn node_facts(n: &Node) -> Facts {
    match n {
        Node::And(cs) => cs
            .iter()
            .map(node_facts)
            .fold(Facts::default(), |acc, f| and_facts(acc, &f)),
        Node::Or(cs) => cs
            .iter()
            .map(node_facts)
            .fold(bottom_facts(), |acc, f| or_facts(acc, &f)),
        Node::Types(ts) => Facts {
            types: Some(ts.clone()),
            ..Facts::default()
        },
        Node::Hosts(hs) => Facts {
            hosts: Some(hs.clone()),
            ..Facts::default()
        },
        Node::MinLevel(r) => Facts {
            level_floor: Some(*r),
            ..Facts::default()
        },
        Node::Time { from, to } => Facts {
            from_micros: *from,
            to_micros: *to,
            ..Facts::default()
        },
        // Negation, stateful leaves and attribute matching guarantee
        // nothing pushdown-safe.
        _ => Facts::default(),
    }
}

/// Limits are directives, not filters: they survive only through
/// conjunctions on the way to the root.
fn predicate_limit(p: &Predicate) -> Option<usize> {
    match p {
        Predicate::Limit(n) => Some(*n),
        Predicate::And(cs) => cs.iter().filter_map(predicate_limit).min(),
        _ => None,
    }
}

/// What a plan's aggregate directives ask for.  Present on a plan only
/// when the predicate carried at least one of `groupby` / `topk` / `rate`
/// (through conjunctions on the way to the root, like `limit`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateSpec {
    /// Grouping keys.  Defaults to `[Host, Type]` when `topk` or `rate`
    /// appears without an explicit `groupby`.
    pub group_by: Vec<GroupKey>,
    /// Keep only the K highest-scoring groups (see [`Aggregator::rows`]).
    pub top_k: Option<usize>,
    /// Trailing rate window in microseconds.
    pub rate_window_micros: Option<u64>,
}

/// Aggregate directives survive only through conjunctions, like limits.
fn predicate_aggregate(p: &Predicate) -> Option<AggregateSpec> {
    fn walk(p: &Predicate, spec: &mut AggregateSpec, any: &mut bool) {
        match p {
            Predicate::GroupBy(keys) => {
                *any = true;
                for k in keys {
                    if !spec.group_by.contains(k) {
                        spec.group_by.push(*k);
                    }
                }
                spec.group_by.sort_unstable();
            }
            Predicate::TopK(k) => {
                *any = true;
                spec.top_k = Some(spec.top_k.map_or(*k, |prev: usize| prev.min(*k)));
            }
            Predicate::Rate(w) => {
                *any = true;
                spec.rate_window_micros =
                    Some(spec.rate_window_micros.map_or(*w, |prev: u64| prev.min(*w)));
            }
            Predicate::And(cs) => {
                for c in cs {
                    walk(c, spec, any);
                }
            }
            _ => {}
        }
    }
    let mut spec = AggregateSpec {
        group_by: Vec::new(),
        top_k: None,
        rate_window_micros: None,
    };
    let mut any = false;
    walk(p, &mut spec, &mut any);
    if !any {
        return None;
    }
    if spec.group_by.is_empty() {
        spec.group_by = vec![GroupKey::Host, GroupKey::Type];
    }
    Some(spec)
}

/// A compiled, executable predicate: the one evaluator every layer runs.
///
/// * [`Plan::eval`] answers "does this record match", allocation-free in
///   steady state (identifier membership is interned-`u32` comparison;
///   stateful per-series memory is `Sym`-keyed).
/// * [`Plan::facts`] exposes the extracted pushdown facts.
///
/// Stateful predicates (on-change, crosses, relative-change) keep their
/// per-series previous readings inside the plan behind a mutex, so `eval`
/// takes `&self` and a plan can sit in a routing table evaluated by
/// parallel delivery workers.  Cloning a plan starts **fresh** stateful
/// memory (a clone is "the same question asked anew", e.g. a new scan).
#[derive(Debug)]
pub struct Plan {
    root: Node,
    facts: Facts,
    /// Per-series previous readings, present only for stateful plans.
    state: Option<Mutex<HashMap<(Sym, Sym), f64>>>,
    /// Aggregate directives carried by the predicate, if any.
    aggregate: Option<AggregateSpec>,
}

impl Clone for Plan {
    fn clone(&self) -> Plan {
        Plan {
            root: self.root.clone(),
            facts: self.facts.clone(),
            state: self.state.as_ref().map(|_| Mutex::new(HashMap::new())),
            aggregate: self.aggregate.clone(),
        }
    }
}

impl Plan {
    /// The pushdown facts extracted at compile time.
    pub fn facts(&self) -> &Facts {
        &self.facts
    }

    /// The event types this plan can ever match, if constrained — what
    /// the gateway's sharded router indexes subscriptions by.
    pub fn routed_types(&self) -> Option<&[Sym]> {
        self.facts.types.as_deref()
    }

    /// The result limit pushed down by the predicate, if any.
    pub fn limit(&self) -> Option<usize> {
        self.facts.limit
    }

    /// Whether the plan carries per-series memory (on-change / crosses /
    /// relative-change leaves).
    pub fn is_stateful(&self) -> bool {
        self.state.is_some()
    }

    /// The aggregate directives carried by the predicate, if any.
    pub fn aggregate(&self) -> Option<&AggregateSpec> {
        self.aggregate.as_ref()
    }

    /// True when [`Plan::eval_batch`] is *exact* for this plan: every node
    /// is decidable from the batch's columns (no stateful or attribute
    /// leaves), so the batch selection equals the per-row [`Plan::eval`]
    /// result and a scan may skip the row-at-a-time re-check entirely.
    pub fn batch_definite(&self) -> bool {
        node_batch_definite(&self.root)
    }

    /// Evaluate the plan against a record, updating per-series memory.
    ///
    /// Matching the legacy filter-chain semantics, the previous-reading
    /// memory is updated whenever the record carries a numeric reading —
    /// whether or not the record ultimately matches — so "on change" and
    /// "crosses" behave correctly even when another conjunct rejects a
    /// particular record.
    pub fn eval<R: Record + ?Sized>(&self, rec: &R) -> bool {
        let value = rec.value();
        // Resolve the record's interned identity once; a leaf then
        // compares u32s.  `lookup` (never `intern`) keeps never-seen
        // payload identifiers out of the leaking intern table — a leaf's
        // own strings were interned at compile time, so "not interned"
        // already means "matches no leaf".
        let host_sym = rec.host().and_then(Sym::lookup);
        let ty_sym = rec.event_type().and_then(Sym::lookup);
        let (prev, key) = match &self.state {
            Some(state) => match (rec.host(), rec.event_type()) {
                (Some(h), Some(t)) => {
                    // Stateful series keys must exist even on first
                    // sighting; hosts/types are bounded, so interning
                    // here is safe.
                    let key = (
                        host_sym.unwrap_or_else(|| Sym::intern(h)),
                        ty_sym.unwrap_or_else(|| Sym::intern(t)),
                    );
                    (state.lock().get(&key).copied(), Some(key))
                }
                _ => (None, None),
            },
            None => (None, None),
        };
        let ctx = Ctx {
            value,
            prev,
            host_sym,
            ty_sym,
        };
        let pass = eval_node(&self.root, rec, &ctx);
        if let (Some(state), Some(key), Some(v)) = (&self.state, key, value) {
            state.lock().insert(key, v);
        }
        pass
    }
}

/// Per-evaluation context resolved once up front.
struct Ctx {
    value: Option<f64>,
    prev: Option<f64>,
    host_sym: Option<Sym>,
    ty_sym: Option<Sym>,
}

fn eval_node<R: Record + ?Sized>(n: &Node, rec: &R, ctx: &Ctx) -> bool {
    match n {
        Node::True => true,
        Node::And(cs) => cs.iter().all(|c| eval_node(c, rec, ctx)),
        Node::Or(cs) => cs.iter().any(|c| eval_node(c, rec, ctx)),
        Node::Not(c) => !eval_node(c, rec, ctx),
        Node::Types(ts) => match rec.event_type() {
            Some(_) => ctx.ty_sym.is_some_and(|s| ts.contains(&s)),
            None => rec.attr_any("eventtype", &mut |v| ts.iter().any(|t| t.as_str() == v)),
        },
        Node::Hosts(hs) => match rec.host() {
            Some(_) => ctx.host_sym.is_some_and(|s| hs.contains(&s)),
            None => rec.attr_any("host", &mut |v| hs.iter().any(|h| h.as_str() == v)),
        },
        Node::MinLevel(r) => rec.level_rank().is_some_and(|l| l >= *r),
        Node::Time { from, to } => rec
            .time_micros()
            .is_some_and(|t| from.is_none_or(|f| t >= f) && to.is_none_or(|b| t < b)),
        Node::Value(cmp, t) => ctx.value.is_some_and(|v| cmp.apply(v, *t)),
        Node::OnChange => match (ctx.value, ctx.prev) {
            (Some(v), Some(p)) => v != p,
            (Some(_), None) => true,
            (None, _) => true,
        },
        Node::Crosses(t) => match (ctx.value, ctx.prev) {
            (Some(v), Some(p)) => (p <= *t && v > *t) || (p >= *t && v < *t),
            (Some(v), None) => v > *t,
            (None, _) => false,
        },
        Node::RelativeChange(frac) => match (ctx.value, ctx.prev) {
            (Some(v), Some(p)) if p.abs() > f64::EPSILON => ((v - p) / p).abs() > *frac,
            (Some(_), _) => true,
            (None, _) => false,
        },
        Node::Equals(a, v) => rec.attr_any(a.as_str(), &mut |x| x.eq_ignore_ascii_case(v)),
        Node::Present(a) => rec.attr_present(a.as_str()),
        Node::Substring(a, parts) => rec.attr_any(a.as_str(), &mut |x| substring_match(x, parts)),
    }
}

// ---------------------------------------------------------------------------
// Columnar (vectorized) evaluation
// ---------------------------------------------------------------------------

/// A batch of records laid out column-wise — what the storage engine's
/// columnar segments decode into, and what [`Plan::eval_batch`] evaluates
/// without building a single row.
///
/// All row slices must have the same length.  Host and event-type columns
/// hold *dictionary indices* into `dict`; a typed leaf resolves its interned
/// strings to matching dictionary indices once per batch and then compares
/// integers per row.  `values` carries the conventional `VAL` reading per
/// row with `val_present` (a bitmap, bit `i` = row `i`) saying whether the
/// row has one — so a stored NaN reading still compares exactly like the
/// row evaluator's `Some(NaN)`.
#[derive(Debug, Clone, Copy)]
pub struct ColumnBatch<'a> {
    /// Timestamp column, microseconds.
    pub ts_micros: &'a [u64],
    /// Host column as dictionary indices into `dict`.
    pub host_ids: &'a [u32],
    /// Event-type column as dictionary indices into `dict`.
    pub type_ids: &'a [u32],
    /// Severity-rank column (see [`level_rank`]).
    pub levels: &'a [u8],
    /// `VAL` reading column (meaningful only where `val_present` is set).
    pub values: &'a [f64],
    /// Presence bitmap for `values`: bit `i` of word `i / 64`.
    pub val_present: &'a [u64],
    /// The dictionary host/type indices point into.
    pub dict: &'a [String],
}

impl<'a> ColumnBatch<'a> {
    /// Rows in the batch.
    pub fn len(&self) -> usize {
        self.ts_micros.len()
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.ts_micros.is_empty()
    }

    fn check(&self) {
        let n = self.ts_micros.len();
        assert!(
            self.host_ids.len() == n
                && self.type_ids.len() == n
                && self.levels.len() == n
                && self.values.len() == n
                && self.val_present.len() >= n.div_ceil(64),
            "column batch slices must agree on length"
        );
    }
}

/// A reusable row-selection bitmap filled by [`Plan::eval_batch`] /
/// [`Facts::eval_batch`].  Allocates only when it grows past its previous
/// high-water mark, so a scan reusing one selection across batches is
/// allocation-free in steady state.
#[derive(Debug, Default)]
pub struct Selection {
    bits: Vec<u64>,
    len: usize,
}

impl Selection {
    /// An empty selection (no capacity yet).
    pub fn new() -> Selection {
        Selection::default()
    }

    /// Number of rows the selection covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the selection covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is row `i` selected?
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// How many rows are selected.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate the selected row indices in increasing order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }

    fn resize_for(&mut self, len: usize) {
        self.len = len;
        let words = len.div_ceil(64);
        self.bits.clear();
        self.bits.resize(words, 0);
    }
}

/// Reusable scratch buffers for [`Plan::eval_batch`]: a pool of bitmap
/// words for inner nodes and an id buffer for dictionary resolution.  Keep
/// one per scan (or per thread) and the batch-eval hot loop never
/// allocates after warm-up.
#[derive(Debug, Default)]
pub struct BatchScratch {
    pool: Vec<Vec<u64>>,
    ids: Vec<u32>,
}

impl BatchScratch {
    /// Fresh, empty scratch.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    fn take_buf(&mut self, words: usize) -> Vec<u64> {
        let mut b = self.pool.pop().unwrap_or_default();
        b.clear();
        b.resize(words, 0);
        b
    }

    fn put_buf(&mut self, b: Vec<u64>) {
        self.pool.push(b);
    }
}

/// Set `out` from a per-row predicate, keeping tail bits clear.
fn fill_rows<F: FnMut(usize) -> bool>(out: &mut [u64], len: usize, mut f: F) {
    for (wi, word) in out.iter_mut().enumerate() {
        let base = wi * 64;
        let top = (len - base).min(64);
        let mut w = 0u64;
        for b in 0..top {
            w |= (f(base + b) as u64) << b;
        }
        *word = w;
    }
}

fn fill_ones(out: &mut [u64], len: usize) {
    for (wi, word) in out.iter_mut().enumerate() {
        let base = wi * 64;
        let top = (len - base).min(64);
        *word = if top == 64 { !0u64 } else { (1u64 << top) - 1 };
    }
}

/// Resolve which dictionary indices match any of the leaf's interned
/// strings, into `ids` (cleared first).  O(dict × leaf) string compares,
/// paid once per batch per leaf — per-row work is then integer equality.
fn resolve_dict_ids(dict: &[String], syms: &[Sym], ids: &mut Vec<u32>) {
    ids.clear();
    for (i, entry) in dict.iter().enumerate() {
        if syms.iter().any(|s| s.as_str() == entry.as_str()) {
            ids.push(i as u32);
        }
    }
}

/// Select rows whose id column matches any resolved id.
fn fill_id_match(out: &mut [u64], len: usize, col: &[u32], ids: &[u32]) {
    match ids.len() {
        0 => {
            for w in out.iter_mut() {
                *w = 0;
            }
        }
        1 => {
            let id = ids[0];
            fill_rows(out, len, |i| col[i] == id);
        }
        _ => fill_rows(out, len, |i| ids.contains(&col[i])),
    }
}

/// Evaluate one node over the batch into `out`.  Returns whether the
/// result is *definite* (exact) rather than a conservative superset:
/// stateful and attribute leaves are not decidable from the columns, so
/// they select every row and poison definiteness — the caller re-checks
/// survivors row-at-a-time only in that case.
fn eval_node_batch(
    n: &Node,
    b: &ColumnBatch<'_>,
    out: &mut [u64],
    scratch: &mut BatchScratch,
) -> bool {
    let len = b.len();
    match n {
        Node::True => {
            fill_ones(out, len);
            true
        }
        Node::And(cs) => {
            fill_ones(out, len);
            let mut definite = true;
            let mut tmp = scratch.take_buf(out.len());
            for c in cs {
                definite &= eval_node_batch(c, b, &mut tmp, scratch);
                for (o, t) in out.iter_mut().zip(tmp.iter()) {
                    *o &= *t;
                }
            }
            scratch.put_buf(tmp);
            definite
        }
        Node::Or(cs) => {
            for w in out.iter_mut() {
                *w = 0;
            }
            let mut definite = true;
            let mut tmp = scratch.take_buf(out.len());
            for c in cs {
                definite &= eval_node_batch(c, b, &mut tmp, scratch);
                for (o, t) in out.iter_mut().zip(tmp.iter()) {
                    *o |= *t;
                }
            }
            scratch.put_buf(tmp);
            definite
        }
        Node::Not(c) => {
            let mut tmp = scratch.take_buf(out.len());
            let definite = eval_node_batch(c, b, &mut tmp, scratch);
            if definite {
                for (o, t) in out.iter_mut().zip(tmp.iter()) {
                    *o = !*t;
                }
                // Re-mask the tail the complement just set.
                let words = out.len();
                if let Some(last) = out.last_mut() {
                    let top = len - (words - 1) * 64;
                    if top < 64 {
                        *last &= (1u64 << top) - 1;
                    }
                }
                scratch.put_buf(tmp);
                true
            } else {
                // NOT of a superset guarantees nothing: every row stays
                // possible.
                scratch.put_buf(tmp);
                fill_ones(out, len);
                false
            }
        }
        Node::Types(ts) => {
            let mut ids = std::mem::take(&mut scratch.ids);
            resolve_dict_ids(b.dict, ts, &mut ids);
            fill_id_match(out, len, b.type_ids, &ids);
            scratch.ids = ids;
            true
        }
        Node::Hosts(hs) => {
            let mut ids = std::mem::take(&mut scratch.ids);
            resolve_dict_ids(b.dict, hs, &mut ids);
            fill_id_match(out, len, b.host_ids, &ids);
            scratch.ids = ids;
            true
        }
        Node::MinLevel(r) => {
            let floor = *r;
            fill_rows(out, len, |i| b.levels[i] >= floor);
            true
        }
        Node::Time { from, to } => {
            let (from, to) = (from.unwrap_or(0), to.unwrap_or(u64::MAX));
            fill_rows(out, len, |i| {
                let t = b.ts_micros[i];
                t >= from && t < to
            });
            true
        }
        Node::Value(cmp, t) => {
            let (cmp, t) = (*cmp, *t);
            fill_rows(out, len, |i| {
                b.val_present[i / 64] & (1u64 << (i % 64)) != 0 && cmp.apply(b.values[i], t)
            });
            true
        }
        // Stateful and attribute leaves cannot be decided from the
        // columns: conservatively keep every row.
        Node::OnChange
        | Node::Crosses(_)
        | Node::RelativeChange(_)
        | Node::Equals(..)
        | Node::Present(_)
        | Node::Substring(..) => {
            fill_ones(out, len);
            false
        }
    }
}

fn node_batch_definite(n: &Node) -> bool {
    match n {
        Node::True
        | Node::Types(_)
        | Node::Hosts(_)
        | Node::MinLevel(_)
        | Node::Time { .. }
        | Node::Value(..) => true,
        Node::And(cs) | Node::Or(cs) => cs.iter().all(node_batch_definite),
        Node::Not(c) => node_batch_definite(c),
        Node::OnChange
        | Node::Crosses(_)
        | Node::RelativeChange(_)
        | Node::Equals(..)
        | Node::Present(_)
        | Node::Substring(..) => false,
    }
}

impl Plan {
    /// Evaluate the plan over a column batch into `sel`, vectorized: typed
    /// leaves compare dictionary indices and numeric columns word-at-a-time
    /// with no string work and no row materialization.
    ///
    /// Returns `true` when the selection is **exact** (equals what
    /// [`Plan::eval`] would say per row — guaranteed whenever
    /// [`Plan::batch_definite`] holds), `false` when it is a conservative
    /// **superset** because the plan carries stateful or attribute leaves;
    /// the caller then re-checks the (already pruned) survivors row-wise.
    /// Allocation-free in steady state given a reused `sel` and `scratch`.
    pub fn eval_batch(
        &self,
        batch: &ColumnBatch<'_>,
        sel: &mut Selection,
        scratch: &mut BatchScratch,
    ) -> bool {
        batch.check();
        sel.resize_for(batch.len());
        eval_node_batch(&self.root, batch, &mut sel.bits, scratch)
    }
}

impl Facts {
    /// Vectorized [`Facts::admits`]: select exactly the rows the pushdown
    /// facts admit.  Used by scans of *stateful* plans, which must feed
    /// every facts-admissible row (in merge order) through the row
    /// evaluator so per-series memory sees the same stream the row-oriented
    /// oracle would.
    pub fn eval_batch(
        &self,
        batch: &ColumnBatch<'_>,
        sel: &mut Selection,
        scratch: &mut BatchScratch,
    ) {
        batch.check();
        let len = batch.len();
        sel.resize_for(len);
        let out = &mut sel.bits;
        let (from, to) = (
            self.from_micros.unwrap_or(0),
            self.to_micros.unwrap_or(u64::MAX),
        );
        let floor = self.level_floor.unwrap_or(0);
        fill_rows(out, len, |i| {
            let t = batch.ts_micros[i];
            t >= from && t < to && batch.levels[i] >= floor
        });
        let mut tmp = scratch.take_buf(out.len());
        let mut ids = std::mem::take(&mut scratch.ids);
        if let Some(types) = &self.types {
            resolve_dict_ids(batch.dict, types, &mut ids);
            fill_id_match(&mut tmp, len, batch.type_ids, &ids);
            for (o, t) in out.iter_mut().zip(tmp.iter()) {
                *o &= *t;
            }
        }
        if let Some(hosts) = &self.hosts {
            resolve_dict_ids(batch.dict, hosts, &mut ids);
            fill_id_match(&mut tmp, len, batch.host_ids, &ids);
            for (o, t) in out.iter_mut().zip(tmp.iter()) {
                *o &= *t;
            }
        }
        scratch.ids = ids;
        scratch.put_buf(tmp);
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// One group's aggregate results, from [`Aggregator::rows`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggRow {
    /// Group host (present when grouping by host).
    pub host: Option<Sym>,
    /// Group event type (present when grouping by type).
    pub event_type: Option<Sym>,
    /// Records in the group.
    pub count: u64,
    /// Sum of the group's numeric readings.
    pub sum: f64,
    /// Smallest reading (`0.0` when the group had none).
    pub min: f64,
    /// Largest reading (`0.0` when the group had none).
    pub max: f64,
    /// Mean reading, when the group had any.
    pub mean: Option<f64>,
    /// Events per second over the trailing rate window, when requested.
    pub rate: Option<f64>,
}

impl AggRow {
    /// The score top-k ranks groups by: the rate when requested, else the
    /// mean reading, else the plain count.
    pub fn score(&self) -> f64 {
        self.rate.or(self.mean).unwrap_or(self.count as f64)
    }
}

#[derive(Debug, Default)]
struct AggGroup {
    count: u64,
    nvals: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Timestamps inside the trailing rate window (kept only when the
    /// spec asks for a rate; pruned against the newest timestamp seen).
    times: std::collections::VecDeque<u64>,
    newest: u64,
}

/// Incremental group-by / top-k / rate aggregation over a record stream —
/// the engine behind both ad-hoc aggregate queries (fold a scan) and
/// continuously-maintained views (fold the publish path).
///
/// Group identity is the interned `(host, type)` pair restricted to the
/// spec's keys, so pushing a record hashes `u32`s; readings feed
/// count/sum/min/max, and when a rate window is requested each group keeps
/// its in-window timestamps (pruned as newer records arrive, the
/// `SummaryEngine` horizon discipline).
#[derive(Debug)]
pub struct Aggregator {
    spec: AggregateSpec,
    groups: HashMap<(Option<Sym>, Option<Sym>), AggGroup>,
}

impl Aggregator {
    /// An empty aggregator for a spec.
    pub fn new(spec: AggregateSpec) -> Aggregator {
        Aggregator {
            spec,
            groups: HashMap::new(),
        }
    }

    /// The spec this aggregator maintains.
    pub fn spec(&self) -> &AggregateSpec {
        &self.spec
    }

    /// Number of groups seen so far (before any top-k cut).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no records have been pushed.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Fold one record in.  Hosts and event types are bounded identifier
    /// sets, so interning the group key here is safe (same discipline as
    /// stateful plan memory).
    pub fn push<R: Record + ?Sized>(&mut self, rec: &R) {
        let host = if self.spec.group_by.contains(&GroupKey::Host) {
            rec.host().map(Sym::intern)
        } else {
            None
        };
        let ty = if self.spec.group_by.contains(&GroupKey::Type) {
            rec.event_type().map(Sym::intern)
        } else {
            None
        };
        self.observe(host, ty, rec.time_micros().unwrap_or(0), rec.value());
    }

    /// Fold one already-interned observation in (the publish-path fast
    /// lane: the gateway has interned host and type once per event).
    pub fn observe(&mut self, host: Option<Sym>, ty: Option<Sym>, ts: u64, value: Option<f64>) {
        let g = self.groups.entry((host, ty)).or_default();
        g.count += 1;
        if let Some(v) = value {
            if g.nvals == 0 {
                g.min = v;
                g.max = v;
            } else {
                g.min = g.min.min(v);
                g.max = g.max.max(v);
            }
            g.nvals += 1;
            g.sum += v;
        }
        if let Some(window) = self.spec.rate_window_micros {
            g.newest = g.newest.max(ts);
            g.times.push_back(ts);
            let horizon = g.newest.saturating_sub(window);
            while g.times.front().is_some_and(|t| *t < horizon) {
                g.times.pop_front();
            }
        }
    }

    /// The aggregate rows as of `now_micros`: one per group, rate computed
    /// over `[now - window, now]`, sorted by descending [`AggRow::score`]
    /// (ties by group name) and cut to the spec's top-k.
    pub fn rows(&self, now_micros: u64) -> Vec<AggRow> {
        let mut rows: Vec<AggRow> = self
            .groups
            .iter()
            .map(|((host, ty), g)| {
                let rate = self.spec.rate_window_micros.map(|window| {
                    let horizon = now_micros.saturating_sub(window);
                    let in_window = g.times.iter().filter(|t| **t >= horizon).count();
                    in_window as f64 / (window as f64 / 1_000_000.0)
                });
                AggRow {
                    host: *host,
                    event_type: *ty,
                    count: g.count,
                    sum: g.sum,
                    min: if g.nvals > 0 { g.min } else { 0.0 },
                    max: if g.nvals > 0 { g.max } else { 0.0 },
                    mean: (g.nvals > 0).then(|| g.sum / g.nvals as f64),
                    rate,
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.score()
                .partial_cmp(&a.score())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    let name = |r: &AggRow| {
                        (
                            r.host.map(|s| s.as_str()).unwrap_or(""),
                            r.event_type.map(|s| s.as_str()).unwrap_or(""),
                        )
                    };
                    name(a).cmp(&name(b))
                })
        });
        if let Some(k) = self.spec.top_k {
            rows.truncate(k);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal event-like record for core-level tests (the real Event
    /// lives in jamm-ulm, which depends on this crate).
    struct Rec {
        host: &'static str,
        ty: &'static str,
        level: u8,
        time: u64,
        value: Option<f64>,
    }

    impl Record for Rec {
        fn host(&self) -> Option<&str> {
            Some(self.host)
        }
        fn event_type(&self) -> Option<&str> {
            Some(self.ty)
        }
        fn level_rank(&self) -> Option<u8> {
            Some(self.level)
        }
        fn time_micros(&self) -> Option<u64> {
            Some(self.time)
        }
        fn value(&self) -> Option<f64> {
            self.value
        }
        fn attr_any(&self, attr: &str, f: &mut dyn FnMut(&str) -> bool) -> bool {
            match attr {
                "host" => f(self.host),
                "eventtype" | "type" => f(self.ty),
                "level" => f(level_name(self.level)),
                _ => false,
            }
        }
        fn attr_present(&self, attr: &str) -> bool {
            matches!(attr, "host" | "eventtype" | "type" | "level")
        }
    }

    fn rec(host: &'static str, ty: &'static str, value: Option<f64>) -> Rec {
        Rec {
            host,
            ty,
            level: 0,
            time: 1_000_000,
            value,
        }
    }

    #[test]
    fn parse_ldap_subset_and_superset_leaves() {
        let p =
            Predicate::parse("(&(type=CPU_TOTAL)(host=dpss1)(level>=warning)(val>50))").unwrap();
        let plan = p.compile();
        assert!(plan.facts().types.is_some());
        assert!(plan.facts().hosts.is_some());
        assert_eq!(plan.facts().level_floor, Some(4));
        assert!(plan.eval(&Rec {
            host: "dpss1",
            ty: "CPU_TOTAL",
            level: 5,
            time: 0,
            value: Some(60.0),
        }));
        assert!(!plan.eval(&Rec {
            host: "dpss1",
            ty: "CPU_TOTAL",
            level: 5,
            time: 0,
            value: Some(40.0),
        }));
        assert!(!plan.eval(&Rec {
            host: "dpss1",
            ty: "CPU_TOTAL",
            level: 0,
            time: 0,
            value: Some(60.0),
        }));
    }

    #[test]
    fn parse_time_and_limit() {
        let p = Predicate::parse("(&(time>=5s)(time<10s)(limit=7))").unwrap();
        let plan = p.compile();
        assert_eq!(plan.facts().from_micros, Some(5_000_000));
        assert_eq!(plan.facts().to_micros, Some(10_000_000));
        assert_eq!(plan.limit(), Some(7));
        let mut r = rec("h", "X", None);
        r.time = 5_000_000;
        assert!(plan.eval(&r));
        r.time = 10_000_000;
        assert!(!plan.eval(&r));
    }

    #[test]
    fn stateful_leaves_track_per_series() {
        let plan = Predicate::parse("(onchange)").unwrap().compile();
        assert!(plan.is_stateful());
        assert!(plan.eval(&rec("h", "X", Some(5.0))));
        assert!(!plan.eval(&rec("h", "X", Some(5.0))));
        assert!(plan.eval(&rec("h", "X", Some(6.0))));
        // A different series is tracked independently.
        assert!(plan.eval(&rec("h2", "X", Some(6.0))));
        // A clone starts fresh.
        let clone = plan.clone();
        assert!(clone.eval(&rec("h", "X", Some(6.0))));
    }

    #[test]
    fn crosses_and_relative_change() {
        let plan = Predicate::parse("(crosses=50)").unwrap().compile();
        assert!(!plan.eval(&rec("h", "C", Some(30.0))));
        assert!(plan.eval(&rec("h", "C", Some(60.0))));
        assert!(!plan.eval(&rec("h", "C", Some(70.0))));
        assert!(plan.eval(&rec("h", "C", Some(40.0))));

        let plan = Predicate::parse("(relchange=0.2)").unwrap().compile();
        assert!(plan.eval(&rec("h", "R", Some(50.0))));
        assert!(!plan.eval(&rec("h", "R", Some(55.0))));
        assert!(plan.eval(&rec("h", "R", Some(70.0))));
    }

    #[test]
    fn or_facts_union_and_not_facts_drop() {
        let p = Predicate::parse("(|(type=A)(type=B))").unwrap();
        let f = p.compile();
        let types = f.facts().types.clone().unwrap();
        assert_eq!(types.len(), 2);
        // A disjunction with an unconstrained branch constrains nothing.
        let p = Predicate::parse("(|(type=A)(val>5))").unwrap();
        assert!(p.compile().facts().types.is_none());
        // Negation constrains nothing.
        let p = Predicate::parse("(!(type=A))").unwrap();
        assert!(p.compile().facts().types.is_none());
        // Conjunction intersects.
        let p = Predicate::parse("(&(|(type=A)(type=B))(type=B))").unwrap();
        let types = p.compile().facts().types.clone().unwrap();
        assert_eq!(types.len(), 1);
        assert_eq!(types[0].as_str(), "B");
    }

    #[test]
    fn display_round_trips_with_escaping() {
        for text in [
            "(&(type=CPU_TOTAL)(host=dpss1.lbl.gov))",
            "(|(objectclass=sensor)(objectclass=gateway))",
            "(!(status=stopped))",
            "(name=weird \\(value\\) with \\* and \\\\)",
            "(name=prefix*)",
            "(name=*mid*)",
            "(level>=Warning)",
            "(val>50)",
            "(val!=0)",
            "(onchange)",
            "(crosses=50)",
            "(relchange=0.2)",
            "(limit=100)",
            "(groupby=host)",
            "(groupby=host,type)",
            "(topk=5)",
            "(rate=60000000)",
            "(&)",
            "(|)",
        ] {
            let p = Predicate::parse(text).unwrap();
            let shown = p.to_string();
            let again =
                Predicate::parse(&shown).unwrap_or_else(|e| panic!("reparse of {shown:?}: {e}"));
            assert_eq!(again.to_string(), shown, "display fixed point for {text:?}");
            assert_eq!(again, p, "structure round-trips for {text:?}");
        }
    }

    #[test]
    fn approx_equality_is_case_insensitive_and_round_trips_typed_attrs() {
        // `~=` parses to a CI Equals leaf on any attribute, including the
        // ones plain `=` maps to typed exact leaves.
        let p = Predicate::parse("(host~=DPSS1.LBL.GOV)").unwrap();
        assert_eq!(p, Predicate::Equals("host".into(), "DPSS1.LBL.GOV".into()));
        struct Lower;
        impl Record for Lower {
            fn attr_any(&self, attr: &str, f: &mut dyn FnMut(&str) -> bool) -> bool {
                attr == "host" && f("dpss1.lbl.gov")
            }
            fn attr_present(&self, attr: &str) -> bool {
                attr == "host"
            }
        }
        assert!(p.compile().eval(&Lower));
        // A builder-constructed CI host equality displays as `~=` and so
        // re-parses to the same structure (the plain `=` form would have
        // become the exact-match Hosts leaf).
        let built = Predicate::attr_eq("host", "DPSS1.LBL.GOV");
        let shown = built.to_string();
        assert_eq!(shown, "(host~=DPSS1.LBL.GOV)");
        assert_eq!(Predicate::parse(&shown).unwrap(), built);
        assert_eq!(
            Predicate::parse("(type~=cpu_total)").unwrap(),
            Predicate::Equals("eventtype".into(), "cpu_total".into())
        );
    }

    #[test]
    fn oversized_second_timestamps_are_a_parse_error_not_a_wrap() {
        // u64::MAX seconds cannot be expressed in micros; must error, not
        // overflow (debug panic) or wrap (silent wrong bound in release).
        let err = Predicate::parse("(time>=18446744073709551615s)").expect_err("overflow");
        assert!(err.reason.contains("expected a timestamp"), "{err}");
        // The largest expressible value still parses.
        let max_secs = u64::MAX / 1_000_000;
        let p = Predicate::parse(&format!("(time>={max_secs}s)")).unwrap();
        assert_eq!(
            p,
            Predicate::TimeRange {
                from_micros: Some(max_secs * 1_000_000),
                to_micros: None
            }
        );
    }

    #[test]
    fn escaped_values_match_literally() {
        struct Star;
        impl Record for Star {
            fn attr_any(&self, attr: &str, f: &mut dyn FnMut(&str) -> bool) -> bool {
                attr == "name" && f("a*b")
            }
            fn attr_present(&self, attr: &str) -> bool {
                attr == "name"
            }
        }
        let exact = Predicate::parse("(name=a\\*b)").unwrap();
        assert_eq!(exact, Predicate::Equals("name".into(), "a*b".into()));
        assert!(exact.compile().eval(&Star));
        let wild = Predicate::parse("(name=a*b)").unwrap();
        assert!(matches!(wild, Predicate::Substring(..)));
        assert!(wild.compile().eval(&Star));
    }

    #[test]
    fn parse_errors_carry_position_and_reason() {
        for (bad, reason) in [
            ("", "expected '('"),
            ("(", "unexpected end of input"),
            ("(a=b", "unterminated"),
            ("()", "missing comparator"),
            ("(a)", "missing comparator"),
            ("(&(a=b)", "expected ')'"),
            ("(a=b))", "trailing input"),
            ("junk", "expected '('"),
            ("(=x)", "empty attribute name"),
            ("(val>abc)", "expected a number"),
            ("(level>=loud)", "unknown level"),
            ("(limit=many)", "expected a count"),
            ("(type>=X)", "supports '='"),
            ("(groupby=rack)", "unknown group key"),
            ("(topk=0)", "expected a count"),
            ("(rate=soon)", "expected a duration"),
        ] {
            let err = Predicate::parse(bad).expect_err(bad);
            assert!(
                err.reason.contains(reason),
                "{bad:?}: got {:?}, wanted {reason:?}",
                err.reason
            );
            assert!(err.to_string().contains("parse error at byte"));
        }
    }

    #[test]
    fn parser_is_total_on_arbitrary_input() {
        crate::check::forall("query parser total", 256, |g| {
            let s = g.printable_string(60);
            let _ = Predicate::parse(&s);
        });
    }

    #[test]
    fn facts_admit_is_sound_for_matches() {
        crate::check::forall("facts sound", 128, |g| {
            let hosts = ["h1", "h2", "h3"];
            let types = ["A", "B", "C"];
            let preds = [
                "(&)",
                "(host=h1)",
                "(|(type=A)(type=B))",
                "(&(host=h2)(type=C)(level>=error))",
                "(&(time>=1000000)(time<2000000))",
                "(!(host=h1))",
                "(|(host=h1)(val>0.5))",
            ];
            let p = Predicate::parse(g.choice(&preds)).unwrap();
            let plan = p.compile();
            let r = Rec {
                host: g.choice(&hosts),
                ty: g.choice(&types),
                level: g.u64(9) as u8,
                time: g.u64(3_000_000),
                value: if g.bool(0.5) {
                    Some(g.f64_in(0.0, 1.0))
                } else {
                    None
                },
            };
            if plan.eval(&r) {
                assert!(
                    plan.facts().admits(&r),
                    "facts must admit every record the plan matches"
                );
            }
        });
    }

    // -- columnar + aggregate machinery -----------------------------------

    /// Batch + parallel row records built from the same random data, so
    /// batch and row evaluation can be compared directly.
    struct BatchData {
        dict: Vec<String>,
        ts: Vec<u64>,
        hosts: Vec<u32>,
        types: Vec<u32>,
        levels: Vec<u8>,
        values: Vec<f64>,
        present: Vec<u64>,
    }

    impl BatchData {
        fn random(g: &mut crate::check::Gen, rows: usize) -> BatchData {
            let dict: Vec<String> = ["h1", "h2", "h3", "A", "B", "C"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let mut d = BatchData {
                dict,
                ts: Vec::new(),
                hosts: Vec::new(),
                types: Vec::new(),
                levels: Vec::new(),
                values: Vec::new(),
                present: vec![0; rows.div_ceil(64)],
            };
            for i in 0..rows {
                d.ts.push(g.u64(3_000_000));
                d.hosts.push(g.u64(3) as u32);
                d.types.push(3 + g.u64(3) as u32);
                d.levels.push(g.u64(9) as u8);
                if g.bool(0.7) {
                    d.present[i / 64] |= 1 << (i % 64);
                    d.values.push(if g.bool(0.05) {
                        f64::NAN
                    } else {
                        g.f64_in(0.0, 100.0)
                    });
                } else {
                    d.values.push(0.0);
                }
            }
            d
        }

        fn batch(&self) -> ColumnBatch<'_> {
            ColumnBatch {
                ts_micros: &self.ts,
                host_ids: &self.hosts,
                type_ids: &self.types,
                levels: &self.levels,
                values: &self.values,
                val_present: &self.present,
                dict: &self.dict,
            }
        }

        fn row(&self, i: usize) -> Rec {
            Rec {
                host: match self.dict[self.hosts[i] as usize].as_str() {
                    "h1" => "h1",
                    "h2" => "h2",
                    _ => "h3",
                },
                ty: match self.dict[self.types[i] as usize].as_str() {
                    "A" => "A",
                    "B" => "B",
                    _ => "C",
                },
                level: self.levels[i],
                time: self.ts[i],
                value: (self.present[i / 64] & (1 << (i % 64)) != 0).then(|| self.values[i]),
            }
        }
    }

    #[test]
    fn eval_batch_matches_row_eval() {
        let definite = [
            "(&)",
            "(type=A)",
            "(host=h2)",
            "(|(type=A)(type=B))",
            "(&(type=A)(host=h1)(level>=warning)(val>50))",
            "(&(time>=1000000)(time<2000000))",
            "(!(host=h1))",
            "(val!=0)",
            "(!(val>50))",
            "(&(|(host=h1)(host=h2))(!(type=C)))",
        ];
        let indefinite = [
            "(name=*x*)",
            "(&(type=A)(name=y))",
            "(|(host=h1)(name=y))",
            "(!(name=y))",
        ];
        crate::check::forall("eval_batch vs eval", 64, |g| {
            let rows = g.usize_in(1, 150);
            let data = BatchData::random(g, rows);
            let batch = data.batch();
            let mut sel = Selection::new();
            let mut scratch = BatchScratch::new();
            for text in definite {
                let plan = Predicate::parse(text).unwrap().compile();
                assert!(plan.batch_definite(), "{text}");
                let exact = plan.eval_batch(&batch, &mut sel, &mut scratch);
                assert!(exact, "{text}");
                for i in 0..rows {
                    assert_eq!(sel.contains(i), plan.eval(&data.row(i)), "{text} row {i}");
                }
            }
            for text in indefinite {
                let plan = Predicate::parse(text).unwrap().compile();
                assert!(!plan.batch_definite(), "{text}");
                let exact = plan.eval_batch(&batch, &mut sel, &mut scratch);
                assert!(!exact, "{text}");
                // Superset: every row the plan matches must be selected.
                for i in 0..rows {
                    if plan.eval(&data.row(i)) {
                        assert!(sel.contains(i), "{text} dropped matching row {i}");
                    }
                }
            }
        });
    }

    #[test]
    fn facts_eval_batch_matches_admits() {
        crate::check::forall("facts batch vs admits", 64, |g| {
            let rows = g.usize_in(1, 100);
            let data = BatchData::random(g, rows);
            let batch = data.batch();
            let preds = [
                "(&)",
                "(&(host=h2)(type=C)(level>=error))",
                "(&(time>=1000000)(time<2000000))",
                "(|(type=A)(type=B))",
                "(&(type=A)(onchange))",
            ];
            let plan = Predicate::parse(g.choice(&preds)).unwrap().compile();
            let mut sel = Selection::new();
            let mut scratch = BatchScratch::new();
            plan.facts().eval_batch(&batch, &mut sel, &mut scratch);
            for i in 0..rows {
                assert_eq!(sel.contains(i), plan.facts().admits(&data.row(i)));
            }
        });
    }

    #[test]
    fn selection_ones_and_count_agree() {
        let mut sel = Selection::new();
        let mut scratch = BatchScratch::new();
        let data = BatchData {
            dict: vec!["h1".into(), "A".into()],
            ts: vec![0; 70],
            hosts: vec![0; 70],
            types: vec![1; 70],
            levels: (0..70).map(|i| (i % 9) as u8).collect(),
            values: vec![0.0; 70],
            present: vec![0, 0],
        };
        let plan = Predicate::parse("(level>=warning)").unwrap().compile();
        plan.eval_batch(&data.batch(), &mut sel, &mut scratch);
        let ones: Vec<usize> = sel.ones().collect();
        assert_eq!(ones.len(), sel.count());
        assert!(ones.iter().all(|i| data.levels[*i] >= 4));
        assert_eq!(ones.len(), data.levels.iter().filter(|l| **l >= 4).count());
    }

    #[test]
    fn aggregate_spec_survives_conjunctions_only() {
        let plan = Predicate::parse("(&(type=A)(groupby=host)(topk=3)(rate=60s))")
            .unwrap()
            .compile();
        let spec = plan.aggregate().expect("spec");
        assert_eq!(spec.group_by, vec![GroupKey::Host]);
        assert_eq!(spec.top_k, Some(3));
        assert_eq!(spec.rate_window_micros, Some(60_000_000));
        // Group keys default to host+type when only topk/rate appear.
        let plan = Predicate::parse("(topk=2)").unwrap().compile();
        let spec = plan.aggregate().expect("spec");
        assert_eq!(spec.group_by, vec![GroupKey::Host, GroupKey::Type]);
        // Directives inside disjunctions or negations don't apply.
        for text in ["(|(groupby=host)(type=A))", "(!(topk=2))"] {
            let plan = Predicate::parse(text).unwrap().compile();
            assert!(plan.aggregate().is_none(), "{text}");
        }
        assert!(Predicate::parse("(type=A)")
            .unwrap()
            .compile()
            .aggregate()
            .is_none());
    }

    #[test]
    fn aggregator_groups_ranks_and_rates() {
        let spec = AggregateSpec {
            group_by: vec![GroupKey::Host],
            top_k: Some(2),
            rate_window_micros: Some(1_000_000),
        };
        let mut agg = Aggregator::new(spec);
        // h1: 3 events inside the last second; h2: 1 inside, 1 stale;
        // h3: 1 stale event only.
        for (host, ts, v) in [
            ("h1", 1_200_000u64, 10.0),
            ("h1", 1_500_000, 20.0),
            ("h1", 1_900_000, 30.0),
            ("h2", 100_000, 5.0),
            ("h2", 1_800_000, 7.0),
            ("h3", 200_000, 1.0),
        ] {
            let mut r = rec(
                match host {
                    "h1" => "h1",
                    "h2" => "h2",
                    _ => "h3",
                },
                "X",
                Some(v),
            );
            r.time = ts;
            agg.push(&r);
        }
        assert_eq!(agg.len(), 3);
        let rows = agg.rows(2_000_000);
        // top_k=2 keeps the two highest-rate groups: h1 (3/s) then h2 (1/s).
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].host.unwrap().as_str(), "h1");
        assert_eq!(rows[0].count, 3);
        assert_eq!(rows[0].sum, 60.0);
        assert_eq!(rows[0].min, 10.0);
        assert_eq!(rows[0].max, 30.0);
        assert_eq!(rows[0].mean, Some(20.0));
        assert_eq!(rows[0].rate, Some(3.0));
        assert_eq!(rows[1].host.unwrap().as_str(), "h2");
        assert_eq!(rows[1].rate, Some(1.0));
    }

    #[test]
    fn aggregator_without_rate_ranks_by_mean_then_count() {
        let mut agg = Aggregator::new(AggregateSpec {
            group_by: vec![GroupKey::Type],
            top_k: None,
            rate_window_micros: None,
        });
        for (ty, v) in [("A", Some(1.0)), ("A", Some(3.0)), ("B", Some(10.0))] {
            agg.push(&rec("h", if ty == "A" { "A" } else { "B" }, v));
        }
        let rows = agg.rows(0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].event_type.unwrap().as_str(), "B");
        assert_eq!(rows[0].mean, Some(10.0));
        assert_eq!(rows[1].event_type.unwrap().as_str(), "A");
        assert_eq!(rows[1].mean, Some(2.0));
        // No readings at all: score falls back to count.
        let mut agg = Aggregator::new(AggregateSpec {
            group_by: vec![GroupKey::Type],
            top_k: Some(1),
            rate_window_micros: None,
        });
        for ty in ["A", "B", "B"] {
            agg.push(&rec("h", if ty == "A" { "A" } else { "B" }, None));
        }
        let rows = agg.rows(0);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].event_type.unwrap().as_str(), "B");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].mean, None);
    }
}
