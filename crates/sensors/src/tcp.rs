//! TCP sensors: retransmissions and socket activity.
//!
//! "The TCP sensor we are using is a version of tcpdump modified to generate
//! NetLogger events when it detects a TCP retransmission or a change in
//! window size" (§6).  The sensor therefore emits *change* events: one
//! `TCPD_RETRANSMITS` event per sample in which the host's retransmission
//! counter advanced (carrying the delta), and a `TCPD_WINDOW_SIZE`-style
//! socket-activity event when the number of active sockets changes.

use jamm_ulm::{keys, Event, Level};

use crate::{SampleContext, Sensor, SensorKind, SensorSpec};

/// Watches a host's TCP behaviour.
#[derive(Debug)]
pub struct TcpSensor {
    spec: SensorSpec,
    host: String,
    last_retransmits: Option<u64>,
    last_sockets: Option<u32>,
}

impl TcpSensor {
    /// Create a TCP sensor for `host`.
    pub fn new(host: impl Into<String>, frequency_secs: f64) -> Self {
        let host = host.into();
        TcpSensor {
            spec: SensorSpec::new(
                "tcp",
                SensorKind::Host,
                host.clone(),
                vec![
                    keys::tcp::RETRANSMITS.to_string(),
                    keys::tcp::WINDOW_SIZE.to_string(),
                    keys::tcp::RETRANS_COUNTER.to_string(),
                ],
                frequency_secs,
            ),
            host,
            last_retransmits: None,
            last_sockets: None,
        }
    }
}

impl Sensor for TcpSensor {
    fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    fn sample(&mut self, ctx: &SampleContext<'_>) -> Vec<Event> {
        let Some(stats) = ctx.source.host_stats(&self.host) else {
            return Vec::new();
        };
        let mut events = Vec::new();

        // Retransmissions: emit only when the counter advanced, with the
        // delta and the absolute counter value.
        let prev = self.last_retransmits.unwrap_or(stats.tcp_retransmits);
        if stats.tcp_retransmits > prev {
            events.push(
                Event::builder("tcpdump", self.host.clone())
                    .level(Level::Warning)
                    .event_type(keys::tcp::RETRANSMITS)
                    .timestamp(ctx.timestamp)
                    .field(keys::SENSOR, "tcp")
                    .value(stats.tcp_retransmits - prev)
                    .field("COUNTER", stats.tcp_retransmits)
                    .build(),
            );
        }
        self.last_retransmits = Some(stats.tcp_retransmits);

        // Socket activity changes (stand-in for window-size change events).
        if self.last_sockets != Some(stats.active_sockets) && self.last_sockets.is_some() {
            events.push(
                Event::builder("netstat", self.host.clone())
                    .level(Level::Usage)
                    .event_type(keys::tcp::WINDOW_SIZE)
                    .timestamp(ctx.timestamp)
                    .field(keys::SENSOR, "tcp")
                    .field("ACTIVE_SOCKETS", stats.active_sockets)
                    .value(stats.active_sockets)
                    .build(),
            );
        }
        self.last_sockets = Some(stats.active_sockets);
        events
    }
}

/// A plain netstat-style counter sensor that reports the absolute
/// retransmission counter every sample, regardless of change.  This is the
/// "the netstat sensor may output the value of the TCP retransmission counter
/// every second" behaviour whose redundancy the gateway's on-change filter
/// exists to remove (experiment E10).
#[derive(Debug)]
pub struct NetstatCounterSensor {
    spec: SensorSpec,
    host: String,
}

impl NetstatCounterSensor {
    /// Create a counter sensor for `host`.
    pub fn new(host: impl Into<String>, frequency_secs: f64) -> Self {
        let host = host.into();
        NetstatCounterSensor {
            spec: SensorSpec::new(
                "netstat",
                SensorKind::Host,
                host.clone(),
                vec![keys::tcp::RETRANS_COUNTER.to_string()],
                frequency_secs,
            ),
            host,
        }
    }
}

impl Sensor for NetstatCounterSensor {
    fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    fn sample(&mut self, ctx: &SampleContext<'_>) -> Vec<Event> {
        let Some(stats) = ctx.source.host_stats(&self.host) else {
            return Vec::new();
        };
        vec![Event::builder("netstat", self.host.clone())
            .level(Level::Usage)
            .event_type(keys::tcp::RETRANS_COUNTER)
            .timestamp(ctx.timestamp)
            .field(keys::SENSOR, "netstat")
            .value(stats.tcp_retransmits)
            .build()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostView, IfView, StatsSource};
    use jamm_ulm::Timestamp;
    use std::cell::Cell;

    struct Mutable {
        retrans: Cell<u64>,
        sockets: Cell<u32>,
    }
    impl StatsSource for Mutable {
        fn host_stats(&self, _host: &str) -> Option<HostView> {
            Some(HostView {
                tcp_retransmits: self.retrans.get(),
                active_sockets: self.sockets.get(),
                ..Default::default()
            })
        }
        fn device_interfaces(&self, _device: &str) -> Vec<IfView> {
            Vec::new()
        }
        fn process_alive(&self, _host: &str, _process: &str) -> Option<bool> {
            None
        }
    }

    fn ctx(source: &Mutable) -> SampleContext<'_> {
        SampleContext {
            timestamp: Timestamp::from_secs(1_000),
            source,
        }
    }

    #[test]
    fn retransmit_events_only_on_change_with_delta() {
        let src = Mutable {
            retrans: Cell::new(10),
            sockets: Cell::new(1),
        };
        let mut s = TcpSensor::new("h", 1.0);
        // First sample establishes the baseline: no event even though the
        // counter is nonzero.
        assert!(s.sample(&ctx(&src)).is_empty());
        // No change: no event.
        assert!(s.sample(&ctx(&src)).is_empty());
        // Counter advances by 3: one Warning event with VAL=3.
        src.retrans.set(13);
        let events = s.sample(&ctx(&src));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event_type, keys::tcp::RETRANSMITS);
        assert_eq!(events[0].level, Level::Warning);
        assert_eq!(events[0].value(), Some(3.0));
        assert_eq!(events[0].field_f64("COUNTER"), Some(13.0));
        // Back to quiet.
        assert!(s.sample(&ctx(&src)).is_empty());
    }

    #[test]
    fn socket_change_events() {
        let src = Mutable {
            retrans: Cell::new(0),
            sockets: Cell::new(1),
        };
        let mut s = TcpSensor::new("h", 1.0);
        s.sample(&ctx(&src));
        src.sockets.set(4);
        let events = s.sample(&ctx(&src));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event_type, keys::tcp::WINDOW_SIZE);
        assert_eq!(events[0].field_f64("ACTIVE_SOCKETS"), Some(4.0));
    }

    #[test]
    fn netstat_counter_sensor_is_unconditional() {
        let src = Mutable {
            retrans: Cell::new(42),
            sockets: Cell::new(0),
        };
        let mut s = NetstatCounterSensor::new("h", 1.0);
        for _ in 0..5 {
            let events = s.sample(&ctx(&src));
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].value(), Some(42.0));
        }
    }
}
