//! Adapter exposing the simulated testbed to sensors.

use jamm_netsim::Network;

use crate::{HostView, IfView, StatsSource};

/// Wraps a [`jamm_netsim::Network`] as a [`StatsSource`].
///
/// The wrapper borrows the network immutably, so the usual pattern is:
/// step the simulation, then construct a `NetworkSource` and let every sensor
/// take its sample, then drop it and step again.
pub struct NetworkSource<'a> {
    net: &'a Network,
}

impl<'a> NetworkSource<'a> {
    /// Wrap a network.
    pub fn new(net: &'a Network) -> Self {
        NetworkSource { net }
    }
}

impl StatsSource for NetworkSource<'_> {
    fn host_stats(&self, host: &str) -> Option<HostView> {
        let id = self.net.host_by_name(host)?;
        let h = self.net.host(id);
        let s = h.stats();
        Some(HostView {
            cpu_user_pct: s.cpu_user_pct,
            cpu_sys_pct: s.cpu_sys_pct,
            mem_free_kb: s.mem_free_kb,
            tcp_retransmits: s.tcp_retransmits,
            rx_bytes: s.rx_bytes,
            tx_bytes: s.tx_bytes,
            active_sockets: s.active_sockets,
        })
    }

    fn device_interfaces(&self, device: &str) -> Vec<IfView> {
        let Some(router) = self.net.routers().iter().find(|r| r.name == device) else {
            return Vec::new();
        };
        router
            .interfaces
            .iter()
            .map(|lid| {
                let link = self.net.link(*lid);
                let c = link.counters();
                IfView {
                    name: link.spec.name.clone(),
                    in_octets: c.in_octets,
                    in_packets: c.in_packets,
                    drops: c.drops,
                    errors: c.errors,
                }
            })
            .collect()
    }

    fn process_alive(&self, host: &str, process: &str) -> Option<bool> {
        let id = self.net.host_by_name(host)?;
        self.net
            .host(id)
            .processes()
            .find(|(name, _)| *name == process)
            .map(|(_, alive)| alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::CpuSensor;
    use crate::process::ProcessSensor;
    use crate::tcp::TcpSensor;
    use crate::{SampleContext, Sensor};
    use jamm_netsim::scenario::{matisse_iperf, matisse_topology};
    use jamm_netsim::{HostSpec, LinkSpec, SimClock};

    #[test]
    fn host_stats_visible_through_the_adapter() {
        let mut net = Network::new(SimClock::matisse(), 1);
        let a = net.add_host(HostSpec::new("a.lbl.gov"));
        let b = net.add_host(HostSpec::new("b.lbl.gov"));
        let l = net.add_link(LinkSpec::gige("lan"));
        let f = net.open_flow("x", a, b, 2_000, vec![l], 1 << 20);
        net.flow_mut(f).set_unlimited();
        net.run_ticks(500);
        let src = NetworkSource::new(&net);
        let stats = src.host_stats("b.lbl.gov").unwrap();
        assert!(stats.rx_bytes > 0);
        assert!(src.host_stats("unknown.host").is_none());
    }

    #[test]
    fn sensors_sample_the_matisse_topology() {
        let topo = matisse_topology(true, 4, 9);
        let mut net = topo.net;
        // Drive some traffic so the sensors have something to report.
        let f = net.open_flow(
            "bulk",
            topo.storage_hosts[0],
            topo.client,
            7_000,
            topo.storage_paths[0].clone(),
            1 << 20,
        );
        net.flow_mut(f).set_unlimited();

        let mut cpu = CpuSensor::new("mems.cairn.net", 1.0);
        let mut tcp = TcpSensor::new("mems.cairn.net", 1.0);
        let mut proc = ProcessSensor::new("dpss1.lbl.gov", "dpss_master", 5.0);
        let mut events = Vec::new();
        for _ in 0..3_000 {
            net.step();
            let src = NetworkSource::new(&net);
            let ctx = SampleContext {
                timestamp: net.clock().timestamp(),
                source: &src,
            };
            events.extend(cpu.sample(&ctx));
            events.extend(tcp.sample(&ctx));
            events.extend(proc.sample(&ctx));
        }
        assert!(events
            .iter()
            .any(|e| e.event_type == "VMSTAT_SYS_TIME" && e.value().unwrap_or(0.0) > 0.0));
        assert!(events.iter().any(|e| e.event_type == "PROC_STARTED"));
        // Sanity: iperf on the same topology still behaves (module linkage).
        let r = matisse_iperf(false, 1, 1.0, 2);
        assert!(r.aggregate_mbps > 0.0);
    }

    #[test]
    fn router_interfaces_visible() {
        let topo = matisse_topology(true, 2, 3);
        let src = NetworkSource::new(&topo.net);
        let ifaces = src.device_interfaces("lbl-border-router");
        assert_eq!(ifaces.len(), 2);
        assert!(ifaces.iter().any(|i| i.name.contains("oc12")));
        assert!(src.device_interfaces("no-such-router").is_empty());
    }

    #[test]
    fn process_liveness_via_adapter() {
        let topo = matisse_topology(true, 1, 3);
        let mut net = topo.net;
        let src = NetworkSource::new(&net);
        assert_eq!(
            src.process_alive("dpss1.lbl.gov", "dpss_master"),
            Some(true)
        );
        assert_eq!(src.process_alive("dpss1.lbl.gov", "no_such_proc"), None);
        let _ = src;
        let id = net.host_by_name("dpss1.lbl.gov").unwrap();
        net.host_mut(id).kill_process("dpss_master");
        let src = NetworkSource::new(&net);
        assert_eq!(
            src.process_alive("dpss1.lbl.gov", "dpss_master"),
            Some(false)
        );
    }
}
