//! Application sensors.
//!
//! "Autonomous sensors can also be embedded inside of applications. ...
//! These types of sensors would not be directly under JAMM control, but
//! could still feed their results to the JAMM system." (§2.2)
//!
//! [`ApplicationSensor`] is the JAMM-side adapter: the application pushes
//! events into a handle (from any thread), and the sensor drains them into
//! the normal sampling pipeline so they flow through the same gateway,
//! filters and consumers as host sensors.

use jamm_core::channel::{unbounded, Receiver, Sender};
use jamm_ulm::Event;

use crate::{SampleContext, Sensor, SensorKind, SensorSpec};

/// The handle an instrumented application uses to feed events to JAMM.
#[derive(Debug, Clone)]
pub struct ApplicationFeed {
    tx: Sender<Event>,
}

impl ApplicationFeed {
    /// Push one event.  Returns false if the sensor side has been dropped.
    pub fn publish(&self, event: Event) -> bool {
        self.tx.send(event).is_ok()
    }

    /// Push many events.
    pub fn publish_all(&self, events: impl IntoIterator<Item = Event>) -> usize {
        let mut n = 0;
        for e in events {
            if !self.publish(e) {
                break;
            }
            n += 1;
        }
        n
    }
}

/// Collects events produced inside an application.
#[derive(Debug)]
pub struct ApplicationSensor {
    spec: SensorSpec,
    rx: Receiver<Event>,
}

impl ApplicationSensor {
    /// Create the sensor and its application-side feed handle.
    pub fn new(
        name: impl Into<String>,
        host: impl Into<String>,
        event_types: Vec<String>,
    ) -> (Self, ApplicationFeed) {
        let (tx, rx) = unbounded();
        let sensor = ApplicationSensor {
            spec: SensorSpec::new(name, SensorKind::Application, host, event_types, 0.0),
            rx,
        };
        (sensor, ApplicationFeed { tx })
    }

    /// Number of events waiting to be drained.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

impl Sensor for ApplicationSensor {
    fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    fn sample(&mut self, _ctx: &SampleContext<'_>) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.rx.len());
        while let Ok(e) = self.rx.try_recv() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostView, IfView, StatsSource};
    use jamm_ulm::{Level, Timestamp};

    struct Nothing;
    impl StatsSource for Nothing {
        fn host_stats(&self, _h: &str) -> Option<HostView> {
            None
        }
        fn device_interfaces(&self, _d: &str) -> Vec<IfView> {
            Vec::new()
        }
        fn process_alive(&self, _h: &str, _p: &str) -> Option<bool> {
            None
        }
    }

    fn app_event(i: u64) -> Event {
        Event::builder("mplay", "mems.cairn.net")
            .level(Level::Usage)
            .event_type("MPLAY_START_READ_FRAME")
            .timestamp(Timestamp::from_secs(i))
            .field("FRAME.ID", i)
            .build()
    }

    #[test]
    fn events_flow_from_feed_to_sample() {
        let (mut sensor, feed) = ApplicationSensor::new(
            "mplay",
            "mems.cairn.net",
            vec!["MPLAY_START_READ_FRAME".into()],
        );
        assert_eq!(feed.publish_all((0..5).map(app_event)), 5);
        assert_eq!(sensor.pending(), 5);
        let ctx = SampleContext {
            timestamp: Timestamp::from_secs(10),
            source: &Nothing,
        };
        let drained = sensor.sample(&ctx);
        assert_eq!(drained.len(), 5);
        assert_eq!(drained[3].field_f64("FRAME.ID"), Some(3.0));
        assert!(sensor.sample(&ctx).is_empty());
        assert_eq!(sensor.spec().kind, SensorKind::Application);
    }

    #[test]
    fn feed_works_across_threads() {
        let (mut sensor, feed) = ApplicationSensor::new("app", "h", vec![]);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let feed = feed.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        feed.publish(app_event(t * 1_000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let ctx = SampleContext {
            timestamp: Timestamp::from_secs(0),
            source: &Nothing,
        };
        assert_eq!(sensor.sample(&ctx).len(), 400);
    }

    #[test]
    fn publish_fails_after_sensor_dropped() {
        let (sensor, feed) = ApplicationSensor::new("app", "h", vec![]);
        drop(sensor);
        assert!(!feed.publish(app_event(1)));
        assert_eq!(feed.publish_all((0..3).map(app_event)), 0);
    }
}
