//! Process sensors.
//!
//! "Process sensors generate events when there is a change in process status
//! (for example, when it starts, dies normally, or dies abnormally).  They
//! might also generate an event if some dynamic threshold is reached." (§2.2)

use jamm_ulm::{keys, Event, Level};

use crate::{SampleContext, Sensor, SensorKind, SensorSpec};

/// Watches a named process on a host and reports status transitions.
#[derive(Debug)]
pub struct ProcessSensor {
    spec: SensorSpec,
    host: String,
    process: String,
    last_alive: Option<bool>,
}

impl ProcessSensor {
    /// Create a sensor watching `process` on `host`.
    pub fn new(host: impl Into<String>, process: impl Into<String>, frequency_secs: f64) -> Self {
        let host = host.into();
        let process = process.into();
        ProcessSensor {
            spec: SensorSpec::new(
                format!("process-{process}"),
                SensorKind::Process,
                host.clone(),
                vec![
                    keys::process::STARTED.to_string(),
                    keys::process::DIED.to_string(),
                ],
                frequency_secs,
            ),
            host,
            process,
            last_alive: None,
        }
    }

    /// The watched process name.
    pub fn process(&self) -> &str {
        &self.process
    }
}

impl Sensor for ProcessSensor {
    fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    fn sample(&mut self, ctx: &SampleContext<'_>) -> Vec<Event> {
        let Some(alive) = ctx.source.process_alive(&self.host, &self.process) else {
            return Vec::new();
        };
        let mut events = Vec::new();
        match (self.last_alive, alive) {
            // First observation of a running process: report it started so
            // consumers know it is being watched.
            (None, true) => events.push(self.event(ctx, keys::process::STARTED, Level::Info)),
            // First observation of a dead process, or a death transition.
            (None, false) | (Some(true), false) => {
                events.push(self.event(ctx, keys::process::DIED, Level::Error));
            }
            // Restart transition.
            (Some(false), true) => {
                events.push(self.event(ctx, keys::process::STARTED, Level::Notice));
            }
            // No change.
            (Some(true), true) | (Some(false), false) => {}
        }
        self.last_alive = Some(alive);
        events
    }
}

impl ProcessSensor {
    fn event(&self, ctx: &SampleContext<'_>, event_type: &str, level: Level) -> Event {
        Event::builder("procmon", self.host.clone())
            .level(level)
            .event_type(event_type)
            .timestamp(ctx.timestamp)
            .field(keys::SENSOR, self.spec.name.clone())
            .field(keys::TARGET, self.process.clone())
            .build()
    }
}

/// A threshold watcher layered on any numeric reading: emits a
/// `PROC_THRESHOLD` event when the watched value crosses the limit in the
/// upward direction ("if the average number of users over a certain time
/// period exceeds a given threshold").
#[derive(Debug)]
pub struct ThresholdSensor<F> {
    spec: SensorSpec,
    host: String,
    threshold: f64,
    read: F,
    was_above: bool,
}

impl<F: FnMut(&SampleContext<'_>) -> Option<f64> + Send> ThresholdSensor<F> {
    /// Create a threshold sensor: `read` extracts the watched value each
    /// sample; an event fires on each upward crossing of `threshold`.
    pub fn new(
        name: impl Into<String>,
        host: impl Into<String>,
        threshold: f64,
        frequency_secs: f64,
        read: F,
    ) -> Self {
        let host = host.into();
        ThresholdSensor {
            spec: SensorSpec::new(
                name,
                SensorKind::Process,
                host.clone(),
                vec![keys::process::THRESHOLD.to_string()],
                frequency_secs,
            ),
            host,
            threshold,
            read,
            was_above: false,
        }
    }
}

impl<F: FnMut(&SampleContext<'_>) -> Option<f64> + Send> Sensor for ThresholdSensor<F> {
    fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    fn sample(&mut self, ctx: &SampleContext<'_>) -> Vec<Event> {
        let Some(value) = (self.read)(ctx) else {
            return Vec::new();
        };
        let above = value > self.threshold;
        let mut events = Vec::new();
        if above && !self.was_above {
            events.push(
                Event::builder("threshold", self.host.clone())
                    .level(Level::Warning)
                    .event_type(keys::process::THRESHOLD)
                    .timestamp(ctx.timestamp)
                    .field(keys::SENSOR, self.spec.name.clone())
                    .field("THRESHOLD", self.threshold)
                    .value(value)
                    .build(),
            );
        }
        self.was_above = above;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostView, IfView, StatsSource};
    use jamm_ulm::Timestamp;
    use std::cell::Cell;

    struct Procs {
        alive: Cell<Option<bool>>,
        load: Cell<f64>,
    }
    impl StatsSource for Procs {
        fn host_stats(&self, _host: &str) -> Option<HostView> {
            Some(HostView {
                cpu_sys_pct: self.load.get(),
                ..Default::default()
            })
        }
        fn device_interfaces(&self, _device: &str) -> Vec<IfView> {
            Vec::new()
        }
        fn process_alive(&self, _host: &str, process: &str) -> Option<bool> {
            if process == "dpss_master" {
                self.alive.get()
            } else {
                None
            }
        }
    }

    fn ctx(source: &Procs) -> SampleContext<'_> {
        SampleContext {
            timestamp: Timestamp::from_secs(5),
            source,
        }
    }

    #[test]
    fn death_and_restart_transitions() {
        let src = Procs {
            alive: Cell::new(Some(true)),
            load: Cell::new(0.0),
        };
        let mut s = ProcessSensor::new("dpss1.lbl.gov", "dpss_master", 5.0);
        // First sight: started (Info).
        let e = s.sample(&ctx(&src));
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].event_type, keys::process::STARTED);
        assert_eq!(e[0].level, Level::Info);
        // Steady state: silent.
        assert!(s.sample(&ctx(&src)).is_empty());
        // It dies: Error event.
        src.alive.set(Some(false));
        let e = s.sample(&ctx(&src));
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].event_type, keys::process::DIED);
        assert_eq!(e[0].level, Level::Error);
        assert_eq!(
            e[0].field(keys::TARGET).unwrap().as_str(),
            Some("dpss_master")
        );
        // Still dead: silent.
        assert!(s.sample(&ctx(&src)).is_empty());
        // Restart: Notice event.
        src.alive.set(Some(true));
        let e = s.sample(&ctx(&src));
        assert_eq!(e[0].event_type, keys::process::STARTED);
        assert_eq!(e[0].level, Level::Notice);
    }

    #[test]
    fn unknown_process_is_silent() {
        let src = Procs {
            alive: Cell::new(None),
            load: Cell::new(0.0),
        };
        let mut s = ProcessSensor::new("h", "dpss_master", 5.0);
        assert!(s.sample(&ctx(&src)).is_empty());
    }

    #[test]
    fn threshold_fires_on_upward_crossings_only() {
        let src = Procs {
            alive: Cell::new(Some(true)),
            load: Cell::new(10.0),
        };
        let mut s = ThresholdSensor::new("sys-cpu-watch", "h", 50.0, 1.0, |ctx| {
            ctx.source.host_stats("h").map(|s| s.cpu_sys_pct)
        });
        assert!(s.sample(&ctx(&src)).is_empty());
        src.load.set(75.0);
        let e = s.sample(&ctx(&src));
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].event_type, keys::process::THRESHOLD);
        assert_eq!(e[0].value(), Some(75.0));
        // Still above: no repeat.
        assert!(s.sample(&ctx(&src)).is_empty());
        // Drops below, then crosses again: another event.
        src.load.set(20.0);
        assert!(s.sample(&ctx(&src)).is_empty());
        src.load.set(90.0);
        assert_eq!(s.sample(&ctx(&src)).len(), 1);
    }
}
