//! # jamm-sensors — monitoring sensors
//!
//! "A sensor is any program that generates a time-stamped performance
//! monitoring event" (§2.2).  The paper's sensors wrap `vmstat`, `netstat`,
//! `iostat`, an instrumented `tcpdump` and SNMP queries; they fall into four
//! families, all implemented here:
//!
//! * **host sensors** ([`host::CpuSensor`], [`host::MemorySensor`]) — CPU
//!   load and free memory;
//! * **TCP sensors** ([`tcp::TcpSensor`]) — retransmissions and window size,
//!   reported as change events like the NetLogger-ised tcpdump;
//! * **network sensors** ([`network::SnmpSensor`]) — SNMP interface counters
//!   from routers and switches;
//! * **process sensors** ([`process::ProcessSensor`]) — events on process
//!   start / normal exit / abnormal death;
//! * **application sensors** ([`application::ApplicationSensor`]) — events
//!   produced inside applications and fed to JAMM without being under its
//!   control.
//!
//! Sensors read their host through the [`StatsSource`] abstraction so the
//! same sensor code runs against the simulated testbed
//! ([`sim::NetworkSource`] wraps a [`jamm_netsim::Network`]) or the live
//! Linux host ([`live::ProcSource`] parses `/proc`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod application;
pub mod host;
pub mod live;
pub mod network;
pub mod process;
pub mod sim;
pub mod tcp;

use jamm_ulm::{Event, Timestamp};
/// The family a sensor belongs to (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorKind {
    /// Host monitoring: CPU, memory, interrupts.
    Host,
    /// Network device monitoring via SNMP.
    Network,
    /// Process status monitoring.
    Process,
    /// Application-embedded sensors.
    Application,
}

impl SensorKind {
    /// Canonical lower-case name used in directory entries.
    pub fn as_str(self) -> &'static str {
        match self {
            SensorKind::Host => "host",
            SensorKind::Network => "network",
            SensorKind::Process => "process",
            SensorKind::Application => "application",
        }
    }
}

/// Static description of a sensor, published in the sensor directory.
#[derive(Debug, Clone)]
pub struct SensorSpec {
    /// Short sensor name, unique per host (e.g. `cpu`, `memory`, `tcp`).
    pub name: String,
    /// Sensor family.
    pub kind: SensorKind,
    /// Host (or network device) being monitored.
    pub target: String,
    /// Event types this sensor produces (`NL.EVNT` values).
    pub event_types: Vec<String>,
    /// Default sampling period in seconds.
    pub frequency_secs: f64,
}

/// `frequency_secs` is compared bit-for-bit so the comparison is a true
/// equivalence relation (NaN == NaN), which `f64`'s `PartialEq` is not.
impl PartialEq for SensorSpec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.kind == other.kind
            && self.target == other.target
            && self.event_types == other.event_types
            && self.frequency_secs.to_bits() == other.frequency_secs.to_bits()
    }
}

impl Eq for SensorSpec {}

impl SensorSpec {
    /// Create a spec.
    pub fn new(
        name: impl Into<String>,
        kind: SensorKind,
        target: impl Into<String>,
        event_types: Vec<String>,
        frequency_secs: f64,
    ) -> Self {
        SensorSpec {
            name: name.into(),
            kind,
            target: target.into(),
            event_types,
            frequency_secs,
        }
    }
}

/// A snapshot of host statistics a sensor can sample.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostView {
    /// User-mode CPU utilisation, percent.
    pub cpu_user_pct: f64,
    /// System-mode CPU utilisation, percent.
    pub cpu_sys_pct: f64,
    /// Free memory, kilobytes.
    pub mem_free_kb: u64,
    /// Cumulative TCP retransmissions.
    pub tcp_retransmits: u64,
    /// Cumulative received bytes.
    pub rx_bytes: u64,
    /// Cumulative transmitted bytes.
    pub tx_bytes: u64,
    /// Number of TCP sockets that moved data recently.
    pub active_sockets: u32,
}

/// A snapshot of one network interface's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IfView {
    /// Interface / link name.
    pub name: String,
    /// Octets in.
    pub in_octets: u64,
    /// Packets in.
    pub in_packets: u64,
    /// Queue drops.
    pub drops: u64,
    /// CRC / line errors.
    pub errors: u64,
}

/// Where sensors read their data from: the simulator or the live host.
pub trait StatsSource {
    /// Statistics for a host, if known.
    fn host_stats(&self, host: &str) -> Option<HostView>;
    /// Interface counters reported by a network device, if known.
    fn device_interfaces(&self, device: &str) -> Vec<IfView>;
    /// Liveness of a named process on a host (`None` if unknown).
    fn process_alive(&self, host: &str, process: &str) -> Option<bool>;
}

/// Everything a sensor needs to take one sample.
pub struct SampleContext<'a> {
    /// Timestamp to stamp emitted events with.
    pub timestamp: Timestamp,
    /// The data source.
    pub source: &'a dyn StatsSource,
}

/// A monitoring sensor: produces zero or more events per sample.
pub trait Sensor: Send {
    /// The sensor's published description.
    fn spec(&self) -> &SensorSpec;
    /// Take one sample.
    fn sample(&mut self, ctx: &SampleContext<'_>) -> Vec<Event>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_kind_names() {
        assert_eq!(SensorKind::Host.as_str(), "host");
        assert_eq!(SensorKind::Network.as_str(), "network");
        assert_eq!(SensorKind::Process.as_str(), "process");
        assert_eq!(SensorKind::Application.as_str(), "application");
    }

    #[test]
    fn spec_equality_compares_frequency_by_bits() {
        let a = SensorSpec::new("cpu", SensorKind::Host, "h", vec![], 1.0);
        let mut b = a.clone();
        assert_eq!(a, b);
        b.frequency_secs = 2.0;
        assert_ne!(a, b);
        // NaN frequencies still compare equal to themselves (true equivalence).
        let mut n1 = a.clone();
        let mut n2 = a.clone();
        n1.frequency_secs = f64::NAN;
        n2.frequency_secs = f64::NAN;
        assert_eq!(n1, n2);
        assert_ne!(n1, a);
    }

    #[test]
    fn spec_construction() {
        let s = SensorSpec::new(
            "cpu",
            SensorKind::Host,
            "dpss1.lbl.gov",
            vec!["CPU_TOTAL".into()],
            1.0,
        );
        assert_eq!(s.name, "cpu");
        assert_eq!(s.frequency_secs, 1.0);
        assert_eq!(s.event_types.len(), 1);
    }
}
