//! Host sensors: CPU load and free memory (the `vmstat` family).

use jamm_ulm::{keys, Event, Level};

use crate::{SampleContext, Sensor, SensorKind, SensorSpec};

/// Samples user / system CPU utilisation on one host.
///
/// Emits three events per sample: `VMSTAT_USER_TIME`, `VMSTAT_SYS_TIME` and
/// `CPU_TOTAL`, each carrying the reading in the `VAL` field — the loadline
/// inputs of Figure 7.
#[derive(Debug)]
pub struct CpuSensor {
    spec: SensorSpec,
    host: String,
}

impl CpuSensor {
    /// Create a CPU sensor for `host`, sampling every `frequency_secs`.
    pub fn new(host: impl Into<String>, frequency_secs: f64) -> Self {
        let host = host.into();
        CpuSensor {
            spec: SensorSpec::new(
                "cpu",
                SensorKind::Host,
                host.clone(),
                vec![
                    keys::cpu::USER.to_string(),
                    keys::cpu::SYS.to_string(),
                    keys::cpu::TOTAL.to_string(),
                ],
                frequency_secs,
            ),
            host,
        }
    }
}

impl Sensor for CpuSensor {
    fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    fn sample(&mut self, ctx: &SampleContext<'_>) -> Vec<Event> {
        let Some(stats) = ctx.source.host_stats(&self.host) else {
            return Vec::new();
        };
        let mk = |event_type: &str, value: f64| {
            Event::builder("vmstat", self.host.clone())
                .level(Level::Usage)
                .event_type(event_type)
                .timestamp(ctx.timestamp)
                .field(keys::SENSOR, "cpu")
                .field(keys::UNITS, "percent")
                .value(value)
                .build()
        };
        vec![
            mk(keys::cpu::USER, stats.cpu_user_pct),
            mk(keys::cpu::SYS, stats.cpu_sys_pct),
            mk(keys::cpu::TOTAL, stats.cpu_user_pct + stats.cpu_sys_pct),
        ]
    }
}

/// Samples free memory on one host (`VMSTAT_FREE_MEMORY`).
#[derive(Debug)]
pub struct MemorySensor {
    spec: SensorSpec,
    host: String,
}

impl MemorySensor {
    /// Create a memory sensor for `host`.
    pub fn new(host: impl Into<String>, frequency_secs: f64) -> Self {
        let host = host.into();
        MemorySensor {
            spec: SensorSpec::new(
                "memory",
                SensorKind::Host,
                host.clone(),
                vec![keys::mem::FREE.to_string()],
                frequency_secs,
            ),
            host,
        }
    }
}

impl Sensor for MemorySensor {
    fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    fn sample(&mut self, ctx: &SampleContext<'_>) -> Vec<Event> {
        let Some(stats) = ctx.source.host_stats(&self.host) else {
            return Vec::new();
        };
        vec![Event::builder("vmstat", self.host.clone())
            .level(Level::Usage)
            .event_type(keys::mem::FREE)
            .timestamp(ctx.timestamp)
            .field(keys::SENSOR, "memory")
            .field(keys::UNITS, "kilobytes")
            .value(stats.mem_free_kb)
            .build()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostView, IfView, StatsSource};
    use jamm_ulm::Timestamp;

    struct Fixed(HostView);
    impl StatsSource for Fixed {
        fn host_stats(&self, host: &str) -> Option<HostView> {
            (host == "known.lbl.gov").then_some(self.0)
        }
        fn device_interfaces(&self, _device: &str) -> Vec<IfView> {
            Vec::new()
        }
        fn process_alive(&self, _host: &str, _process: &str) -> Option<bool> {
            None
        }
    }

    fn ctx(source: &Fixed) -> SampleContext<'_> {
        SampleContext {
            timestamp: Timestamp::from_secs(960_000_000),
            source,
        }
    }

    #[test]
    fn cpu_sensor_emits_user_sys_and_total() {
        let src = Fixed(HostView {
            cpu_user_pct: 12.5,
            cpu_sys_pct: 40.0,
            ..Default::default()
        });
        let mut s = CpuSensor::new("known.lbl.gov", 1.0);
        let events = s.sample(&ctx(&src));
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].event_type, keys::cpu::USER);
        assert_eq!(events[0].value(), Some(12.5));
        assert_eq!(events[1].value(), Some(40.0));
        assert_eq!(events[2].event_type, keys::cpu::TOTAL);
        assert_eq!(events[2].value(), Some(52.5));
        assert!(events.iter().all(|e| e.host == "known.lbl.gov"));
        assert_eq!(s.spec().kind, SensorKind::Host);
    }

    #[test]
    fn memory_sensor_reports_free_kb() {
        let src = Fixed(HostView {
            mem_free_kb: 123_456,
            ..Default::default()
        });
        let mut s = MemorySensor::new("known.lbl.gov", 5.0);
        let events = s.sample(&ctx(&src));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event_type, keys::mem::FREE);
        assert_eq!(events[0].value(), Some(123_456.0));
        assert_eq!(
            events[0].field(keys::UNITS).unwrap().as_str(),
            Some("kilobytes")
        );
    }

    #[test]
    fn unknown_host_produces_no_events() {
        let src = Fixed(HostView::default());
        let mut cpu = CpuSensor::new("other.host", 1.0);
        let mut mem = MemorySensor::new("other.host", 1.0);
        assert!(cpu.sample(&ctx(&src)).is_empty());
        assert!(mem.sample(&ctx(&src)).is_empty());
    }
}
