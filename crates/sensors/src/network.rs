//! Network sensors: SNMP-style polling of routers and switches.
//!
//! "These sensors perform SNMP queries to a network device, typically a
//! router or switch.  Information on which device statistics are being
//! monitored is published in the directory service." (§2.2)  In the MATISSE
//! analysis these sensors confirmed that no errors were reported by the end
//! switches and routers, which pointed the investigation at the receiving
//! host.

use jamm_ulm::{keys, Event, Level};

use crate::{SampleContext, Sensor, SensorKind, SensorSpec};

/// Polls one network device's interface counters.
///
/// Emits per-interface octet counters every sample, and error / drop events
/// only when those counters advance (errors are rare and interesting;
/// traffic counters are routine).
#[derive(Debug)]
pub struct SnmpSensor {
    spec: SensorSpec,
    device: String,
    last_errors: std::collections::HashMap<String, u64>,
    last_drops: std::collections::HashMap<String, u64>,
}

impl SnmpSensor {
    /// Create an SNMP sensor for the named device.
    pub fn new(device: impl Into<String>, frequency_secs: f64) -> Self {
        let device = device.into();
        SnmpSensor {
            spec: SensorSpec::new(
                "snmp",
                SensorKind::Network,
                device.clone(),
                vec![
                    keys::net::IF_IN_OCTETS.to_string(),
                    keys::net::IF_ERRORS.to_string(),
                    keys::net::IF_DROPS.to_string(),
                ],
                frequency_secs,
            ),
            device,
            last_errors: std::collections::HashMap::new(),
            last_drops: std::collections::HashMap::new(),
        }
    }
}

impl Sensor for SnmpSensor {
    fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    fn sample(&mut self, ctx: &SampleContext<'_>) -> Vec<Event> {
        let mut events = Vec::new();
        for iface in ctx.source.device_interfaces(&self.device) {
            events.push(
                Event::builder("snmpd", self.device.clone())
                    .level(Level::Usage)
                    .event_type(keys::net::IF_IN_OCTETS)
                    .timestamp(ctx.timestamp)
                    .field(keys::SENSOR, "snmp")
                    .field(keys::TARGET, iface.name.clone())
                    .value(iface.in_octets)
                    .build(),
            );
            let prev_err = self.last_errors.get(&iface.name).copied().unwrap_or(0);
            if iface.errors > prev_err {
                events.push(
                    Event::builder("snmpd", self.device.clone())
                        .level(Level::Error)
                        .event_type(keys::net::IF_ERRORS)
                        .timestamp(ctx.timestamp)
                        .field(keys::SENSOR, "snmp")
                        .field(keys::TARGET, iface.name.clone())
                        .value(iface.errors - prev_err)
                        .field("COUNTER", iface.errors)
                        .build(),
                );
            }
            self.last_errors.insert(iface.name.clone(), iface.errors);
            let prev_drop = self.last_drops.get(&iface.name).copied().unwrap_or(0);
            if iface.drops > prev_drop {
                events.push(
                    Event::builder("snmpd", self.device.clone())
                        .level(Level::Warning)
                        .event_type(keys::net::IF_DROPS)
                        .timestamp(ctx.timestamp)
                        .field(keys::SENSOR, "snmp")
                        .field(keys::TARGET, iface.name.clone())
                        .value(iface.drops - prev_drop)
                        .field("COUNTER", iface.drops)
                        .build(),
                );
            }
            self.last_drops.insert(iface.name.clone(), iface.drops);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostView, IfView, StatsSource};
    use jamm_ulm::Timestamp;
    use std::cell::RefCell;

    struct Device {
        interfaces: RefCell<Vec<IfView>>,
    }
    impl StatsSource for Device {
        fn host_stats(&self, _host: &str) -> Option<HostView> {
            None
        }
        fn device_interfaces(&self, device: &str) -> Vec<IfView> {
            if device == "lbl-border-router" {
                self.interfaces.borrow().clone()
            } else {
                Vec::new()
            }
        }
        fn process_alive(&self, _host: &str, _process: &str) -> Option<bool> {
            None
        }
    }

    fn ctx(source: &Device) -> SampleContext<'_> {
        SampleContext {
            timestamp: Timestamp::from_secs(100),
            source,
        }
    }

    #[test]
    fn traffic_counters_every_sample_errors_only_on_change() {
        let dev = Device {
            interfaces: RefCell::new(vec![
                IfView {
                    name: "oc12".into(),
                    in_octets: 1_000,
                    in_packets: 10,
                    drops: 0,
                    errors: 0,
                },
                IfView {
                    name: "oc48".into(),
                    in_octets: 5_000,
                    in_packets: 50,
                    drops: 2,
                    errors: 0,
                },
            ]),
        };
        let mut s = SnmpSensor::new("lbl-border-router", 10.0);
        let first = s.sample(&ctx(&dev));
        // 2 octet events + 1 drop event (counter went 0 -> 2).
        assert_eq!(first.len(), 3);
        assert_eq!(
            first
                .iter()
                .filter(|e| e.event_type == keys::net::IF_IN_OCTETS)
                .count(),
            2
        );
        // Nothing changed: only the octet readings repeat.
        let second = s.sample(&ctx(&dev));
        assert_eq!(second.len(), 2);
        // A CRC error appears on the oc48 interface.
        dev.interfaces.borrow_mut()[1].errors = 3;
        let third = s.sample(&ctx(&dev));
        let errs: Vec<_> = third
            .iter()
            .filter(|e| e.event_type == keys::net::IF_ERRORS)
            .collect();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].level, Level::Error);
        assert_eq!(errs[0].value(), Some(3.0));
        assert_eq!(errs[0].field("TARGET").unwrap().as_str(), Some("oc48"));
    }

    #[test]
    fn unknown_device_produces_nothing() {
        let dev = Device {
            interfaces: RefCell::new(Vec::new()),
        };
        let mut s = SnmpSensor::new("unknown-device", 10.0);
        assert!(s.sample(&ctx(&dev)).is_empty());
        assert_eq!(s.spec().kind, SensorKind::Network);
    }
}
