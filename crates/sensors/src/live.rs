//! Live host data source: parses `/proc` on Linux.
//!
//! This is the "real" counterpart of the simulated source: on a Linux host
//! the same CPU / memory / TCP sensors can run against the actual kernel
//! counters, exactly as the paper's sensors wrapped `vmstat` and `netstat`.
//! On other platforms (or when `/proc` is unreadable) every probe returns
//! `None` and the sensors simply emit nothing, so examples remain portable.

use std::fs;

use jamm_core::sync::Mutex;

use crate::{HostView, IfView, StatsSource};

/// Raw cumulative CPU jiffies from `/proc/stat`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CpuTimes {
    user: u64,
    nice: u64,
    system: u64,
    idle: u64,
    iowait: u64,
    irq: u64,
    softirq: u64,
}

impl CpuTimes {
    fn total(&self) -> u64 {
        self.user + self.nice + self.system + self.idle + self.iowait + self.irq + self.softirq
    }
}

/// A [`StatsSource`] backed by the local `/proc` filesystem.
///
/// CPU percentages are computed as the delta between successive samples, the
/// way `vmstat` reports them, so the first sample reports zero utilisation.
#[derive(Debug, Default)]
pub struct ProcSource {
    hostname: String,
    prev_cpu: Mutex<Option<CpuTimes>>,
}

impl ProcSource {
    /// Create a source reporting under the local hostname.
    pub fn new() -> Self {
        ProcSource {
            hostname: read_hostname(),
            prev_cpu: Mutex::new(None),
        }
    }

    /// The hostname this source reports for.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// Whether `/proc` looks usable on this system.
    pub fn is_supported() -> bool {
        fs::metadata("/proc/stat").is_ok() && fs::metadata("/proc/meminfo").is_ok()
    }
}

fn read_hostname() -> String {
    fs::read_to_string("/proc/sys/kernel/hostname")
        .or_else(|_| fs::read_to_string("/etc/hostname"))
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|_| "localhost".to_string())
}

fn read_cpu_times() -> Option<CpuTimes> {
    let stat = fs::read_to_string("/proc/stat").ok()?;
    let line = stat.lines().find(|l| l.starts_with("cpu "))?;
    let nums: Vec<u64> = line
        .split_whitespace()
        .skip(1)
        .filter_map(|t| t.parse().ok())
        .collect();
    if nums.len() < 7 {
        return None;
    }
    Some(CpuTimes {
        user: nums[0],
        nice: nums[1],
        system: nums[2],
        idle: nums[3],
        iowait: nums[4],
        irq: nums[5],
        softirq: nums[6],
    })
}

fn read_mem_free_kb() -> Option<u64> {
    let meminfo = fs::read_to_string("/proc/meminfo").ok()?;
    for line in meminfo.lines() {
        if let Some(rest) = line
            .strip_prefix("MemAvailable:")
            .or_else(|| line.strip_prefix("MemFree:"))
        {
            return rest.split_whitespace().next()?.parse().ok();
        }
    }
    None
}

fn read_tcp_retransmits() -> Option<u64> {
    // /proc/net/snmp has a Tcp: header line followed by a values line; the
    // RetransSegs column is what netstat -s reports as retransmitted segments.
    let snmp = fs::read_to_string("/proc/net/snmp").ok()?;
    let mut lines = snmp.lines().filter(|l| l.starts_with("Tcp:"));
    let header = lines.next()?;
    let values = lines.next()?;
    let idx = header.split_whitespace().position(|c| c == "RetransSegs")?;
    values
        .split_whitespace()
        .nth(idx)
        .and_then(|v| v.parse().ok())
}

impl StatsSource for ProcSource {
    fn host_stats(&self, host: &str) -> Option<HostView> {
        if host != self.hostname && host != "localhost" {
            return None;
        }
        let cur = read_cpu_times()?;
        let mem_free_kb = read_mem_free_kb().unwrap_or(0);
        let tcp_retransmits = read_tcp_retransmits().unwrap_or(0);
        let mut prev_guard = self.prev_cpu.lock();
        let (user_pct, sys_pct) = match *prev_guard {
            Some(prev) if cur.total() > prev.total() => {
                let dt = (cur.total() - prev.total()) as f64;
                (
                    (cur.user + cur.nice - prev.user - prev.nice) as f64 / dt * 100.0,
                    (cur.system + cur.irq + cur.softirq - prev.system - prev.irq - prev.softirq)
                        as f64
                        / dt
                        * 100.0,
                )
            }
            _ => (0.0, 0.0),
        };
        *prev_guard = Some(cur);
        Some(HostView {
            cpu_user_pct: user_pct,
            cpu_sys_pct: sys_pct,
            mem_free_kb,
            tcp_retransmits,
            rx_bytes: 0,
            tx_bytes: 0,
            active_sockets: 0,
        })
    }

    fn device_interfaces(&self, _device: &str) -> Vec<IfView> {
        // Live SNMP polling is out of scope; network sensors run against the
        // simulator.
        Vec::new()
    }

    fn process_alive(&self, host: &str, process: &str) -> Option<bool> {
        if host != self.hostname && host != "localhost" {
            return None;
        }
        let entries = fs::read_dir("/proc").ok()?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(pid) = name
                .to_str()
                .filter(|s| s.chars().all(|c| c.is_ascii_digit()))
            else {
                continue;
            };
            if let Ok(comm) = fs::read_to_string(format!("/proc/{pid}/comm")) {
                if comm.trim() == process {
                    return Some(true);
                }
            }
        }
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_source_reports_something_plausible_on_linux() {
        if !ProcSource::is_supported() {
            // Not a Linux /proc system; the source must degrade gracefully
            // (no panic on lookup).
            let src = ProcSource::new();
            let _ = src.host_stats("localhost");
            return;
        }
        let src = ProcSource::new();
        let host = src.hostname().to_string();
        assert!(!host.is_empty());
        let first = src.host_stats(&host).expect("stats available");
        // First sample: deltas are zero, but memory should be a real number.
        assert_eq!(first.cpu_user_pct, 0.0);
        assert!(first.mem_free_kb > 0);
        // Burn a little CPU so the second sample sees movement.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        assert!(x != 1);
        let second = src.host_stats(&host).expect("stats available");
        assert!(second.cpu_user_pct >= 0.0 && second.cpu_user_pct <= 100.0);
        assert!(second.cpu_sys_pct >= 0.0 && second.cpu_sys_pct <= 100.0);
    }

    #[test]
    fn unknown_host_is_rejected() {
        let src = ProcSource::new();
        assert!(src.host_stats("definitely-not-this-host.example").is_none());
        assert!(src
            .process_alive("definitely-not-this-host.example", "init")
            .is_none());
    }

    #[test]
    fn process_liveness_lookup() {
        if !ProcSource::is_supported() {
            return;
        }
        let src = ProcSource::new();
        // Some process certainly does not exist with this name.
        assert_eq!(
            src.process_alive("localhost", "no_such_process_zzz_42"),
            Some(false)
        );
    }
}
