//! The ASCII ULM codec.
//!
//! A ULM line is a whitespace-separated list of `FIELD=value` tokens.  The
//! paper's example:
//!
//! ```text
//! DATE=20000330112320.957943 HOST=dpss1.lbl.gov PROG=testProg LVL=Usage NL.EVNT=WriteData SEND.SZ=49332
//! ```
//!
//! Values containing whitespace or `"` are quoted with double quotes and
//! backslash-escaped, which is the convention NetLogger's parsers accept.
//! The codec also provides buffered reader/writer adapters for log files and
//! sockets.

use std::io::{self, BufRead, Write};

use crate::event::{Event, Level};
use crate::keys;
use crate::timestamp::Timestamp;
use crate::value::Value;
use crate::{Result, UlmError};

/// Encode a single event as one ULM text line (no trailing newline).
pub fn encode(event: &Event) -> String {
    let mut out = String::with_capacity(event.approx_size());
    encode_into(&mut out, event);
    out
}

/// Append one event's ULM text line to `out` (no trailing newline),
/// mirroring [`crate::binary::encode_into`]: callers on the hot path keep
/// one scratch `String`, `clear()` it between events, and reuse its
/// capacity instead of allocating a fresh line per event.  Timestamps and
/// numeric field values are formatted directly into `out` — no
/// per-event/per-field temporaries.  Output is byte-identical to
/// [`encode`].
pub fn encode_into(out: &mut String, event: &Event) {
    use std::fmt::Write;
    let start = out.len();
    push_key(out, start, keys::DATE);
    event
        .timestamp
        .write_ulm_date(out)
        .expect("String writes cannot fail");
    push_pair(out, start, keys::HOST, &event.host);
    push_pair(out, start, keys::PROG, &event.program);
    push_pair(out, start, keys::LVL, event.level.as_str());
    if !event.event_type.is_empty() {
        push_pair(out, start, keys::NL_EVNT, &event.event_type);
    }
    for (k, v) in &event.fields {
        match v {
            // Strings are the only values that can need quoting.
            Value::Str(s) => push_pair(out, start, k, s),
            _ => {
                push_key(out, start, k);
                write!(out, "{v}").expect("String writes cannot fail");
            }
        }
    }
}

/// Append ` KEY=` (the separator is skipped at the start of the line,
/// which begins at byte offset `start` of the shared buffer).
fn push_key(out: &mut String, start: usize, key: &str) {
    if out.len() > start {
        out.push(' ');
    }
    out.push_str(key);
    out.push('=');
}

fn push_pair(out: &mut String, start: usize, key: &str, value: &str) {
    push_key(out, start, key);
    if needs_quoting(value) {
        out.push('"');
        for c in value.chars() {
            if c == '"' || c == '\\' {
                out.push('\\');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(value);
    }
}

fn needs_quoting(value: &str) -> bool {
    value.is_empty() || value.chars().any(|c| c.is_whitespace() || c == '"')
}

/// Decode one ULM text line into an [`Event`].
pub fn decode(line: &str) -> Result<Event> {
    let mut date: Option<Timestamp> = None;
    let mut host: Option<String> = None;
    let mut prog: Option<String> = None;
    let mut level: Option<Level> = None;
    let mut event_type = String::new();
    let mut fields: Vec<(String, Value)> = Vec::new();

    for (key, raw) in TokenIter::new(line) {
        let (key, raw) = (key?, raw);
        match key.as_str() {
            keys::DATE => date = Some(Timestamp::parse_ulm_date(&raw)?),
            keys::HOST => host = Some(raw),
            keys::PROG => prog = Some(raw),
            keys::LVL => level = Some(Level::parse(&raw)?),
            keys::NL_EVNT => event_type = raw,
            _ => fields.push((key, Value::infer(&raw))),
        }
    }

    Ok(Event {
        timestamp: date.ok_or(UlmError::MissingField(keys::DATE))?,
        host: host.ok_or(UlmError::MissingField(keys::HOST))?,
        program: prog.ok_or(UlmError::MissingField(keys::PROG))?,
        level: level.ok_or(UlmError::MissingField(keys::LVL))?,
        event_type,
        fields,
    })
}

/// Iterator over `KEY=value` tokens, handling quoted values.
struct TokenIter<'a> {
    rest: &'a str,
}

impl<'a> TokenIter<'a> {
    fn new(line: &'a str) -> Self {
        TokenIter { rest: line.trim() }
    }
}

impl<'a> Iterator for TokenIter<'a> {
    type Item = (Result<String>, String);

    fn next(&mut self) -> Option<Self::Item> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return None;
        }
        let eq = match self.rest.find('=') {
            Some(i) => i,
            None => {
                let tok = self.rest.to_string();
                self.rest = "";
                return Some((Err(UlmError::MalformedField(tok)), String::new()));
            }
        };
        let key = self.rest[..eq].to_string();
        if key.is_empty() || key.contains(char::is_whitespace) {
            let tok = self
                .rest
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_string();
            // Skip past this token so iteration terminates.
            self.rest = &self.rest[tok.len().min(self.rest.len())..];
            return Some((Err(UlmError::MalformedField(tok)), String::new()));
        }
        let after = &self.rest[eq + 1..];
        if let Some(stripped) = after.strip_prefix('"') {
            // Quoted value: scan for the closing unescaped quote.
            let mut value = String::new();
            let mut chars = stripped.char_indices();
            let mut end = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => {
                        if let Some((_, esc)) = chars.next() {
                            value.push(esc);
                        }
                    }
                    '"' => {
                        end = Some(i);
                        break;
                    }
                    _ => value.push(c),
                }
            }
            match end {
                Some(i) => {
                    self.rest = &stripped[i + 1..];
                    Some((Ok(key), value))
                }
                None => {
                    self.rest = "";
                    Some((Err(UlmError::UnterminatedQuote), String::new()))
                }
            }
        } else {
            let end = after.find(char::is_whitespace).unwrap_or(after.len());
            let value = after[..end].to_string();
            self.rest = &after[end..];
            Some((Ok(key), value))
        }
    }
}

/// Streaming writer that emits one ULM line per event.
pub struct UlmWriter<W: Write> {
    inner: W,
    written: u64,
    /// Reused line buffer: one allocation amortized over the stream.
    line: String,
}

impl<W: Write> UlmWriter<W> {
    /// Wrap a writer (file, socket, `Vec<u8>`...).
    pub fn new(inner: W) -> Self {
        UlmWriter {
            inner,
            written: 0,
            line: String::new(),
        }
    }

    /// Write one event followed by a newline.
    pub fn write_event(&mut self, event: &Event) -> io::Result<()> {
        self.line.clear();
        encode_into(&mut self.line, event);
        self.line.push('\n');
        self.inner.write_all(self.line.as_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// Number of events written so far.
    pub fn events_written(&self) -> u64 {
        self.written
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Streaming reader that yields events from a ULM text stream.
///
/// Blank lines and lines starting with `#` are skipped; malformed lines are
/// returned as errors so the consumer can decide whether to drop or abort.
pub struct UlmReader<R: BufRead> {
    inner: R,
    line: String,
    line_no: u64,
}

impl<R: BufRead> UlmReader<R> {
    /// Wrap a buffered reader.
    pub fn new(inner: R) -> Self {
        UlmReader {
            inner,
            line: String::new(),
            line_no: 0,
        }
    }

    /// Read the next event, `Ok(None)` at end of stream.
    pub fn read_event(&mut self) -> io::Result<Option<Result<Event>>> {
        loop {
            self.line.clear();
            let n = self.inner.read_line(&mut self.line)?;
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Ok(Some(decode(trimmed)));
        }
    }

    /// The line number of the most recently read line (1-based).
    pub fn line_number(&self) -> u64 {
        self.line_no
    }
}

impl<R: BufRead> Iterator for UlmReader<R> {
    type Item = Result<Event>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_event().unwrap_or_default()
    }
}

/// Parse every valid event in a multi-line ULM document, dropping malformed
/// lines.  Convenience used by log-merging tools and tests.
pub fn decode_all_lossy(doc: &str) -> Vec<Event> {
    doc.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| decode(l).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;

    fn sample() -> Event {
        Event::builder("testProg", "dpss1.lbl.gov")
            .level(Level::Usage)
            .event_type("WriteData")
            .timestamp(Timestamp::parse_ulm_date("20000330112320.957943").unwrap())
            .field("SEND.SZ", 49_332u64)
            .build()
    }

    #[test]
    fn encodes_paper_example_exactly() {
        let line = encode(&sample());
        assert_eq!(
            line,
            "DATE=20000330112320.957943 HOST=dpss1.lbl.gov PROG=testProg LVL=Usage \
             NL.EVNT=WriteData SEND.SZ=49332"
        );
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_the_buffer() {
        let ev1 = sample();
        let ev2 = Event::builder("p2", "h2")
            .event_type("MSG")
            .timestamp(Timestamp::from_secs(77))
            .field("TEXT", "two words")
            .field("N", -3i64)
            .field("F", 2.5)
            .field("B", true)
            .build();
        let mut buf = String::new();
        encode_into(&mut buf, &ev1);
        assert_eq!(buf, encode(&ev1));
        // Reuse without clearing appends; with clearing, capacity persists.
        encode_into(&mut buf, &ev2);
        assert_eq!(buf, format!("{}{}", encode(&ev1), encode(&ev2)));
        let cap = buf.capacity();
        buf.clear();
        encode_into(&mut buf, &ev2);
        assert_eq!(buf, encode(&ev2));
        assert_eq!(buf.capacity(), cap, "no reallocation on reuse");
        assert_eq!(decode(&buf).unwrap(), ev2);
    }

    #[test]
    fn round_trip_preserves_event() {
        let ev = sample();
        assert_eq!(decode(&encode(&ev)).unwrap(), ev);
    }

    #[test]
    fn quoted_values_round_trip() {
        let ev = Event::builder("prog", "host")
            .event_type("MSG")
            .timestamp(Timestamp::from_secs(10))
            .field("TEXT", "hello world with \"quotes\" and \\backslash")
            .field("EMPTY", "")
            .build();
        let line = encode(&ev);
        let back = decode(&line).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn missing_required_fields_error() {
        assert_eq!(
            decode("HOST=h PROG=p LVL=Usage"),
            Err(UlmError::MissingField("DATE"))
        );
        assert_eq!(
            decode("DATE=20000330112320 PROG=p LVL=Usage"),
            Err(UlmError::MissingField("HOST"))
        );
        assert_eq!(
            decode("DATE=20000330112320 HOST=h LVL=Usage"),
            Err(UlmError::MissingField("PROG"))
        );
        assert_eq!(
            decode("DATE=20000330112320 HOST=h PROG=p"),
            Err(UlmError::MissingField("LVL"))
        );
    }

    #[test]
    fn malformed_tokens_error() {
        assert!(matches!(
            decode("DATE=20000330112320 HOST=h PROG=p LVL=Usage junk"),
            Err(UlmError::MalformedField(_))
        ));
        assert!(matches!(
            decode("DATE=20000330112320 HOST=h PROG=p LVL=Usage X=\"unterminated"),
            Err(UlmError::UnterminatedQuote)
        ));
        assert!(matches!(
            decode("DATE=20000330112320 HOST=h PROG=p LVL=Bogus NL.EVNT=x"),
            Err(UlmError::BadLevel(_))
        ));
    }

    #[test]
    fn reader_writer_round_trip_and_skips_comments() {
        let mut buf = Vec::new();
        {
            let mut w = UlmWriter::new(&mut buf);
            for i in 0..5u64 {
                let ev = Event::builder("p", "h")
                    .event_type("TICK")
                    .timestamp(Timestamp::from_secs(i))
                    .value(i)
                    .build();
                w.write_event(&ev).unwrap();
            }
            assert_eq!(w.events_written(), 5);
            w.flush().unwrap();
        }
        let mut text = String::from_utf8(buf).unwrap();
        text.insert_str(0, "# comment line\n\n");
        let reader = UlmReader::new(text.as_bytes());
        let events: Vec<_> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(events.len(), 5);
        assert_eq!(events[3].value(), Some(3.0));
    }

    #[test]
    fn decode_all_lossy_drops_bad_lines() {
        let doc = "\
# header
DATE=20000330112320 HOST=h PROG=p LVL=Usage NL.EVNT=A
this is not ulm
DATE=20000330112321 HOST=h PROG=p LVL=Usage NL.EVNT=B
";
        let events = decode_all_lossy(doc);
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].event_type, "B");
    }

    #[test]
    fn event_type_is_optional_on_decode() {
        let ev = decode("DATE=20000330112320 HOST=h PROG=p LVL=Info").unwrap();
        assert_eq!(ev.event_type, "");
        assert_eq!(ev.level, Level::Info);
    }
}
