//! The in-memory ULM / NetLogger event model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::keys;
use crate::timestamp::Timestamp;
use crate::value::Value;

/// A reference-counted, immutable event — the unit the pipeline's hot hops
/// pass around.  Publishing an event allocates (at most) once; fanning it
/// out to N subscribers, summarizing it, caching it for query mode and
/// archiving it all share the same allocation by bumping the refcount.
pub type SharedEvent = Arc<Event>;

/// Deep copies of [`Event`] made since process start (see
/// [`deep_clone_count`]).
static DEEP_CLONES: AtomicU64 = AtomicU64::new(0);
/// Heap bytes copied by those deep clones (string payloads; the fixed-size
/// struct body is excluded).
static DEEP_CLONE_BYTES: AtomicU64 = AtomicU64::new(0);

/// How many times an [`Event`] has been deep-cloned (its `Clone` impl run)
/// since the process started.  The zero-copy pipeline's invariant — fan-out
/// bumps refcounts instead of copying — is asserted against this counter by
/// the `e15_zero_copy` bench and the pipeline property tests: publishing a
/// [`SharedEvent`] to N subscribers must not move it.
pub fn deep_clone_count() -> u64 {
    DEEP_CLONES.load(Ordering::Relaxed)
}

/// Heap bytes copied by [`Event`] deep clones since process start (the
/// string payloads each clone duplicated).  Together with
/// [`deep_clone_count`] this is the bench's bytes-copied-per-event meter.
pub fn deep_clone_bytes() -> u64 {
    DEEP_CLONE_BYTES.load(Ordering::Relaxed)
}

/// Severity / class of a ULM event (the `LVL` field).
///
/// The ULM draft uses syslog-like levels; the paper's examples additionally
/// use `Usage` for routine instrumentation events, which is the default here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Level {
    /// System is unusable.
    Emergency,
    /// Action must be taken immediately.
    Alert,
    /// Critical condition.
    Critical,
    /// Error condition (e.g. a server process crashed).
    Error,
    /// Warning condition (e.g. threshold crossed).
    Warning,
    /// Normal but significant condition.
    Notice,
    /// Informational message.
    Info,
    /// Debug-level message.
    Debug,
    /// Routine instrumentation / usage event (NetLogger's default class).
    #[default]
    Usage,
}

impl Level {
    /// The canonical ULM spelling of the level.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Emergency => "Emergency",
            Level::Alert => "Alert",
            Level::Critical => "Critical",
            Level::Error => "Error",
            Level::Warning => "Warning",
            Level::Notice => "Notice",
            Level::Info => "Info",
            Level::Debug => "Debug",
            Level::Usage => "Usage",
        }
    }

    /// Parse a level, case-insensitively.  Sits on the text-decode hot
    /// path, so it compares in place instead of allocating a lowercased
    /// copy of every `LVL` token.
    pub fn parse(s: &str) -> crate::Result<Level> {
        const SPELLINGS: [(&str, Level); 13] = [
            ("emergency", Level::Emergency),
            ("emerg", Level::Emergency),
            ("alert", Level::Alert),
            ("critical", Level::Critical),
            ("crit", Level::Critical),
            ("error", Level::Error),
            ("err", Level::Error),
            ("warning", Level::Warning),
            ("warn", Level::Warning),
            ("notice", Level::Notice),
            ("info", Level::Info),
            ("debug", Level::Debug),
            ("usage", Level::Usage),
        ];
        SPELLINGS
            .iter()
            .find(|(name, _)| s.eq_ignore_ascii_case(name))
            .map(|(_, lvl)| *lvl)
            .ok_or_else(|| crate::UlmError::BadLevel(s.to_string()))
    }

    /// True for levels that indicate a problem (`Warning` and above).
    pub fn is_problem(self) -> bool {
        matches!(
            self,
            Level::Emergency | Level::Alert | Level::Critical | Level::Error | Level::Warning
        )
    }

    /// Severity rank: 0 (`Usage`) through 8 (`Emergency`).  This is the
    /// ordering used by "at least this severe" filters, and matches the
    /// query plane's [`jamm_core::query::level_rank`] table.
    pub fn severity(self) -> u8 {
        match self {
            Level::Usage => 0,
            Level::Debug => 1,
            Level::Info => 2,
            Level::Notice => 3,
            Level::Warning => 4,
            Level::Error => 5,
            Level::Critical => 6,
            Level::Alert => 7,
            Level::Emergency => 8,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single monitoring event: the unit of data everything in JAMM exchanges.
///
/// An event always carries the four required ULM fields (timestamp, host,
/// program, level) plus the NetLogger event-type name, and an ordered list of
/// user-defined fields.  Field order is preserved because the ULM text format
/// is ordered and analysis tools (and humans) expect stable output.
#[derive(Debug, PartialEq)]
pub struct Event {
    /// Event timestamp (`DATE`), microsecond precision.
    pub timestamp: Timestamp,
    /// Host that generated the event (`HOST`).
    pub host: String,
    /// Program / sensor that generated the event (`PROG`).
    pub program: String,
    /// Severity level (`LVL`).
    pub level: Level,
    /// NetLogger event type (`NL.EVNT`), e.g. `VMSTAT_SYS_TIME`.
    pub event_type: String,
    /// Ordered user-defined fields.
    pub fields: Vec<(String, Value)>,
}

/// Cloning an event copies every string it carries.  The pipeline is built
/// so this never happens per subscriber (fan-out shares one
/// [`SharedEvent`]); the global [`deep_clone_count`] / [`deep_clone_bytes`]
/// meters exist so benches and tests can *prove* that, instead of trusting
/// the type signatures.
impl Clone for Event {
    fn clone(&self) -> Event {
        DEEP_CLONES.fetch_add(1, Ordering::Relaxed);
        DEEP_CLONE_BYTES.fetch_add(self.heap_bytes() as u64, Ordering::Relaxed);
        Event {
            timestamp: self.timestamp,
            host: self.host.clone(),
            program: self.program.clone(),
            level: self.level,
            event_type: self.event_type.clone(),
            fields: self.fields.clone(),
        }
    }
}

impl Event {
    /// Start building an event for `program` running on `host`.
    pub fn builder(program: impl Into<String>, host: impl Into<String>) -> EventBuilder {
        EventBuilder {
            event: Event {
                timestamp: Timestamp::EPOCH,
                host: host.into(),
                program: program.into(),
                level: Level::Usage,
                event_type: String::new(),
                fields: Vec::new(),
            },
            explicit_timestamp: false,
        }
    }

    /// Look up a user field by name (first match).
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Numeric value of a user field, if present and numeric.
    pub fn field_f64(&self, name: &str) -> Option<f64> {
        self.field(name).and_then(Value::as_f64)
    }

    /// The conventional reading carried in the `VAL` field, if any.
    pub fn value(&self) -> Option<f64> {
        self.field_f64(keys::VALUE)
    }

    /// The object-correlation identifier (`NL.OID`), used for lifelines.
    pub fn object_id(&self) -> Option<&str> {
        self.field(keys::OBJECT_ID).and_then(Value::as_str)
    }

    /// Add or replace a user field, preserving position on replace.
    pub fn set_field(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = value;
        } else {
            self.fields.push((name, value));
        }
    }

    /// Approximate encoded size of the event in ULM text form, in bytes.
    /// Used by the gateway and archive for accounting data volume.  Runs
    /// once per published event, so it must not allocate: numeric field
    /// widths are measured with a counting writer instead of formatting
    /// into temporary strings.
    pub fn approx_size(&self) -> usize {
        let mut n = 26
            + 6
            + self.host.len()
            + 6
            + self.program.len()
            + 5
            + self.level.as_str().len()
            + 9
            + self.event_type.len();
        for (k, v) in &self.fields {
            n += 1 + k.len() + 1 + v.ulm_len();
        }
        n
    }

    /// Heap bytes held by the event's strings (what a deep clone copies).
    fn heap_bytes(&self) -> usize {
        let mut n = self.host.len() + self.program.len() + self.event_type.len();
        for (k, v) in &self.fields {
            n += k.len();
            if let Value::Str(s) = v {
                n += s.len();
            }
        }
        n
    }
}

/// Events answer the unified query plane directly: typed leaves read the
/// ULM header fields, attribute leaves see `host` / `type` (`eventtype`) /
/// `prog` (`program`) / `level` as pseudo-attributes plus every user
/// field by (case-insensitive) key.  String field values match in place;
/// non-string values match by their ULM text rendering.
impl jamm_core::query::Record for Event {
    fn host(&self) -> Option<&str> {
        Some(&self.host)
    }

    fn event_type(&self) -> Option<&str> {
        Some(&self.event_type)
    }

    fn level_rank(&self) -> Option<u8> {
        Some(self.level.severity())
    }

    fn time_micros(&self) -> Option<u64> {
        Some(self.timestamp.as_micros())
    }

    fn value(&self) -> Option<f64> {
        Event::value(self)
    }

    fn attr_any(&self, attr: &str, f: &mut dyn FnMut(&str) -> bool) -> bool {
        match attr {
            "host" => f(&self.host),
            "type" | "eventtype" => f(&self.event_type),
            "prog" | "program" => f(&self.program),
            "level" | "lvl" => f(self.level.as_str()),
            _ => self.fields.iter().any(|(k, v)| {
                k.eq_ignore_ascii_case(attr)
                    && match v {
                        Value::Str(s) => f(s),
                        other => f(&other.to_ulm_string()),
                    }
            }),
        }
    }

    fn attr_present(&self, attr: &str) -> bool {
        matches!(
            attr,
            "host" | "type" | "eventtype" | "prog" | "program" | "level" | "lvl"
        ) || self
            .fields
            .iter()
            .any(|(k, _)| k.eq_ignore_ascii_case(attr))
    }
}

/// Builder for [`Event`].
#[derive(Debug, Clone)]
pub struct EventBuilder {
    event: Event,
    explicit_timestamp: bool,
}

impl EventBuilder {
    /// Set the event type (`NL.EVNT`).
    pub fn event_type(mut self, name: impl Into<String>) -> Self {
        self.event.event_type = name.into();
        self
    }

    /// Set the severity level.
    pub fn level(mut self, level: Level) -> Self {
        self.event.level = level;
        self
    }

    /// Set an explicit timestamp (e.g. simulated time).  Without this the
    /// event is stamped with wall-clock time at `build()`.
    pub fn timestamp(mut self, ts: Timestamp) -> Self {
        self.event.timestamp = ts;
        self.explicit_timestamp = true;
        self
    }

    /// Append a user-defined field.
    pub fn field(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.event.fields.push((name.into(), value.into()));
        self
    }

    /// Append the conventional `VAL` reading field.
    pub fn value(self, value: impl Into<Value>) -> Self {
        self.field(keys::VALUE, value)
    }

    /// Append the conventional `NL.OID` object-correlation field.
    pub fn object_id(self, oid: impl Into<String>) -> Self {
        self.field(keys::OBJECT_ID, Value::Str(oid.into()))
    }

    /// Finish building.  Stamps the event with the current wall-clock time if
    /// no explicit timestamp was provided.
    pub fn build(mut self) -> Event {
        if !self.explicit_timestamp {
            self.event.timestamp = Timestamp::now();
        }
        self.event
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event::builder("testProg", "dpss1.lbl.gov")
            .level(Level::Usage)
            .event_type("WriteData")
            .timestamp(Timestamp::from_micros(954_415_400_957_943))
            .field("SEND.SZ", 49_332u64)
            .build()
    }

    #[test]
    fn builder_sets_all_fields() {
        let ev = sample();
        assert_eq!(ev.host, "dpss1.lbl.gov");
        assert_eq!(ev.program, "testProg");
        assert_eq!(ev.level, Level::Usage);
        assert_eq!(ev.event_type, "WriteData");
        assert_eq!(ev.field("SEND.SZ"), Some(&Value::UInt(49_332)));
        assert_eq!(ev.field_f64("SEND.SZ"), Some(49_332.0));
        assert_eq!(ev.field("MISSING"), None);
    }

    #[test]
    fn builder_defaults_to_wall_clock() {
        let ev = Event::builder("p", "h").event_type("X").build();
        assert!(ev.timestamp > Timestamp::from_secs(1_500_000_000));
    }

    #[test]
    fn set_field_replaces_in_place() {
        let mut ev = sample();
        ev.set_field("SEND.SZ", 1u64);
        ev.set_field("NEW", "x");
        assert_eq!(ev.fields[0], ("SEND.SZ".to_string(), Value::UInt(1)));
        assert_eq!(ev.field("NEW"), Some(&Value::Str("x".into())));
    }

    #[test]
    fn value_and_object_id_helpers() {
        let ev = Event::builder("p", "h")
            .event_type("CPU_TOTAL")
            .value(42.5)
            .object_id("frame-17")
            .build();
        assert_eq!(ev.value(), Some(42.5));
        assert_eq!(ev.object_id(), Some("frame-17"));
    }

    #[test]
    fn level_parse_round_trip() {
        for lvl in [
            Level::Emergency,
            Level::Alert,
            Level::Critical,
            Level::Error,
            Level::Warning,
            Level::Notice,
            Level::Info,
            Level::Debug,
            Level::Usage,
        ] {
            assert_eq!(Level::parse(lvl.as_str()).unwrap(), lvl);
            assert_eq!(Level::parse(&lvl.as_str().to_uppercase()).unwrap(), lvl);
        }
        assert!(Level::parse("bogus").is_err());
        assert!(Level::Error.is_problem());
        assert!(!Level::Usage.is_problem());
    }

    #[test]
    fn severity_matches_the_query_plane_rank_table() {
        for lvl in [
            Level::Usage,
            Level::Debug,
            Level::Info,
            Level::Notice,
            Level::Warning,
            Level::Error,
            Level::Critical,
            Level::Alert,
            Level::Emergency,
        ] {
            assert_eq!(
                jamm_core::query::level_rank(lvl.as_str()),
                Some(lvl.severity()),
                "{lvl:?}"
            );
            assert_eq!(
                jamm_core::query::level_name(lvl.severity()),
                lvl.as_str(),
                "{lvl:?}"
            );
        }
    }

    #[test]
    fn events_answer_the_record_interface() {
        use jamm_core::query::Record;
        let ev = Event::builder("vmstat", "dpss1.lbl.gov")
            .level(Level::Warning)
            .event_type("CPU_TOTAL")
            .timestamp(Timestamp::from_micros(123))
            .value(42.5)
            .field("PEER", "mems.cairn.net")
            .build();
        assert_eq!(Record::host(&ev), Some("dpss1.lbl.gov"));
        assert_eq!(Record::event_type(&ev), Some("CPU_TOTAL"));
        assert_eq!(ev.level_rank(), Some(4));
        assert_eq!(ev.time_micros(), Some(123));
        assert_eq!(Record::value(&ev), Some(42.5));
        assert!(ev.attr_any("peer", &mut |v| v == "mems.cairn.net"));
        assert!(ev.attr_any("val", &mut |v| v == "42.5"));
        assert!(ev.attr_any("level", &mut |v| v == "Warning"));
        assert!(ev.attr_present("prog"));
        assert!(ev.attr_present("PEER"));
        assert!(!ev.attr_present("missing"));
    }

    #[test]
    fn approx_size_tracks_fields() {
        let small = Event::builder("p", "h").event_type("X").build();
        let mut big = small.clone();
        big.set_field("A_LONG_FIELD_NAME", "a_long_field_value");
        assert!(big.approx_size() > small.approx_size());
    }
}
