//! Compact binary event codec.
//!
//! The paper (§3) notes that ASCII ULM parsing overhead is too high for some
//! high-throughput event streams and plans "a binary format option".  This
//! module is that option: a simple length-prefixed, tagged binary frame that
//! encodes the same event model losslessly and decodes several times faster
//! than the text codec (benchmark `e12_ulm_codec`).
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! u32  frame length (bytes following this word)
//! u8   version (currently 1)
//! u64  timestamp, microseconds since epoch
//! u8   level discriminant
//! str  host        (u16 length + UTF-8 bytes)
//! str  program
//! str  event type
//! u16  field count
//! then per field: str key, u8 value tag, value payload
//! ```

use crate::event::{Event, Level};
use crate::timestamp::Timestamp;
use crate::value::Value;
use crate::{Result, UlmError};

/// Current binary format version.
pub const VERSION: u8 = 1;

const TAG_UINT: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;

/// Encode an event into a self-delimiting binary frame.
pub fn encode(event: &Event) -> Vec<u8> {
    let mut frame = Vec::with_capacity(event.approx_size() + 20);
    encode_into(&mut frame, event);
    frame
}

/// Append an event's self-delimiting binary frame to an existing buffer.
///
/// This is the allocation-free building block `encode` wraps: the frame is
/// encoded directly into the caller's buffer (the length prefix is
/// back-patched once the body size is known), so callers that batch many
/// frames into one buffer — the archive's write-ahead log, the RMI bridge
/// — pay no per-event allocation.
pub fn encode_into(frame: &mut Vec<u8>, event: &Event) {
    let len_pos = frame.len();
    frame.extend_from_slice(&[0u8; 4]); // length prefix, patched below
    let body_start = frame.len();
    frame.push(VERSION);
    frame.extend_from_slice(&event.timestamp.as_micros().to_le_bytes());
    frame.push(level_to_u8(event.level));
    put_str(frame, &event.host);
    put_str(frame, &event.program);
    put_str(frame, &event.event_type);
    frame.extend_from_slice(&(event.fields.len() as u16).to_le_bytes());
    for (k, v) in &event.fields {
        put_str(frame, k);
        match v {
            Value::UInt(u) => {
                frame.push(TAG_UINT);
                frame.extend_from_slice(&u.to_le_bytes());
            }
            Value::Int(i) => {
                frame.push(TAG_INT);
                frame.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                frame.push(TAG_FLOAT);
                frame.extend_from_slice(&f.to_le_bytes());
            }
            Value::Bool(b) => {
                frame.push(TAG_BOOL);
                frame.push(*b as u8);
            }
            Value::Str(s) => {
                frame.push(TAG_STR);
                put_str(frame, s);
            }
        }
    }
    let body_len = (frame.len() - body_start) as u32;
    frame[len_pos..body_start].copy_from_slice(&body_len.to_le_bytes());
}

/// Decode one binary frame (including the leading length word).
///
/// Returns the event and the total number of bytes consumed, so callers can
/// decode back-to-back frames out of a single buffer.
pub fn decode(buf: &[u8]) -> Result<(Event, usize)> {
    if buf.len() < 4 {
        return Err(UlmError::BadBinary("truncated length prefix"));
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    let cursor = &buf[4..];
    if cursor.len() < len {
        return Err(UlmError::BadBinary("truncated frame body"));
    }
    let mut body = &cursor[..len];
    let version = get_u8(&mut body)?;
    if version != VERSION {
        return Err(UlmError::BadBinary("unsupported version"));
    }
    let ts = Timestamp::from_micros(get_u64(&mut body)?);
    let level = level_from_u8(get_u8(&mut body)?)?;
    let host = get_str(&mut body)?;
    let program = get_str(&mut body)?;
    let event_type = get_str(&mut body)?;
    let n_fields = get_u16(&mut body)? as usize;
    let mut fields = Vec::with_capacity(n_fields);
    for _ in 0..n_fields {
        let key = get_str(&mut body)?;
        let tag = get_u8(&mut body)?;
        let value = match tag {
            TAG_UINT => Value::UInt(get_u64(&mut body)?),
            TAG_INT => Value::Int(get_u64(&mut body)? as i64),
            TAG_FLOAT => Value::Float(f64::from_bits(get_u64(&mut body)?)),
            TAG_BOOL => Value::Bool(get_u8(&mut body)? != 0),
            TAG_STR => Value::Str(get_str(&mut body)?),
            _ => return Err(UlmError::BadBinary("unknown value tag")),
        };
        fields.push((key, value));
    }
    Ok((
        Event {
            timestamp: ts,
            host,
            program,
            level,
            event_type,
            fields,
        },
        4 + len,
    ))
}

/// Decode every frame in a buffer.
pub fn decode_all(mut buf: &[u8]) -> Result<Vec<Event>> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let (ev, consumed) = decode(buf)?;
        out.push(ev);
        buf = &buf[consumed..];
    }
    Ok(out)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    let (&first, rest) = buf
        .split_first()
        .ok_or(UlmError::BadBinary("truncated u8"))?;
    *buf = rest;
    Ok(first)
}

fn get_u16(buf: &mut &[u8]) -> Result<u16> {
    if buf.len() < 2 {
        return Err(UlmError::BadBinary("truncated u16"));
    }
    let v = u16::from_le_bytes(buf[..2].try_into().expect("2 bytes"));
    *buf = &buf[2..];
    Ok(v)
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.len() < 8 {
        return Err(UlmError::BadBinary("truncated u64"));
    }
    let v = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
    *buf = &buf[8..];
    Ok(v)
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    let len = get_u16(buf)? as usize;
    if buf.len() < len {
        return Err(UlmError::BadBinary("truncated string"));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| UlmError::BadBinary("invalid utf-8 string"))?
        .to_string();
    *buf = &buf[len..];
    Ok(s)
}

/// The stable one-byte discriminant of a level, shared by every binary
/// format in the workspace (this frame codec and the jamm-tsdb segments).
pub fn level_code(level: Level) -> u8 {
    level_to_u8(level)
}

/// Inverse of [`level_code`]; errors on an unknown discriminant.
pub fn level_from_code(v: u8) -> Result<Level> {
    level_from_u8(v)
}

fn level_to_u8(level: Level) -> u8 {
    match level {
        Level::Emergency => 0,
        Level::Alert => 1,
        Level::Critical => 2,
        Level::Error => 3,
        Level::Warning => 4,
        Level::Notice => 5,
        Level::Info => 6,
        Level::Debug => 7,
        Level::Usage => 8,
    }
}

fn level_from_u8(v: u8) -> Result<Level> {
    Ok(match v {
        0 => Level::Emergency,
        1 => Level::Alert,
        2 => Level::Critical,
        3 => Level::Error,
        4 => Level::Warning,
        5 => Level::Notice,
        6 => Level::Info,
        7 => Level::Debug,
        8 => Level::Usage,
        _ => return Err(UlmError::BadBinary("unknown level discriminant")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;

    fn sample(i: u64) -> Event {
        Event::builder("dpss_master", "dpss1.lbl.gov")
            .level(Level::Usage)
            .event_type("DPSS_SERV_IN")
            .timestamp(Timestamp::from_micros(954_415_400_000_000 + i))
            .field("BLOCK.ID", i)
            .field("SIZE", 65_536u64)
            .field("LOAD", 0.75)
            .field("OK", true)
            .field("CLIENT", "mems.cairn.net")
            .build()
    }

    #[test]
    fn round_trip_single_event() {
        let ev = sample(7);
        let frame = encode(&ev);
        let (back, consumed) = decode(&frame).unwrap();
        assert_eq!(back, ev);
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn round_trip_negative_and_signed() {
        let ev = Event::builder("p", "h")
            .event_type("DELTA")
            .timestamp(Timestamp::from_secs(1))
            .field("D", -12345i64)
            .build();
        let (back, _) = decode(&encode(&ev)).unwrap();
        assert_eq!(back.field("D"), Some(&Value::Int(-12345)));
    }

    #[test]
    fn encode_into_matches_encode_and_concatenates() {
        let mut buf = Vec::new();
        encode_into(&mut buf, &sample(1));
        assert_eq!(buf, encode(&sample(1)));
        encode_into(&mut buf, &sample(2));
        let events = decode_all(&buf).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1], sample(2));
    }

    #[test]
    fn level_codes_round_trip() {
        for lvl in [Level::Emergency, Level::Warning, Level::Usage] {
            assert_eq!(level_from_code(level_code(lvl)).unwrap(), lvl);
        }
        assert!(level_from_code(200).is_err());
    }

    #[test]
    fn decode_all_concatenated_frames() {
        let mut buf = Vec::new();
        for i in 0..10 {
            buf.extend_from_slice(&encode(&sample(i)));
        }
        let events = decode_all(&buf).unwrap();
        assert_eq!(events.len(), 10);
        assert_eq!(events[9].field("BLOCK.ID"), Some(&Value::UInt(9)));
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let frame = encode(&sample(1));
        for cut in [0, 1, 3, 4, 5, frame.len() / 2, frame.len() - 1] {
            assert!(decode(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_tag_and_version_error() {
        let mut frame = encode(&sample(1)).to_vec();
        frame[4] = 99; // version byte
        assert_eq!(
            decode(&frame),
            Err(UlmError::BadBinary("unsupported version"))
        );
    }

    #[test]
    fn binary_is_smaller_than_text_for_numeric_events() {
        let ev = sample(123_456);
        let text_len = crate::text::encode(&ev).len();
        let bin_len = encode(&ev).len();
        assert!(
            bin_len < text_len,
            "binary {bin_len} should be smaller than text {text_len}"
        );
    }
}
