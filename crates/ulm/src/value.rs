//! Typed field values carried by ULM events.
//!
//! ULM itself is untyped text (`field=value`), but sensors and analysis tools
//! care about numbers: thresholds, deltas and summaries all operate on
//! numeric readings.  [`Value`] keeps the original type so the gateway can
//! filter without reparsing, while the text codec falls back to strings for
//! anything non-numeric.

/// A single ULM field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer reading (counters, sizes in bytes, ...).
    UInt(u64),
    /// Signed integer reading (deltas, offsets, ...).
    Int(i64),
    /// Floating point reading (loads, rates, percentages, ...).
    Float(f64),
    /// Boolean flag (up/down, ok/failed).
    Bool(bool),
    /// Free-form text.
    Str(String),
}

impl Value {
    /// Interpret the value as a float where that makes sense.
    ///
    /// Strings parse if they look numeric; booleans map to 0.0/1.0.  Returns
    /// `None` for non-numeric strings, which lets threshold filters skip
    /// events that do not carry the reading they watch.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(v) => Some(*v as f64),
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.parse().ok(),
        }
    }

    /// Interpret the value as an unsigned integer if it is one (or a
    /// non-negative signed/parsable value).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            Value::Float(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            Value::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Borrow the value as a string slice if it is textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is one of the numeric variants.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::UInt(_) | Value::Int(_) | Value::Float(_))
    }

    /// Render the value exactly as it appears in a ULM line (no quoting).
    pub fn to_ulm_string(&self) -> String {
        let mut out = String::new();
        self.write_ulm(&mut out).expect("String writes cannot fail");
        out
    }

    /// Write the ULM rendering into `w` without allocating temporaries —
    /// the hot-path form of [`Value::to_ulm_string`] used by the reusable
    /// text encoder.  Output is byte-identical to `to_ulm_string`.
    pub fn write_ulm<W: std::fmt::Write>(&self, w: &mut W) -> std::fmt::Result {
        match self {
            Value::UInt(v) => write!(w, "{v}"),
            Value::Int(v) => write!(w, "{v}"),
            Value::Float(v) => write_float(w, *v),
            Value::Bool(b) => w.write_str(if *b { "true" } else { "false" }),
            Value::Str(s) => w.write_str(s),
        }
    }

    /// Exact length of the ULM rendering in bytes, computed without
    /// allocating (a counting writer absorbs the formatted digits).
    pub fn ulm_len(&self) -> usize {
        match self {
            // The common case, a borrowed string, skips formatting
            // machinery entirely.
            Value::Str(s) => s.len(),
            _ => {
                let mut counter = CountingWriter(0);
                self.write_ulm(&mut counter)
                    .expect("counting writes cannot fail");
                counter.0
            }
        }
    }

    /// Parse a raw ULM token back into the most specific value type.
    ///
    /// The precedence is unsigned integer, signed integer, float, boolean,
    /// then string, so `decode(encode(v))` preserves numeric readings.
    pub fn infer(raw: &str) -> Value {
        if let Ok(u) = raw.parse::<u64>() {
            return Value::UInt(u);
        }
        if let Ok(i) = raw.parse::<i64>() {
            return Value::Int(i);
        }
        // Only treat as float when it round-trips unambiguously (avoid
        // swallowing identifiers like "1e" or version strings).
        if raw.contains('.') || raw.contains('e') || raw.contains('E') {
            if let Ok(f) = raw.parse::<f64>() {
                if f.is_finite() {
                    return Value::Float(f);
                }
            }
        }
        match raw {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::Str(raw.to_string()),
        }
    }
}

/// Format a float the way the ULM tools expect: no exponent for the ranges
/// sensors produce, and no trailing leftover precision noise.
fn write_float<W: std::fmt::Write>(w: &mut W, v: f64) -> std::fmt::Result {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        // Keep a ".0" so the value re-parses as a float, not an integer,
        // preserving the producer's declared type.
        write!(w, "{v:.1}")
    } else {
        write!(w, "{v}")
    }
}

/// A `fmt::Write` sink that only counts bytes — how exact rendered widths
/// are measured on paths that must not allocate.
struct CountingWriter(usize);

impl std::fmt::Write for CountingWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0 += s.len();
        Ok(())
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.write_ulm(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_conversions() {
        assert_eq!(Value::UInt(5).as_f64(), Some(5.0));
        assert_eq!(Value::Int(-5).as_f64(), Some(-5.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("3.5".into()).as_f64(), Some(3.5));
        assert_eq!(Value::Str("abc".into()).as_f64(), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Float(4.0).as_u64(), Some(4));
        assert_eq!(Value::Float(4.5).as_u64(), None);
    }

    #[test]
    fn inference_precedence() {
        assert_eq!(Value::infer("42"), Value::UInt(42));
        assert_eq!(Value::infer("-42"), Value::Int(-42));
        assert_eq!(Value::infer("42.5"), Value::Float(42.5));
        assert_eq!(Value::infer("true"), Value::Bool(true));
        assert_eq!(Value::infer("false"), Value::Bool(false));
        assert_eq!(
            Value::infer("dpss1.lbl.gov"),
            Value::Str("dpss1.lbl.gov".into())
        );
        // A bare word containing 'e' must stay a string, not parse as float.
        assert_eq!(Value::infer("WriteData"), Value::Str("WriteData".into()));
    }

    #[test]
    fn ulm_len_matches_rendered_length() {
        for v in [
            Value::UInt(0),
            Value::UInt(49_332),
            Value::Int(-17),
            Value::Float(50.0),
            Value::Float(1.25),
            Value::Float(f64::NAN),
            Value::Float(1e300),
            Value::Bool(true),
            Value::Bool(false),
            Value::Str("dpss1.lbl.gov".into()),
            Value::Str(String::new()),
        ] {
            assert_eq!(v.ulm_len(), v.to_ulm_string().len(), "{v:?}");
        }
    }

    #[test]
    fn float_round_trip_keeps_type() {
        let v = Value::Float(50.0);
        let s = v.to_ulm_string();
        assert_eq!(s, "50.0");
        assert_eq!(Value::infer(&s), Value::Float(50.0));
    }

    #[test]
    fn string_round_trip() {
        for raw in ["42", "-17", "0.25", "hello", "true"] {
            let v = Value::infer(raw);
            assert_eq!(Value::infer(&v.to_ulm_string()), v, "round trip {raw}");
        }
    }

    #[test]
    fn display_matches_ulm_string() {
        let v = Value::Float(1.25);
        assert_eq!(format!("{v}"), v.to_ulm_string());
    }
}
