//! Typed field values carried by ULM events.
//!
//! ULM itself is untyped text (`field=value`), but sensors and analysis tools
//! care about numbers: thresholds, deltas and summaries all operate on
//! numeric readings.  [`Value`] keeps the original type so the gateway can
//! filter without reparsing, while the text codec falls back to strings for
//! anything non-numeric.

/// A single ULM field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer reading (counters, sizes in bytes, ...).
    UInt(u64),
    /// Signed integer reading (deltas, offsets, ...).
    Int(i64),
    /// Floating point reading (loads, rates, percentages, ...).
    Float(f64),
    /// Boolean flag (up/down, ok/failed).
    Bool(bool),
    /// Free-form text.
    Str(String),
}

impl Value {
    /// Interpret the value as a float where that makes sense.
    ///
    /// Strings parse if they look numeric; booleans map to 0.0/1.0.  Returns
    /// `None` for non-numeric strings, which lets threshold filters skip
    /// events that do not carry the reading they watch.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(v) => Some(*v as f64),
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.parse().ok(),
        }
    }

    /// Interpret the value as an unsigned integer if it is one (or a
    /// non-negative signed/parsable value).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            Value::Float(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            Value::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Borrow the value as a string slice if it is textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is one of the numeric variants.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::UInt(_) | Value::Int(_) | Value::Float(_))
    }

    /// Render the value exactly as it appears in a ULM line (no quoting).
    pub fn to_ulm_string(&self) -> String {
        match self {
            Value::UInt(v) => v.to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format_float(*v),
            Value::Bool(b) => if *b { "true" } else { "false" }.to_string(),
            Value::Str(s) => s.clone(),
        }
    }

    /// Parse a raw ULM token back into the most specific value type.
    ///
    /// The precedence is unsigned integer, signed integer, float, boolean,
    /// then string, so `decode(encode(v))` preserves numeric readings.
    pub fn infer(raw: &str) -> Value {
        if let Ok(u) = raw.parse::<u64>() {
            return Value::UInt(u);
        }
        if let Ok(i) = raw.parse::<i64>() {
            return Value::Int(i);
        }
        // Only treat as float when it round-trips unambiguously (avoid
        // swallowing identifiers like "1e" or version strings).
        if raw.contains('.') || raw.contains('e') || raw.contains('E') {
            if let Ok(f) = raw.parse::<f64>() {
                if f.is_finite() {
                    return Value::Float(f);
                }
            }
        }
        match raw {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::Str(raw.to_string()),
        }
    }
}

/// Format a float the way the ULM tools expect: no exponent for the ranges
/// sensors produce, and no trailing leftover precision noise.
fn format_float(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        // Keep a ".0" so the value re-parses as a float, not an integer,
        // preserving the producer's declared type.
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::UInt(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_ulm_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_conversions() {
        assert_eq!(Value::UInt(5).as_f64(), Some(5.0));
        assert_eq!(Value::Int(-5).as_f64(), Some(-5.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("3.5".into()).as_f64(), Some(3.5));
        assert_eq!(Value::Str("abc".into()).as_f64(), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Float(4.0).as_u64(), Some(4));
        assert_eq!(Value::Float(4.5).as_u64(), None);
    }

    #[test]
    fn inference_precedence() {
        assert_eq!(Value::infer("42"), Value::UInt(42));
        assert_eq!(Value::infer("-42"), Value::Int(-42));
        assert_eq!(Value::infer("42.5"), Value::Float(42.5));
        assert_eq!(Value::infer("true"), Value::Bool(true));
        assert_eq!(Value::infer("false"), Value::Bool(false));
        assert_eq!(
            Value::infer("dpss1.lbl.gov"),
            Value::Str("dpss1.lbl.gov".into())
        );
        // A bare word containing 'e' must stay a string, not parse as float.
        assert_eq!(Value::infer("WriteData"), Value::Str("WriteData".into()));
    }

    #[test]
    fn float_round_trip_keeps_type() {
        let v = Value::Float(50.0);
        let s = v.to_ulm_string();
        assert_eq!(s, "50.0");
        assert_eq!(Value::infer(&s), Value::Float(50.0));
    }

    #[test]
    fn string_round_trip() {
        for raw in ["42", "-17", "0.25", "hello", "true"] {
            let v = Value::infer(raw);
            assert_eq!(Value::infer(&v.to_ulm_string()), v, "round trip {raw}");
        }
    }

    #[test]
    fn display_matches_ulm_string() {
        let v = Value::Float(1.25);
        assert_eq!(format!("{v}"), v.to_ulm_string());
    }
}
