//! The three ULM wire formats as [`Codec`] implementations.
//!
//! The seed code shipped three parallel free-function modules; transports
//! hard-coded one of them.  These unit codecs put all three behind the one
//! [`jamm_core::codec::Codec`] trait so a transport can carry *any* format
//! and peers can negotiate which one with [`negotiate`] /
//! [`codec_for`]:
//!
//! * [`TextCodec`] — the ASCII ULM line format (`application/x-ulm`);
//! * [`BinaryCodec`] — the length-prefixed binary frames
//!   (`application/x-ulm-binary`);
//! * [`JsonCodec`] — the flat JSON mapping (`application/json`).

pub use jamm_core::codec::{negotiate, Codec};
use jamm_core::json::Json;

use crate::event::Event;
use crate::{binary, json, text, Result, UlmError};

/// Content type of the ASCII ULM line format.
pub const TEXT: &str = "application/x-ulm";
/// Content type of the binary frame format.
pub const BINARY: &str = "application/x-ulm-binary";
/// Content type of the JSON mapping.
pub const JSON: &str = "application/json";

/// Every content type this crate can speak, preferred order first
/// (binary is cheapest to parse, text is the interoperable default, JSON
/// is for third-party consumers).
pub const ALL: [&str; 3] = [BINARY, TEXT, JSON];

/// The ASCII ULM line codec.  Frames are single lines; batches are
/// newline-separated documents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TextCodec;

impl Codec for TextCodec {
    type Item = Event;
    type Error = UlmError;

    fn content_type(&self) -> &'static str {
        TEXT
    }

    fn encode(&self, event: &Event) -> Vec<u8> {
        text::encode(event).into_bytes()
    }

    fn decode(&self, bytes: &[u8]) -> Result<Event> {
        text::decode(as_utf8(bytes)?)
    }

    fn encode_batch(&self, events: &[Event]) -> Vec<u8> {
        let mut out = String::new();
        for e in events {
            text::encode_into(&mut out, e);
            out.push('\n');
        }
        out.into_bytes()
    }

    fn decode_batch(&self, bytes: &[u8]) -> Result<Vec<Event>> {
        as_utf8(bytes)?
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(text::decode)
            .collect()
    }
}

/// The binary frame codec.  Batches are back-to-back frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryCodec;

impl Codec for BinaryCodec {
    type Item = Event;
    type Error = UlmError;

    fn content_type(&self) -> &'static str {
        BINARY
    }

    fn encode(&self, event: &Event) -> Vec<u8> {
        binary::encode(event)
    }

    fn encode_to(&self, out: &mut Vec<u8>, event: &Event) {
        binary::encode_into(out, event);
    }

    fn decode(&self, bytes: &[u8]) -> Result<Event> {
        binary::decode(bytes).map(|(event, _)| event)
    }

    fn decode_batch(&self, bytes: &[u8]) -> Result<Vec<Event>> {
        binary::decode_all(bytes)
    }
}

/// The JSON codec.  Frames are objects; batches are JSON arrays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonCodec;

impl Codec for JsonCodec {
    type Item = Event;
    type Error = UlmError;

    fn content_type(&self) -> &'static str {
        JSON
    }

    fn encode(&self, event: &Event) -> Vec<u8> {
        json::encode(event).into_bytes()
    }

    fn decode(&self, bytes: &[u8]) -> Result<Event> {
        json::decode(as_utf8(bytes)?)
    }

    fn encode_batch(&self, events: &[Event]) -> Vec<u8> {
        Json::Array(events.iter().map(json::to_json).collect())
            .to_string()
            .into_bytes()
    }

    fn decode_batch(&self, bytes: &[u8]) -> Result<Vec<Event>> {
        let doc = Json::parse(as_utf8(bytes)?)
            .map_err(|_| UlmError::MalformedField("invalid JSON batch".into()))?;
        let items = doc.as_array().ok_or(UlmError::MalformedField(
            "JSON batch is not an array".into(),
        ))?;
        items.iter().map(json::from_json).collect()
    }
}

/// A boxed event codec, as produced by [`codec_for`].
pub type EventCodec = Box<dyn Codec<Item = Event, Error = UlmError> + Send + Sync>;

/// Look a codec up by content type (the receiving side of negotiation).
pub fn codec_for(content_type: &str) -> Option<EventCodec> {
    match content_type.trim() {
        TEXT => Some(Box::new(TextCodec)),
        BINARY => Some(Box::new(BinaryCodec)),
        JSON => Some(Box::new(JsonCodec)),
        _ => None,
    }
}

fn as_utf8(bytes: &[u8]) -> Result<&str> {
    std::str::from_utf8(bytes).map_err(|_| UlmError::MalformedField("invalid UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Timestamp};

    fn sample(i: u64) -> Event {
        Event::builder("dpss_master", "dpss1.lbl.gov")
            .level(Level::Usage)
            .event_type("DPSS_SERV_IN")
            .timestamp(Timestamp::from_micros(954_415_400_000_000 + i))
            .field("BLOCK.ID", i)
            .field("NOTE", "has spaces and \"quotes\"")
            .build()
    }

    fn codecs() -> Vec<EventCodec> {
        ALL.iter().map(|ct| codec_for(ct).unwrap()).collect()
    }

    #[test]
    fn every_codec_round_trips_frames_and_batches() {
        let events: Vec<Event> = (0..5).map(sample).collect();
        for codec in codecs() {
            let one = codec.decode(&codec.encode(&events[0])).unwrap();
            assert_eq!(one, events[0], "{}", codec.content_type());
            let batch = codec.decode_batch(&codec.encode_batch(&events)).unwrap();
            assert_eq!(batch, events, "{}", codec.content_type());
        }
    }

    #[test]
    fn codec_lookup_and_negotiation() {
        assert!(codec_for(TEXT).is_some());
        assert!(
            codec_for(" application/x-ulm ").is_some(),
            "whitespace tolerated"
        );
        assert!(codec_for("application/xml").is_none());
        // A peer that only speaks text gets text even though we prefer binary.
        assert_eq!(negotiate(&ALL, &[TEXT]), Some(TEXT));
        assert_eq!(negotiate(&ALL, &[JSON, BINARY]), Some(BINARY));
    }

    #[test]
    fn content_types_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for codec in codecs() {
            assert!(seen.insert(codec.content_type()));
        }
    }

    #[test]
    fn garbage_decodes_to_errors_not_panics() {
        for codec in codecs() {
            assert!(codec.decode(b"\xff\xfe garbage").is_err());
            assert!(codec.decode_batch(b"\xff\xfe garbage").is_err());
        }
    }
}
