//! Well-known ULM / NetLogger field names.
//!
//! The four `DATE`/`HOST`/`PROG`/`LVL` fields are required by the ULM draft;
//! `NL.EVNT` is the NetLogger extension naming the event; the remaining
//! constants are the conventional field names used by the JAMM sensors so
//! that producers and consumers agree without a schema registry (the paper
//! defers schemas to the Grid Forum performance working group).

/// Required: event timestamp, `YYYYMMDDHHMMSS.ffffff` UTC.
pub const DATE: &str = "DATE";
/// Required: fully-qualified host name the event was generated on.
pub const HOST: &str = "HOST";
/// Required: name of the program (sensor or application) that produced it.
pub const PROG: &str = "PROG";
/// Required: severity / class of the event.
pub const LVL: &str = "LVL";
/// NetLogger extension: unique identifier for the event being logged.
pub const NL_EVNT: &str = "NL.EVNT";

/// Conventional field: identifier correlating events belonging to the same
/// object as it moves through the system (used to draw lifelines).
pub const OBJECT_ID: &str = "NL.OID";
/// Conventional field: numeric reading carried by a sensor event.
pub const VALUE: &str = "VAL";
/// Conventional field: name of the sensor that produced the event.
pub const SENSOR: &str = "SENSOR";
/// Conventional field: monitored target (interface, disk, port, process...).
pub const TARGET: &str = "TARGET";
/// Conventional field: units of [`VALUE`] ("percent", "bytes", "ops/s"...).
pub const UNITS: &str = "UNITS";

/// CPU sensor events.
pub mod cpu {
    /// Total CPU utilisation, percent.
    pub const TOTAL: &str = "CPU_TOTAL";
    /// User-mode CPU utilisation, percent (paper: `VMSTAT_USER_TIME`).
    pub const USER: &str = "VMSTAT_USER_TIME";
    /// System-mode CPU utilisation, percent (paper: `VMSTAT_SYS_TIME`).
    pub const SYS: &str = "VMSTAT_SYS_TIME";
    /// Interrupt rate, interrupts/second.
    pub const INTERRUPTS: &str = "VMSTAT_INTERRUPTS";
}

/// Memory sensor events.
pub mod mem {
    /// Free memory in kilobytes (paper: `VMSTAT_FREE_MEMORY`).
    pub const FREE: &str = "VMSTAT_FREE_MEMORY";
    /// Used memory in kilobytes.
    pub const USED: &str = "VMSTAT_USED_MEMORY";
}

/// TCP sensor events (netstat / instrumented tcpdump).
pub mod tcp {
    /// A retransmission was observed (paper: `TCPD_RETRANSMITS`).
    pub const RETRANSMITS: &str = "TCPD_RETRANSMITS";
    /// Current TCP window size in bytes.
    pub const WINDOW_SIZE: &str = "TCPD_WINDOW_SIZE";
    /// Cumulative retransmission counter from netstat.
    pub const RETRANS_COUNTER: &str = "NETSTAT_RETRANS";
}

/// Network / SNMP sensor events.
pub mod net {
    /// Input octets counter on an interface.
    pub const IF_IN_OCTETS: &str = "SNMP_IF_IN_OCTETS";
    /// Output octets counter on an interface.
    pub const IF_OUT_OCTETS: &str = "SNMP_IF_OUT_OCTETS";
    /// CRC / input error counter on an interface.
    pub const IF_ERRORS: &str = "SNMP_IF_ERRORS";
    /// Dropped packets counter on an interface.
    pub const IF_DROPS: &str = "SNMP_IF_DROPS";
}

/// Process sensor events.
pub mod process {
    /// Process started.
    pub const STARTED: &str = "PROC_STARTED";
    /// Process exited normally.
    pub const EXITED: &str = "PROC_EXITED";
    /// Process died abnormally.
    pub const DIED: &str = "PROC_DIED";
    /// A watched threshold was crossed.
    pub const THRESHOLD: &str = "PROC_THRESHOLD";
}

/// MATISSE / MPEG-player application events from the paper's Figure 7.
pub mod matisse {
    /// Client begins reading a frame from the network.
    pub const START_READ_FRAME: &str = "MPLAY_START_READ_FRAME";
    /// Client finished reading a frame.
    pub const END_READ_FRAME: &str = "MPLAY_END_READ_FRAME";
    /// Client begins rendering a frame.
    pub const START_PUT_IMAGE: &str = "MPLAY_START_PUT_IMAGE";
    /// Client finished rendering a frame.
    pub const END_PUT_IMAGE: &str = "MPLAY_END_PUT_IMAGE";
    /// DPSS server received a block request.
    pub const DPSS_SERV_IN: &str = "DPSS_SERV_IN";
    /// DPSS server finished reading the block from disk.
    pub const DPSS_START_WRITE: &str = "DPSS_START_WRITE";
    /// DPSS server finished sending the block.
    pub const DPSS_END_WRITE: &str = "DPSS_END_WRITE";
}

/// JAMM self-lifeline events: the monitoring pipeline instrumented with
/// its own NetLogger trace points.  A sampled published event is followed
/// through the pipeline by emitting one of these (sharing an `NL.OID`
/// correlation id) at each stage it passes; `netlogger::analysis::diagnose`
/// turns the resulting lifelines into per-stage latency breakdowns.
pub mod jamm {
    /// A sampled event entered a gateway (`publish`).
    pub const GW_PUBLISH: &str = "JAMM_GW_PUBLISH";
    /// The gateway finished routing the sampled event.
    pub const GW_ROUTED: &str = "JAMM_GW_ROUTED";
    /// The sampled event was pushed into a subscription queue
    /// (`TARGET` = consumer).
    pub const SUB_DELIVER: &str = "JAMM_SUB_DELIVER";
    /// A consumer drained the sampled event from its subscription queue
    /// (`TARGET` = consumer).
    pub const SUB_DRAIN: &str = "JAMM_SUB_DRAIN";
    /// The network edge encoded the sampled event for the wire.
    pub const EDGE_ENCODE: &str = "JAMM_EDGE_ENCODE";
    /// The network edge handed the sampled event's frame to the reactor
    /// for broadcast (socket writes happen on the loop thread after this).
    pub const EDGE_BROADCAST: &str = "JAMM_EDGE_BROADCAST";
    /// The archiver stored the sampled event (`TARGET` = archiver).
    pub const ARCHIVE_APPEND: &str = "JAMM_ARCHIVE_APPEND";

    /// Canonical pipeline order of the self-lifeline stages, for nlv
    /// charts and stage-pair analysis.
    pub const STAGES: [&str; 7] = [
        GW_PUBLISH,
        GW_ROUTED,
        SUB_DELIVER,
        SUB_DRAIN,
        EDGE_ENCODE,
        EDGE_BROADCAST,
        ARCHIVE_APPEND,
    ];
}

/// All four required ULM field names, in canonical output order.
pub const REQUIRED: [&str; 4] = [DATE, HOST, PROG, LVL];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_fields_are_the_ulm_draft_set() {
        assert_eq!(REQUIRED, ["DATE", "HOST", "PROG", "LVL"]);
    }

    #[test]
    fn figure7_event_names_match_paper() {
        assert_eq!(cpu::SYS, "VMSTAT_SYS_TIME");
        assert_eq!(mem::FREE, "VMSTAT_FREE_MEMORY");
        assert_eq!(tcp::RETRANSMITS, "TCPD_RETRANSMITS");
        assert_eq!(matisse::START_READ_FRAME, "MPLAY_START_READ_FRAME");
    }
}
