//! JSON export / import of events.
//!
//! The paper plans an XML encoding once the Grid Forum performance working
//! group standardises event schemas; JSON plays that structured-interchange
//! role here.  The mapping is intentionally flat so third-party tools can
//! consume it without knowing the ULM field model: required fields become
//! top-level keys, user fields are nested under `"fields"`.

use jamm_core::json::{Json, Map, Number};

use crate::event::{Event, Level};
use crate::timestamp::Timestamp;
use crate::value::Value;
use crate::{Result, UlmError};

/// Convert an event to its JSON object representation.
pub fn to_json(event: &Event) -> Json {
    let mut fields = Map::new();
    for (k, v) in &event.fields {
        fields.insert(k.clone(), value_to_json(v));
    }
    let mut obj = Map::new();
    obj.insert("date".into(), Json::from(event.timestamp.to_ulm_date()));
    obj.insert(
        "timestamp_us".into(),
        Json::from(event.timestamp.as_micros()),
    );
    obj.insert("host".into(), Json::from(&event.host));
    obj.insert("prog".into(), Json::from(&event.program));
    obj.insert("lvl".into(), Json::from(event.level.as_str()));
    obj.insert("event".into(), Json::from(&event.event_type));
    obj.insert("fields".into(), Json::Object(fields));
    Json::Object(obj)
}

/// Serialise an event to a compact JSON string.
pub fn encode(event: &Event) -> String {
    to_json(event).to_string()
}

/// Parse an event from the JSON produced by [`encode`] / [`to_json`].
pub fn decode(text: &str) -> Result<Event> {
    let v =
        Json::parse(text).map_err(|_| UlmError::MalformedField(text.chars().take(40).collect()))?;
    from_json(&v)
}

/// Convert a JSON object back into an event.
pub fn from_json(v: &Json) -> Result<Event> {
    let obj = v
        .as_object()
        .ok_or(UlmError::MalformedField("not a JSON object".into()))?;
    let timestamp = if let Some(us) = obj.get("timestamp_us").and_then(Json::as_u64) {
        Timestamp::from_micros(us)
    } else {
        let date = obj
            .get("date")
            .and_then(Json::as_str)
            .ok_or(UlmError::MissingField("DATE"))?;
        Timestamp::parse_ulm_date(date)?
    };
    let host = obj
        .get("host")
        .and_then(Json::as_str)
        .ok_or(UlmError::MissingField("HOST"))?
        .to_string();
    let program = obj
        .get("prog")
        .and_then(Json::as_str)
        .ok_or(UlmError::MissingField("PROG"))?
        .to_string();
    let level = Level::parse(
        obj.get("lvl")
            .and_then(Json::as_str)
            .ok_or(UlmError::MissingField("LVL"))?,
    )?;
    let event_type = obj
        .get("event")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    let mut fields = Vec::new();
    if let Some(Json::Object(map)) = obj.get("fields") {
        for (k, v) in map {
            fields.push((k.clone(), json_to_value(v)));
        }
    }
    Ok(Event {
        timestamp,
        host,
        program,
        level,
        event_type,
        fields,
    })
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::UInt(u) => Json::from(*u),
        Value::Int(i) => Json::from(*i),
        Value::Float(f) => Json::from(*f),
        Value::Bool(b) => Json::from(*b),
        Value::Str(s) => Json::from(s),
    }
}

fn json_to_value(v: &Json) -> Value {
    match v {
        Json::Number(Number::U(u)) => Value::UInt(*u),
        Json::Number(Number::I(i)) => Value::Int(*i),
        Json::Number(Number::F(f)) => Value::Float(*f),
        Json::Bool(b) => Value::Bool(*b),
        Json::String(s) => Value::Str(s.clone()),
        other => Value::Str(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event::builder("netstat", "dpss2.lbl.gov")
            .level(Level::Warning)
            .event_type("TCPD_RETRANSMITS")
            .timestamp(Timestamp::parse_ulm_date("20000330112321.500000").unwrap())
            .value(3u64)
            .field("PORT", 14_830u64)
            .field("RATE", 0.5)
            .field("PEER", "mems.cairn.net")
            .build()
    }

    #[test]
    fn json_round_trip() {
        let ev = sample();
        let text = encode(&ev);
        let back = decode(&text).unwrap();
        // JSON objects do not preserve field order; compare content.
        assert_eq!(back.timestamp, ev.timestamp);
        assert_eq!(back.host, ev.host);
        assert_eq!(back.level, ev.level);
        assert_eq!(back.event_type, ev.event_type);
        for (k, v) in &ev.fields {
            assert_eq!(back.field(k), Some(v), "field {k}");
        }
    }

    #[test]
    fn json_contains_expected_keys() {
        let j = to_json(&sample());
        assert_eq!(j["host"], "dpss2.lbl.gov");
        assert_eq!(j["lvl"], "Warning");
        assert_eq!(j["event"], "TCPD_RETRANSMITS");
        assert_eq!(j["fields"]["PORT"], 14_830);
        assert_eq!(j["date"], "20000330112321.500000");
    }

    #[test]
    fn decode_uses_date_when_micros_missing() {
        let text =
            r#"{"date":"20000330112320.000001","host":"h","prog":"p","lvl":"Usage","event":"X"}"#;
        let ev = decode(text).unwrap();
        assert_eq!(ev.timestamp.subsec_micros(), 1);
        assert_eq!(ev.event_type, "X");
        assert!(ev.fields.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("not json at all").is_err());
        assert!(decode("[]").is_err());
        assert!(decode(r#"{"host":"h"}"#).is_err());
    }
}
