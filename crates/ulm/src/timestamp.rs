//! Microsecond-precision timestamps and the ULM `DATE` encoding.
//!
//! The paper's sample event uses `DATE=20000330112320.957943` — a
//! fourteen-digit UTC calendar date/time followed by six fractional digits,
//! giving microsecond precision.  Internally we store timestamps as unsigned
//! microseconds since the Unix epoch, which is convenient both for the live
//! system (`SystemTime`) and the discrete-event simulator (plain `u64`
//! simulated microseconds).

use std::time::{SystemTime, UNIX_EPOCH};

use crate::UlmError;

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in time with microsecond precision.
///
/// `Timestamp` is a thin wrapper over *microseconds since the Unix epoch*
/// (UTC).  It orders and subtracts naturally and converts to/from the ULM
/// `DATE` textual form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The Unix epoch itself (all-zero timestamp).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Construct from microseconds since the Unix epoch.
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Construct from whole seconds since the Unix epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * MICROS_PER_SEC)
    }

    /// Construct from seconds expressed as a float (used by sensors that
    /// sample wall-clock time).
    pub fn from_secs_f64(secs: f64) -> Self {
        Timestamp((secs.max(0.0) * MICROS_PER_SEC as f64).round() as u64)
    }

    /// The current wall-clock time.
    pub fn now() -> Self {
        let d = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default();
        Timestamp(d.as_micros() as u64)
    }

    /// Microseconds since the Unix epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the Unix epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Seconds since the Unix epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The fractional microseconds within the current second.
    pub const fn subsec_micros(self) -> u32 {
        (self.0 % MICROS_PER_SEC) as u32
    }

    /// Add a duration in microseconds, saturating at the maximum.
    pub const fn add_micros(self, micros: u64) -> Self {
        Timestamp(self.0.saturating_add(micros))
    }

    /// Subtract a duration in microseconds, saturating at zero.
    pub const fn sub_micros(self, micros: u64) -> Self {
        Timestamp(self.0.saturating_sub(micros))
    }

    /// Signed difference `self - other`, in microseconds.
    pub const fn delta_micros(self, other: Timestamp) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Format as the ULM `DATE` value, e.g. `20000330112320.957943`.
    pub fn to_ulm_date(self) -> String {
        let mut out = String::with_capacity(21);
        self.write_ulm_date(&mut out)
            .expect("String writes cannot fail");
        out
    }

    /// Write the ULM `DATE` rendering into `w` without allocating a
    /// temporary string — the hot-path form of [`Timestamp::to_ulm_date`]
    /// used by the reusable text encoder.
    pub fn write_ulm_date<W: std::fmt::Write>(self, w: &mut W) -> std::fmt::Result {
        let (y, mo, d, h, mi, s) = self.to_civil();
        write!(
            w,
            "{y:04}{mo:02}{d:02}{h:02}{mi:02}{s:02}.{:06}",
            self.subsec_micros()
        )
    }

    /// Parse a ULM `DATE` value.  Accepts `YYYYMMDDHHMMSS` with an optional
    /// fractional part of one to six digits.
    pub fn parse_ulm_date(s: &str) -> crate::Result<Self> {
        let (whole, frac) = match s.split_once('.') {
            Some((w, f)) => (w, f),
            None => (s, ""),
        };
        if whole.len() != 14 || !whole.bytes().all(|b| b.is_ascii_digit()) {
            return Err(UlmError::BadTimestamp(s.to_string()));
        }
        if frac.len() > 6 || !frac.bytes().all(|b| b.is_ascii_digit()) {
            return Err(UlmError::BadTimestamp(s.to_string()));
        }
        let num = |r: &str| r.parse::<u64>().unwrap();
        let (y, mo, d) = (num(&whole[0..4]), num(&whole[4..6]), num(&whole[6..8]));
        let (h, mi, sec) = (num(&whole[8..10]), num(&whole[10..12]), num(&whole[12..14]));
        if !(1..=12).contains(&mo)
            || !(1..=31).contains(&d)
            || h > 23
            || mi > 59
            || sec > 60
            || y < 1970
        {
            return Err(UlmError::BadTimestamp(s.to_string()));
        }
        let days = days_from_civil(y as i64, mo as u32, d as u32);
        if days < 0 {
            return Err(UlmError::BadTimestamp(s.to_string()));
        }
        let micros_frac: u64 = if frac.is_empty() {
            0
        } else {
            // Right-pad to six digits: ".9" means 900000 microseconds.
            let mut v = frac.parse::<u64>().unwrap();
            for _ in 0..(6 - frac.len()) {
                v *= 10;
            }
            v
        };
        let secs = days as u64 * 86_400 + h * 3_600 + mi * 60 + sec;
        Ok(Timestamp(secs * MICROS_PER_SEC + micros_frac))
    }

    /// Decompose into UTC civil (year, month, day, hour, minute, second).
    pub fn to_civil(self) -> (i64, u32, u32, u32, u32, u32) {
        let secs = self.as_secs() as i64;
        let days = secs.div_euclid(86_400);
        let rem = secs.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        (
            y,
            m,
            d,
            (rem / 3_600) as u32,
            ((rem % 3_600) / 60) as u32,
            (rem % 60) as u32,
        )
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.write_ulm_date(f)
    }
}

impl std::ops::Sub for Timestamp {
    type Output = i64;
    fn sub(self, rhs: Self) -> i64 {
        self.delta_micros(rhs)
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (Howard Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sample_date_round_trips() {
        // Sample from §4.2 of the paper.
        let s = "20000330112320.957943";
        let ts = Timestamp::parse_ulm_date(s).unwrap();
        assert_eq!(ts.to_ulm_date(), s);
        let (y, mo, d, h, mi, sec) = ts.to_civil();
        assert_eq!((y, mo, d), (2000, 3, 30));
        assert_eq!((h, mi, sec), (11, 23, 20));
        assert_eq!(ts.subsec_micros(), 957_943);
    }

    #[test]
    fn epoch_is_19700101() {
        assert_eq!(Timestamp::EPOCH.to_ulm_date(), "19700101000000.000000");
    }

    #[test]
    fn fractional_part_is_right_padded() {
        let ts = Timestamp::parse_ulm_date("20000101000000.5").unwrap();
        assert_eq!(ts.subsec_micros(), 500_000);
        let ts = Timestamp::parse_ulm_date("20000101000000.000001").unwrap();
        assert_eq!(ts.subsec_micros(), 1);
    }

    #[test]
    fn missing_fraction_is_zero() {
        let ts = Timestamp::parse_ulm_date("20000101000000").unwrap();
        assert_eq!(ts.subsec_micros(), 0);
        assert_eq!(ts.as_secs() % 60, 0);
    }

    #[test]
    fn rejects_malformed_dates() {
        for bad in [
            "",
            "2000",
            "20001301000000",         // month 13
            "20000100000000",         // day 0
            "20000101250000",         // hour 25
            "2000010100000a",         // non-digit
            "20000101000000.1234567", // 7 fraction digits
            "19691231235959",         // before epoch
        ] {
            assert!(
                Timestamp::parse_ulm_date(bad).is_err(),
                "expected error for {bad:?}"
            );
        }
    }

    #[test]
    fn leap_year_handling() {
        let ts = Timestamp::parse_ulm_date("20000229120000.000000").unwrap();
        assert_eq!(ts.to_civil().0, 2000);
        assert_eq!(ts.to_civil().1, 2);
        assert_eq!(ts.to_civil().2, 29);
        // 1900 is not a leap year but 2000 is; civil_from_days round trip:
        let ts2 = Timestamp::parse_ulm_date("20040229235959.999999").unwrap();
        assert_eq!(ts2.to_ulm_date(), "20040229235959.999999");
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = Timestamp::from_micros(1_000_000);
        let b = a.add_micros(250);
        assert!(b > a);
        assert_eq!(b - a, 250);
        assert_eq!(a - b, -250);
        assert_eq!(a.sub_micros(2_000_000), Timestamp::EPOCH);
        assert_eq!(Timestamp::from_secs(2).as_micros(), 2_000_000);
        assert!((Timestamp::from_secs_f64(1.5).as_micros() as i64 - 1_500_000).abs() < 2);
    }

    #[test]
    fn now_is_after_2020() {
        assert!(Timestamp::now() > Timestamp::parse_ulm_date("20200101000000").unwrap());
    }

    #[test]
    fn civil_round_trip_many_days() {
        for days in (0..25_000).step_by(37) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days);
        }
    }
}
