//! # jamm-ulm — ULM / NetLogger event model and codecs
//!
//! The JAMM monitoring system (Tierney et al., HPDC 2000) exchanges all
//! monitoring data as *events*: time-stamped records about the state of some
//! system component.  Events are encoded in the IETF draft **Universal Logger
//! Message** (ULM) format — a whitespace-separated list of `FIELD=value`
//! pairs with four required fields (`DATE`, `HOST`, `PROG`, `LVL`) — extended
//! by NetLogger with an `NL.EVNT` field naming the event type.
//!
//! This crate provides:
//!
//! * [`Event`] — the in-memory event model (required fields, typed user
//!   fields, microsecond timestamps);
//! * [`Timestamp`] — microsecond-precision timestamps with the ULM
//!   fourteen-digit-plus-fraction `DATE` encoding;
//! * [`text`] — the ASCII ULM codec used on the wire and in log files;
//! * [`binary`] — the compact binary codec the paper lists as planned work
//!   for high-throughput event streams;
//! * [`json`] — a JSON export (stand-in for the paper's planned XML schema
//!   from the Grid Forum performance working group);
//! * [`codec`] — all three formats behind the shared
//!   [`jamm_core::codec::Codec`] trait ([`TextCodec`], [`BinaryCodec`],
//!   [`JsonCodec`]), with content-type negotiation for transports.
//!
//! ```
//! use jamm_ulm::{Event, Level, Timestamp, Value};
//!
//! let ev = Event::builder("testProg", "dpss1.lbl.gov")
//!     .level(Level::Usage)
//!     .event_type("WriteData")
//!     .timestamp(Timestamp::from_micros(954415400957943))
//!     .field("SEND.SZ", 49332u64)
//!     .build();
//! let line = jamm_ulm::text::encode(&ev);
//! assert!(line.contains("NL.EVNT=WriteData"));
//! assert!(line.contains("SEND.SZ=49332"));
//! let back = jamm_ulm::text::decode(&line).unwrap();
//! assert_eq!(back.field("SEND.SZ"), Some(&Value::UInt(49332)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod codec;
pub mod event;
pub mod json;
pub mod keys;
pub mod text;
pub mod timestamp;
pub mod value;

pub use codec::{BinaryCodec, JsonCodec, TextCodec};
pub use event::{deep_clone_bytes, deep_clone_count, Event, EventBuilder, Level, SharedEvent};
pub use timestamp::Timestamp;
pub use value::Value;

/// Errors produced while encoding or decoding ULM events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UlmError {
    /// A required ULM field (`DATE`, `HOST`, `PROG`, `LVL`) was absent.
    MissingField(&'static str),
    /// A field token was not of the form `KEY=value`.
    MalformedField(String),
    /// The `DATE` field could not be parsed as a ULM timestamp.
    BadTimestamp(String),
    /// The `LVL` field was not a recognised severity level.
    BadLevel(String),
    /// A quoted value was not terminated.
    UnterminatedQuote,
    /// The binary frame was truncated or had an invalid tag.
    BadBinary(&'static str),
}

impl std::fmt::Display for UlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UlmError::MissingField(k) => write!(f, "missing required ULM field {k}"),
            UlmError::MalformedField(t) => write!(f, "malformed ULM field token {t:?}"),
            UlmError::BadTimestamp(s) => write!(f, "invalid ULM DATE value {s:?}"),
            UlmError::BadLevel(s) => write!(f, "invalid ULM LVL value {s:?}"),
            UlmError::UnterminatedQuote => write!(f, "unterminated quoted value"),
            UlmError::BadBinary(m) => write!(f, "invalid binary event frame: {m}"),
        }
    }
}

impl std::error::Error for UlmError {}

/// Convenience result alias for ULM operations.
pub type Result<T> = std::result::Result<T, UlmError>;
