//! Property-based tests: every [`Codec`] implementation must round-trip
//! arbitrary representable events (`decode(encode(e)) == e`), including
//! quoted string values and microsecond-precision timestamps, and no
//! decoder may panic on garbage input.

use jamm_core::check::{forall, Gen};
use jamm_ulm::codec::{codec_for, EventCodec, ALL};
use jamm_ulm::{binary, text, Event, Level, Timestamp, Value};

const LEVELS: [Level; 9] = [
    Level::Emergency,
    Level::Alert,
    Level::Critical,
    Level::Error,
    Level::Warning,
    Level::Notice,
    Level::Info,
    Level::Debug,
    Level::Usage,
];

const IDENT_ALPHABET: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
const KEY_ALPHABET: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.";

/// Identifier-like strings (hostnames, program names, event names): start
/// with a letter so they never re-infer as numbers.
fn arb_ident(g: &mut Gen) -> String {
    let first = g.string_from("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ", 1);
    let len = g.usize_in(0, 30);
    first + &g.string_from(IDENT_ALPHABET, len)
}

/// Field keys: ULM-safe (no '=', no whitespace, non-empty).
fn arb_key(g: &mut Gen) -> String {
    let first = g.string_from("ABCDEFGHIJKLMNOPQRSTUVWXYZ", 1);
    let len = g.usize_in(0, 20);
    first + &g.string_from(KEY_ALPHABET, len)
}

/// An arbitrary field value, constrained to values that are *exactly*
/// representable in all three formats: every text token re-infers to the
/// same typed value, so full `decode(encode(e)) == e` equality holds.
fn arb_value(g: &mut Gen) -> Value {
    match g.usize_in(0, 4) {
        0 => Value::UInt(g.any_u64()),
        1 => Value::Int(-(g.u64(i64::MAX as u64) as i64).max(1)),
        2 => {
            // Floats that survive the ULM float formatting exactly: modest
            // magnitudes printed via `{}` round-trip through parse.
            let v = g.f64_in(-1.0e12, 1.0e12);
            Value::Float(v)
        }
        3 => Value::Bool(g.bool(0.5)),
        _ => {
            // Strings including whitespace, quotes and backslashes (quoting
            // path), but never accidentally numeric/boolean.
            let len = g.usize_in(0, 40);
            let body = g.string_from("abcXYZ_ /:\\\"-", len);
            Value::Str(format!("s{body}"))
        }
    }
}

/// An arbitrary event with a microsecond-precision timestamp inside the
/// ULM DATE range (year <= 9999).
fn arb_event(g: &mut Gen) -> Event {
    let mut builder = Event::builder(arb_ident(g), arb_ident(g))
        .level(g.choice(&LEVELS))
        .event_type(arb_ident(g))
        .timestamp(Timestamp::from_micros(g.u64(250_000_000_000_000_000)));
    let mut seen = std::collections::HashSet::new();
    for _ in 0..g.usize_in(0, 8) {
        let key = arb_key(g);
        let value = arb_value(g);
        if seen.insert(key.clone()) {
            builder = builder.field(key, value);
        }
    }
    builder.build()
}

fn codecs() -> Vec<EventCodec> {
    ALL.iter()
        .map(|ct| codec_for(ct).expect("known codec"))
        .collect()
}

#[test]
fn every_codec_round_trips_arbitrary_events() {
    forall("codec frame round-trip", 256, |g| {
        let ev = arb_event(g);
        for codec in codecs() {
            let back = codec
                .decode(&codec.encode(&ev))
                .unwrap_or_else(|e| panic!("{} decode failed: {e}", codec.content_type()));
            assert_eq!(back, ev, "codec {}", codec.content_type());
        }
    });
}

#[test]
fn every_codec_round_trips_batches() {
    forall("codec batch round-trip", 64, |g| {
        let events: Vec<Event> = (0..g.usize_in(0, 12)).map(|_| arb_event(g)).collect();
        for codec in codecs() {
            let back = codec
                .decode_batch(&codec.encode_batch(&events))
                .unwrap_or_else(|e| panic!("{} batch decode failed: {e}", codec.content_type()));
            assert_eq!(back, events, "codec {}", codec.content_type());
        }
    });
}

#[test]
fn quoted_values_and_microsecond_timestamps_survive_text() {
    forall("quoting and timestamps", 256, |g| {
        let ev = Event::builder("prog", "host")
            .event_type("MSG")
            .timestamp(Timestamp::from_micros(g.u64(250_000_000_000_000_000)))
            .field("TEXT", Value::Str(g.printable_string(60)))
            .field("EMPTY", Value::Str(String::new()))
            .build();
        let back = text::decode(&text::encode(&ev)).expect("decodes");
        assert_eq!(back.timestamp, ev.timestamp, "microseconds preserved");
        assert_eq!(
            back.field("TEXT")
                .and_then(Value::as_str)
                .map(str::to_owned),
            ev.field("TEXT").and_then(Value::as_str).map(str::to_owned)
        );
        assert_eq!(back.field("EMPTY"), Some(&Value::Str(String::new())));
    });
}

#[test]
fn timestamp_date_round_trip() {
    forall("DATE round-trip", 512, |g| {
        let ts = Timestamp::from_micros(g.u64(250_000_000_000_000_000));
        let parsed = Timestamp::parse_ulm_date(&ts.to_ulm_date()).expect("own output parses");
        assert_eq!(parsed, ts);
    });
}

#[test]
fn decoders_never_panic_on_arbitrary_input() {
    forall("decoder robustness", 512, |g| {
        let junk_text = g.printable_string(200);
        let _ = text::decode(&junk_text);
        let junk_bytes = g.bytes(256);
        let _ = binary::decode(&junk_bytes);
        for codec in codecs() {
            let _ = codec.decode(&junk_bytes);
            let _ = codec.decode_batch(&junk_bytes);
        }
    });
}
