//! Property-based tests: every representable event must round-trip through
//! all three codecs (text, binary, JSON) without loss.

use jamm_ulm::{binary, json, text, Event, Level, Timestamp, Value};
use proptest::prelude::*;

fn arb_level() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::Emergency),
        Just(Level::Alert),
        Just(Level::Critical),
        Just(Level::Error),
        Just(Level::Warning),
        Just(Level::Notice),
        Just(Level::Info),
        Just(Level::Debug),
        Just(Level::Usage),
    ]
}

/// Identifier-like strings (hostnames, program names, event names).
fn arb_ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_.-]{0,30}"
}

/// Field keys: ULM-safe (no '=', no whitespace, non-empty).
fn arb_key() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9_.]{0,20}"
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u64>().prop_map(Value::UInt),
        any::<i64>().prop_map(|v| if v >= 0 {
            // Non-negative signed values re-infer as UInt from text; keep the
            // text round-trip property exact by restricting Int to negatives.
            Value::Int(-(v.saturating_abs().max(1)))
        } else {
            Value::Int(v)
        }),
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        // Strings that are not accidentally numeric/boolean.
        "[a-zA-Z_][a-zA-Z_ /:-]{0,40}".prop_filter("not keyword", |s| {
            s != "true" && s != "false" && s.parse::<f64>().is_err()
        })
        .prop_map(Value::Str),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        // Timestamps within civil-date range handled by the ULM DATE codec
        // (year <= 9999).
        0u64..250_000_000_000_000_000u64,
        arb_ident(),
        arb_ident(),
        arb_level(),
        arb_ident(),
        prop::collection::vec((arb_key(), arb_value()), 0..8),
    )
        .prop_map(|(ts, host, prog, level, event_type, fields)| {
            let mut b = Event::builder(prog, host)
                .level(level)
                .event_type(event_type)
                .timestamp(Timestamp::from_micros(ts));
            let mut seen = std::collections::HashSet::new();
            for (k, v) in fields {
                if seen.insert(k.clone()) {
                    b = b.field(k, v);
                }
            }
            b.build()
        })
}

proptest! {
    #[test]
    fn binary_round_trip(ev in arb_event()) {
        let frame = binary::encode(&ev);
        let (back, consumed) = binary::decode(&frame).unwrap();
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(back, ev);
    }

    #[test]
    fn text_round_trip_preserves_structure(ev in arb_event()) {
        let line = text::encode(&ev);
        let back = text::decode(&line).unwrap();
        prop_assert_eq!(back.timestamp, ev.timestamp);
        prop_assert_eq!(&back.host, &ev.host);
        prop_assert_eq!(&back.program, &ev.program);
        prop_assert_eq!(back.level, ev.level);
        prop_assert_eq!(&back.event_type, &ev.event_type);
        prop_assert_eq!(back.fields.len(), ev.fields.len());
        for ((k1, v1), (k2, v2)) in back.fields.iter().zip(ev.fields.iter()) {
            prop_assert_eq!(k1, k2);
            // Floats may lose the distinction with integers only when the
            // original was integral; numeric equality must still hold.
            match (v1.as_f64(), v2.as_f64()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() <= b.abs() * 1e-12 + 1e-9),
                _ => prop_assert_eq!(v1, v2),
            }
        }
    }

    #[test]
    fn json_round_trip_preserves_fields(ev in arb_event()) {
        let s = json::encode(&ev);
        let back = json::decode(&s).unwrap();
        prop_assert_eq!(back.timestamp, ev.timestamp);
        prop_assert_eq!(back.level, ev.level);
        for (k, v) in &ev.fields {
            let got = back.field(k).unwrap();
            match (got.as_f64(), v.as_f64()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() <= b.abs() * 1e-12 + 1e-9),
                _ => prop_assert_eq!(got, v),
            }
        }
    }

    #[test]
    fn timestamp_date_round_trip(us in 0u64..250_000_000_000_000_000u64) {
        let ts = Timestamp::from_micros(us);
        let parsed = Timestamp::parse_ulm_date(&ts.to_ulm_date()).unwrap();
        prop_assert_eq!(parsed, ts);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_text(s in "\\PC{0,200}") {
        let _ = text::decode(&s);
    }

    #[test]
    fn binary_decoder_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = binary::decode(&bytes);
    }
}
