//! # jamm-archive — the event archive
//!
//! "It is important to archive event data in order to provide the ability to
//! do historical analysis of system performance, and determine when/where
//! changes occurred. ... the archive is just another consumer" (§2.2).
//!
//! [`EventArchive`] is a time-indexed store of ULM events with range, host
//! and event-type queries, normal/abnormal tagging (the paper wants "a good
//! sampling of both normal and abnormal system operation"), and ULM / JSON
//! export so other tools — e.g. a Network Weather Service style predictor —
//! can consume the history.
//!
//! Since PR 2 the archive sits on the [`jamm_tsdb`] storage engine: an
//! in-memory archive ([`EventArchive::new`]) behaves exactly as before,
//! while a persistent one ([`EventArchive::open`]) survives process
//! restart via WAL replay and segment recovery.  Either way, range scans
//! prune whole segments through per-segment catalogs, stream results
//! through [`EventArchive::scan`] instead of materializing them, and the
//! archived history can be pushed back through a gateway with
//! [`ReplaySource`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod replay;

pub use replay::ReplaySource;

use std::collections::BTreeMap;
use std::path::Path;

use jamm_core::flow::{EventSink, SinkError};
use jamm_core::query::{ParseError, Plan, Predicate};
use jamm_core::sync::RwLock;
use jamm_tsdb::{ScanIter, SegmentCatalog, Tsdb, TsdbError, TsdbOptions, TsdbStats};
use jamm_ulm::{Event, SharedEvent, Timestamp};

/// A label attached to a stored span of events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperationLabel {
    /// The system was behaving normally.
    Normal,
    /// The span covers a fault or performance anomaly.
    Abnormal,
}

/// Query parameters for the archive.
#[derive(Debug, Clone, Default)]
pub struct ArchiveQuery {
    /// Inclusive lower bound on event time.
    pub from: Option<Timestamp>,
    /// Exclusive upper bound on event time.
    pub to: Option<Timestamp>,
    /// Restrict to this host.
    pub host: Option<String>,
    /// Restrict to this event type.
    pub event_type: Option<String>,
    /// Maximum number of events to return (0 = unlimited).
    pub limit: usize,
}

impl ArchiveQuery {
    /// Query everything.
    pub fn all() -> Self {
        ArchiveQuery::default()
    }

    /// Builder-style: time range.
    pub fn between(mut self, from: Timestamp, to: Timestamp) -> Self {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    /// Builder-style: restrict to a host.
    pub fn host(mut self, host: impl Into<String>) -> Self {
        self.host = Some(host.into());
        self
    }

    /// Builder-style: restrict to an event type.
    pub fn event_type(mut self, ty: impl Into<String>) -> Self {
        self.event_type = Some(ty.into());
        self
    }

    /// Builder-style: cap the number of results.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = n;
        self
    }

    /// Lower into the unified query-plane IR, limit included — the whole
    /// query (time range, host, type, limit) pushes down to the storage
    /// engine's plan-driven scan.
    pub fn to_predicate(&self) -> Predicate {
        let mut parts = Vec::new();
        if self.from.is_some() || self.to.is_some() {
            parts.push(Predicate::TimeRange {
                from_micros: self.from.map(|t| t.as_micros()),
                to_micros: self.to.map(|t| t.as_micros()),
            });
        }
        if let Some(host) = &self.host {
            parts.push(Predicate::Hosts(vec![host.clone()]));
        }
        if let Some(ty) = &self.event_type {
            parts.push(Predicate::EventTypes(vec![ty.clone()]));
        }
        if self.limit > 0 {
            parts.push(Predicate::Limit(self.limit));
        }
        Predicate::And(parts)
    }

    /// Compile into an executable plan.
    pub fn to_plan(&self) -> Plan {
        self.to_predicate().compile()
    }
}

/// Summary of the archive's contents, published in the directory so
/// consumers can discover what history exists ("It also creates an archive
/// directory service entry indicating the contents of the archive").
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveCatalog {
    /// Total number of stored events.
    pub event_count: usize,
    /// Earliest stored timestamp.
    pub earliest: Option<Timestamp>,
    /// Latest stored timestamp.
    pub latest: Option<Timestamp>,
    /// Event types present and their counts.
    pub event_types: BTreeMap<String, usize>,
    /// Hosts present and their counts.
    pub hosts: BTreeMap<String, usize>,
}

/// A streaming, time-ordered iterator over query results.
///
/// This is the storage engine's plan-driven [`ScanIter`]: it owns its
/// segment handles (so it can outlive the archive borrow it was created
/// from), decodes lazily, and stops the k-way merge — releasing every
/// remaining segment handle — as soon as a pushed-down limit is reached.
pub type ArchiveScan = ScanIter;

/// Name of the sidecar file persisting operation labels in a store
/// directory (one `from to label` line per span).
const LABELS_FILE: &str = "labels.log";

/// A time-indexed archive of monitoring events, persistent when opened on
/// a directory.
#[derive(Debug)]
pub struct EventArchive {
    db: Tsdb,
    labels: RwLock<Vec<(Timestamp, Timestamp, OperationLabel)>>,
    /// Sidecar path persisting the labels (persistent archives only).
    labels_path: Option<std::path::PathBuf>,
}

impl Default for EventArchive {
    fn default() -> Self {
        EventArchive::new()
    }
}

impl EventArchive {
    /// Create an empty, in-memory (volatile) archive.
    pub fn new() -> Self {
        EventArchive {
            db: Tsdb::in_memory(),
            labels: RwLock::new(Vec::new()),
            labels_path: None,
        }
    }

    /// Open (creating if needed) a persistent archive in `dir`.  Existing
    /// segments are loaded, the write-ahead log is replayed and saved
    /// operation labels are reloaded, so a populated archive survives
    /// process restart.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, TsdbError> {
        Self::open_with(dir, TsdbOptions::default())
    }

    /// Open a persistent archive with explicit storage-engine options.
    pub fn open_with(dir: impl AsRef<Path>, opts: TsdbOptions) -> Result<Self, TsdbError> {
        let labels_path = dir.as_ref().join(LABELS_FILE);
        let labels = load_labels(&labels_path);
        Ok(EventArchive {
            db: Tsdb::open_with(dir, opts)?,
            labels: RwLock::new(labels),
            labels_path: Some(labels_path),
        })
    }

    /// Create an in-memory archive with explicit storage-engine options
    /// (small memtables are useful in tests and benches).
    pub fn in_memory_with(opts: TsdbOptions) -> Self {
        EventArchive {
            db: Tsdb::in_memory_with(opts),
            labels: RwLock::new(Vec::new()),
            labels_path: None,
        }
    }

    /// The underlying storage engine (stats, segment catalogs, manual
    /// maintenance).
    pub fn tsdb(&self) -> &Tsdb {
        &self.db
    }

    /// Storage-engine observability counters (appends, seals, pruned
    /// segments, ...).
    pub fn stats(&self) -> &TsdbStats {
        self.db.stats()
    }

    /// Store one event.  Storage errors (a failing disk under a persistent
    /// archive) are swallowed here to keep the hot path infallible; use
    /// [`EventArchive::try_store`] where the caller can handle them.
    pub fn store(&self, event: Event) {
        let _ = self.db.append(event);
    }

    /// Store one event, surfacing storage errors.
    pub fn try_store(&self, event: Event) -> Result<(), TsdbError> {
        self.db.append(event).map(|_| ())
    }

    /// Store one already-shared event: the archive keeps the same `Arc`
    /// the gateway fanned out — archiving is a refcount bump.  Errors are
    /// swallowed as in [`EventArchive::store`].
    pub fn store_shared(&self, event: SharedEvent) {
        let _ = self.db.append_shared(event);
    }

    /// Store a batch of shared events under a single storage-engine lock
    /// (and, for persistent archives, one WAL write) without copying any
    /// event.  The caller keeps its buffer — the archiver agent drains
    /// subscriptions into one reusable scratch vector, stores from it, and
    /// clears it, so its steady state allocates nothing per poll.
    pub fn try_store_shared_batch(&self, events: &[SharedEvent]) -> Result<usize, TsdbError> {
        self.db.append_shared_batch(events)
    }

    /// Store a batch under a single storage-engine lock acquisition and —
    /// for persistent archives — a single WAL write.  Returns how many
    /// events were stored.  A storage error drops the batch (see
    /// [`EventArchive::try_store_all`] for the recoverable variant).
    pub fn store_all(&self, events: impl IntoIterator<Item = Event>) -> usize {
        let batch: Vec<Event> = events.into_iter().collect();
        self.db.append_batch(batch).unwrap_or(0)
    }

    /// Store a batch, handing it back on failure so the caller can retry
    /// later instead of losing the events (the archiver agent's poll loop
    /// uses this to survive transient disk errors).
    pub fn try_store_all(&self, events: Vec<Event>) -> Result<usize, (TsdbError, Vec<Event>)> {
        self.db.try_append_batch(events)
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// True if the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Seal the hot (memtable) tier into an immutable segment now.
    /// Returns the new segment's catalog, or `None` when there was nothing
    /// to seal.  The archiver agent calls this when flushing.  Errors are
    /// swallowed (nothing is lost — the memtable is restored and the seal
    /// retries later); use [`EventArchive::try_seal`] to observe them.
    pub fn seal(&self) -> Option<SegmentCatalog> {
        self.db.seal().unwrap_or(None)
    }

    /// Seal the hot tier, surfacing storage errors.
    pub fn try_seal(&self) -> Result<Option<SegmentCatalog>, TsdbError> {
        self.db.seal()
    }

    /// Merge runs of small segments; returns the net number of segments
    /// removed.  Errors are swallowed (a failed compaction leaves the
    /// store untouched); use [`EventArchive::try_compact`] to observe
    /// them.
    pub fn compact(&self) -> usize {
        self.db.compact().unwrap_or(0)
    }

    /// Merge runs of small segments, surfacing storage errors.
    pub fn try_compact(&self) -> Result<usize, TsdbError> {
        self.db.compact()
    }

    /// Per-segment catalogs, in segment order — the entries the archiver
    /// agent publishes in the directory.
    pub fn segment_catalogs(&self) -> Vec<SegmentCatalog> {
        self.db.segment_catalogs()
    }

    /// Label a time span as normal or abnormal operation.  Persistent
    /// archives append the label to a sidecar file (best effort) so the
    /// classification history survives restart alongside the events.
    pub fn label_span(&self, from: Timestamp, to: Timestamp, label: OperationLabel) {
        self.labels.write().push((from, to, label));
        if let Some(path) = &self.labels_path {
            use std::io::Write;
            let tag = match label {
                OperationLabel::Normal => "normal",
                OperationLabel::Abnormal => "abnormal",
            };
            let line = format!("{} {} {tag}\n", from.as_micros(), to.as_micros());
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
        }
    }

    /// The label covering a timestamp, if any (later labels win).
    pub fn label_at(&self, t: Timestamp) -> Option<OperationLabel> {
        self.labels
            .read()
            .iter()
            .rev()
            .find(|(from, to, _)| t >= *from && t < *to)
            .map(|(_, _, l)| *l)
    }

    /// Stream matching events in time order without materializing the
    /// match set.  Segments that cannot satisfy the query's pushdown facts
    /// — time window, hosts, event types, per-series counts, severity
    /// floor — are pruned via their catalogs (see [`EventArchive::stats`]),
    /// and the limit stops the merge early.
    pub fn scan(&self, query: &ArchiveQuery) -> ArchiveScan {
        self.db.scan_plan(&query.to_plan())
    }

    /// Stream every event a compiled query-plane [`Plan`] matches — the
    /// same plans gateway subscriptions and directory searches run.  The
    /// scan evaluates through its own clone of the plan (fresh stateful
    /// memory), so e.g. an `(onchange)` historical query de-duplicates
    /// within this scan only.
    pub fn scan_plan(&self, plan: &Plan) -> ArchiveScan {
        self.db.scan_plan(plan)
    }

    /// Parse a query string in the unified grammar (e.g.
    /// `"(&(host=dpss1.lbl.gov)(level>=warning)(limit=100))"`) and stream
    /// the matching history.
    pub fn scan_str(&self, query: &str) -> Result<ArchiveScan, ParseError> {
        Ok(self.scan_plan(&Predicate::parse(query)?.compile()))
    }

    /// Run a query; results are in time order.
    pub fn query(&self, query: &ArchiveQuery) -> Vec<Event> {
        self.scan(query).collect()
    }

    /// Run a query string in the unified grammar; results are in time
    /// order.
    pub fn query_str(&self, query: &str) -> Result<Vec<Event>, ParseError> {
        Ok(self.scan_str(query)?.collect())
    }

    /// Build the catalog entry describing the archive's contents.
    pub fn catalog(&self) -> ArchiveCatalog {
        let c = self.db.catalog();
        ArchiveCatalog {
            event_count: c.event_count,
            earliest: c.earliest,
            latest: c.latest,
            event_types: c.event_types,
            hosts: c.hosts,
        }
    }

    /// Stream matching events as ULM text (one line per event) into a
    /// writer, without building the export in memory.  Returns the number
    /// of events written.
    pub fn export_ulm_to<W: std::io::Write>(
        &self,
        query: &ArchiveQuery,
        out: &mut W,
    ) -> std::io::Result<usize> {
        let mut n = 0;
        for e in self.scan(query) {
            out.write_all(jamm_ulm::text::encode(&e).as_bytes())?;
            out.write_all(b"\n")?;
            n += 1;
        }
        Ok(n)
    }

    /// Stream matching events as a JSON array into a writer.  Returns the
    /// number of events written.
    pub fn export_json_to<W: std::io::Write>(
        &self,
        query: &ArchiveQuery,
        out: &mut W,
    ) -> std::io::Result<usize> {
        out.write_all(b"[")?;
        let mut n = 0;
        for e in self.scan(query) {
            if n > 0 {
                out.write_all(b",")?;
            }
            out.write_all(jamm_ulm::json::to_json(&e).to_string().as_bytes())?;
            n += 1;
        }
        out.write_all(b"]")?;
        Ok(n)
    }

    /// Export matching events as ULM text (one line per event).
    pub fn export_ulm(&self, query: &ArchiveQuery) -> String {
        let mut out = Vec::new();
        self.export_ulm_to(query, &mut out)
            .expect("Vec<u8> writes cannot fail");
        String::from_utf8(out).expect("ULM text is UTF-8")
    }

    /// Export matching events as a JSON array.
    pub fn export_json(&self, query: &ArchiveQuery) -> String {
        let mut out = Vec::new();
        self.export_json_to(query, &mut out)
            .expect("Vec<u8> writes cannot fail");
        String::from_utf8(out).expect("JSON is UTF-8")
    }

    /// Drop events older than `cutoff`, returning how many were removed
    /// (retention management).  Whole expired segments are dropped without
    /// decoding them.  Errors are swallowed (a failed cut leaves the store
    /// untouched); use [`EventArchive::try_expire_before`] to observe them
    /// — a silently failing retention policy otherwise looks like a no-op.
    pub fn expire_before(&self, cutoff: Timestamp) -> usize {
        self.db.retain(cutoff).unwrap_or(0)
    }

    /// Drop events older than `cutoff`, surfacing storage errors.
    pub fn try_expire_before(&self, cutoff: Timestamp) -> Result<usize, TsdbError> {
        self.db.retain(cutoff)
    }
}

/// Load persisted labels from the sidecar file; a missing or partially
/// unparsable file yields what could be read (labels are an annotation,
/// not a source of truth worth refusing to open over).
fn load_labels(path: &Path) -> Vec<(Timestamp, Timestamp, OperationLabel)> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in contents.lines() {
        let mut parts = line.split_whitespace();
        let (Some(from), Some(to), Some(tag)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let (Ok(from), Ok(to)) = (from.parse::<u64>(), to.parse::<u64>()) else {
            continue;
        };
        let label = match tag {
            "normal" => OperationLabel::Normal,
            "abnormal" => OperationLabel::Abnormal,
            _ => continue,
        };
        out.push((
            Timestamp::from_micros(from),
            Timestamp::from_micros(to),
            label,
        ));
    }
    out
}

/// The archive is a terminal event sink: `accept` stores the event.
impl EventSink<Event> for EventArchive {
    fn accept(&self, event: &Event) -> Result<usize, SinkError> {
        self.db
            .append(event.clone())
            .map(|_| 1)
            .map_err(|e| SinkError::Rejected(e.to_string()))
    }

    fn accept_batch(&self, events: &[Event]) -> Result<usize, SinkError> {
        self.db
            .append_batch(events.to_vec())
            .map_err(|e| SinkError::Rejected(e.to_string()))
    }
}

/// The zero-copy sink: accepting a [`SharedEvent`] stores the caller's
/// `Arc` directly (a replayed or fanned-out event is archived without any
/// copy).
impl EventSink<SharedEvent> for EventArchive {
    fn accept(&self, event: &SharedEvent) -> Result<usize, SinkError> {
        self.db
            .append_shared(SharedEvent::clone(event))
            .map(|_| 1)
            .map_err(|e| SinkError::Rejected(e.to_string()))
    }

    fn accept_batch(&self, events: &[SharedEvent]) -> Result<usize, SinkError> {
        self.db
            .append_shared_batch(events)
            .map_err(|e| SinkError::Rejected(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_tsdb::test_util::TempDir;
    use jamm_ulm::Level;

    fn ev(host: &str, ty: &str, t: u64, value: f64) -> Event {
        Event::builder("sensor", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(t))
            .value(value)
            .build()
    }

    fn populated() -> EventArchive {
        let a = EventArchive::new();
        for t in 0..100u64 {
            a.store(ev("dpss1.lbl.gov", "CPU_TOTAL", 1_000 + t, t as f64));
            if t % 10 == 0 {
                a.store(ev("mems.cairn.net", "TCPD_RETRANSMITS", 1_000 + t, 1.0));
            }
        }
        a
    }

    #[test]
    fn store_and_count() {
        let a = populated();
        assert_eq!(a.len(), 110);
        assert!(!a.is_empty());
    }

    #[test]
    fn time_range_query_is_half_open() {
        let a = populated();
        let q =
            ArchiveQuery::all().between(Timestamp::from_secs(1_010), Timestamp::from_secs(1_020));
        let r = a.query(&q);
        assert!(r.iter().all(|e| e.timestamp >= Timestamp::from_secs(1_010)
            && e.timestamp < Timestamp::from_secs(1_020)));
        // 10 CPU events (t=1010..1019) + 1 retransmit at t=1010.
        assert_eq!(r.len(), 11);
    }

    #[test]
    fn host_and_type_queries_with_limit() {
        let a = populated();
        let cpu = a.query(&ArchiveQuery::all().event_type("CPU_TOTAL"));
        assert_eq!(cpu.len(), 100);
        let mems = a.query(&ArchiveQuery::all().host("mems.cairn.net"));
        assert_eq!(mems.len(), 10);
        let limited = a.query(&ArchiveQuery::all().limit(7));
        assert_eq!(limited.len(), 7);
        // Results are in time order.
        let times: Vec<_> = cpu.iter().map(|e| e.timestamp).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn events_with_identical_timestamps_are_all_kept() {
        let a = EventArchive::new();
        for i in 0..5 {
            a.store(ev("h", "X", 42, i as f64));
        }
        assert_eq!(a.len(), 5);
        assert_eq!(a.query(&ArchiveQuery::all()).len(), 5);
    }

    #[test]
    fn catalog_summarises_contents() {
        let a = populated();
        let c = a.catalog();
        assert_eq!(c.event_count, 110);
        assert_eq!(c.event_types.get("CPU_TOTAL"), Some(&100));
        assert_eq!(c.event_types.get("TCPD_RETRANSMITS"), Some(&10));
        assert_eq!(c.hosts.len(), 2);
        assert_eq!(c.earliest, Some(Timestamp::from_secs(1_000)));
        assert_eq!(c.latest, Some(Timestamp::from_secs(1_099)));
    }

    #[test]
    fn normal_abnormal_labels() {
        let a = populated();
        a.label_span(
            Timestamp::from_secs(1_000),
            Timestamp::from_secs(1_050),
            OperationLabel::Normal,
        );
        a.label_span(
            Timestamp::from_secs(1_030),
            Timestamp::from_secs(1_040),
            OperationLabel::Abnormal,
        );
        assert_eq!(
            a.label_at(Timestamp::from_secs(1_010)),
            Some(OperationLabel::Normal)
        );
        assert_eq!(
            a.label_at(Timestamp::from_secs(1_035)),
            Some(OperationLabel::Abnormal)
        );
        assert_eq!(
            a.label_at(Timestamp::from_secs(1_045)),
            Some(OperationLabel::Normal)
        );
        assert_eq!(a.label_at(Timestamp::from_secs(2_000)), None);
    }

    #[test]
    fn exports_round_trip() {
        let a = populated();
        let q = ArchiveQuery::all().event_type("TCPD_RETRANSMITS");
        let ulm = a.export_ulm(&q);
        assert_eq!(jamm_ulm::text::decode_all_lossy(&ulm).len(), 10);
        let json = a.export_json(&q);
        let parsed = jamm_core::json::Json::parse(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 10);
    }

    #[test]
    fn streaming_exports_match_string_exports() {
        let a = populated();
        let q = ArchiveQuery::all().host("dpss1.lbl.gov").limit(13);
        let mut ulm = Vec::new();
        assert_eq!(a.export_ulm_to(&q, &mut ulm).unwrap(), 13);
        assert_eq!(String::from_utf8(ulm).unwrap(), a.export_ulm(&q));
        let mut json = Vec::new();
        assert_eq!(a.export_json_to(&q, &mut json).unwrap(), 13);
        assert_eq!(String::from_utf8(json).unwrap(), a.export_json(&q));
        // Empty result is a valid empty JSON array.
        let none = ArchiveQuery::all().host("nowhere");
        assert_eq!(a.export_json(&none), "[]");
    }

    #[test]
    fn expiry_removes_old_events() {
        let a = populated();
        let removed = a.expire_before(Timestamp::from_secs(1_050));
        assert!(removed > 0);
        assert_eq!(a.len(), 110 - removed);
        assert!(a
            .query(&ArchiveQuery::all())
            .iter()
            .all(|e| e.timestamp >= Timestamp::from_secs(1_050)));
    }

    #[test]
    fn scan_streams_in_order_with_sealed_segments() {
        let a = EventArchive::in_memory_with(TsdbOptions {
            memtable_max_events: 16,
            small_segment_events: 16,
            sync_wal: false,
        });
        for t in 0..100u64 {
            a.store(ev("h", "X", 1_000 + t, t as f64));
        }
        assert!(a.tsdb().segment_count() > 1, "multiple sealed segments");
        let mut prev = Timestamp::EPOCH;
        let mut n = 0;
        for e in a.scan(&ArchiveQuery::all()) {
            assert!(e.timestamp >= prev);
            prev = e.timestamp;
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn persistent_archive_survives_restart() {
        let dir = TempDir::new("archive-restart");
        {
            let a = EventArchive::open(dir.path()).unwrap();
            for t in 0..50u64 {
                a.store(ev("h", "CPU_TOTAL", t, t as f64));
            }
            a.seal();
            for t in 50..60u64 {
                a.store(ev("h", "CPU_TOTAL", t, t as f64));
            }
            // Dropped without flushing: the last 10 live only in the WAL.
        }
        let a = EventArchive::open(dir.path()).unwrap();
        assert_eq!(a.len(), 60);
        let r = a.query(
            &ArchiveQuery::all().between(Timestamp::from_secs(45), Timestamp::from_secs(55)),
        );
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn labels_survive_restart_on_persistent_archives() {
        let dir = TempDir::new("archive-labels");
        {
            let a = EventArchive::open(dir.path()).unwrap();
            a.store(ev("h", "X", 10, 1.0));
            a.label_span(
                Timestamp::from_secs(0),
                Timestamp::from_secs(50),
                OperationLabel::Normal,
            );
            a.label_span(
                Timestamp::from_secs(20),
                Timestamp::from_secs(30),
                OperationLabel::Abnormal,
            );
        }
        let a = EventArchive::open(dir.path()).unwrap();
        assert_eq!(
            a.label_at(Timestamp::from_secs(10)),
            Some(OperationLabel::Normal)
        );
        assert_eq!(
            a.label_at(Timestamp::from_secs(25)),
            Some(OperationLabel::Abnormal),
            "later labels still win after reload"
        );
        assert_eq!(a.label_at(Timestamp::from_secs(99)), None);
    }

    #[test]
    fn range_scans_prune_segments() {
        let a = EventArchive::in_memory_with(TsdbOptions {
            memtable_max_events: 10,
            small_segment_events: 10,
            sync_wal: false,
        });
        for base in [0u64, 1_000, 2_000, 3_000] {
            for t in 0..10 {
                a.store(ev("h", "X", base + t, 0.0));
            }
            a.seal();
        }
        let q =
            ArchiveQuery::all().between(Timestamp::from_secs(2_000), Timestamp::from_secs(2_010));
        assert_eq!(a.query(&q).len(), 10);
        assert_eq!(a.stats().segments_scanned(), 1);
        assert_eq!(a.stats().segments_pruned(), 3);
    }
}
