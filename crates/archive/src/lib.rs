//! # jamm-archive — the event archive
//!
//! "It is important to archive event data in order to provide the ability to
//! do historical analysis of system performance, and determine when/where
//! changes occurred. ... the archive is just another consumer" (§2.2).
//!
//! [`EventArchive`] is a time-indexed store of ULM events with range, host
//! and event-type queries, normal/abnormal tagging (the paper wants "a good
//! sampling of both normal and abnormal system operation"), and ULM / JSON
//! export so other tools — e.g. a Network Weather Service style predictor —
//! can consume the history.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use jamm_core::flow::{EventSink, SinkError};
use jamm_core::sync::RwLock;
use jamm_ulm::{Event, Timestamp};

/// A label attached to a stored span of events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperationLabel {
    /// The system was behaving normally.
    Normal,
    /// The span covers a fault or performance anomaly.
    Abnormal,
}

/// Query parameters for the archive.
#[derive(Debug, Clone, Default)]
pub struct ArchiveQuery {
    /// Inclusive lower bound on event time.
    pub from: Option<Timestamp>,
    /// Exclusive upper bound on event time.
    pub to: Option<Timestamp>,
    /// Restrict to this host.
    pub host: Option<String>,
    /// Restrict to this event type.
    pub event_type: Option<String>,
    /// Maximum number of events to return (0 = unlimited).
    pub limit: usize,
}

impl ArchiveQuery {
    /// Query everything.
    pub fn all() -> Self {
        ArchiveQuery::default()
    }

    /// Builder-style: time range.
    pub fn between(mut self, from: Timestamp, to: Timestamp) -> Self {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    /// Builder-style: restrict to a host.
    pub fn host(mut self, host: impl Into<String>) -> Self {
        self.host = Some(host.into());
        self
    }

    /// Builder-style: restrict to an event type.
    pub fn event_type(mut self, ty: impl Into<String>) -> Self {
        self.event_type = Some(ty.into());
        self
    }

    /// Builder-style: cap the number of results.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = n;
        self
    }

    fn matches(&self, event: &Event) -> bool {
        if let Some(from) = self.from {
            if event.timestamp < from {
                return false;
            }
        }
        if let Some(to) = self.to {
            if event.timestamp >= to {
                return false;
            }
        }
        if let Some(host) = &self.host {
            if &event.host != host {
                return false;
            }
        }
        if let Some(ty) = &self.event_type {
            if &event.event_type != ty {
                return false;
            }
        }
        true
    }
}

/// Summary of the archive's contents, published in the directory so
/// consumers can discover what history exists ("It also creates an archive
/// directory service entry indicating the contents of the archive").
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveCatalog {
    /// Total number of stored events.
    pub event_count: usize,
    /// Earliest stored timestamp.
    pub earliest: Option<Timestamp>,
    /// Latest stored timestamp.
    pub latest: Option<Timestamp>,
    /// Event types present and their counts.
    pub event_types: BTreeMap<String, usize>,
    /// Hosts present and their counts.
    pub hosts: BTreeMap<String, usize>,
}

/// A time-indexed archive of monitoring events.
#[derive(Debug, Default)]
pub struct EventArchive {
    /// Events keyed by (timestamp, insertion sequence) for stable ordering.
    events: RwLock<BTreeMap<(Timestamp, u64), Event>>,
    labels: RwLock<Vec<(Timestamp, Timestamp, OperationLabel)>>,
    seq: RwLock<u64>,
}

impl EventArchive {
    /// Create an empty archive.
    pub fn new() -> Self {
        EventArchive::default()
    }

    /// Store one event.
    pub fn store(&self, event: Event) {
        let mut seq = self.seq.write();
        *seq += 1;
        self.events.write().insert((event.timestamp, *seq), event);
    }

    /// Store many events.
    pub fn store_all(&self, events: impl IntoIterator<Item = Event>) {
        for e in events {
            self.store(e);
        }
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.events.read().len()
    }

    /// True if the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.events.read().is_empty()
    }

    /// Label a time span as normal or abnormal operation.
    pub fn label_span(&self, from: Timestamp, to: Timestamp, label: OperationLabel) {
        self.labels.write().push((from, to, label));
    }

    /// The label covering a timestamp, if any (later labels win).
    pub fn label_at(&self, t: Timestamp) -> Option<OperationLabel> {
        self.labels
            .read()
            .iter()
            .rev()
            .find(|(from, to, _)| t >= *from && t < *to)
            .map(|(_, _, l)| *l)
    }

    /// Run a query; results are in time order.
    pub fn query(&self, query: &ArchiveQuery) -> Vec<Event> {
        let events = self.events.read();
        let lower = query.from.map(|t| (t, 0)).unwrap_or((Timestamp::EPOCH, 0));
        let mut out = Vec::new();
        for ((ts, _), event) in events.range(lower..) {
            if let Some(to) = query.to {
                if *ts >= to {
                    break;
                }
            }
            if query.matches(event) {
                out.push(event.clone());
                if query.limit > 0 && out.len() >= query.limit {
                    break;
                }
            }
        }
        out
    }

    /// Build the catalog entry describing the archive's contents.
    pub fn catalog(&self) -> ArchiveCatalog {
        let events = self.events.read();
        let mut event_types: BTreeMap<String, usize> = BTreeMap::new();
        let mut hosts: BTreeMap<String, usize> = BTreeMap::new();
        for e in events.values() {
            *event_types.entry(e.event_type.clone()).or_insert(0) += 1;
            *hosts.entry(e.host.clone()).or_insert(0) += 1;
        }
        ArchiveCatalog {
            event_count: events.len(),
            earliest: events.keys().next().map(|(t, _)| *t),
            latest: events.keys().next_back().map(|(t, _)| *t),
            event_types,
            hosts,
        }
    }

    /// Export matching events as ULM text (one line per event).
    pub fn export_ulm(&self, query: &ArchiveQuery) -> String {
        let mut out = String::new();
        for e in self.query(query) {
            out.push_str(&jamm_ulm::text::encode(&e));
            out.push('\n');
        }
        out
    }

    /// Export matching events as a JSON array.
    pub fn export_json(&self, query: &ArchiveQuery) -> String {
        let values: Vec<jamm_core::json::Json> = self
            .query(query)
            .iter()
            .map(jamm_ulm::json::to_json)
            .collect();
        jamm_core::json::Json::Array(values).to_string()
    }

    /// Drop events older than `cutoff`, returning how many were removed
    /// (retention management).
    pub fn expire_before(&self, cutoff: Timestamp) -> usize {
        let mut events = self.events.write();
        let keep = events.split_off(&(cutoff, 0));
        let removed = events.len();
        *events = keep;
        removed
    }
}

/// The archive is a terminal event sink: `accept` stores the event.
impl EventSink<Event> for EventArchive {
    fn accept(&self, event: &Event) -> Result<usize, SinkError> {
        self.store(event.clone());
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_ulm::Level;

    fn ev(host: &str, ty: &str, t: u64, value: f64) -> Event {
        Event::builder("sensor", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(t))
            .value(value)
            .build()
    }

    fn populated() -> EventArchive {
        let a = EventArchive::new();
        for t in 0..100u64 {
            a.store(ev("dpss1.lbl.gov", "CPU_TOTAL", 1_000 + t, t as f64));
            if t % 10 == 0 {
                a.store(ev("mems.cairn.net", "TCPD_RETRANSMITS", 1_000 + t, 1.0));
            }
        }
        a
    }

    #[test]
    fn store_and_count() {
        let a = populated();
        assert_eq!(a.len(), 110);
        assert!(!a.is_empty());
    }

    #[test]
    fn time_range_query_is_half_open() {
        let a = populated();
        let q =
            ArchiveQuery::all().between(Timestamp::from_secs(1_010), Timestamp::from_secs(1_020));
        let r = a.query(&q);
        assert!(r.iter().all(|e| e.timestamp >= Timestamp::from_secs(1_010)
            && e.timestamp < Timestamp::from_secs(1_020)));
        // 10 CPU events (t=1010..1019) + 1 retransmit at t=1010.
        assert_eq!(r.len(), 11);
    }

    #[test]
    fn host_and_type_queries_with_limit() {
        let a = populated();
        let cpu = a.query(&ArchiveQuery::all().event_type("CPU_TOTAL"));
        assert_eq!(cpu.len(), 100);
        let mems = a.query(&ArchiveQuery::all().host("mems.cairn.net"));
        assert_eq!(mems.len(), 10);
        let limited = a.query(&ArchiveQuery::all().limit(7));
        assert_eq!(limited.len(), 7);
        // Results are in time order.
        let times: Vec<_> = cpu.iter().map(|e| e.timestamp).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn events_with_identical_timestamps_are_all_kept() {
        let a = EventArchive::new();
        for i in 0..5 {
            a.store(ev("h", "X", 42, i as f64));
        }
        assert_eq!(a.len(), 5);
        assert_eq!(a.query(&ArchiveQuery::all()).len(), 5);
    }

    #[test]
    fn catalog_summarises_contents() {
        let a = populated();
        let c = a.catalog();
        assert_eq!(c.event_count, 110);
        assert_eq!(c.event_types.get("CPU_TOTAL"), Some(&100));
        assert_eq!(c.event_types.get("TCPD_RETRANSMITS"), Some(&10));
        assert_eq!(c.hosts.len(), 2);
        assert_eq!(c.earliest, Some(Timestamp::from_secs(1_000)));
        assert_eq!(c.latest, Some(Timestamp::from_secs(1_099)));
    }

    #[test]
    fn normal_abnormal_labels() {
        let a = populated();
        a.label_span(
            Timestamp::from_secs(1_000),
            Timestamp::from_secs(1_050),
            OperationLabel::Normal,
        );
        a.label_span(
            Timestamp::from_secs(1_030),
            Timestamp::from_secs(1_040),
            OperationLabel::Abnormal,
        );
        assert_eq!(
            a.label_at(Timestamp::from_secs(1_010)),
            Some(OperationLabel::Normal)
        );
        assert_eq!(
            a.label_at(Timestamp::from_secs(1_035)),
            Some(OperationLabel::Abnormal)
        );
        assert_eq!(
            a.label_at(Timestamp::from_secs(1_045)),
            Some(OperationLabel::Normal)
        );
        assert_eq!(a.label_at(Timestamp::from_secs(2_000)), None);
    }

    #[test]
    fn exports_round_trip() {
        let a = populated();
        let q = ArchiveQuery::all().event_type("TCPD_RETRANSMITS");
        let ulm = a.export_ulm(&q);
        assert_eq!(jamm_ulm::text::decode_all_lossy(&ulm).len(), 10);
        let json = a.export_json(&q);
        let parsed = jamm_core::json::Json::parse(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 10);
    }

    #[test]
    fn expiry_removes_old_events() {
        let a = populated();
        let removed = a.expire_before(Timestamp::from_secs(1_050));
        assert!(removed > 0);
        assert_eq!(a.len(), 110 - removed);
        assert!(a
            .query(&ArchiveQuery::all())
            .iter()
            .all(|e| e.timestamp >= Timestamp::from_secs(1_050)));
    }
}
