//! Historical replay: feed an archived time range back into the live
//! pipeline.
//!
//! The paper archives monitoring data "to provide the ability to do
//! historical analysis of system performance"; [`ReplaySource`] closes the
//! loop by making an archive range an [`EventSource`], so an archived
//! MATISSE run can be replayed through an event gateway into the same
//! collectors / nlv-style analysis that watched it live.

use jamm_core::flow::{EventSink, EventSource};
use jamm_ulm::SharedEvent;

use crate::{ArchiveQuery, ArchiveScan, EventArchive};

/// An [`EventSource`] streaming an archived range in time order.
///
/// The source owns its scan (segment data decodes lazily), so it stays
/// valid after the archive borrow ends and never materializes the range.
/// Each decoded event is wrapped once as a [`SharedEvent`]; pumping it
/// into a gateway then fans it out to every subscriber by refcount, so a
/// replayed run costs the same per-event work as the live run did.
#[derive(Debug)]
pub struct ReplaySource {
    scan: ArchiveScan,
    batch: usize,
    replayed: usize,
    /// An event a sink rejected in [`ReplaySource::pump`], staged so the
    /// next pump or drain retries it instead of losing it.
    unsent: Option<SharedEvent>,
}

impl ReplaySource {
    /// Replay every event matching `query`, in time order.
    pub fn new(archive: &EventArchive, query: &ArchiveQuery) -> ReplaySource {
        Self::from_scan(archive.scan(query))
    }

    /// Replay every event a compiled query-plane plan matches (the
    /// builder-style predicate path).
    pub fn from_plan(archive: &EventArchive, plan: &jamm_core::query::Plan) -> ReplaySource {
        Self::from_scan(archive.scan_plan(plan))
    }

    /// Replay every event matching a query string in the unified grammar,
    /// e.g. `"(&(type=CPU_TOTAL)(time>=5s)(time<15s))"`.
    pub fn from_query(
        archive: &EventArchive,
        query: &str,
    ) -> Result<ReplaySource, jamm_core::query::ParseError> {
        Ok(Self::from_scan(archive.scan_str(query)?))
    }

    fn from_scan(scan: ArchiveScan) -> ReplaySource {
        ReplaySource {
            scan,
            batch: 0,
            replayed: 0,
            unsent: None,
        }
    }

    /// Limit each [`EventSource::drain_into`] call to at most `n` events
    /// (0 = unlimited), so a replay can be paced instead of arriving as
    /// one burst.
    pub fn with_batch(mut self, n: usize) -> ReplaySource {
        self.batch = n;
        self
    }

    /// Events replayed so far.
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Push the remaining events into a sink (e.g. a gateway, so
    /// subscribers see the archived run as a live stream).  Stops early if
    /// the sink rejects an event — the rejected event stays staged and a
    /// later pump (or drain) retries it, so nothing is skipped.  Returns
    /// how many were delivered to the sink.
    pub fn pump(&mut self, sink: &dyn EventSink<SharedEvent>) -> usize {
        let mut n = 0;
        while let Some(event) = self
            .unsent
            .take()
            .or_else(|| self.scan.next().map(SharedEvent::new))
        {
            if sink.accept(&event).is_err() {
                self.unsent = Some(event);
                break;
            }
            self.replayed += 1;
            n += 1;
        }
        n
    }
}

impl EventSource<SharedEvent> for ReplaySource {
    fn drain_into(&mut self, out: &mut Vec<SharedEvent>) -> usize {
        let before = out.len();
        let limit = if self.batch == 0 {
            usize::MAX
        } else {
            self.batch
        };
        if let Some(event) = self.unsent.take() {
            out.push(event);
        }
        while out.len() - before < limit {
            match self.scan.next() {
                Some(event) => out.push(SharedEvent::new(event)),
                None => break,
            }
        }
        let moved = out.len() - before;
        self.replayed += moved;
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_core::flow::SinkError;
    use jamm_core::sync::Mutex;
    use jamm_ulm::{Event, Level, Timestamp};

    fn ev(t: u64) -> Event {
        Event::builder("p", "h")
            .level(Level::Usage)
            .event_type("X")
            .timestamp(Timestamp::from_secs(t))
            .value(t as f64)
            .build()
    }

    fn populated() -> EventArchive {
        let a = EventArchive::new();
        for t in 0..20u64 {
            a.store(ev(t));
        }
        a.seal();
        a
    }

    #[test]
    fn drains_a_range_in_order_and_in_batches() {
        let a = populated();
        let q = ArchiveQuery::all().between(Timestamp::from_secs(5), Timestamp::from_secs(15));
        let mut src = ReplaySource::new(&a, &q).with_batch(4);
        let mut out = Vec::new();
        assert_eq!(src.drain_into(&mut out), 4);
        assert_eq!(src.drain_into(&mut out), 4);
        assert_eq!(src.drain_into(&mut out), 2);
        assert_eq!(src.drain_into(&mut out), 0);
        assert_eq!(src.replayed(), 10);
        let times: Vec<u64> = out.iter().map(|e| e.timestamp.as_secs()).collect();
        assert_eq!(times, (5..15).collect::<Vec<_>>());
    }

    #[test]
    fn pump_pushes_into_a_sink() {
        struct Collect(Mutex<Vec<SharedEvent>>);
        impl EventSink<SharedEvent> for Collect {
            fn accept(&self, event: &SharedEvent) -> Result<usize, SinkError> {
                self.0.lock().push(SharedEvent::clone(event));
                Ok(1)
            }
        }
        let a = populated();
        let sink = Collect(Mutex::new(Vec::new()));
        let mut src = ReplaySource::new(&a, &ArchiveQuery::all().limit(7));
        assert_eq!(src.pump(&sink), 7);
        assert_eq!(sink.0.lock().len(), 7);
        assert_eq!(src.pump(&sink), 0, "scan exhausted");
    }

    #[test]
    fn pump_retries_the_rejected_event() {
        struct Flaky {
            accepted: Mutex<Vec<SharedEvent>>,
            reject_after: usize,
            rejecting: std::sync::atomic::AtomicBool,
        }
        impl EventSink<SharedEvent> for Flaky {
            fn accept(&self, event: &SharedEvent) -> Result<usize, SinkError> {
                let mut accepted = self.accepted.lock();
                if accepted.len() >= self.reject_after
                    && self.rejecting.load(std::sync::atomic::Ordering::Relaxed)
                {
                    return Err(SinkError::Rejected("queue full".into()));
                }
                accepted.push(SharedEvent::clone(event));
                Ok(1)
            }
        }
        let a = populated();
        let sink = Flaky {
            accepted: Mutex::new(Vec::new()),
            reject_after: 2,
            rejecting: std::sync::atomic::AtomicBool::new(true),
        };
        let mut src = ReplaySource::new(&a, &ArchiveQuery::all());
        assert_eq!(src.pump(&sink), 2, "stops at the rejection");
        assert_eq!(src.replayed(), 2, "the rejected event is not counted");
        // The sink recovers; the rejected event is retried, not skipped.
        sink.rejecting
            .store(false, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(src.pump(&sink), 18);
        let times: Vec<u64> = sink
            .accepted
            .lock()
            .iter()
            .map(|e| e.timestamp.as_secs())
            .collect();
        assert_eq!(times, (0..20).collect::<Vec<_>>(), "nothing skipped");
    }

    #[test]
    fn replay_outlives_the_archive_borrow() {
        let a = populated();
        let mut src = ReplaySource::new(&a, &ArchiveQuery::all());
        // More writes to the archive do not affect the snapshot the source
        // merged from (memtable was sealed above).
        a.store(ev(100));
        assert_eq!(src.drain().len(), 20);
    }
}
