//! # jamm-consumers — the JAMM event consumers
//!
//! "An event consumer is any program that requests data from a sensor."
//! (§2.2)  The paper lists four, all implemented here:
//!
//! * [`collector::EventCollector`] — discovers sensors in the directory,
//!   subscribes through their gateways, and merges the event streams into a
//!   single time-ordered log for real-time analysis tools such as `nlv`;
//! * [`archiver::ArchiverAgent`] — subscribes and stores events in the
//!   archive, publishing an archive catalog entry in the directory;
//! * [`procmon::ProcessMonitorConsumer`] — watches process-death events and
//!   triggers an action (restart, email, page);
//! * [`overview::OverviewMonitor`] — combines information from several hosts
//!   to make decisions no single host's data could support (the "page the
//!   administrator only if both the primary and backup are down" example).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archiver;
pub mod collector;
pub mod overview;
pub mod procmon;

use std::collections::HashMap;
use std::sync::Arc;

use jamm_gateway::{EventGateway, GatewayError};

/// Why a consumer's subscription attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscribeError {
    /// No gateway is registered under the requested name.
    UnknownGateway(String),
    /// The gateway refused the subscription (site policy, bad request).
    Gateway(GatewayError),
}

impl std::fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscribeError::UnknownGateway(name) => write!(f, "unknown gateway: {name}"),
            SubscribeError::Gateway(e) => write!(f, "gateway refused subscription: {e}"),
        }
    }
}

impl std::error::Error for SubscribeError {}

impl From<GatewayError> for SubscribeError {
    fn from(e: GatewayError) -> Self {
        SubscribeError::Gateway(e)
    }
}

/// A registry of event gateways by published name.
///
/// The directory stores, per sensor, the *name* of the gateway serving it;
/// consumers resolve that name to an actual gateway connection here.  In the
/// distributed deployment this resolution is a network connect; in-process it
/// is a lookup in this map.
#[derive(Debug, Clone, Default)]
pub struct GatewayRegistry {
    gateways: HashMap<String, Arc<EventGateway>>,
}

impl GatewayRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        GatewayRegistry::default()
    }

    /// Register a gateway under its published name.
    pub fn register(&mut self, name: impl Into<String>, gateway: Arc<EventGateway>) {
        self.gateways.insert(name.into(), gateway);
    }

    /// Resolve a gateway by name.  Returns an owned handle so callers can
    /// keep it across registry mutations (and so the registry's internal
    /// storage stays private).
    pub fn resolve(&self, name: &str) -> Option<Arc<EventGateway>> {
        self.gateways.get(name).cloned()
    }

    /// Names of all registered gateways, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.gateways.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered gateways.
    pub fn len(&self) -> usize {
        self.gateways.len()
    }

    /// True if no gateway is registered.
    pub fn is_empty(&self) -> bool {
        self.gateways.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_gateway::GatewayConfig;

    #[test]
    fn registry_resolves_by_name() {
        let mut reg = GatewayRegistry::new();
        assert!(reg.is_empty());
        reg.register(
            "gw1.lbl.gov:8765",
            Arc::new(EventGateway::new(GatewayConfig::open("gw1"))),
        );
        reg.register(
            "gw2.lbl.gov:8765",
            Arc::new(EventGateway::new(GatewayConfig::open("gw2"))),
        );
        assert_eq!(reg.len(), 2);
        assert!(reg.resolve("gw1.lbl.gov:8765").is_some());
        assert!(reg.resolve("unknown").is_none());
    }
}
