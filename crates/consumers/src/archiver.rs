//! The archiver agent.
//!
//! "This consumer is used to collect data for an archive service.  It
//! subscribes to the logging agents, collects the event data, and places it
//! in the archive.  It also creates an archive directory service entry
//! indicating the contents of the archive." (§2.2)

use std::sync::Arc;

use jamm_archive::EventArchive;
use jamm_core::flow::{EventSink, EventSource, SinkError};
use jamm_directory::{DirectoryServer, Dn, Entry};
use jamm_gateway::{EventFilter, PipelineTracer, Subscription};
use jamm_tsdb::SegmentCatalog;
use jamm_ulm::{Event, SharedEvent, Timestamp};

use crate::{GatewayRegistry, SubscribeError};

/// Subscribes to gateways and stores everything that matches its filters.
pub struct ArchiverAgent {
    consumer: String,
    archive: Arc<EventArchive>,
    subscriptions: Vec<Subscription>,
    /// DN under which the archive's catalog entry is published.
    catalog_dn: Dn,
    /// Segment ids whose directory entries we have published, so stale
    /// entries can be deleted when segments are compacted or expired.
    published_segments: std::collections::BTreeSet<u64>,
    /// Reusable drain scratch: subscriptions drain shared events into this
    /// buffer, the archive stores straight from it, and `clear()` keeps
    /// the capacity — the steady-state poll loop allocates nothing.  After
    /// a failed store the drained batch simply stays here for retry, so a
    /// transient disk error never loses events.
    batch: Vec<SharedEvent>,
    /// Self-lifeline tracer: watched events get a `JAMM_ARCHIVE_APPEND`
    /// trace point once their batch is durably stored.
    tracer: Option<Arc<PipelineTracer>>,
}

impl ArchiverAgent {
    /// Create an archiver writing into `archive`, publishing its catalog at
    /// `catalog_dn`.
    pub fn new(consumer: impl Into<String>, archive: Arc<EventArchive>, catalog_dn: Dn) -> Self {
        ArchiverAgent {
            consumer: consumer.into(),
            archive,
            subscriptions: Vec::new(),
            catalog_dn,
            published_segments: std::collections::BTreeSet::new(),
            batch: Vec::new(),
            tracer: None,
        }
    }

    /// Attach the self-lifeline tracer: every watched event this archiver
    /// stores gets a `JAMM_ARCHIVE_APPEND` trace point.
    pub fn set_tracer(&mut self, tracer: Arc<PipelineTracer>) {
        self.tracer = Some(tracer);
    }

    /// The archive being written.
    pub fn archive(&self) -> &Arc<EventArchive> {
        &self.archive
    }

    /// Subscribe to a gateway with the given filters (the paper stresses the
    /// archive selects what to keep — "in some environments very little will
    /// be monitored, and in others, it may be desirable to archive
    /// everything").
    pub fn subscribe(
        &mut self,
        registry: &GatewayRegistry,
        gateway_name: &str,
        filters: Vec<EventFilter>,
    ) -> Result<(), SubscribeError> {
        let Some(gateway) = registry.resolve(gateway_name) else {
            return Err(SubscribeError::UnknownGateway(gateway_name.to_string()));
        };
        let sub = gateway
            .subscribe()
            .stream()
            .filters(filters)
            .as_consumer(self.consumer.clone())
            .open()?;
        self.subscriptions.push(sub);
        Ok(())
    }

    /// Subscribe to a gateway constrained to the given event types (plus
    /// any further filters).  A typed subscription registers only in the
    /// sharded router's buckets for those types — an archiver that keeps,
    /// say, `TCPD_RETRANSMITS` and `PROC_DIED` is never even looked at
    /// when the high-rate CPU/memory readings are published.
    ///
    /// An **empty** `event_types` list matches nothing (it is a type
    /// constraint satisfied by no event, not the absence of one): the
    /// subscription opens but never receives.  Use
    /// [`ArchiverAgent::subscribe`] for an unconstrained subscription.
    pub fn subscribe_types(
        &mut self,
        registry: &GatewayRegistry,
        gateway_name: &str,
        event_types: Vec<String>,
        extra_filters: Vec<EventFilter>,
    ) -> Result<(), SubscribeError> {
        let mut filters = vec![EventFilter::EventTypes(event_types)];
        filters.extend(extra_filters);
        self.subscribe(registry, gateway_name, filters)
    }

    /// Drain pending events into the archive.  All subscriptions drain
    /// into one reused scratch buffer whose shared events are stored under
    /// a single archive lock (and, for a persistent archive, one WAL
    /// write) without copying any event.  If the store fails (e.g. a
    /// transient disk error under a persistent archive) the batch stays in
    /// the scratch buffer and is retried on the next poll rather than
    /// lost; while a retry batch is outstanding no further draining
    /// happens, so the held batch is bounded and the *subscriptions'*
    /// bounded queues (with their overflow policy) absorb the backlog.
    /// Returns how many were stored.
    pub fn poll(&mut self) -> usize {
        if self.batch.is_empty() {
            for sub in &mut self.subscriptions {
                sub.drain_into(&mut self.batch);
            }
        }
        if self.batch.is_empty() {
            return 0;
        }
        match self.archive.try_store_shared_batch(&self.batch) {
            Ok(n) => {
                if let Some(tracer) = &self.tracer {
                    // Trace points only after the store succeeded: an
                    // `ARCHIVE_APPEND` on a lifeline means durably kept.
                    for event in &self.batch {
                        tracer.stage(event, jamm_ulm::keys::jamm::ARCHIVE_APPEND, &self.consumer);
                    }
                }
                // Keep the capacity: the next poll drains into the same
                // allocation.
                self.batch.clear();
                n
            }
            Err(_) => 0,
        }
    }

    /// Events drained from subscriptions but still awaiting a successful
    /// store (non-zero only after a storage error).
    pub fn pending(&self) -> usize {
        self.batch.len()
    }

    /// Flush the archive's hot tier: seal the memtable into an immutable
    /// segment.  Returns the new segment's catalog if anything was sealed.
    pub fn flush(&self) -> Option<SegmentCatalog> {
        self.archive.seal()
    }

    /// Publish (or refresh) the archive's catalog entry in the directory,
    /// plus one child entry per sealed segment ("It also creates an
    /// archive directory service entry indicating the contents of the
    /// archive" — per-segment entries let a consumer see *which* slice of
    /// history each immutable segment covers).  Stale segment entries
    /// (merged away by compaction or expired by retention) are removed.
    pub fn publish_catalog(&mut self, directory: &Arc<DirectoryServer>, now: Timestamp) -> bool {
        let catalog = self.archive.catalog();
        let mut entry = Entry::new(self.catalog_dn.clone())
            .with("objectclass", "eventarchive")
            .with("eventcount", catalog.event_count.to_string())
            .with("lastupdate", now.to_ulm_date());
        if let Some(earliest) = catalog.earliest {
            entry.add("earliest", earliest.to_ulm_date());
        }
        if let Some(latest) = catalog.latest {
            entry.add("latest", latest.to_ulm_date());
        }
        for ty in catalog.event_types.keys() {
            entry.add("eventtype", ty.clone());
        }
        for host in catalog.hosts.keys() {
            entry.add("host", host.clone());
        }
        if directory.add_or_replace(entry).is_err() {
            return false;
        }
        self.publish_segment_catalogs(directory, now);
        true
    }

    /// Publish one directory entry per sealed segment under the archive's
    /// catalog DN and drop entries for segments that no longer exist.
    /// Returns how many segment entries are now published.
    pub fn publish_segment_catalogs(
        &mut self,
        directory: &Arc<DirectoryServer>,
        now: Timestamp,
    ) -> usize {
        let catalogs = self.archive.segment_catalogs();
        let live: std::collections::BTreeSet<u64> = catalogs.iter().map(|c| c.id).collect();
        // Remove entries for segments that were compacted or expired.
        for id in &self.published_segments {
            if !live.contains(id) {
                let _ = directory.delete(&self.segment_dn(*id));
            }
        }
        let mut published = 0;
        for c in &catalogs {
            let mut entry = Entry::new(self.segment_dn(c.id))
                .with("objectclass", "archivesegment")
                .with("segmentid", c.id.to_string())
                .with("eventcount", c.event_count.to_string())
                .with("earliest", c.min_ts.to_ulm_date())
                .with("latest", c.max_ts.to_ulm_date())
                .with("lastupdate", now.to_ulm_date());
            for ty in c.event_types.keys() {
                entry.add("eventtype", ty.clone());
            }
            for host in c.hosts.keys() {
                entry.add("host", host.clone());
            }
            if directory.add_or_replace(entry).is_ok() {
                published += 1;
            }
        }
        self.published_segments = live;
        published
    }

    fn segment_dn(&self, id: u64) -> Dn {
        self.catalog_dn.child("segment", id.to_string())
    }
}

/// The archiver is itself a sink: events pushed straight at it (e.g. from
/// an RMI event bridge at a site with no local gateway) are stored exactly
/// as subscribed events are.
impl EventSink<Event> for ArchiverAgent {
    fn accept(&self, event: &Event) -> Result<usize, SinkError> {
        self.archive.store(event.clone());
        Ok(1)
    }
}

/// Shared events pushed straight at the archiver are stored by refcount.
impl EventSink<SharedEvent> for ArchiverAgent {
    fn accept(&self, event: &SharedEvent) -> Result<usize, SinkError> {
        self.archive.store_shared(SharedEvent::clone(event));
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_gateway::{EventGateway, GatewayConfig};
    use jamm_ulm::{Event, Level};

    fn ev(host: &str, ty: &str, t: u64, level: Level) -> Event {
        Event::builder("sensor", host)
            .level(level)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(t))
            .value(1.0)
            .build()
    }

    fn setup() -> (
        GatewayRegistry,
        Arc<EventGateway>,
        ArchiverAgent,
        Arc<DirectoryServer>,
    ) {
        let gw = Arc::new(EventGateway::new(GatewayConfig::open("gw1")));
        let mut reg = GatewayRegistry::new();
        reg.register("gw1", Arc::clone(&gw));
        let archive = Arc::new(EventArchive::new());
        let agent = ArchiverAgent::new(
            "archiver",
            archive,
            Dn::parse("archive=main,o=lbl,o=grid").unwrap(),
        );
        let dir = Arc::new(DirectoryServer::new(
            "ldap://dir",
            Dn::parse("o=grid").unwrap(),
        ));
        (reg, gw, agent, dir)
    }

    #[test]
    fn archives_what_it_subscribed_to() {
        let (reg, gw, mut agent, _) = setup();
        // Archive only warnings and worse: a sampling of "abnormal" operation.
        assert!(agent
            .subscribe(&reg, "gw1", vec![EventFilter::MinLevel(Level::Warning)])
            .is_ok());
        assert_eq!(
            agent.subscribe(&reg, "missing", vec![]),
            Err(SubscribeError::UnknownGateway("missing".to_string()))
        );
        gw.publish(&ev("h", "CPU_TOTAL", 1, Level::Usage));
        gw.publish(&ev("h", "TCPD_RETRANSMITS", 2, Level::Warning));
        gw.publish(&ev("h", "PROC_DIED", 3, Level::Error));
        assert_eq!(agent.poll(), 2);
        assert_eq!(agent.archive().len(), 2);
        assert_eq!(agent.poll(), 0, "nothing new");
    }

    #[test]
    fn typed_subscription_archives_only_the_named_types() {
        let (reg, gw, mut agent, _) = setup();
        agent
            .subscribe_types(
                &reg,
                "gw1",
                vec!["TCPD_RETRANSMITS".into(), "PROC_DIED".into()],
                vec![EventFilter::MinLevel(Level::Warning)],
            )
            .unwrap();
        gw.publish(&ev("h", "CPU_TOTAL", 1, Level::Usage));
        gw.publish(&ev("h", "TCPD_RETRANSMITS", 2, Level::Warning));
        gw.publish(&ev("h", "PROC_DIED", 3, Level::Error));
        gw.publish(&ev("h", "PROC_DIED", 4, Level::Usage)); // below floor
        assert_eq!(agent.poll(), 2);
        assert_eq!(agent.archive().len(), 2);
    }

    #[test]
    fn catalog_entry_is_published_and_refreshed() {
        let (reg, gw, mut agent, dir) = setup();
        agent.subscribe(&reg, "gw1", vec![]).unwrap();
        gw.publish(&ev("dpss1.lbl.gov", "CPU_TOTAL", 10, Level::Usage));
        gw.publish(&ev(
            "mems.cairn.net",
            "TCPD_RETRANSMITS",
            20,
            Level::Warning,
        ));
        agent.poll();
        assert!(agent.publish_catalog(&dir, Timestamp::from_secs(100)));
        let dn = Dn::parse("archive=main,o=lbl,o=grid").unwrap();
        let entry = dir.lookup(&dn).unwrap();
        assert_eq!(entry.get("eventcount"), Some("2"));
        assert!(entry.has_value("eventtype", "CPU_TOTAL"));
        assert!(entry.has_value("host", "mems.cairn.net"));
        // More data arrives; the refreshed catalog reflects it.
        gw.publish(&ev("dpss1.lbl.gov", "CPU_TOTAL", 30, Level::Usage));
        agent.poll();
        agent.publish_catalog(&dir, Timestamp::from_secs(200));
        assert_eq!(dir.lookup(&dn).unwrap().get("eventcount"), Some("3"));
    }

    #[test]
    fn poll_batches_into_a_single_store_call() {
        let (reg, gw, mut agent, _) = setup();
        agent.subscribe(&reg, "gw1", vec![]).unwrap();
        for t in 0..50 {
            gw.publish(&ev("h", "CPU_TOTAL", t, Level::Usage));
        }
        assert_eq!(agent.poll(), 50);
        assert_eq!(agent.archive().len(), 50);
        // One batched append of 50, not 50 appends of 1.
        assert_eq!(agent.archive().stats().appended(), 50);
    }

    #[test]
    fn flush_seals_and_segment_catalogs_are_published() {
        let (reg, gw, mut agent, dir) = setup();
        agent.subscribe(&reg, "gw1", vec![]).unwrap();
        for t in 0..10 {
            gw.publish(&ev("dpss1.lbl.gov", "CPU_TOTAL", t, Level::Usage));
        }
        agent.poll();
        let sealed = agent.flush().expect("memtable had events");
        assert_eq!(sealed.event_count, 10);
        assert!(agent.flush().is_none(), "nothing left to seal");

        agent.publish_catalog(&dir, Timestamp::from_secs(100));
        let seg_dn =
            Dn::parse(&format!("segment={},archive=main,o=lbl,o=grid", sealed.id)).unwrap();
        let entry = dir.lookup(&seg_dn).unwrap();
        assert_eq!(entry.get("eventcount"), Some("10"));
        assert!(entry.has_value("eventtype", "CPU_TOTAL"));
        assert!(entry.has_value("host", "dpss1.lbl.gov"));

        // Expire everything: the stale segment entry disappears on the
        // next publication.
        agent.archive().expire_before(Timestamp::from_secs(1_000));
        agent.publish_catalog(&dir, Timestamp::from_secs(200));
        assert!(dir.lookup(&seg_dn).is_err(), "stale segment entry removed");
    }
}
