//! The archiver agent.
//!
//! "This consumer is used to collect data for an archive service.  It
//! subscribes to the logging agents, collects the event data, and places it
//! in the archive.  It also creates an archive directory service entry
//! indicating the contents of the archive." (§2.2)

use std::sync::Arc;

use jamm_archive::EventArchive;
use jamm_core::flow::{EventSink, SinkError};
use jamm_directory::{DirectoryServer, Dn, Entry};
use jamm_gateway::{EventFilter, Subscription};
use jamm_ulm::{Event, Timestamp};

use crate::GatewayRegistry;

/// Subscribes to gateways and stores everything that matches its filters.
pub struct ArchiverAgent {
    consumer: String,
    archive: Arc<EventArchive>,
    subscriptions: Vec<Subscription>,
    /// DN under which the archive's catalog entry is published.
    catalog_dn: Dn,
}

impl ArchiverAgent {
    /// Create an archiver writing into `archive`, publishing its catalog at
    /// `catalog_dn`.
    pub fn new(consumer: impl Into<String>, archive: Arc<EventArchive>, catalog_dn: Dn) -> Self {
        ArchiverAgent {
            consumer: consumer.into(),
            archive,
            subscriptions: Vec::new(),
            catalog_dn,
        }
    }

    /// The archive being written.
    pub fn archive(&self) -> &Arc<EventArchive> {
        &self.archive
    }

    /// Subscribe to a gateway with the given filters (the paper stresses the
    /// archive selects what to keep — "in some environments very little will
    /// be monitored, and in others, it may be desirable to archive
    /// everything").
    pub fn subscribe(
        &mut self,
        registry: &GatewayRegistry,
        gateway_name: &str,
        filters: Vec<EventFilter>,
    ) -> bool {
        let Some(gateway) = registry.resolve(gateway_name) else {
            return false;
        };
        match gateway
            .subscribe()
            .stream()
            .filters(filters)
            .as_consumer(self.consumer.clone())
            .open()
        {
            Ok(sub) => {
                self.subscriptions.push(sub);
                true
            }
            Err(_) => false,
        }
    }

    /// Drain pending events into the archive.  Returns how many were stored.
    pub fn poll(&mut self) -> usize {
        let mut stored = 0;
        for sub in &self.subscriptions {
            for event in sub.events.try_iter() {
                self.archive.store(event);
                stored += 1;
            }
        }
        stored
    }

    /// Publish (or refresh) the archive's catalog entry in the directory.
    pub fn publish_catalog(&self, directory: &Arc<DirectoryServer>, now: Timestamp) -> bool {
        let catalog = self.archive.catalog();
        let mut entry = Entry::new(self.catalog_dn.clone())
            .with("objectclass", "eventarchive")
            .with("eventcount", catalog.event_count.to_string())
            .with("lastupdate", now.to_ulm_date());
        if let Some(earliest) = catalog.earliest {
            entry.add("earliest", earliest.to_ulm_date());
        }
        if let Some(latest) = catalog.latest {
            entry.add("latest", latest.to_ulm_date());
        }
        for ty in catalog.event_types.keys() {
            entry.add("eventtype", ty.clone());
        }
        for host in catalog.hosts.keys() {
            entry.add("host", host.clone());
        }
        directory.add_or_replace(entry).is_ok()
    }
}

/// The archiver is itself a sink: events pushed straight at it (e.g. from
/// an RMI event bridge at a site with no local gateway) are stored exactly
/// as subscribed events are.
impl EventSink<Event> for ArchiverAgent {
    fn accept(&self, event: &Event) -> Result<usize, SinkError> {
        self.archive.store(event.clone());
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_gateway::{EventGateway, GatewayConfig};
    use jamm_ulm::{Event, Level};

    fn ev(host: &str, ty: &str, t: u64, level: Level) -> Event {
        Event::builder("sensor", host)
            .level(level)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(t))
            .value(1.0)
            .build()
    }

    fn setup() -> (
        GatewayRegistry,
        Arc<EventGateway>,
        ArchiverAgent,
        Arc<DirectoryServer>,
    ) {
        let gw = Arc::new(EventGateway::new(GatewayConfig::open("gw1")));
        let mut reg = GatewayRegistry::new();
        reg.register("gw1", Arc::clone(&gw));
        let archive = Arc::new(EventArchive::new());
        let agent = ArchiverAgent::new(
            "archiver",
            archive,
            Dn::parse("archive=main,o=lbl,o=grid").unwrap(),
        );
        let dir = Arc::new(DirectoryServer::new(
            "ldap://dir",
            Dn::parse("o=grid").unwrap(),
        ));
        (reg, gw, agent, dir)
    }

    #[test]
    fn archives_what_it_subscribed_to() {
        let (reg, gw, mut agent, _) = setup();
        // Archive only warnings and worse: a sampling of "abnormal" operation.
        assert!(agent.subscribe(&reg, "gw1", vec![EventFilter::MinLevel(Level::Warning)]));
        assert!(!agent.subscribe(&reg, "missing", vec![]));
        gw.publish(&ev("h", "CPU_TOTAL", 1, Level::Usage));
        gw.publish(&ev("h", "TCPD_RETRANSMITS", 2, Level::Warning));
        gw.publish(&ev("h", "PROC_DIED", 3, Level::Error));
        assert_eq!(agent.poll(), 2);
        assert_eq!(agent.archive().len(), 2);
        assert_eq!(agent.poll(), 0, "nothing new");
    }

    #[test]
    fn catalog_entry_is_published_and_refreshed() {
        let (reg, gw, mut agent, dir) = setup();
        agent.subscribe(&reg, "gw1", vec![]);
        gw.publish(&ev("dpss1.lbl.gov", "CPU_TOTAL", 10, Level::Usage));
        gw.publish(&ev(
            "mems.cairn.net",
            "TCPD_RETRANSMITS",
            20,
            Level::Warning,
        ));
        agent.poll();
        assert!(agent.publish_catalog(&dir, Timestamp::from_secs(100)));
        let dn = Dn::parse("archive=main,o=lbl,o=grid").unwrap();
        let entry = dir.lookup(&dn).unwrap();
        assert_eq!(entry.get("eventcount"), Some("2"));
        assert!(entry.has_value("eventtype", "CPU_TOTAL"));
        assert!(entry.has_value("host", "mems.cairn.net"));
        // More data arrives; the refreshed catalog reflects it.
        gw.publish(&ev("dpss1.lbl.gov", "CPU_TOTAL", 30, Level::Usage));
        agent.poll();
        agent.publish_catalog(&dir, Timestamp::from_secs(200));
        assert_eq!(dir.lookup(&dn).unwrap().get("eventcount"), Some("3"));
    }
}
