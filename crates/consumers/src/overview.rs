//! The overview monitor.
//!
//! "This consumer collects information from sensors on several hosts, and
//! uses the combined information to make some decision that could not be
//! made on the basis of data from only one host.  For example, one may want
//! to trigger a page to a system administrator at 2 A.M. only if both the
//! primary and backup servers are down." (§2.2)

use std::collections::HashMap;

use jamm_gateway::{EventFilter, Subscription};
use jamm_ulm::{keys, Event, Timestamp};

use crate::GatewayRegistry;

/// An alert raised by the overview monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct OverviewAlert {
    /// Name of the rule that fired.
    pub rule: String,
    /// When the rule's condition became true.
    pub at: Timestamp,
    /// The hosts that were down when the rule fired.
    pub hosts_down: Vec<String>,
}

/// A rule requiring the combined state of several hosts.
#[derive(Debug, Clone)]
struct GroupDownRule {
    name: String,
    process: String,
    hosts: Vec<String>,
}

/// Combines per-host process state to detect whole-service failures.
pub struct OverviewMonitor {
    consumer: String,
    rules: Vec<GroupDownRule>,
    subscriptions: Vec<Subscription>,
    /// (host, process) -> alive?
    state: HashMap<(String, String), bool>,
    /// Rules currently in the "fired" state (so alerts are edge-triggered).
    fired: HashMap<String, bool>,
    alerts: Vec<OverviewAlert>,
}

impl OverviewMonitor {
    /// Create an overview monitor acting as the given principal.
    pub fn new(consumer: impl Into<String>) -> Self {
        OverviewMonitor {
            consumer: consumer.into(),
            rules: Vec::new(),
            subscriptions: Vec::new(),
            state: HashMap::new(),
            fired: HashMap::new(),
            alerts: Vec::new(),
        }
    }

    /// Add the paper's example rule: alert only when `process` is down on
    /// *every* one of `hosts` (e.g. primary and backup).
    pub fn alert_when_all_down(
        &mut self,
        rule_name: impl Into<String>,
        process: impl Into<String>,
        hosts: Vec<String>,
    ) {
        self.rules.push(GroupDownRule {
            name: rule_name.into(),
            process: process.into(),
            hosts,
        });
    }

    /// Subscribe to process events from a gateway.
    pub fn subscribe(&mut self, registry: &GatewayRegistry, gateway_name: &str) -> bool {
        let Some(gateway) = registry.resolve(gateway_name) else {
            return false;
        };
        match gateway
            .subscribe()
            .stream()
            .filter(EventFilter::EventTypes(vec![
                keys::process::DIED.to_string(),
                keys::process::STARTED.to_string(),
            ]))
            .as_consumer(self.consumer.clone())
            .open()
        {
            Ok(sub) => {
                self.subscriptions.push(sub);
                true
            }
            Err(_) => false,
        }
    }

    fn apply(&mut self, event: &Event) {
        let Some(process) = event.field(keys::TARGET).and_then(|v| v.as_str()) else {
            return;
        };
        let alive = event.event_type == keys::process::STARTED;
        self.state
            .insert((event.host.clone(), process.to_string()), alive);
    }

    /// Process pending events and return any newly raised alerts.
    pub fn poll(&mut self) -> Vec<OverviewAlert> {
        let events: Vec<jamm_ulm::SharedEvent> = self
            .subscriptions
            .iter()
            .flat_map(|s| s.events.try_iter().collect::<Vec<_>>())
            .collect();
        let mut latest_time = Timestamp::EPOCH;
        for e in &events {
            latest_time = latest_time.max(e.timestamp);
            self.apply(e);
        }
        let mut new_alerts = Vec::new();
        for rule in &self.rules {
            let down: Vec<String> = rule
                .hosts
                .iter()
                .filter(|h| {
                    self.state
                        .get(&((*h).clone(), rule.process.clone()))
                        .map(|alive| !alive)
                        .unwrap_or(false)
                })
                .cloned()
                .collect();
            let all_down = !rule.hosts.is_empty() && down.len() == rule.hosts.len();
            let was_fired = self.fired.get(&rule.name).copied().unwrap_or(false);
            if all_down && !was_fired {
                new_alerts.push(OverviewAlert {
                    rule: rule.name.clone(),
                    at: latest_time,
                    hosts_down: down,
                });
            }
            self.fired.insert(rule.name.clone(), all_down);
        }
        self.alerts.extend(new_alerts.iter().cloned());
        new_alerts
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[OverviewAlert] {
        &self.alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_gateway::{EventGateway, GatewayConfig};
    use jamm_ulm::Level;
    use std::sync::Arc;

    fn proc_event(host: &str, process: &str, alive: bool, t: u64) -> Event {
        Event::builder("procmon", host)
            .level(if alive { Level::Notice } else { Level::Error })
            .event_type(if alive {
                keys::process::STARTED
            } else {
                keys::process::DIED
            })
            .timestamp(Timestamp::from_secs(t))
            .field(keys::TARGET, process)
            .build()
    }

    fn setup() -> (Arc<EventGateway>, OverviewMonitor) {
        let gw = Arc::new(EventGateway::new(GatewayConfig::open("gw1")));
        let mut reg = GatewayRegistry::new();
        reg.register("gw1", Arc::clone(&gw));
        let mut mon = OverviewMonitor::new("ops");
        mon.alert_when_all_down(
            "ldap-service-down",
            "ldap-server",
            vec!["primary.lbl.gov".into(), "backup.lbl.gov".into()],
        );
        assert!(mon.subscribe(&reg, "gw1"));
        (gw, mon)
    }

    #[test]
    fn no_alert_when_only_the_primary_is_down() {
        let (gw, mut mon) = setup();
        gw.publish(&proc_event("primary.lbl.gov", "ldap-server", true, 1));
        gw.publish(&proc_event("backup.lbl.gov", "ldap-server", true, 1));
        gw.publish(&proc_event("primary.lbl.gov", "ldap-server", false, 2));
        assert!(mon.poll().is_empty(), "backup still up: no 2 A.M. page");
    }

    #[test]
    fn alert_fires_once_when_both_are_down_and_clears_on_recovery() {
        let (gw, mut mon) = setup();
        gw.publish(&proc_event("primary.lbl.gov", "ldap-server", false, 1));
        gw.publish(&proc_event("backup.lbl.gov", "ldap-server", false, 2));
        let alerts = mon.poll();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "ldap-service-down");
        assert_eq!(alerts[0].hosts_down.len(), 2);
        // Still down: no duplicate alert.
        assert!(mon.poll().is_empty());
        // Primary recovers, then both go down again: a new alert fires.
        gw.publish(&proc_event("primary.lbl.gov", "ldap-server", true, 3));
        assert!(mon.poll().is_empty());
        gw.publish(&proc_event("primary.lbl.gov", "ldap-server", false, 4));
        let again = mon.poll();
        assert_eq!(again.len(), 1);
        assert_eq!(mon.alerts().len(), 2);
    }

    #[test]
    fn unknown_hosts_do_not_count_as_down() {
        let (gw, mut mon) = setup();
        // Only ever hear about the primary; the backup's state is unknown,
        // so the "all down" condition cannot be established.
        gw.publish(&proc_event("primary.lbl.gov", "ldap-server", false, 1));
        assert!(mon.poll().is_empty());
    }
}
