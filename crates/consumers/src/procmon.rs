//! The process monitor consumer.
//!
//! "This consumer can be used to trigger an action based on an event from a
//! server process.  For example, it might run a script to restart the
//! processes, send email to a system administrator, or call a pager." (§2.2)

use jamm_gateway::{EventFilter, Subscription};
use jamm_ulm::{keys, SharedEvent};

use crate::GatewayRegistry;

/// The action a rule takes when a watched process dies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Run the restart procedure for the process.
    Restart,
    /// Send email to the given address.
    Email(String),
    /// Page the given pager / on-call target.
    Page(String),
}

/// A record of an action the monitor decided to take.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggeredAction {
    /// The action.
    pub action: RecoveryAction,
    /// Host the process died on.
    pub host: String,
    /// The process concerned.
    pub process: String,
    /// The event that triggered the action (shared with every other
    /// consumer of the same delivery).
    pub trigger: SharedEvent,
}

/// One watch rule: process (on an optional specific host) → actions.
#[derive(Debug, Clone)]
struct WatchRule {
    process: String,
    host: Option<String>,
    actions: Vec<RecoveryAction>,
}

/// Watches process-death events and triggers recovery actions.
pub struct ProcessMonitorConsumer {
    consumer: String,
    rules: Vec<WatchRule>,
    subscriptions: Vec<Subscription>,
    triggered: Vec<TriggeredAction>,
}

impl ProcessMonitorConsumer {
    /// Create a process monitor acting as the given principal.
    pub fn new(consumer: impl Into<String>) -> Self {
        ProcessMonitorConsumer {
            consumer: consumer.into(),
            rules: Vec::new(),
            subscriptions: Vec::new(),
            triggered: Vec::new(),
        }
    }

    /// Watch `process` (on `host`, or on any host when `None`) and take the
    /// given actions when it dies.
    pub fn watch(
        &mut self,
        process: impl Into<String>,
        host: Option<String>,
        actions: Vec<RecoveryAction>,
    ) {
        self.rules.push(WatchRule {
            process: process.into(),
            host,
            actions,
        });
    }

    /// Subscribe to process events from a gateway.
    pub fn subscribe(&mut self, registry: &GatewayRegistry, gateway_name: &str) -> bool {
        let Some(gateway) = registry.resolve(gateway_name) else {
            return false;
        };
        match gateway
            .subscribe()
            .stream()
            .filter(EventFilter::EventTypes(vec![
                keys::process::DIED.to_string(),
                keys::process::STARTED.to_string(),
            ]))
            .as_consumer(self.consumer.clone())
            .open()
        {
            Ok(sub) => {
                self.subscriptions.push(sub);
                true
            }
            Err(_) => false,
        }
    }

    /// Process pending events; returns the actions newly triggered.
    pub fn poll(&mut self) -> Vec<TriggeredAction> {
        let mut new_actions = Vec::new();
        for sub in &self.subscriptions {
            for event in sub.events.try_iter() {
                if event.event_type != keys::process::DIED {
                    continue;
                }
                let Some(process) = event.field(keys::TARGET).and_then(|v| v.as_str()) else {
                    continue;
                };
                for rule in &self.rules {
                    let host_ok = rule.host.as_deref().is_none_or(|h| h == event.host);
                    if rule.process == process && host_ok {
                        for action in &rule.actions {
                            new_actions.push(TriggeredAction {
                                action: action.clone(),
                                host: event.host.clone(),
                                process: process.to_string(),
                                trigger: SharedEvent::clone(&event),
                            });
                        }
                    }
                }
            }
        }
        self.triggered.extend(new_actions.iter().cloned());
        new_actions
    }

    /// All actions triggered since the monitor started.
    pub fn history(&self) -> &[TriggeredAction] {
        &self.triggered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_gateway::{EventGateway, GatewayConfig};
    use jamm_ulm::{Event, Level, Timestamp};
    use std::sync::Arc;

    fn died(host: &str, process: &str) -> Event {
        Event::builder("procmon", host)
            .level(Level::Error)
            .event_type(keys::process::DIED)
            .timestamp(Timestamp::from_secs(10))
            .field(keys::TARGET, process)
            .build()
    }

    fn setup() -> (GatewayRegistry, Arc<EventGateway>, ProcessMonitorConsumer) {
        let gw = Arc::new(EventGateway::new(GatewayConfig::open("gw1")));
        let mut reg = GatewayRegistry::new();
        reg.register("gw1", Arc::clone(&gw));
        let mon = ProcessMonitorConsumer::new("ops");
        (reg, gw, mon)
    }

    #[test]
    fn death_triggers_configured_actions() {
        let (reg, gw, mut mon) = setup();
        mon.watch(
            "dpss_master",
            None,
            vec![
                RecoveryAction::Restart,
                RecoveryAction::Email("ops@lbl.gov".into()),
            ],
        );
        assert!(mon.subscribe(&reg, "gw1"));
        gw.publish(&died("dpss1.lbl.gov", "dpss_master"));
        let actions = mon.poll();
        assert_eq!(actions.len(), 2);
        assert_eq!(actions[0].action, RecoveryAction::Restart);
        assert_eq!(actions[0].host, "dpss1.lbl.gov");
        assert_eq!(
            actions[1].action,
            RecoveryAction::Email("ops@lbl.gov".into())
        );
        assert_eq!(mon.history().len(), 2);
    }

    #[test]
    fn unrelated_processes_and_hosts_do_not_trigger() {
        let (reg, gw, mut mon) = setup();
        mon.watch(
            "dpss_master",
            Some("dpss1.lbl.gov".into()),
            vec![RecoveryAction::Page("oncall".into())],
        );
        mon.subscribe(&reg, "gw1");
        // Wrong process.
        gw.publish(&died("dpss1.lbl.gov", "httpd"));
        // Right process, wrong host.
        gw.publish(&died("dpss2.lbl.gov", "dpss_master"));
        // A start event, not a death.
        gw.publish(
            &Event::builder("procmon", "dpss1.lbl.gov")
                .level(Level::Notice)
                .event_type(keys::process::STARTED)
                .timestamp(Timestamp::from_secs(1))
                .field(keys::TARGET, "dpss_master")
                .build(),
        );
        assert!(mon.poll().is_empty());
        // Right process, right host.
        gw.publish(&died("dpss1.lbl.gov", "dpss_master"));
        assert_eq!(mon.poll().len(), 1);
    }

    #[test]
    fn unknown_gateway_subscription_fails() {
        let (_, _, mut mon) = setup();
        let empty = GatewayRegistry::new();
        assert!(!mon.subscribe(&empty, "gw1"));
        assert!(mon.poll().is_empty());
    }
}
