//! The event collector.
//!
//! "This consumer is used to collect monitoring data in real time for use by
//! real-time analysis tools.  It checks the directory service to see what
//! data is available, and then 'subscribes', via the event gateway, to all
//! the sensors it is interested in. ...  Data from many sensors, as well as
//! streams of data from application sensors, is then merged into a file for
//! use by programs such as nlv." (§2.2)

use std::sync::Arc;

use jamm_core::flow::EventSource;
use jamm_directory::{DirectoryServer, Dn, Filter, Scope};
use jamm_gateway::{EventFilter, PipelineTracer, Subscription};
use jamm_ulm::SharedEvent;

use crate::GatewayRegistry;

/// A sensor discovered in the directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveredSensor {
    /// Host the sensor monitors.
    pub host: String,
    /// Sensor name.
    pub sensor: String,
    /// Gateway serving its events.
    pub gateway: String,
    /// Whether the directory currently lists it as running.
    pub running: bool,
}

/// Collects events from many sensors into one merged, time-ordered log.
pub struct EventCollector {
    consumer: String,
    subscriptions: Vec<(String, Subscription)>,
    /// Collected events, shared with the gateway that delivered them —
    /// collecting is a refcount transfer, not a copy.
    collected: Vec<SharedEvent>,
    discovered: Vec<DiscoveredSensor>,
    /// Self-lifeline tracer: drained events it is watching get a
    /// `JAMM_SUB_DRAIN` trace point stamped with this consumer's name.
    tracer: Option<Arc<PipelineTracer>>,
}

impl EventCollector {
    /// Create a collector acting as the given principal.
    pub fn new(consumer: impl Into<String>) -> Self {
        EventCollector {
            consumer: consumer.into(),
            subscriptions: Vec::new(),
            collected: Vec::new(),
            discovered: Vec::new(),
            tracer: None,
        }
    }

    /// The consumer principal this collector acts as.
    pub fn consumer(&self) -> &str {
        &self.consumer
    }

    /// Attach the self-lifeline tracer: every watched event this collector
    /// drains gets a `JAMM_SUB_DRAIN` trace point.
    pub fn set_tracer(&mut self, tracer: Arc<PipelineTracer>) {
        self.tracer = Some(tracer);
    }

    /// Query the directory for sensors matching `filter` under `base`.
    pub fn discover(
        &mut self,
        directory: &Arc<DirectoryServer>,
        base: &Dn,
        filter: &Filter,
    ) -> Vec<DiscoveredSensor> {
        let mut found = Vec::new();
        if let Ok(result) = directory.search(base, Scope::Subtree, filter) {
            for entry in result.entries {
                let (Some(host), Some(sensor), Some(gateway)) =
                    (entry.get("host"), entry.get("sensor"), entry.get("gateway"))
                else {
                    continue;
                };
                found.push(DiscoveredSensor {
                    host: host.to_string(),
                    sensor: sensor.to_string(),
                    gateway: gateway.to_string(),
                    running: entry.get("status") == Some("running"),
                });
            }
        }
        self.discovered = found.clone();
        found
    }

    /// Subscribe (streaming) to every discovered sensor's gateway, one
    /// subscription per distinct gateway, filtered to the discovered hosts.
    /// Returns the number of gateway subscriptions opened.
    pub fn subscribe_all(
        &mut self,
        registry: &GatewayRegistry,
        extra_filters: Vec<EventFilter>,
    ) -> usize {
        let mut gateways: Vec<&str> = self.discovered.iter().map(|d| d.gateway.as_str()).collect();
        gateways.sort_unstable();
        gateways.dedup();
        let mut opened = 0;
        for gw_name in gateways {
            let Some(gateway) = registry.resolve(gw_name) else {
                continue;
            };
            let hosts: Vec<String> = self
                .discovered
                .iter()
                .filter(|d| d.gateway == gw_name)
                .map(|d| d.host.clone())
                .collect();
            let open = gateway
                .subscribe()
                .stream()
                .filter(EventFilter::Hosts(hosts))
                .filters(extra_filters.iter().cloned())
                .as_consumer(self.consumer.clone())
                .open();
            if let Ok(sub) = open {
                self.subscriptions.push((gw_name.to_string(), sub));
                opened += 1;
            }
        }
        opened
    }

    /// Subscribe directly to one named gateway with the given filters
    /// (bypassing discovery — used when the consumer already knows what it
    /// wants).
    pub fn subscribe_gateway(
        &mut self,
        registry: &GatewayRegistry,
        gateway_name: &str,
        filters: Vec<EventFilter>,
    ) -> bool {
        let Some(gateway) = registry.resolve(gateway_name) else {
            return false;
        };
        match gateway
            .subscribe()
            .stream()
            .filters(filters)
            .as_consumer(self.consumer.clone())
            .open()
        {
            Ok(sub) => {
                self.subscriptions.push((gateway_name.to_string(), sub));
                true
            }
            Err(_) => false,
        }
    }

    /// Adopt an externally opened subscription under the given gateway
    /// name.  Used when the caller needs builder options this collector's
    /// subscribe helpers do not expose (a custom queue capacity or
    /// overflow policy); the subscription must have been opened with this
    /// collector's consumer principal for delivery accounting to line up.
    pub fn adopt_subscription(&mut self, gateway_name: impl Into<String>, sub: Subscription) {
        self.subscriptions.push((gateway_name.into(), sub));
    }

    /// Subscribe to one named gateway constrained to the given event types.
    /// The type constraint is what the gateway's sharded router indexes
    /// subscriptions by: a typed subscription lives only in the routing
    /// buckets for its types, so it costs the gateway nothing when other
    /// traffic is published.  Returns whether the subscription opened.
    ///
    /// An **empty** `event_types` list matches nothing (a type constraint
    /// satisfied by no event): the subscription opens but never receives.
    /// Use [`EventCollector::subscribe_gateway`] for an unconstrained
    /// subscription.
    pub fn subscribe_gateway_typed(
        &mut self,
        registry: &GatewayRegistry,
        gateway_name: &str,
        event_types: Vec<String>,
        extra_filters: Vec<EventFilter>,
    ) -> bool {
        let mut filters = vec![EventFilter::EventTypes(event_types)];
        filters.extend(extra_filters);
        self.subscribe_gateway(registry, gateway_name, filters)
    }

    /// Drain every subscription channel into the collected log (one batched
    /// drain per subscription).  Returns the number of new events.
    pub fn poll(&mut self) -> usize {
        let start = self.collected.len();
        let mut new = 0;
        for (_, sub) in &mut self.subscriptions {
            new += sub.drain_into(&mut self.collected);
        }
        if let Some(tracer) = &self.tracer {
            // Only the newly drained tail is scanned, and each scan is a
            // handful of atomic loads against the tracer's watched ring.
            for event in &self.collected[start..] {
                tracer.stage(event, jamm_ulm::keys::jamm::SUB_DRAIN, &self.consumer);
            }
        }
        new
    }

    /// Number of open gateway subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Events collected so far, in arrival order.
    pub fn events(&self) -> &[SharedEvent] {
        &self.collected
    }

    /// The merged, time-sorted log (what gets handed to `nlv`).  Sorting
    /// shuffles `Arc` handles; the events themselves are not copied.
    pub fn merged_log(&self) -> Vec<SharedEvent> {
        let mut log = self.collected.clone();
        log.sort_by_key(|e| e.timestamp);
        log
    }

    /// Events dropped across all this collector's subscriptions because it
    /// fell behind the gateways' bounded queues.
    pub fn dropped(&self) -> u64 {
        self.subscriptions.iter().map(|(_, s)| s.dropped()).sum()
    }

    /// Serialise the merged log as ULM text (encoded straight into one
    /// output buffer — no per-event line allocations).
    pub fn merged_ulm(&self) -> String {
        let mut out = String::new();
        for e in self.merged_log() {
            jamm_ulm::text::encode_into(&mut out, &e);
            out.push('\n');
        }
        out
    }
}

/// Draining the collector moves its collected log out (after pulling
/// whatever is pending on the gateway subscriptions), so a downstream
/// stage can treat the collector itself as just another event source.
impl EventSource<SharedEvent> for EventCollector {
    fn drain_into(&mut self, out: &mut Vec<SharedEvent>) -> usize {
        self.poll();
        let drained = std::mem::take(&mut self.collected);
        let n = drained.len();
        out.extend(drained);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_gateway::{EventGateway, GatewayConfig};
    use jamm_ulm::{Event, Level, Timestamp};

    fn sensor_entry(host: &str, sensor: &str, gateway: &str) -> jamm_directory::Entry {
        jamm_directory::Entry::new(
            Dn::parse(&format!("sensor={sensor},host={host},o=lbl,o=grid")).unwrap(),
        )
        .with("objectclass", "sensor")
        .with("host", host)
        .with("sensor", sensor)
        .with("gateway", gateway)
        .with("status", "running")
    }

    fn ev(host: &str, ty: &str, t: u64) -> jamm_ulm::Event {
        Event::builder("prog", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(t))
            .value(t)
            .build()
    }

    fn setup() -> (
        Arc<DirectoryServer>,
        GatewayRegistry,
        Arc<EventGateway>,
        Arc<EventGateway>,
    ) {
        let dir = Arc::new(DirectoryServer::new(
            "ldap://dir",
            Dn::parse("o=grid").unwrap(),
        ));
        for host in ["dpss1.lbl.gov", "dpss2.lbl.gov"] {
            dir.add(sensor_entry(host, "cpu", "gw1")).unwrap();
        }
        dir.add(sensor_entry("mems.cairn.net", "cpu", "gw2"))
            .unwrap();
        let gw1 = Arc::new(EventGateway::new(GatewayConfig::open("gw1")));
        let gw2 = Arc::new(EventGateway::new(GatewayConfig::open("gw2")));
        let mut reg = GatewayRegistry::new();
        reg.register("gw1", Arc::clone(&gw1));
        reg.register("gw2", Arc::clone(&gw2));
        (dir, reg, gw1, gw2)
    }

    #[test]
    fn discovery_subscription_and_merge() {
        let (dir, reg, gw1, gw2) = setup();
        let mut collector = EventCollector::new("nlv-user");
        let found = collector.discover(
            &dir,
            &Dn::parse("o=grid").unwrap(),
            &Filter::parse("(objectclass=sensor)").unwrap(),
        );
        assert_eq!(found.len(), 3);
        assert_eq!(
            collector.subscribe_all(&reg, vec![]),
            2,
            "one sub per gateway"
        );

        // Events arrive out of order across gateways.
        gw2.publish(&ev("mems.cairn.net", "MPLAY_START_READ_FRAME", 30));
        gw1.publish(&ev("dpss1.lbl.gov", "DPSS_SERV_IN", 10));
        gw1.publish(&ev("dpss2.lbl.gov", "DPSS_SERV_IN", 20));
        assert_eq!(collector.poll(), 3);
        let merged = collector.merged_log();
        let times: Vec<u64> = merged.iter().map(|e| e.timestamp.as_secs()).collect();
        assert_eq!(times, vec![10, 20, 30], "merged log is time ordered");
        let ulm = collector.merged_ulm();
        assert_eq!(jamm_ulm::text::decode_all_lossy(&ulm).len(), 3);
    }

    #[test]
    fn host_filter_excludes_unrelated_hosts() {
        let (dir, reg, gw1, _) = setup();
        let mut collector = EventCollector::new("c");
        collector.discover(
            &dir,
            &Dn::parse("host=dpss1.lbl.gov,o=lbl,o=grid").unwrap(),
            &Filter::everything(),
        );
        collector.subscribe_all(&reg, vec![]);
        // gw1 serves both dpss1 and dpss2, but the collector only discovered
        // dpss1, so dpss2 events are filtered out by the host filter.
        gw1.publish(&ev("dpss1.lbl.gov", "CPU_TOTAL", 1));
        gw1.publish(&ev("dpss2.lbl.gov", "CPU_TOTAL", 2));
        collector.poll();
        assert_eq!(collector.events().len(), 1);
        assert_eq!(collector.events()[0].host, "dpss1.lbl.gov");
    }

    #[test]
    fn discovery_with_filters_and_unknown_gateways() {
        let (dir, _, _, _) = setup();
        // A sensor pointing at a gateway that is not in the registry.
        dir.add(sensor_entry("orphan.lbl.gov", "cpu", "gw-missing"))
            .unwrap();
        let mut collector = EventCollector::new("c");
        let found = collector.discover(
            &dir,
            &Dn::parse("o=grid").unwrap(),
            &Filter::parse("(&(objectclass=sensor)(host=orphan*))").unwrap(),
        );
        assert_eq!(found.len(), 1);
        let reg = GatewayRegistry::new();
        assert_eq!(collector.subscribe_all(&reg, vec![]), 0);
        assert_eq!(collector.poll(), 0);
    }

    #[test]
    fn typed_subscription_is_routed_by_event_type() {
        let (_, reg, gw1, _) = setup();
        let mut collector = EventCollector::new("c");
        assert!(collector.subscribe_gateway_typed(
            &reg,
            "gw1",
            vec!["DPSS_SERV_IN".into()],
            vec![],
        ));
        gw1.publish(&ev("h", "DPSS_SERV_IN", 1));
        gw1.publish(&ev("h", "CPU_TOTAL", 2));
        gw1.publish(&ev("h", "DPSS_SERV_IN", 3));
        collector.poll();
        assert_eq!(collector.events().len(), 2);
        assert!(collector
            .events()
            .iter()
            .all(|e| e.event_type == "DPSS_SERV_IN"));
        // The typed subscription occupies exactly one routing shard (the
        // one owning DPSS_SERV_IN), not all of them.
        let occupied: usize = gw1.shard_report().iter().map(|s| s.subscriptions).sum();
        assert_eq!(occupied, 1, "typed subscription confined to one shard");
    }

    #[test]
    fn direct_gateway_subscription() {
        let (_, reg, gw1, _) = setup();
        let mut collector = EventCollector::new("c");
        assert!(collector.subscribe_gateway(&reg, "gw1", vec![]));
        assert!(!collector.subscribe_gateway(&reg, "nope", vec![]));
        gw1.publish(&ev("any.host", "X", 1));
        collector.poll();
        assert_eq!(collector.events().len(), 1);
        assert_eq!(collector.subscription_count(), 1);
    }
}
