//! Property-based invariants of the network simulator.
//!
//! Whatever the topology parameters and seeds, the simulator must conserve
//! bytes, respect configured capacities, keep host utilisation in range, and
//! be deterministic for a given seed — otherwise none of the reproduced
//! experiments can be trusted.

use jamm_core::check::{forall, Gen};
use jamm_netsim::clock::SimClock;
use jamm_netsim::host::HostSpec;
use jamm_netsim::link::LinkSpec;
use jamm_netsim::network::Network;

/// Build a two-host network with one link and one flow from generated
/// parameters, run it, and return it for inspection.
fn run_simple(
    bandwidth_mbps: u64,
    delay_ms: u64,
    rcv_window_kb: u64,
    transfer_kb: u64,
    pkt_cost_us: f64,
    seed: u64,
    ticks: u64,
) -> (Network, jamm_netsim::FlowId, u64) {
    let mut net = Network::new(SimClock::matisse(), seed);
    let a = net.add_host(HostSpec::new("src.lbl.gov"));
    let b = net.add_host(HostSpec::new("dst.lbl.gov").pkt_cost_us(pkt_cost_us));
    let l = net.add_link(LinkSpec::new(
        "link",
        bandwidth_mbps * 1_000_000,
        delay_ms * 1_000,
    ));
    let f = net.open_flow("xfer", a, b, 7_000, vec![l], rcv_window_kb * 1024);
    let bytes = transfer_kb * 1024;
    net.flow_mut(f).enqueue(bytes);
    net.run_ticks(ticks);
    (net, f, bytes)
}

/// A finite transfer never delivers more bytes than were enqueued, and
/// the per-tick clock advances exactly as configured.
#[test]
fn delivered_bytes_never_exceed_offered() {
    forall("byte conservation", 24, |g: &mut Gen| {
        let bandwidth_mbps = g.rng().gen_range(10u64..1_000);
        let delay_ms = g.rng().gen_range(1u64..50);
        let rcv_window_kb = g.rng().gen_range(16u64..2_048);
        let transfer_kb = g.rng().gen_range(64u64..4_096);
        let seed = g.u64(1_000);
        let ticks = 2_000;
        let (net, f, offered) = run_simple(
            bandwidth_mbps,
            delay_ms,
            rcv_window_kb,
            transfer_kb,
            20.0,
            seed,
            ticks,
        );
        assert!(net.flow(f).total_delivered <= offered);
        assert_eq!(net.clock().now_us(), ticks * 1_000);
        // Receiver never counts more received bytes than the sender offered.
        assert!(net.host(jamm_netsim::HostId(1)).stats().rx_bytes <= offered);
    });
}

/// Sustained throughput never exceeds the link's configured bandwidth
/// (small allowance for the one-off queue drain).
#[test]
fn throughput_respects_link_capacity() {
    forall("link capacity", 24, |g: &mut Gen| {
        let bandwidth_mbps = g.rng().gen_range(10u64..622);
        let delay_ms = g.rng().gen_range(1u64..30);
        let seed = g.u64(1_000);
        let mut net = Network::new(SimClock::matisse(), seed);
        let a = net.add_host(HostSpec::new("a"));
        let b = net.add_host(HostSpec::new("b"));
        let l = net.add_link(LinkSpec::new(
            "l",
            bandwidth_mbps * 1_000_000,
            delay_ms * 1_000,
        ));
        let f = net.open_flow("x", a, b, 1, vec![l], 8 << 20);
        net.flow_mut(f).set_unlimited();
        let secs = 5.0;
        net.run_ticks((secs * 1_000.0) as u64);
        let rate_bps = net.flow(f).average_rate_bps(net.clock().now_us());
        let queue_allowance = net.link(l).spec.queue_bytes as f64 * 8.0 / secs;
        assert!(
            rate_bps <= bandwidth_mbps as f64 * 1e6 * 1.02 + queue_allowance,
            "rate {:.1} Mbit/s exceeds link {} Mbit/s",
            rate_bps / 1e6,
            bandwidth_mbps
        );
    });
}

/// Host CPU percentages stay within 0-100 and memory never exceeds the
/// configured total, whatever load the receiver sees.
#[test]
fn host_utilisation_stays_in_range() {
    forall("host utilisation", 24, |g: &mut Gen| {
        let pkt_cost_us = g.f64_in(5.0, 400.0);
        let bandwidth_mbps = g.rng().gen_range(50u64..1_000);
        let seed = g.u64(500);
        let (net, _, _) = run_simple(bandwidth_mbps, 5, 1_024, 100_000, pkt_cost_us, seed, 1_500);
        for host in net.hosts() {
            let s = host.stats();
            assert!(s.cpu_user_pct >= 0.0 && s.cpu_user_pct <= 100.0);
            assert!(s.cpu_sys_pct >= 0.0 && s.cpu_sys_pct <= 100.0);
            assert!(s.cpu_user_pct + s.cpu_sys_pct <= 100.0 + 1e-9);
            assert!(s.mem_free_kb <= host.spec.memory_kb);
        }
    });
}

/// The same seed and parameters give bit-identical results; a different
/// seed on a lossy path is allowed to differ.
#[test]
fn simulation_is_deterministic_per_seed() {
    forall("determinism", 24, |g: &mut Gen| {
        let bandwidth_mbps = g.rng().gen_range(10u64..500);
        let transfer_kb = g.rng().gen_range(128u64..2_048);
        let seed = g.u64(1_000);
        let run = |s| {
            let (net, f, _) = run_simple(bandwidth_mbps, 10, 512, transfer_kb, 30.0, s, 1_000);
            (
                net.flow(f).total_delivered,
                net.flow(f).retransmits,
                net.host(jamm_netsim::HostId(1)).stats().rx_packets,
            )
        };
        assert_eq!(run(seed), run(seed));
    });
}

/// Link interface counters are monotone and drops only happen when the
/// offered load exceeds what the link can carry.
#[test]
fn link_counters_are_consistent() {
    forall("link counters", 24, |g: &mut Gen| {
        let bandwidth_mbps = g.rng().gen_range(5u64..200);
        let rcv_window_kb = g.rng().gen_range(64u64..4_096);
        let seed = g.u64(300);
        let mut net = Network::new(SimClock::matisse(), seed);
        let a = net.add_host(HostSpec::new("a"));
        let b = net.add_host(HostSpec::new("b"));
        let l = net.add_link(LinkSpec::new("l", bandwidth_mbps * 1_000_000, 2_000));
        let f = net.open_flow("x", a, b, 1, vec![l], rcv_window_kb * 1024);
        net.flow_mut(f).set_unlimited();
        let mut last_octets = 0u64;
        for _ in 0..50 {
            net.run_ticks(20);
            let c = net.link(l).counters();
            assert!(c.in_octets >= last_octets, "octet counter went backwards");
            last_octets = c.in_octets;
        }
        let c = net.link(l).counters();
        assert!(
            c.in_packets <= c.in_octets,
            "packets cannot outnumber octets"
        );
    });
}
