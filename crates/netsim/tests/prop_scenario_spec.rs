//! Property tests for the declarative scenario format.
//!
//! 1. **Round-trip**: any generated `ScenarioSpec`, rendered via
//!    `Display` and reparsed, is structurally identical — the canonical
//!    form is a fixed point of parse ∘ render.
//! 2. **Error positions**: unknown directives and malformed values are
//!    reported with the byte position and a reason, the same shape as
//!    `jamm_core::query::ParseError` (`Predicate` parse errors), so
//!    tooling can underline the offending token in the spec text.

use jamm_core::check::{forall, Gen};
use jamm_netsim::engine::spec::{
    Fault, FlowDecl, GatewayDecl, HostDecl, LinkDecl, QosDecl, RouterDecl, ScenarioSpec,
    SensorDecl, SubscriberDecl, TimelineEntry,
};

fn name(g: &mut Gen, prefix: &str, i: usize) -> String {
    let len = g.usize_in(1, 8);
    let tail = g.string_from("abcdefghijklmnopqrstuvwxyz0123456789.-", len);
    format!("{prefix}{i}-{tail}")
}

fn pick(g: &mut Gen, names: &[String]) -> String {
    names[g.usize_in(0, names.len() - 1)].clone()
}

fn gen_spec(g: &mut Gen) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        name: name(g, "scn", 0),
        seed: g.any_u64(),
        tick_us: g.rng().gen_range(1u64..5_000),
        duration_us: g.rng().gen_range(1u64..120) * 1_000_000,
        sample_every: g.rng().gen_range(1u64..256),
        ..ScenarioSpec::default()
    };
    for i in 0..g.usize_in(1, 5) {
        let mut h = HostDecl {
            name: name(g, "host", i),
            ..HostDecl::default()
        };
        if g.bool(0.7) {
            h.cpus = Some(g.rng().gen_range(1u64..16) as u32);
        }
        if g.bool(0.5) {
            h.memory_kb = Some(g.rng().gen_range(1u64..64) * 1024);
        }
        if g.bool(0.5) {
            // `{}` on f64 prints the shortest string that reparses to the
            // same value, so any finite f64 round-trips exactly.
            h.pkt_cost_us = Some(g.f64_in(1.0, 100.0));
        }
        if g.bool(0.3) {
            h.socket_overhead = Some(g.f64_in(0.0, 1.0));
        }
        if g.bool(0.3) {
            h.rcv_buffer_bytes = Some(g.rng().gen_range(1u64..32) << 20);
        }
        if g.bool(0.3) {
            h.multi_socket_loss = Some(g.f64_in(0.0, 0.01));
        }
        for p in 0..g.usize_in(0, 2) {
            let pr = name(g, "proc", p);
            h.processes.push(pr);
        }
        spec.hosts.push(h);
    }
    for i in 0..g.usize_in(1, 4) {
        spec.links.push(LinkDecl {
            name: name(g, "link", i),
            bandwidth_bps: g.rng().gen_range(1u64..2_500) * 1_000_000,
            delay_us: g.rng().gen_range(1u64..50_000),
            queue_bytes: g.bool(0.4).then(|| g.rng().gen_range(1u64..1_024) << 10),
            error_rate: g.bool(0.3).then(|| g.f64_in(0.0, 0.1)),
        });
    }
    let hosts: Vec<String> = spec.hosts.iter().map(|h| h.name.clone()).collect();
    let links: Vec<String> = spec.links.iter().map(|l| l.name.clone()).collect();
    if g.bool(0.6) {
        let router_links = (0..g.usize_in(1, 3)).map(|_| pick(g, &links)).collect();
        spec.routers.push(RouterDecl {
            name: name(g, "rt", 0),
            links: router_links,
        });
    }
    for i in 0..g.usize_in(0, 3) {
        spec.flows.push(FlowDecl {
            name: name(g, "flow", i),
            src: pick(g, &hosts),
            dst: pick(g, &hosts),
            port: g.rng().gen_range(1u64..65_535) as u16,
            window: g.rng().gen_range(1u64..4_096) << 10,
            via: (0..g.usize_in(1, 3)).map(|_| pick(g, &links)).collect(),
            bytes: g.bool(0.5).then(|| g.rng().gen_range(1u64..1_024) << 20),
        });
    }
    for i in 0..g.usize_in(0, 2) {
        // A qos plane on ~40% of gateways, each threshold independently
        // present — `{}` on f64 prints the shortest reparsing string, so
        // any finite threshold round-trips exactly.
        let qos = g.bool(0.4).then(|| QosDecl {
            retier: g.bool(0.6).then(|| g.rng().gen_range(1u64..4_096)),
            lag_enter: g.bool(0.5).then(|| g.f64_in(0.1, 0.5)),
            lag_exit: g.bool(0.5).then(|| g.f64_in(0.0, 0.1)),
            probation_enter: g.bool(0.5).then(|| g.f64_in(0.5, 0.9)),
            probation_exit: g.bool(0.5).then(|| g.f64_in(0.1, 0.5)),
            shed_enter: g.bool(0.5).then(|| g.f64_in(0.4, 0.9)),
            shed_exit: g.bool(0.5).then(|| g.f64_in(0.0, 0.4)),
            budget_lagging: g.bool(0.5).then(|| g.f64_in(0.1, 1.0)),
            budget_probation: g.bool(0.5).then(|| g.f64_in(0.0, 0.5)),
        });
        spec.gateways.push(GatewayDecl {
            name: name(g, "gw", i),
            host: pick(g, &hosts),
            qos,
        });
    }
    let gws: Vec<String> = spec.gateways.iter().map(|gw| gw.name.clone()).collect();
    if !gws.is_empty() {
        for i in 0..g.usize_in(0, 2) {
            spec.subscribers.push(SubscriberDecl {
                name: name(g, "sub", i),
                host: pick(g, &hosts),
                via: (0..g.usize_in(1, gws.len()))
                    .map(|_| pick(g, &gws))
                    .collect(),
                drain_us: g.rng().gen_range(1u64..100) * 1_000,
                capacity: g.usize_in(16, 1 << 14),
                cpu_of: g.bool(0.3).then(|| pick(g, &hosts)),
            });
        }
        for _ in 0..g.usize_in(0, 2) {
            spec.sensors.push(SensorDecl {
                host: pick(g, &hosts),
                every_us: g.rng().gen_range(1u64..5_000) * 1_000,
                via: pick(g, &gws),
                backoff_us: g.bool(0.4).then(|| g.rng().gen_range(1u64..2_000) * 1_000),
                summary_every: g.bool(0.4).then(|| g.rng().gen_range(1u64..64)),
            });
        }
    }
    let subs: Vec<String> = spec.subscribers.iter().map(|s| s.name.clone()).collect();
    for _ in 0..g.usize_in(0, 6) {
        let at_us = g.rng().gen_range(0u64..200) * 500_000;
        let fault = match g.usize_in(0, 8) {
            0 => Fault::LinkDegrade {
                link: pick(g, &links),
                bandwidth_bps: g.rng().gen_range(1u64..1_000) * 1_000_000,
            },
            1 => Fault::LinkRestore {
                link: pick(g, &links),
            },
            2 => Fault::HostCrash {
                host: pick(g, &hosts),
            },
            3 => Fault::HostRecover {
                host: pick(g, &hosts),
            },
            4 => {
                let a = pick(g, &hosts);
                let b = pick(g, &hosts);
                Fault::Partition {
                    groups: vec![vec![a], vec![b]],
                }
            }
            5 => Fault::Heal,
            6 => Fault::SensorPeriod {
                host: "*".to_string(),
                every_us: g.rng().gen_range(1u64..2_000) * 1_000,
            },
            7 if !subs.is_empty() => Fault::SubscriberStall {
                name: pick(g, &subs),
                period_us: g.rng().gen_range(1u64..200) * 1_000,
            },
            _ => Fault::SensorStop {
                host: pick(g, &hosts),
            },
        };
        spec.timeline.push(TimelineEntry { at_us, fault });
    }
    spec
}

/// parse(render(spec)) == spec for arbitrary generated specs.
#[test]
fn rendered_specs_reparse_identically() {
    forall("spec round-trip", 96, |g: &mut Gen| {
        let spec = gen_spec(g);
        let text = spec.to_string();
        let reparsed = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nrendered:\n{text}"));
        assert_eq!(spec, reparsed, "round-trip changed the spec\n{text}");
    });
}

/// Rendering the reparsed spec is a fixed point: render ∘ parse ∘ render
/// is byte-identical to render.
#[test]
fn canonical_rendering_is_a_fixed_point() {
    forall("canonical fixed point", 48, |g: &mut Gen| {
        let text = gen_spec(g).to_string();
        let again = ScenarioSpec::parse(&text).expect("parses").to_string();
        assert_eq!(text, again);
    });
}

/// An unknown directive is reported at the exact byte where it starts,
/// with the directive echoed in the reason — even at the end of an
/// arbitrary valid prefix.
#[test]
fn unknown_directive_reports_its_byte_position() {
    forall("unknown directive position", 48, |g: &mut Gen| {
        let mut text = gen_spec(g).to_string();
        let garbage_at = text.len();
        text.push_str("frobnicate everything\n");
        let err = ScenarioSpec::parse(&text).expect_err("garbage directive must not parse");
        assert_eq!(err.pos, garbage_at, "error should point at the directive");
        assert!(
            err.reason.contains("frobnicate"),
            "reason names the directive: {}",
            err.reason
        );
        // The rendered form mirrors jamm_core::query::ParseError's
        // "at byte N" convention.
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("byte {garbage_at}")),
            "display carries the byte position: {msg}"
        );
    });
}

/// A malformed attribute value points at the offending `key=value` token
/// inside the line — not at the start of the line or the end of the file.
#[test]
fn bad_values_point_at_the_offending_token() {
    forall("bad value position", 48, |g: &mut Gen| {
        let mut text = gen_spec(g).to_string();
        let line_at = text.len();
        text.push_str("link broken bw=notarate delay=1ms\n");
        let err = ScenarioSpec::parse(&text).expect_err("bad rate must not parse");
        let token_at = line_at + "link broken ".len();
        assert_eq!(
            err.pos, token_at,
            "error points at the bw= token: {}",
            err.reason
        );
        assert!(
            err.reason.contains("notarate"),
            "reason echoes the value: {}",
            err.reason
        );
    });
}
