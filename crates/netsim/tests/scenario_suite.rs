//! The asserted scenario suite: each test loads a declarative spec from
//! `scenarios/`, runs it on the simulated clock, and chains at least
//! three analyser assertions over the resulting report.  Several
//! scenarios additionally require that the automated bottleneck analysis
//! (`jamm_netlogger::analysis::diagnose`, fed from the monitoring
//! plane's own self-lifelines) localizes the *injected* fault to the
//! right stage pair and host — monitoring diagnosing itself, the
//! paper's §5 workflow with no human in the loop.
//!
//! Everything here is driven by the simulated clock and a seed from the
//! spec file; the determinism test at the bottom asserts that the entire
//! rendered report is byte-identical across two runs.

use jamm_netsim::engine::{ScenarioEngine, ScenarioReport, ScenarioSpec};
use jamm_ulm::keys::jamm;

fn load(name: &str) -> String {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn run(name: &str) -> ScenarioReport {
    let engine =
        ScenarioEngine::from_text(&load(name)).unwrap_or_else(|e| panic!("compile {name}: {e}"));
    engine.run()
}

/// The MATISSE WAN collapse at 10x the paper's scale: forty parallel DPSS
/// streams into one receive host.  Aggregate goodput must *collapse* (the
/// magnitude assertion), and the self-lifeline diagnosis must name the
/// receiving host: the consumer CPU-coupled to mems.cairn.net starves
/// while the host's receive path thrashes, so the dominant stage gap is
/// SUB_DELIVER -> SUB_DRAIN at mems.cairn.net.
#[test]
fn matisse_wan_collapse_at_10x_scale_is_diagnosed_to_the_receiving_host() {
    let report = run("matisse_wan_10x.scn");
    report
        .expect()
        // Early seconds still move real data...
        .throughput_at_least_during(1, 2, 10.0)
        // ...then 40 concurrent streams collapse the receiver: an order
        // of magnitude below the 250 Mbit/s the NIC could deliver.
        .throughput_at_most_during(10, 39, 10.0)
        .events_delivered_at_least("mems.cairn.net", 900)
        .delivery_p99_under("mems.cairn.net", 100_000)
        .diagnosis_localizes(jamm::SUB_DELIVER, jamm::SUB_DRAIN, "mems.cairn.net")
        .assert_ok();
}

/// Host churn with gateway failover: when the primary gateway's host
/// crashes, the directory marks it down, sensors re-resolve to the
/// standby, and delivery continues.  The archiver listens only on the
/// standby gateway, so a filled archive is direct evidence the failover
/// actually happened.
#[test]
fn host_churn_fails_over_through_the_directory() {
    let report = run("host_churn_failover.scn");
    report
        .expect()
        .events_delivered_at_least("ops", 2_300)
        .no_drops_outside(1, 0) // empty window: lossless everywhere
        .delivery_p99_under("ops", 20_000)
        .archived_at_least("arch", 250)
        .recovered_within(2) // data throughput back to baseline post-recover
        .assert_ok();
}

/// Partition during archive replay: the live consumer is cut off while
/// the whole archive is replayed through its gateway, so its bounded
/// subscription queue overflows — but only inside the partition window.
#[test]
fn partition_during_replay_drops_only_inside_the_window() {
    let report = run("partition_replay.scn");
    report
        .expect()
        .drops_at_least(2_000)
        .no_drops_outside(19, 31)
        .events_delivered_at_least("live", 3_500)
        .archived_at_least("arch", 6_000)
        .assert_ok();
}

/// A flapping sensor is a data gap, not a pipeline fault: the plane must
/// ride through stop/start churn losslessly with flat latency.
#[test]
fn flapping_sensor_does_not_disturb_the_pipeline() {
    let report = run("flapping_sensor.scn");
    report
        .expect()
        .events_delivered_at_least("ops", 700)
        .no_drops_outside(1, 0)
        .delivery_p99_under("ops", 10_000)
        .throughput_at_least(300.0)
        .assert_ok();
}

/// Bursty diurnal load: a 20x publish-rate burst for the middle third of
/// the run must be absorbed losslessly by the bounded queues.
#[test]
fn diurnal_burst_is_absorbed_losslessly() {
    let report = run("diurnal_burst.scn");
    report
        .expect()
        .events_delivered_at_least("ops", 2_400)
        .no_drops_outside(1, 0)
        .delivery_p99_under("ops", 10_000)
        .throughput_at_least(300.0)
        .assert_ok();
}

/// Slow-consumer tier degradation: the viz subscriber's drain loop
/// stalls to 80 ms per drain at 40s, and the self-lifeline analysis must
/// localize the bottleneck to the SUB_DELIVER -> SUB_DRAIN gap at `viz`.
#[test]
fn slow_consumer_tier_degradation_is_diagnosed() {
    let report = run("slow_consumer.scn");
    report
        .expect()
        .events_delivered_at_least("viz", 2_000)
        .no_drops_outside(1, 0)
        .delivery_p99_under("viz", 200_000)
        .diagnosis_localizes(jamm::SUB_DELIVER, jamm::SUB_DRAIN, "viz")
        .assert_ok();
}

/// QoS quarantine: the viz subscriber stalls to 400 ms per drain at 10s
/// and must be walked into the probation tier, with every drop its own
/// and nothing shed from the fast tier.  Isolation is asserted against
/// a programmatic no-stall baseline: the fast consumer's p99 delivery
/// latency under the stall must stay within 2x of the unfaulted run.
#[test]
fn a_stalled_consumer_is_quarantined_in_probation() {
    let report = run("qos_stalled_consumer.scn");
    let mut spec = ScenarioSpec::parse(&load("qos_stalled_consumer.scn")).expect("parses");
    spec.timeline.clear();
    let baseline = ScenarioEngine::new(spec).expect("compiles").run();
    let base_p99 = baseline
        .consumer("ops")
        .expect("baseline ops")
        .latency_percentile_us(99.0)
        .max(1);
    let stalled_p99 = report
        .consumer("ops")
        .expect("ops")
        .latency_percentile_us(99.0);
    assert!(
        stalled_p99 <= base_p99 * 2,
        "fast-tier p99 {stalled_p99}us under the stall > 2x the {base_p99}us no-stall baseline"
    );
    report
        .expect()
        .tiered_as("gw-mon", "viz", "probation")
        .tiered_as("gw-mon", "ops", "fast")
        .drops_only_for("viz")
        .drops_at_least(100)
        .delivery_p99_under("ops", 20_000)
        .shed_none("gw-mon", "fast")
        .self_lifelines_lossless()
        .assert_ok();
}

/// Degradation order under a 20x burst: declared overload sheds the
/// probation tier only — the fast tier is never cut, the protected
/// summary stream reaches ops losslessly, the self-lifelines survive,
/// and every queue drop belongs to the overwhelmed trend subscriber,
/// confined to the burst window.
#[test]
fn a_burst_sheds_the_lowest_tier_first_and_summaries_survive() {
    let report = run("qos_burst_shed.scn");
    assert!(
        report.summaries_published >= 3_000,
        "expected a summary stream, got {}",
        report.summaries_published
    );
    report
        .expect()
        .tiered_as("gw-mon", "ops", "fast")
        .shed_at_least("gw-mon", "probation", 500)
        .shed_none("gw-mon", "fast")
        .shed_none("gw-mon", "lagging")
        .drops_only_for("trend")
        .no_drops_outside(15, 31)
        .summaries_delivered_at_least("ops", 3_000)
        .self_lifelines_lossless()
        .assert_ok();
}

/// Self-healing reconnect: the gateway host crashes at 12s and recovers
/// at 18s.  Both sensor breakers must open (no directory probing while
/// down), revive within the 500ms-base/4s-cap backoff envelope after
/// recovery, and flush their buffered readings losslessly; the TCP flow
/// the crash severed recovers too.
#[test]
fn a_crashed_gateway_host_is_redialed_within_the_backoff_envelope() {
    let report = run("qos_collector_reconnect.scn");
    report
        .expect()
        .revived_at_least(2)
        .revived_within(5)
        .no_drops_outside(1, 0) // empty window: lossless everywhere
        .events_delivered_at_least("ops", 11_000)
        .recovered_within(3)
        .assert_ok();
}

/// Continuous-query dashboards: a small (n=4) and a big (n=32) reader
/// pool poll the same materialized view.  Every read must be served
/// from an incrementally-maintained snapshot (archive-scan fallback
/// counter pinned at zero), per-reader throughput must stay flat as
/// the pool grows 8x, and the archiver keeps filling the archive the
/// whole time — views don't starve the cold tier.
#[test]
fn a_dashboard_pool_reads_views_without_archive_scans() {
    let report = run("dashboard_readers.scn");
    report
        .expect()
        .served_from_views("dash-small")
        .served_from_views("dash-big")
        .reader_rate_flat("dash-small", "dash-big")
        .events_delivered_at_least("ops", 2_000)
        .archived_at_least("keeper", 2_000)
        .assert_ok();
}

/// Same spec + same seed => byte-identical analyser report.  The whole
/// pipeline — fluid TCP, fault injection, gateway routing, self-lifeline
/// timestamps (via the shared TraceClock), the diagnosis text — must be
/// free of wall-clock and iteration-order nondeterminism.
#[test]
fn same_spec_and_seed_render_byte_identical_reports() {
    let a = run("partition_replay.scn").render_text();
    let b = run("partition_replay.scn").render_text();
    assert_eq!(a, b, "scenario runs diverged under a fixed seed");
}
