//! Synthetic application workloads.
//!
//! The port-monitor experiment (E8) needs an application whose network
//! activity comes and goes: the paper's example is an FTP client connecting
//! to an FTP server, which should switch host monitoring on only for the
//! duration of the transfer.  [`OnOffWorkload`] produces exactly that
//! pattern: bursts of transfer on a well-known port separated by idle gaps.

use jamm_core::rng::Rng;

use crate::host::HostId;
use crate::link::LinkId;
use crate::network::{FlowId, Network};

/// Phase of the on/off workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting before the next transfer starts (remaining ticks).
    Idle(u64),
    /// A transfer is in progress on the given flow.
    Active(FlowId),
}

/// An application that alternates between transfers and idle periods.
#[derive(Debug)]
pub struct OnOffWorkload {
    /// Source host of the transfers.
    pub src: HostId,
    /// Destination host of the transfers.
    pub dst: HostId,
    /// Destination port (what the port monitor watches), e.g. 21 for FTP.
    pub port: u16,
    path: Vec<LinkId>,
    transfer_bytes: u64,
    idle_ticks: u64,
    rcv_window: u64,
    phase: Phase,
    rng: Rng,
    /// Number of transfers completed.
    pub transfers_completed: u64,
}

impl OnOffWorkload {
    /// Create a workload that repeatedly transfers `transfer_bytes` from
    /// `src` to `dst` on `port`, waiting roughly `idle_ticks` between
    /// transfers (jittered ±25% so runs are not artificially synchronised).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        src: HostId,
        dst: HostId,
        port: u16,
        path: Vec<LinkId>,
        transfer_bytes: u64,
        idle_ticks: u64,
        rcv_window: u64,
        seed: u64,
    ) -> Self {
        OnOffWorkload {
            src,
            dst,
            port,
            path,
            transfer_bytes,
            idle_ticks,
            rcv_window,
            phase: Phase::Idle(1),
            rng: Rng::seed_from_u64(seed),
            transfers_completed: 0,
        }
    }

    /// Whether a transfer is currently in progress.
    pub fn is_active(&self) -> bool {
        matches!(self.phase, Phase::Active(_))
    }

    /// Drive the workload by one tick.  Call before `net.step()`.
    pub fn tick(&mut self, net: &mut Network) {
        match self.phase {
            Phase::Idle(remaining) => {
                if remaining > 1 {
                    self.phase = Phase::Idle(remaining - 1);
                } else {
                    // Start a new transfer on a fresh connection.
                    let fid = net.open_flow(
                        format!("ftp-{}", self.transfers_completed + 1),
                        self.src,
                        self.dst,
                        self.port,
                        self.path.clone(),
                        self.rcv_window,
                    );
                    net.flow_mut(fid).enqueue(self.transfer_bytes);
                    self.phase = Phase::Active(fid);
                }
            }
            Phase::Active(fid) => {
                if net.flow(fid).pending_bytes == 0 {
                    net.flow_mut(fid).close();
                    self.transfers_completed += 1;
                    let jitter = (self.idle_ticks / 4).max(1);
                    let idle = self.idle_ticks - jitter + self.rng.gen_range(0..=2 * jitter);
                    self.phase = Phase::Idle(idle.max(1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::host::HostSpec;
    use crate::link::LinkSpec;

    fn setup() -> (Network, OnOffWorkload, HostId) {
        let mut net = Network::new(SimClock::matisse(), 9);
        let a = net.add_host(HostSpec::new("ftp-client"));
        let b = net.add_host(HostSpec::new("ftp-server"));
        let l = net.add_link(LinkSpec::fast_ethernet("lan"));
        let w = OnOffWorkload::new(a, b, 21, vec![l], 500_000, 200, 1 << 20, 1);
        (net, w, b)
    }

    #[test]
    fn workload_alternates_and_completes_transfers() {
        let (mut net, mut w, _) = setup();
        let mut active_ticks = 0u64;
        let mut idle_ticks = 0u64;
        for _ in 0..10_000 {
            w.tick(&mut net);
            if w.is_active() {
                active_ticks += 1;
            } else {
                idle_ticks += 1;
            }
            net.step();
        }
        assert!(
            w.transfers_completed >= 5,
            "completed {}",
            w.transfers_completed
        );
        assert!(active_ticks > 0 && idle_ticks > 0, "both phases occur");
    }

    #[test]
    fn port_activity_only_during_transfers() {
        let (mut net, mut w, server) = setup();
        let mut active_with_traffic = 0u64;
        let mut idle_with_traffic = 0u64;
        for _ in 0..5_000 {
            w.tick(&mut net);
            let active = w.is_active();
            net.step();
            let traffic = net.port_activity(server, 21) > 0;
            if traffic && active {
                active_with_traffic += 1;
            }
            if traffic && !active {
                idle_with_traffic += 1;
            }
        }
        assert!(active_with_traffic > 0);
        assert_eq!(idle_with_traffic, 0, "no traffic while idle");
    }

    #[test]
    fn deterministic_given_a_seed() {
        let run = || {
            let (mut net, mut w, _) = setup();
            for _ in 0..3_000 {
                w.tick(&mut net);
                net.step();
            }
            w.transfers_completed
        };
        assert_eq!(run(), run());
    }
}
