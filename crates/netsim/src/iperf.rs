//! The iperf-style throughput test from §6 of the paper.
//!
//! After narrowing the MATISSE problem to the receiving host, the authors ran
//! Iperf to compare one TCP stream against four parallel streams between the
//! same pair of hosts, over both the WAN and the LAN.  [`IperfTest`] sets up
//! `n` unlimited flows over a given path, runs for a configured duration and
//! reports per-stream and aggregate throughput — experiment E5.

use crate::host::HostId;
use crate::link::LinkId;
use crate::network::{FlowId, Network};

/// Result of an iperf run.
#[derive(Debug, Clone, PartialEq)]
pub struct IperfReport {
    /// Number of parallel streams.
    pub streams: usize,
    /// Per-stream throughput in Mbit/s.
    pub per_stream_mbps: Vec<f64>,
    /// Aggregate throughput in Mbit/s.
    pub aggregate_mbps: f64,
    /// Total retransmissions across all streams.
    pub retransmits: u64,
    /// Total retransmission timeouts across all streams.
    pub timeouts: u64,
    /// Test duration in simulated seconds.
    pub duration_secs: f64,
}

/// A memory-to-memory TCP throughput test.
#[derive(Debug)]
pub struct IperfTest {
    flows: Vec<FlowId>,
}

impl IperfTest {
    /// Open `streams` parallel flows from `src` to `dst` along `path`, each
    /// with the given receive window, starting at iperf's default port 5001.
    pub fn start(
        net: &mut Network,
        src: HostId,
        dst: HostId,
        path: Vec<LinkId>,
        streams: usize,
        rcv_window: u64,
    ) -> Self {
        assert!(streams > 0, "iperf needs at least one stream");
        let mut flows = Vec::with_capacity(streams);
        for i in 0..streams {
            let fid = net.open_flow(
                format!("iperf-{}", i + 1),
                src,
                dst,
                5_001 + i as u16,
                path.clone(),
                rcv_window,
            );
            net.flow_mut(fid).set_unlimited();
            flows.push(fid);
        }
        IperfTest { flows }
    }

    /// The flow ids of the test streams.
    pub fn flows(&self) -> &[FlowId] {
        &self.flows
    }

    /// Run the test for `duration_us` of simulated time and report.
    pub fn run(&self, net: &mut Network, duration_us: u64) -> IperfReport {
        let start_us = net.clock().now_us();
        let start_delivered: Vec<u64> = self
            .flows
            .iter()
            .map(|f| net.flow(*f).total_delivered)
            .collect();
        let start_retrans: Vec<u64> = self
            .flows
            .iter()
            .map(|f| net.flow(*f).retransmits)
            .collect();
        let start_timeouts: Vec<u64> = self.flows.iter().map(|f| net.flow(*f).timeouts).collect();

        let ticks = duration_us / net.clock().tick_us();
        net.run_ticks(ticks);

        let elapsed_us = net.clock().now_us() - start_us;
        let per_stream_mbps: Vec<f64> = self
            .flows
            .iter()
            .zip(&start_delivered)
            .map(|(f, s)| {
                (net.flow(*f).total_delivered - s) as f64 * 8.0 / (elapsed_us as f64 / 1e6) / 1e6
            })
            .collect();
        let aggregate_mbps = per_stream_mbps.iter().sum();
        let retransmits = self
            .flows
            .iter()
            .zip(&start_retrans)
            .map(|(f, s)| net.flow(*f).retransmits - s)
            .sum();
        let timeouts = self
            .flows
            .iter()
            .zip(&start_timeouts)
            .map(|(f, s)| net.flow(*f).timeouts - s)
            .sum();
        IperfReport {
            streams: self.flows.len(),
            per_stream_mbps,
            aggregate_mbps,
            retransmits,
            timeouts,
            duration_secs: elapsed_us as f64 / 1e6,
        }
    }

    /// Close all the test's flows.
    pub fn stop(&self, net: &mut Network) {
        for f in &self.flows {
            net.flow_mut(*f).close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::host::HostSpec;
    use crate::link::LinkSpec;

    #[test]
    fn single_stream_saturates_a_clean_lan() {
        let mut net = Network::new(SimClock::matisse(), 1);
        let a = net.add_host(HostSpec::new("a"));
        let b = net.add_host(HostSpec::new("b"));
        let l = net.add_link(LinkSpec::new("fe", 100_000_000, 150));
        let test = IperfTest::start(&mut net, a, b, vec![l], 1, 1 << 20);
        let report = test.run(&mut net, 5_000_000);
        assert_eq!(report.streams, 1);
        assert_eq!(report.per_stream_mbps.len(), 1);
        assert!(
            report.aggregate_mbps > 70.0 && report.aggregate_mbps < 105.0,
            "got {:.1} Mbit/s",
            report.aggregate_mbps
        );
        assert!((report.duration_secs - 5.0).abs() < 0.01);
    }

    #[test]
    fn aggregate_is_sum_of_streams() {
        let mut net = Network::new(SimClock::matisse(), 2);
        let a = net.add_host(HostSpec::new("a"));
        let b = net.add_host(HostSpec::new("b"));
        let l = net.add_link(LinkSpec::new("fe", 100_000_000, 150));
        let test = IperfTest::start(&mut net, a, b, vec![l], 3, 1 << 20);
        let report = test.run(&mut net, 3_000_000);
        let sum: f64 = report.per_stream_mbps.iter().sum();
        assert!((sum - report.aggregate_mbps).abs() < 1e-9);
        test.stop(&mut net);
        assert!(net
            .flows()
            .iter()
            .all(|f| matches!(f.state, crate::tcp::FlowState::Closed)));
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let mut net = Network::new(SimClock::matisse(), 3);
        let a = net.add_host(HostSpec::new("a"));
        let b = net.add_host(HostSpec::new("b"));
        let l = net.add_link(LinkSpec::gige("l"));
        let _ = IperfTest::start(&mut net, a, b, vec![l], 0, 1 << 20);
    }
}
