//! Host model: CPU, memory and NIC / protocol-stack processing.
//!
//! The part of the MATISSE analysis that JAMM made visible (paper §6) was a
//! *receiver-side* bottleneck: with four parallel TCP sockets the receiving
//! host showed very high system CPU time, packet losses and retransmissions,
//! and aggregate WAN throughput collapsed from ~140 Mbit/s to ~30 Mbit/s,
//! while a single socket — and any number of sockets on the LAN — was fine.
//!
//! The host model captures exactly that mechanism: every delivered packet
//! costs system-CPU microseconds, the per-packet cost grows with the number
//! of concurrently active sockets (interrupt and driver overhead), and once
//! the CPU budget of a tick is exhausted additional packets are dropped,
//! which the TCP model turns into retransmissions and congestion-window
//! collapse.

/// Identifies a host within a [`crate::network::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub usize);

/// Static description of a host used to construct it.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Fully-qualified host name (e.g. `dpss1.lbl.gov`).
    pub name: String,
    /// Number of CPUs.
    pub cpus: u32,
    /// Total physical memory in kilobytes.
    pub memory_kb: u64,
    /// System-CPU cost of processing one received packet, in microseconds,
    /// when a single socket is active.
    pub pkt_cost_us: f64,
    /// Additional per-packet cost factor per extra concurrently-active
    /// receiving socket.  Effective cost is
    /// `pkt_cost_us * (1 + socket_overhead * (active_sockets - 1))`.
    pub socket_overhead: f64,
    /// Kernel socket-buffer memory available to receiving TCP flows, bytes.
    /// Limits the sum of receive windows (the paper's hosts used the default
    /// small TCP buffers unless tuned by the network-aware client).
    pub rcv_buffer_bytes: u64,
    /// Per-packet random drop probability added for every extra concurrently
    /// active receiving socket.  This models the gigabit-ethernet card /
    /// device-driver pathology the paper suspected: one socket is clean, but
    /// servicing several sockets at once makes the driver drop packets.
    /// Effective probability is `multi_socket_loss * (active_sockets - 1)`.
    pub multi_socket_loss: f64,
}

impl HostSpec {
    /// A reasonable default host: 2 CPUs, 512 MB, year-2000 class NIC stack.
    pub fn new(name: impl Into<String>) -> Self {
        HostSpec {
            name: name.into(),
            cpus: 2,
            memory_kb: 512 * 1024,
            pkt_cost_us: 30.0,
            socket_overhead: 0.0,
            rcv_buffer_bytes: 1 << 20,
            multi_socket_loss: 0.0,
        }
    }

    /// Builder-style: set CPU count.
    pub fn cpus(mut self, cpus: u32) -> Self {
        self.cpus = cpus;
        self
    }

    /// Builder-style: set memory in kilobytes.
    pub fn memory_kb(mut self, kb: u64) -> Self {
        self.memory_kb = kb;
        self
    }

    /// Builder-style: set per-packet processing cost.
    pub fn pkt_cost_us(mut self, us: f64) -> Self {
        self.pkt_cost_us = us;
        self
    }

    /// Builder-style: set per-socket overhead factor.
    pub fn socket_overhead(mut self, f: f64) -> Self {
        self.socket_overhead = f;
        self
    }

    /// Builder-style: set receive-buffer size in bytes.
    pub fn rcv_buffer_bytes(mut self, b: u64) -> Self {
        self.rcv_buffer_bytes = b;
        self
    }

    /// Builder-style: set the multi-socket driver loss probability.
    pub fn multi_socket_loss(mut self, p: f64) -> Self {
        self.multi_socket_loss = p.clamp(0.0, 1.0);
        self
    }
}

/// Instantaneous, sensor-visible host statistics.
///
/// This is what the JAMM host sensors (`vmstat`, `netstat` equivalents)
/// sample each collection interval.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostStats {
    /// User-mode CPU utilisation over the last tick, percent (0-100).
    pub cpu_user_pct: f64,
    /// System-mode CPU utilisation over the last tick, percent (0-100).
    pub cpu_sys_pct: f64,
    /// Free memory in kilobytes.
    pub mem_free_kb: u64,
    /// Cumulative received packets.
    pub rx_packets: u64,
    /// Cumulative received bytes.
    pub rx_bytes: u64,
    /// Cumulative transmitted bytes.
    pub tx_bytes: u64,
    /// Cumulative packets dropped because the protocol stack ran out of CPU
    /// or buffer budget.
    pub rx_drops: u64,
    /// Cumulative TCP retransmissions attributed to this host's flows
    /// (as a receiver).
    pub tcp_retransmits: u64,
    /// Number of TCP sockets that moved data in the last tick.
    pub active_sockets: u32,
}

/// A simulated host.
#[derive(Debug, Clone)]
pub struct Host {
    /// Identifier within the owning network.
    pub id: HostId,
    /// Static configuration.
    pub spec: HostSpec,
    stats: HostStats,
    /// System CPU microseconds consumed so far in the current tick.
    sys_us_this_tick: f64,
    /// User CPU microseconds consumed so far in the current tick.
    user_us_this_tick: f64,
    /// Memory currently in use by applications, kilobytes.
    mem_used_kb: u64,
    /// Sockets that have been marked active for the current tick.
    sockets_this_tick: u32,
    /// Processes registered on the host (name, alive).
    processes: Vec<(String, bool)>,
}

impl Host {
    /// Construct a host from its spec.
    pub fn new(id: HostId, spec: HostSpec) -> Self {
        let mem_used = spec.memory_kb / 8; // baseline OS footprint
        let stats = HostStats {
            mem_free_kb: spec.memory_kb - mem_used,
            ..HostStats::default()
        };
        Host {
            id,
            spec,
            stats,
            sys_us_this_tick: 0.0,
            user_us_this_tick: 0.0,
            mem_used_kb: mem_used,
            sockets_this_tick: 0,
            processes: Vec::new(),
        }
    }

    /// The host name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Sensor-visible statistics as of the end of the last completed tick.
    pub fn stats(&self) -> &HostStats {
        &self.stats
    }

    /// Total CPU budget per tick in microseconds (all CPUs).
    pub fn cpu_budget_us(&self, tick_us: u64) -> f64 {
        self.spec.cpus as f64 * tick_us as f64
    }

    /// Effective per-packet receive cost given the sockets active this tick.
    pub fn effective_pkt_cost_us(&self) -> f64 {
        let extra = self.sockets_this_tick.saturating_sub(1) as f64;
        self.spec.pkt_cost_us * (1.0 + self.spec.socket_overhead * extra)
    }

    /// Remaining system-CPU budget this tick, in microseconds.
    pub fn remaining_sys_budget_us(&self, tick_us: u64) -> f64 {
        (self.cpu_budget_us(tick_us) - self.sys_us_this_tick - self.user_us_this_tick).max(0.0)
    }

    /// Declare that a socket terminating at this host will move data this
    /// tick.  Must be called before [`Host::receive_packets`] so the
    /// per-socket overhead factor reflects true concurrency.
    pub fn mark_socket_active(&mut self) {
        self.sockets_this_tick += 1;
    }

    /// Number of sockets marked active so far in the current tick.
    pub fn sockets_active_now(&self) -> u32 {
        self.sockets_this_tick
    }

    /// The driver's per-packet drop probability given the sockets currently
    /// marked active (zero for a single socket).
    pub fn driver_loss_probability(&self) -> f64 {
        let extra = self.sockets_this_tick.saturating_sub(1) as f64;
        (self.spec.multi_socket_loss * extra).clamp(0.0, 1.0)
    }

    /// Account for application (user-mode) CPU work, e.g. decoding a frame.
    pub fn consume_user_cpu_us(&mut self, us: f64) {
        self.user_us_this_tick += us.max(0.0);
    }

    /// Allocate application memory; returns false (and allocates nothing) if
    /// the host does not have that much free.
    pub fn allocate_memory_kb(&mut self, kb: u64) -> bool {
        if self.mem_used_kb + kb > self.spec.memory_kb {
            return false;
        }
        self.mem_used_kb += kb;
        true
    }

    /// Release previously allocated application memory.
    pub fn release_memory_kb(&mut self, kb: u64) {
        self.mem_used_kb = self.mem_used_kb.saturating_sub(kb);
    }

    /// Register a process for the process sensor to watch.
    pub fn register_process(&mut self, name: impl Into<String>) {
        self.processes.push((name.into(), true));
    }

    /// Mark a registered process as dead (crash injection).
    pub fn kill_process(&mut self, name: &str) -> bool {
        for (p, alive) in &mut self.processes {
            if p == name && *alive {
                *alive = false;
                return true;
            }
        }
        false
    }

    /// Restart a dead process.
    pub fn restart_process(&mut self, name: &str) -> bool {
        for (p, alive) in &mut self.processes {
            if p == name && !*alive {
                *alive = true;
                return true;
            }
        }
        false
    }

    /// Iterate over registered processes and their liveness.
    pub fn processes(&self) -> impl Iterator<Item = (&str, bool)> {
        self.processes.iter().map(|(n, a)| (n.as_str(), *a))
    }

    /// Deliver `packets` packets carrying `bytes` bytes to this host.
    ///
    /// Returns the number of packets actually processed; the rest are dropped
    /// because the receive path ran out of CPU budget for this tick.  System
    /// CPU time is charged for processed packets (and a small amount for
    /// dropped ones — the interrupt still fires).
    pub fn receive_packets(&mut self, packets: u64, bytes: u64, tick_us: u64) -> u64 {
        if packets == 0 {
            return 0;
        }
        let cost = self.effective_pkt_cost_us();
        let budget = self.remaining_sys_budget_us(tick_us);
        let can_process = if cost <= 0.0 {
            packets
        } else {
            ((budget / cost).floor() as u64).min(packets)
        };
        let dropped = packets - can_process;
        self.sys_us_this_tick += can_process as f64 * cost;
        // Dropped packets still cost an interrupt (~quarter of the full cost).
        self.sys_us_this_tick += dropped as f64 * cost * 0.25;
        let bytes_ok = (bytes * can_process).checked_div(packets).unwrap_or(0);
        self.stats.rx_packets += can_process;
        self.stats.rx_bytes += bytes_ok;
        self.stats.rx_drops += dropped;
        can_process
    }

    /// Account for transmitted bytes (sender-side cost is smaller and we fold
    /// it into user time of the sending application).
    pub fn transmit_bytes(&mut self, bytes: u64, packets: u64) {
        self.stats.tx_bytes += bytes;
        // Sending costs roughly a third of the receive cost per packet.
        self.sys_us_this_tick += packets as f64 * self.spec.pkt_cost_us * 0.33;
    }

    /// Record a retransmission on a flow received by this host.
    pub fn record_retransmit(&mut self, n: u64) {
        self.stats.tcp_retransmits += n;
    }

    /// Close out the current tick: compute utilisation percentages, reset the
    /// per-tick accumulators, and snapshot sensor-visible state.
    pub fn end_tick(&mut self, tick_us: u64) {
        let budget = self.cpu_budget_us(tick_us);
        self.stats.cpu_sys_pct = (self.sys_us_this_tick / budget * 100.0).min(100.0);
        self.stats.cpu_user_pct =
            (self.user_us_this_tick / budget * 100.0).min(100.0 - self.stats.cpu_sys_pct);
        self.stats.mem_free_kb = self.spec.memory_kb.saturating_sub(self.mem_used_kb);
        self.stats.active_sockets = self.sockets_this_tick;
        self.sys_us_this_tick = 0.0;
        self.user_us_this_tick = 0.0;
        self.sockets_this_tick = 0;
    }

    /// True if the receive path was CPU-saturated in the last tick
    /// (system CPU above 90% of one CPU's budget).
    pub fn receiver_saturated(&self) -> bool {
        self.stats.cpu_sys_pct >= 90.0 / self.spec.cpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> Host {
        Host::new(
            HostId(0),
            HostSpec::new("mems.cairn.net")
                .cpus(1)
                .pkt_cost_us(50.0)
                .socket_overhead(0.5),
        )
    }

    #[test]
    fn single_socket_processes_within_budget() {
        let mut h = host();
        h.mark_socket_active();
        // Budget = 1 CPU * 1000us; cost 50us/pkt -> 20 pkts max.
        let ok = h.receive_packets(10, 15_000, 1_000);
        assert_eq!(ok, 10);
        h.end_tick(1_000);
        assert_eq!(h.stats().rx_drops, 0);
        assert_eq!(h.stats().rx_packets, 10);
        assert!(h.stats().cpu_sys_pct > 0.0);
    }

    #[test]
    fn overload_drops_packets_and_saturates_cpu() {
        let mut h = host();
        h.mark_socket_active();
        let ok = h.receive_packets(100, 150_000, 1_000);
        assert_eq!(ok, 20, "only 20 packets fit in the CPU budget");
        h.end_tick(1_000);
        assert_eq!(h.stats().rx_drops, 80);
        assert!(h.stats().cpu_sys_pct >= 99.0);
        assert!(h.receiver_saturated());
    }

    #[test]
    fn more_sockets_cost_more_per_packet() {
        let mut h = host();
        h.mark_socket_active();
        let one = h.effective_pkt_cost_us();
        h.mark_socket_active();
        h.mark_socket_active();
        h.mark_socket_active();
        let four = h.effective_pkt_cost_us();
        assert!((one - 50.0).abs() < 1e-9);
        assert!((four - 50.0 * 2.5).abs() < 1e-9, "4 sockets => 2.5x cost");
    }

    #[test]
    fn user_cpu_competes_with_receive_path() {
        let mut h = host();
        h.mark_socket_active();
        h.consume_user_cpu_us(900.0);
        let ok = h.receive_packets(10, 15_000, 1_000);
        assert_eq!(ok, 2, "only 100us of budget left -> 2 packets");
        h.end_tick(1_000);
        assert!(h.stats().cpu_user_pct >= 75.0);
    }

    #[test]
    fn tick_reset_clears_utilisation() {
        let mut h = host();
        h.mark_socket_active();
        h.receive_packets(20, 30_000, 1_000);
        h.end_tick(1_000);
        assert!(h.stats().cpu_sys_pct > 0.0);
        h.end_tick(1_000);
        assert_eq!(h.stats().cpu_sys_pct, 0.0);
        assert_eq!(h.stats().active_sockets, 0);
    }

    #[test]
    fn memory_accounting() {
        let mut h = host();
        let free0 = h.spec.memory_kb - h.spec.memory_kb / 8;
        assert!(h.allocate_memory_kb(1000));
        assert!(!h.allocate_memory_kb(h.spec.memory_kb));
        h.end_tick(1_000);
        assert_eq!(h.stats().mem_free_kb, free0 - 1000);
        h.release_memory_kb(1000);
        h.end_tick(1_000);
        assert_eq!(h.stats().mem_free_kb, free0);
    }

    #[test]
    fn process_lifecycle() {
        let mut h = host();
        h.register_process("dpss_master");
        h.register_process("dpss_block_server");
        assert!(h.kill_process("dpss_master"));
        assert!(!h.kill_process("dpss_master"), "already dead");
        assert!(!h.kill_process("nonexistent"));
        let dead: Vec<_> = h.processes().filter(|(_, alive)| !alive).collect();
        assert_eq!(dead.len(), 1);
        assert!(h.restart_process("dpss_master"));
        assert!(h.processes().all(|(_, alive)| alive));
    }

    #[test]
    fn retransmit_counter_accumulates() {
        let mut h = host();
        h.record_retransmit(3);
        h.record_retransmit(2);
        assert_eq!(h.stats().tcp_retransmits, 5);
    }
}
