//! Simulated time.
//!
//! The whole simulator advances in fixed ticks (default 1 ms).  Simulated
//! time is anchored at an arbitrary epoch offset so emitted ULM events carry
//! plausible absolute dates (the MATISSE demo ran in May 2000) while all
//! arithmetic stays in plain microseconds.

use jamm_ulm::Timestamp;
/// Default tick length: 1 millisecond.
pub const DEFAULT_TICK_US: u64 = 1_000;

/// The simulation clock: current simulated time plus the tick length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimClock {
    /// Microseconds since the simulation epoch.
    now_us: u64,
    /// Absolute time of the simulation epoch (for ULM timestamps).
    epoch: Timestamp,
    /// Tick duration in microseconds.
    tick_us: u64,
}

impl SimClock {
    /// A clock anchored at the MATISSE demo date (2000-05-15 12:00 UTC) with
    /// the default 1 ms tick.
    pub fn matisse() -> Self {
        SimClock {
            now_us: 0,
            epoch: Timestamp::parse_ulm_date("20000515120000.000000").expect("valid epoch"),
            tick_us: DEFAULT_TICK_US,
        }
    }

    /// A clock with an explicit epoch and tick length.
    pub fn new(epoch: Timestamp, tick_us: u64) -> Self {
        assert!(tick_us > 0, "tick length must be positive");
        SimClock {
            now_us: 0,
            epoch,
            tick_us,
        }
    }

    /// Simulated microseconds elapsed since the simulation started.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Simulated seconds elapsed since the simulation started.
    pub fn now_secs(&self) -> f64 {
        self.now_us as f64 / 1e6
    }

    /// The tick duration in microseconds.
    pub fn tick_us(&self) -> u64 {
        self.tick_us
    }

    /// The tick duration in seconds.
    pub fn tick_secs(&self) -> f64 {
        self.tick_us as f64 / 1e6
    }

    /// Absolute timestamp for the current simulated instant.
    pub fn timestamp(&self) -> Timestamp {
        self.epoch.add_micros(self.now_us)
    }

    /// Absolute timestamp for an instant `offset_us` after now (used when a
    /// component knows an event completes partway through a tick).
    pub fn timestamp_at(&self, offset_us: u64) -> Timestamp {
        self.epoch.add_micros(self.now_us + offset_us)
    }

    /// Advance by one tick.
    pub fn advance(&mut self) {
        self.now_us += self.tick_us;
    }

    /// Advance by an arbitrary number of microseconds (used by tests).
    pub fn advance_us(&mut self, us: u64) {
        self.now_us += us;
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::matisse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matisse_epoch_is_may_2000() {
        let c = SimClock::matisse();
        assert_eq!(c.timestamp().to_ulm_date(), "20000515120000.000000");
    }

    #[test]
    fn advance_moves_time_by_ticks() {
        let mut c = SimClock::matisse();
        for _ in 0..1_000 {
            c.advance();
        }
        assert_eq!(c.now_us(), 1_000_000);
        assert!((c.now_secs() - 1.0).abs() < 1e-9);
        assert_eq!(c.timestamp().to_ulm_date(), "20000515120001.000000");
    }

    #[test]
    fn custom_tick_length() {
        let mut c = SimClock::new(Timestamp::from_secs(100), 250);
        c.advance();
        c.advance();
        assert_eq!(c.now_us(), 500);
        assert_eq!(c.tick_secs(), 0.00025);
        assert_eq!(c.timestamp().as_micros(), 100_000_500);
    }

    #[test]
    #[should_panic(expected = "tick length must be positive")]
    fn zero_tick_rejected() {
        let _ = SimClock::new(Timestamp::EPOCH, 0);
    }

    #[test]
    fn timestamp_at_offsets_within_tick() {
        let c = SimClock::matisse();
        assert_eq!(
            c.timestamp_at(421).as_micros() - c.timestamp().as_micros(),
            421
        );
    }
}
