//! The MATISSE frame player (the `mplay` application of Figure 7).
//!
//! The player requests MEMS video frames from the DPSS, reads them from its
//! sockets, renders them, and emits the `MPLAY_*` NetLogger events that form
//! the application part of the Figure 7 lifelines.  It also records the size
//! of every `read()` it performs, which is the data behind the Figure 3
//! scatter plot (read sizes clustering around two distinct values).

use jamm_ulm::{keys, Event, Level};

use crate::dpss::DpssCluster;
use crate::host::HostId;
use crate::network::Network;
use crate::trace::TraceLog;

/// Maximum bytes a single `read()` call returns (the player's buffer size).
pub const READ_BUFFER_BYTES: u64 = 64 * 1024;

/// Record of one displayed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRecord {
    /// Frame sequence number.
    pub frame_id: u64,
    /// Simulated time the frame was requested, microseconds.
    pub requested_at_us: u64,
    /// Simulated time the last byte arrived, microseconds.
    pub arrived_at_us: u64,
    /// Simulated time rendering finished, microseconds.
    pub displayed_at_us: u64,
}

/// Configuration of the player.
#[derive(Debug, Clone, Copy)]
pub struct PlayerConfig {
    /// Size of each frame in bytes (high-resolution MEMS video frame).
    pub frame_bytes: u64,
    /// CPU time to decode/render one frame, microseconds of user time.
    pub render_us: u64,
    /// The player's socket-poll interval in ticks (how often it calls
    /// `read()`), which determines the read-size clustering of Figure 3.
    pub poll_interval_ticks: u64,
    /// Number of frames to fetch before stopping (0 = unlimited).
    pub max_frames: u64,
}

impl Default for PlayerConfig {
    fn default() -> Self {
        PlayerConfig {
            // ~1.5 MB frames: 6 frames/s at ~140 Mbit/s was the best case in
            // the demo, and 1-2 frames/s in the bad case.
            frame_bytes: 1_500_000,
            render_us: 40_000,
            poll_interval_ticks: 8,
            max_frames: 0,
        }
    }
}

/// The frame-player application.
#[derive(Debug, Clone)]
pub struct FramePlayer {
    /// Host the player runs on (the receiving workstation / cluster head).
    pub host: HostId,
    host_name: String,
    config: PlayerConfig,
    next_frame_id: u64,
    outstanding: Option<Outstanding>,
    pending_render_us: u64,
    rendering_frame: Option<(u64, u64, u64)>,
    render_queue: std::collections::VecDeque<(u64, u64, u64)>,
    unread_bytes: u64,
    ticks_since_poll: u64,
    /// Sizes of every `read()` performed, with the simulated time it
    /// happened (Figure 3 raw data).
    pub read_sizes: Vec<(u64, u64)>,
    /// Completed frames.
    pub frames: Vec<FrameRecord>,
    requested_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    frame_id: u64,
    bytes_needed: u64,
    bytes_got: u64,
}

impl FramePlayer {
    /// Create a player running on `host`.
    pub fn new(host: HostId, host_name: impl Into<String>, config: PlayerConfig) -> Self {
        FramePlayer {
            host,
            host_name: host_name.into(),
            config,
            next_frame_id: 1,
            outstanding: None,
            pending_render_us: 0,
            rendering_frame: None,
            render_queue: std::collections::VecDeque::new(),
            unread_bytes: 0,
            ticks_since_poll: 0,
            read_sizes: Vec::new(),
            frames: Vec::new(),
            requested_at: 0,
        }
    }

    /// The player's configuration.
    pub fn config(&self) -> &PlayerConfig {
        &self.config
    }

    /// Number of frames fully displayed so far.
    pub fn frames_displayed(&self) -> u64 {
        self.frames.len() as u64
    }

    /// True once `max_frames` frames have been displayed (never true when
    /// unlimited).
    pub fn finished(&self) -> bool {
        self.config.max_frames > 0 && self.frames_displayed() >= self.config.max_frames
    }

    /// Drive the player for one tick.  Call this *after* `net.step()` and
    /// pass the same tick's DPSS cluster so frame deliveries are seen.
    pub fn tick(&mut self, net: &mut Network, dpss: &mut DpssCluster, trace: &mut TraceLog) {
        let now = net.clock().now_us();
        let ts = net.clock().timestamp();

        // Request the next frame when nothing is outstanding.
        if self.outstanding.is_none() && !self.finished() {
            let frame_id = self.next_frame_id;
            self.next_frame_id += 1;
            self.requested_at = now;
            trace.record(
                Event::builder("mplay", self.host_name.clone())
                    .level(Level::Usage)
                    .event_type(keys::matisse::START_READ_FRAME)
                    .timestamp(ts)
                    .object_id(format!("frame-{frame_id}"))
                    .field("FRAME.ID", frame_id)
                    .build(),
            );
            dpss.request_frame(net, frame_id, self.config.frame_bytes, trace);
            self.outstanding = Some(Outstanding {
                frame_id,
                bytes_needed: self.config.frame_bytes,
                bytes_got: 0,
            });
        }

        // Collect bytes the DPSS delivered this tick.
        let deliveries = dpss.tick(net, trace);
        for d in deliveries {
            self.unread_bytes += d.bytes;
            if let Some(out) = self.outstanding.as_mut() {
                if out.frame_id == d.frame_id {
                    out.bytes_got += d.bytes;
                }
            }
        }

        // The application polls its sockets every `poll_interval_ticks`.
        self.ticks_since_poll += 1;
        if self.ticks_since_poll >= self.config.poll_interval_ticks && self.unread_bytes > 0 {
            self.ticks_since_poll = 0;
            // One poll performs back-to-back read() calls until the socket
            // buffer is drained; each call returns at most READ_BUFFER_BYTES.
            while self.unread_bytes > 0 {
                let r = self.unread_bytes.min(READ_BUFFER_BYTES);
                self.read_sizes.push((now, r));
                self.unread_bytes -= r;
                // Copying the data out of the kernel costs a little user CPU.
                net.host_mut(self.host)
                    .consume_user_cpu_us(r as f64 / 1_000.0);
            }
        }

        // Frame completion: all bytes arrived.  The frame joins the render
        // queue; the next frame is requested on the following tick so the
        // transfer pipeline never sits idle behind the renderer.
        if let Some(out) = self.outstanding {
            if out.bytes_got >= out.bytes_needed {
                trace.record(
                    Event::builder("mplay", self.host_name.clone())
                        .level(Level::Usage)
                        .event_type(keys::matisse::END_READ_FRAME)
                        .timestamp(ts)
                        .object_id(format!("frame-{}", out.frame_id))
                        .field("FRAME.ID", out.frame_id)
                        .build(),
                );
                self.render_queue
                    .push_back((out.frame_id, self.requested_at, now));
                self.outstanding = None;
            }
        }

        // Start rendering the next queued frame when the renderer is free.
        if self.rendering_frame.is_none() {
            if let Some((frame_id, requested_at, arrived_at)) = self.render_queue.pop_front() {
                trace.record(
                    Event::builder("mplay", self.host_name.clone())
                        .level(Level::Usage)
                        .event_type(keys::matisse::START_PUT_IMAGE)
                        .timestamp(ts)
                        .object_id(format!("frame-{frame_id}"))
                        .field("FRAME.ID", frame_id)
                        .build(),
                );
                self.pending_render_us = self.config.render_us;
                self.rendering_frame = Some((frame_id, requested_at, arrived_at));
            }
        }

        // Rendering consumes user CPU spread over ticks (at most half a CPU).
        if self.pending_render_us > 0 {
            let tick_us = net.clock().tick_us();
            let spend = self.pending_render_us.min(tick_us / 2);
            net.host_mut(self.host).consume_user_cpu_us(spend as f64);
            self.pending_render_us -= spend;
            if self.pending_render_us == 0 {
                if let Some((frame_id, requested_at, arrived_at)) = self.rendering_frame.take() {
                    trace.record(
                        Event::builder("mplay", self.host_name.clone())
                            .level(Level::Usage)
                            .event_type(keys::matisse::END_PUT_IMAGE)
                            .timestamp(ts)
                            .object_id(format!("frame-{frame_id}"))
                            .field("FRAME.ID", frame_id)
                            .build(),
                    );
                    self.frames.push(FrameRecord {
                        frame_id,
                        requested_at_us: requested_at,
                        arrived_at_us: arrived_at,
                        displayed_at_us: now,
                    });
                }
            }
        }
    }

    /// Frame rate over consecutive windows of `window_us` simulated time.
    /// Returns `(window start in seconds, frames per second)` pairs — the
    /// data behind the "sometimes 6 frames/sec, sometimes 1-2" observation.
    pub fn frame_rate_series(&self, total_us: u64, window_us: u64) -> Vec<(f64, f64)> {
        assert!(window_us > 0);
        let n_windows = total_us.div_ceil(window_us);
        let mut counts = vec![0u64; n_windows as usize];
        for f in &self.frames {
            let w = (f.displayed_at_us / window_us) as usize;
            if w < counts.len() {
                counts[w] += 1;
            }
        }
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    i as f64 * window_us as f64 / 1e6,
                    c as f64 / (window_us as f64 / 1e6),
                )
            })
            .collect()
    }

    /// Mean frame rate over the whole run, frames per second.
    pub fn mean_frame_rate(&self, total_us: u64) -> f64 {
        if total_us == 0 {
            return 0.0;
        }
        self.frames.len() as f64 / (total_us as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::dpss::{DpssServer, DEFAULT_BLOCK_BYTES};
    use crate::host::HostSpec;
    use crate::link::LinkSpec;

    fn lan_setup() -> (Network, DpssCluster, FramePlayer) {
        let mut net = Network::new(SimClock::matisse(), 5);
        let client = net.add_host(HostSpec::new("viz.lbl.gov"));
        let lan = net.add_link(LinkSpec::gige("lan"));
        let mut servers = Vec::new();
        for i in 0..2 {
            let name = format!("dpss{}.lbl.gov", i + 1);
            let h = net.add_host(HostSpec::new(name.clone()));
            let f = net.open_flow(
                format!("dpss{}", i + 1),
                h,
                client,
                7_000,
                vec![lan],
                1 << 20,
            );
            servers.push(DpssServer::new(h, name, f, 8_000));
        }
        let cluster = DpssCluster::new(servers, DEFAULT_BLOCK_BYTES);
        let player = FramePlayer::new(
            client,
            "viz.lbl.gov",
            PlayerConfig {
                frame_bytes: 400_000,
                render_us: 10_000,
                poll_interval_ticks: 5,
                max_frames: 10,
            },
        );
        (net, cluster, player)
    }

    fn run(
        net: &mut Network,
        cluster: &mut DpssCluster,
        player: &mut FramePlayer,
        ticks: u64,
    ) -> TraceLog {
        let mut trace = TraceLog::new();
        for _ in 0..ticks {
            net.step();
            player.tick(net, cluster, &mut trace);
            if player.finished() {
                break;
            }
        }
        trace
    }

    #[test]
    fn player_fetches_and_displays_frames_in_order() {
        let (mut net, mut cluster, mut player) = lan_setup();
        let trace = run(&mut net, &mut cluster, &mut player, 200_000);
        assert!(
            player.finished(),
            "only {} frames displayed",
            player.frames_displayed()
        );
        assert_eq!(player.frames.len(), 10);
        let ids: Vec<u64> = player.frames.iter().map(|f| f.frame_id).collect();
        assert_eq!(ids, (1..=10).collect::<Vec<_>>());
        for f in &player.frames {
            assert!(f.requested_at_us <= f.arrived_at_us);
            assert!(f.arrived_at_us <= f.displayed_at_us);
        }
        // Every displayed frame went through every stage; a couple of extra
        // frames may have been requested (pipelined) but not yet displayed.
        assert_eq!(trace.by_type(keys::matisse::END_PUT_IMAGE).count(), 10);
        assert_eq!(trace.by_type(keys::matisse::START_PUT_IMAGE).count(), 10);
        for ty in [
            keys::matisse::START_READ_FRAME,
            keys::matisse::END_READ_FRAME,
        ] {
            let n = trace.by_type(ty).count();
            assert!((10..=13).contains(&n), "{ty}: {n}");
        }
    }

    #[test]
    fn read_sizes_are_recorded_and_bounded() {
        let (mut net, mut cluster, mut player) = lan_setup();
        run(&mut net, &mut cluster, &mut player, 200_000);
        assert!(!player.read_sizes.is_empty());
        assert!(player
            .read_sizes
            .iter()
            .all(|&(_, r)| r > 0 && r <= READ_BUFFER_BYTES));
        // Every displayed frame's bytes were read exactly once; at most a
        // couple of extra frames may still have been in flight when the run
        // stopped.
        let total_read: u64 = player.read_sizes.iter().map(|&(_, r)| r).sum();
        assert!(total_read >= 10 * 400_000, "read {total_read} bytes");
        assert!(total_read <= 13 * 400_000, "read {total_read} bytes");
    }

    #[test]
    fn frame_rate_series_counts_frames_per_window() {
        let (mut net, mut cluster, mut player) = lan_setup();
        run(&mut net, &mut cluster, &mut player, 200_000);
        let total = net.clock().now_us();
        let series = player.frame_rate_series(total, 1_000_000);
        let total_frames: f64 = series.iter().map(|&(_, fps)| fps).sum::<f64>();
        assert!(
            (total_frames - 10.0).abs() < 1e-9,
            "sum of per-second counts = frames"
        );
        assert!(player.mean_frame_rate(total) > 0.0);
    }

    #[test]
    fn object_ids_link_player_and_dpss_events() {
        let (mut net, mut cluster, mut player) = lan_setup();
        let trace = run(&mut net, &mut cluster, &mut player, 200_000);
        // Frame 1's lifeline spans both the application and the DPSS servers.
        let frame1: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.object_id() == Some("frame-1"))
            .collect();
        let hosts: std::collections::HashSet<_> = frame1.iter().map(|e| e.host.as_str()).collect();
        assert!(hosts.len() >= 2, "lifeline crosses hosts: {hosts:?}");
        let types: std::collections::HashSet<_> =
            frame1.iter().map(|e| e.event_type.as_str()).collect();
        assert!(types.contains(keys::matisse::START_READ_FRAME));
        assert!(types.contains(keys::matisse::DPSS_SERV_IN));
        assert!(types.contains(keys::matisse::END_PUT_IMAGE));
    }
}
