//! Canned topologies: the MATISSE testbed of Figure 5 and a generic
//! monitored compute cluster.
//!
//! The MATISSE environment (paper §6, Figure 5): MEMS video frames stored on
//! a four-server DPSS at LBNL in Berkeley, pulled on demand across the DARPA
//! Supernet (OC-48, with an OC-12 access link at LBNL) to a Linux compute
//! cluster at ISI East in Arlington, whose head node feeds a visualisation
//! workstation over gigabit ethernet.  Thirteen hosts were involved in total.
//!
//! Two variants are provided: the **WAN** configuration above, and a **LAN**
//! configuration in which the same storage servers and client share one
//! gigabit-ethernet switch (used for the LAN iperf comparison in §6).

use crate::clock::SimClock;
use crate::dpss::{DpssCluster, DpssServer, DEFAULT_BLOCK_BYTES};
use crate::host::{HostId, HostSpec};
use crate::iperf::{IperfReport, IperfTest};
use crate::link::{LinkId, LinkSpec, Router};
use crate::network::Network;
use crate::player::{FramePlayer, PlayerConfig};
use crate::trace::TraceLog;

/// Default per-flow receiver window: 1 MB.  The DPSS is the paper's
/// "network-aware" application, which tunes its TCP buffers to the
/// bandwidth-delay product advertised by the monitoring system.
pub const TUNED_RCV_WINDOW: u64 = 1 << 20;

/// Configuration of a MATISSE scenario.
#[derive(Debug, Clone)]
pub struct MatisseConfig {
    /// Number of DPSS block servers the client stripes across (paper: 4,
    /// then 1 as the work-around).
    pub dpss_servers: usize,
    /// Wide-area (Supernet) or local-area topology.
    pub wan: bool,
    /// RNG seed for the network.
    pub seed: u64,
    /// Per-flow receiver window in bytes.
    pub rcv_window: u64,
    /// Frame-player configuration.
    pub player: PlayerConfig,
}

impl Default for MatisseConfig {
    fn default() -> Self {
        MatisseConfig {
            dpss_servers: 4,
            wan: true,
            seed: 2000,
            rcv_window: TUNED_RCV_WINDOW,
            player: PlayerConfig::default(),
        }
    }
}

/// The hosts, links and routers of the MATISSE testbed (no applications).
#[derive(Debug)]
pub struct MatisseTopology {
    /// The network itself.
    pub net: Network,
    /// DPSS storage hosts at LBNL.
    pub storage_hosts: Vec<HostId>,
    /// The receiving compute-cluster head node at ISI East.
    pub client: HostId,
    /// The visualisation workstation fed by the client.
    pub viz: HostId,
    /// Path (link ids) from each storage host to the client.
    pub storage_paths: Vec<Vec<LinkId>>,
    /// Path from the client to the visualisation workstation.
    pub viz_path: Vec<LinkId>,
}

/// Render the MATISSE testbed as scenario-spec text (topology only — the
/// applications and any monitoring deployment are layered on by the
/// caller).  [`matisse_topology`] compiles exactly this text, so the
/// canned constructor and a hand-written `.scn` file that extends the
/// same declarations stay in lockstep.
///
/// Declaration order matters and mirrors the original hand-built
/// constructor: hosts `dpss1..n`, client, viz; then (WAN) the four shared
/// links, the per-server uplinks, the viz edge, and the three routers —
/// simulator IDs and the seeded RNG stream are identical to what the old
/// code produced.
pub fn matisse_spec_text(wan: bool, n_storage: usize, seed: u64) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let name = if wan { "matisse-wan" } else { "matisse-lan" };
    let _ = writeln!(s, "scenario {name}");
    let _ = writeln!(s, "seed {seed}");
    // Storage cluster at LBNL; the DPSS master lives on the first server.
    for i in 1..=n_storage {
        let _ = write!(
            s,
            "host dpss{i}.lbl.gov cpus=2 mem=512m pkt-cost=20 process=dpss_block_server"
        );
        if i == 1 {
            let _ = write!(s, " process=dpss_master");
        }
        let _ = writeln!(s);
    }
    // Receiving compute-cluster head node at ISI East: single fast CPU, a
    // gigabit card on a constrained I/O bus, and a driver that misbehaves
    // when several sockets are active at once.
    let _ = writeln!(
        s,
        "host mems.cairn.net cpus=1 mem=512m pkt-cost=50 socket-overhead=0.25 \
         rcv-buffer=6m multi-socket-loss=0.00035 process=mplay"
    );
    let _ = writeln!(s, "host viz.cairn.net cpus=1 mem=256m pkt-cost=40");
    if wan {
        let _ = writeln!(s, "link lbl-oc12-access bw=622mbit delay=500us");
        let _ = writeln!(s, "link supernet-oc48 bw=2400mbit delay=28ms");
        let _ = writeln!(s, "link isi-cluster-gige bw=1gbit delay=150us");
        // The client's gigabit card sits on a 32-bit PCI bus: ~250 Mbit/s
        // of deliverable bandwidth no matter what the wire says.
        let _ = writeln!(s, "link mems-gige-pci bw=250mbit delay=150us");
        for i in 1..=n_storage {
            let _ = writeln!(s, "link dpss{i}-uplink bw=1gbit delay=150us");
        }
        let _ = writeln!(s, "link viz-gige bw=1gbit delay=150us");
        let _ = writeln!(
            s,
            "router lbl-border-router links=lbl-oc12-access,supernet-oc48"
        );
        let _ = writeln!(
            s,
            "router isi-border-router links=supernet-oc48,isi-cluster-gige"
        );
        let _ = writeln!(
            s,
            "router isi-cluster-switch links=isi-cluster-gige,mems-gige-pci"
        );
    } else {
        let _ = writeln!(s, "link mems-gige-pci bw=250mbit delay=150us");
        for i in 1..=n_storage {
            let _ = writeln!(s, "link dpss{i}-uplink bw=1gbit delay=150us");
        }
        let _ = writeln!(s, "link viz-gige bw=1gbit delay=150us");
        let _ = writeln!(s, "router lan-switch links=mems-gige-pci");
    }
    s
}

/// Build the MATISSE topology.
///
/// `wan = true` puts the Supernet between storage and client (about 29 ms of
/// one-way delay); `wan = false` puts everything behind one gigabit switch.
///
/// This is now a thin shim over the declarative scenario engine: the
/// testbed is rendered by [`matisse_spec_text`], parsed as a
/// [`crate::engine::ScenarioSpec`] and compiled by
/// [`crate::engine::compile_topology`]; only the ID bookkeeping
/// (`storage_paths`, `viz_path`) is recovered here by name.
pub fn matisse_topology(wan: bool, n_storage: usize, seed: u64) -> MatisseTopology {
    assert!((1..=4).contains(&n_storage), "the DPSS had 1-4 servers");
    let text = matisse_spec_text(wan, n_storage, seed);
    let spec = crate::engine::ScenarioSpec::parse(&text).expect("generated MATISSE spec parses");
    let topo = crate::engine::compile_topology(&spec).expect("generated MATISSE spec compiles");
    let storage_hosts: Vec<HostId> = (1..=n_storage)
        .map(|i| {
            topo.host_id(&format!("dpss{i}.lbl.gov"))
                .expect("declared storage host")
        })
        .collect();
    let client = topo.host_id("mems.cairn.net").expect("declared client");
    let viz = topo.host_id("viz.cairn.net").expect("declared viz host");
    let link = |name: &str| topo.link_id(name).expect("declared link");
    let storage_paths: Vec<Vec<LinkId>> = (1..=n_storage)
        .map(|i| {
            let uplink = link(&format!("dpss{i}-uplink"));
            if wan {
                vec![
                    uplink,
                    link("lbl-oc12-access"),
                    link("supernet-oc48"),
                    link("isi-cluster-gige"),
                    link("mems-gige-pci"),
                ]
            } else {
                vec![uplink, link("mems-gige-pci")]
            }
        })
        .collect();
    let viz_path = vec![link("viz-gige")];
    MatisseTopology {
        net: topo.net,
        storage_hosts,
        client,
        viz,
        storage_paths,
        viz_path,
    }
}

/// A fully assembled MATISSE run: topology + DPSS + frame player + trace.
#[derive(Debug)]
pub struct MatisseScenario {
    /// The simulated network.
    pub net: Network,
    /// The striped storage system.
    pub dpss: DpssCluster,
    /// The frame player on the receiving host.
    pub player: FramePlayer,
    /// Monitoring events emitted by the applications.
    pub trace: TraceLog,
    /// Storage hosts.
    pub storage_hosts: Vec<HostId>,
    /// The receiving host.
    pub client: HostId,
    /// The visualisation workstation.
    pub viz: HostId,
    config: MatisseConfig,
}

impl MatisseScenario {
    /// Build the scenario from a configuration.
    pub fn new(config: MatisseConfig) -> Self {
        let MatisseTopology {
            mut net,
            storage_hosts,
            client,
            viz,
            storage_paths,
            viz_path: _,
        } = matisse_topology(config.wan, config.dpss_servers, config.seed);

        let mut servers = Vec::new();
        for (i, (&h, path)) in storage_hosts.iter().zip(&storage_paths).enumerate() {
            let name = net.host(h).name().to_string();
            let flow = net.open_flow(
                format!("dpss{}-data", i + 1),
                h,
                client,
                // The DPSS data port; the port monitor watches this.
                7_000,
                path.clone(),
                config.rcv_window,
            );
            servers.push(DpssServer::new(h, name, flow, 8_000));
        }
        let dpss = DpssCluster::new(servers, DEFAULT_BLOCK_BYTES);
        let player = FramePlayer::new(client, "mems.cairn.net", config.player);

        MatisseScenario {
            net,
            dpss,
            player,
            trace: TraceLog::new(),
            storage_hosts,
            client,
            viz,
            config,
        }
    }

    /// The configuration the scenario was built with.
    pub fn config(&self) -> &MatisseConfig {
        &self.config
    }

    /// Advance the whole scenario (network + applications) by one tick.
    pub fn step(&mut self) {
        self.net.step();
        self.player
            .tick(&mut self.net, &mut self.dpss, &mut self.trace);
    }

    /// Run for `ticks` ticks (1 ms each by default).
    pub fn run_ticks(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.step();
        }
    }

    /// Run for a number of simulated seconds.
    pub fn run_secs(&mut self, secs: f64) {
        let ticks = (secs * 1e6 / self.net.clock().tick_us() as f64).round() as u64;
        self.run_ticks(ticks);
    }

    /// Aggregate DPSS -> client delivery rate so far, Mbit/s.
    pub fn aggregate_mbps(&self) -> f64 {
        let elapsed = self.net.clock().now_us();
        if elapsed == 0 {
            return 0.0;
        }
        let bytes: u64 = self.dpss.servers().iter().map(|s| s.bytes_served).sum();
        bytes as f64 * 8.0 / (elapsed as f64 / 1e6) / 1e6
    }

    /// Total TCP retransmissions seen by the receiving host.
    pub fn client_retransmits(&self) -> u64 {
        self.net.host(self.client).stats().tcp_retransmits
    }
}

/// Run the §6 iperf comparison on the MATISSE topology: `streams` parallel
/// TCP streams from the first DPSS host to the compute-cluster head node,
/// over the WAN or LAN variant, for `duration_secs` of simulated time.
pub fn matisse_iperf(wan: bool, streams: usize, duration_secs: f64, seed: u64) -> IperfReport {
    let MatisseTopology {
        mut net,
        storage_hosts,
        client,
        storage_paths,
        ..
    } = matisse_topology(wan, 1, seed);
    let test = IperfTest::start(
        &mut net,
        storage_hosts[0],
        client,
        storage_paths[0].clone(),
        streams,
        TUNED_RCV_WINDOW,
    );
    test.run(&mut net, (duration_secs * 1e6) as u64)
}

/// A generic monitored compute farm: `nodes` identical hosts behind one
/// switch, each running a registered `worker` process.  Used by the cluster
/// monitoring example and the gateway-scalability experiments.
pub fn cluster_topology(nodes: usize, seed: u64) -> (Network, Vec<HostId>, LinkId) {
    let mut net = Network::new(SimClock::matisse(), seed);
    let switch_link = net.add_link(LinkSpec::gige("cluster-switch"));
    let mut hosts = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let h = net.add_host(
            HostSpec::new(format!("node{:03}.farm.lbl.gov", i + 1))
                .cpus(2)
                .memory_kb(1024 * 1024),
        );
        net.host_mut(h).register_process("worker");
        hosts.push(h);
    }
    net.add_router(Router::new("farm-switch", vec![switch_link]));
    (net, hosts, switch_link)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_has_thirteen_ish_components_in_wan_mode() {
        let topo = matisse_topology(true, 4, 1);
        // 4 storage + client + viz = 6 hosts; 3 routers; 8 links.
        assert_eq!(topo.net.hosts().len(), 6);
        assert_eq!(topo.net.routers().len(), 3);
        assert_eq!(topo.storage_paths.len(), 4);
        for p in &topo.storage_paths {
            assert_eq!(p.len(), 5, "WAN path traverses 5 links");
        }
        assert!(topo.net.host_by_name("mems.cairn.net").is_some());
        assert!(topo.net.host_by_name("dpss4.lbl.gov").is_some());
    }

    #[test]
    fn lan_topology_is_flat() {
        let topo = matisse_topology(false, 2, 1);
        for p in &topo.storage_paths {
            assert_eq!(p.len(), 2, "LAN path: uplink + client NIC");
        }
        assert_eq!(topo.net.routers().len(), 1);
    }

    #[test]
    #[should_panic(expected = "1-4 servers")]
    fn too_many_servers_rejected() {
        let _ = matisse_topology(true, 5, 1);
    }

    #[test]
    fn wan_single_stream_iperf_is_window_limited_near_140mbps() {
        let report = matisse_iperf(true, 1, 20.0, 7);
        assert!(
            report.aggregate_mbps > 100.0 && report.aggregate_mbps < 175.0,
            "paper: ~140 Mbit/s; got {:.1}",
            report.aggregate_mbps
        );
    }

    #[test]
    fn wan_four_streams_collapse_versus_one() {
        let one = matisse_iperf(true, 1, 20.0, 7);
        let four = matisse_iperf(true, 4, 20.0, 7);
        assert!(
            four.aggregate_mbps < one.aggregate_mbps / 2.0,
            "paper: 30 vs 140 Mbit/s; got {:.1} vs {:.1}",
            four.aggregate_mbps,
            one.aggregate_mbps
        );
        assert!(four.retransmits > one.retransmits);
    }

    #[test]
    fn lan_streams_do_not_collapse() {
        let one = matisse_iperf(false, 1, 10.0, 7);
        let four = matisse_iperf(false, 4, 10.0, 7);
        assert!(
            one.aggregate_mbps > 150.0,
            "paper: ~200 Mbit/s on the LAN; got {:.1}",
            one.aggregate_mbps
        );
        assert!(
            four.aggregate_mbps > 0.7 * one.aggregate_mbps,
            "LAN parity: {:.1} vs {:.1}",
            four.aggregate_mbps,
            one.aggregate_mbps
        );
    }

    #[test]
    fn matisse_scenario_runs_and_emits_trace() {
        let mut s = MatisseScenario::new(MatisseConfig {
            dpss_servers: 4,
            wan: true,
            seed: 3,
            rcv_window: TUNED_RCV_WINDOW,
            player: PlayerConfig {
                frame_bytes: 1_500_000,
                render_us: 40_000,
                poll_interval_ticks: 5,
                max_frames: 0,
            },
        });
        s.run_secs(10.0);
        assert!(s.player.frames_displayed() > 0, "some frames arrive");
        assert!(!s.trace.is_empty());
        assert!(
            s.client_retransmits() > 0,
            "the WAN run shows retransmissions"
        );
        let rate = s.aggregate_mbps();
        assert!(rate > 3.0 && rate < 200.0, "aggregate {rate:.1} Mbit/s");
    }

    #[test]
    fn cluster_topology_registers_workers() {
        let (net, hosts, _switch) = cluster_topology(16, 5);
        assert_eq!(hosts.len(), 16);
        assert!(net
            .hosts()
            .iter()
            .all(|h| h.processes().any(|(p, alive)| p == "worker" && alive)));
    }
}
