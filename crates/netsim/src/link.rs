//! Links and routers.
//!
//! A [`Link`] is a unidirectional pipe with a bandwidth, propagation delay
//! and a drop-tail queue.  A [`Router`] is a named device that owns a set of
//! link endpoints and exposes SNMP-style interface counters — exactly what
//! the JAMM *network sensors* poll (§2.2: "These sensors perform SNMP queries
//! to a network device, typically a router or switch").

/// Identifies a link within a [`crate::network::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Static description of a link.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Human-readable name (e.g. `lbl-oc12`, `supernet-oc48`).
    pub name: String,
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay in microseconds.
    pub delay_us: u64,
    /// Queue capacity in bytes (drop-tail).
    pub queue_bytes: u64,
    /// Random per-packet corruption/loss probability (line errors; routers
    /// report these as CRC errors).  The MATISSE routers reported none.
    pub error_rate: f64,
}

impl LinkSpec {
    /// A link with the given name, bandwidth (bits/s) and one-way delay.
    pub fn new(name: impl Into<String>, bandwidth_bps: u64, delay_us: u64) -> Self {
        LinkSpec {
            name: name.into(),
            bandwidth_bps,
            delay_us,
            // Default queue: 64 KB or one bandwidth-delay product, whichever
            // is larger (mimics late-90s router line cards).
            queue_bytes: (bandwidth_bps / 8 * delay_us / 1_000_000).max(64 * 1024),
            error_rate: 0.0,
        }
    }

    /// Builder-style: set the queue size in bytes.
    pub fn queue_bytes(mut self, bytes: u64) -> Self {
        self.queue_bytes = bytes;
        self
    }

    /// Builder-style: set the random line-error rate.
    pub fn error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Convenience: an OC-48 link (2.4 Gbit/s) as used by Supernet.
    pub fn oc48(name: impl Into<String>, delay_us: u64) -> Self {
        LinkSpec::new(name, 2_400_000_000, delay_us)
    }

    /// Convenience: an OC-12 link (622 Mbit/s), the LBNL access link.
    pub fn oc12(name: impl Into<String>, delay_us: u64) -> Self {
        LinkSpec::new(name, 622_000_000, delay_us)
    }

    /// Convenience: gigabit ethernet (1000BT) with LAN latency.
    pub fn gige(name: impl Into<String>) -> Self {
        LinkSpec::new(name, 1_000_000_000, 150)
    }

    /// Convenience: fast ethernet (100BT) with LAN latency.
    pub fn fast_ethernet(name: impl Into<String>) -> Self {
        LinkSpec::new(name, 100_000_000, 150)
    }
}

/// SNMP-style interface counters, as exposed to the JAMM network sensors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IfCounters {
    /// Octets carried by the link.
    pub in_octets: u64,
    /// Packets carried by the link.
    pub in_packets: u64,
    /// Packets dropped by the queue (congestion).
    pub drops: u64,
    /// Packets lost to line errors (CRC).
    pub errors: u64,
}

/// A unidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Identifier within the owning network.
    pub id: LinkId,
    /// Static configuration.
    pub spec: LinkSpec,
    counters: IfCounters,
    /// Bytes already committed to this link in the current tick.
    used_this_tick: u64,
    /// Bytes sitting in the drop-tail queue, carried over between ticks.
    backlog: u64,
}

impl Link {
    /// Construct a link from its spec.
    pub fn new(id: LinkId, spec: LinkSpec) -> Self {
        Link {
            id,
            spec,
            counters: IfCounters::default(),
            used_this_tick: 0,
            backlog: 0,
        }
    }

    /// Capacity of the link in bytes for a tick of `tick_us` microseconds.
    pub fn capacity_bytes_per_tick(&self, tick_us: u64) -> u64 {
        self.spec.bandwidth_bps / 8 * tick_us / 1_000_000
    }

    /// Bytes still available on the link in this tick.
    pub fn available_bytes(&self, tick_us: u64) -> u64 {
        self.capacity_bytes_per_tick(tick_us)
            .saturating_sub(self.used_this_tick)
    }

    /// Commit `bytes` / `packets` of traffic to the link for this tick.
    ///
    /// Returns the number of bytes actually carried; the remainder found the
    /// line busy and the drop-tail queue full, and is counted as dropped.
    /// Bytes accepted beyond the line rate occupy the queue and consume the
    /// line rate of subsequent ticks (see [`Link::end_tick`]), so sustained
    /// throughput never exceeds the configured bandwidth.
    pub fn carry(&mut self, bytes: u64, packets: u64, tick_us: u64) -> u64 {
        let cap = self.capacity_bytes_per_tick(tick_us);
        let free_queue = self.spec.queue_bytes.saturating_sub(self.backlog);
        // Within the tick the line rate and the free queue space form one
        // shared budget; whatever earlier flows used is gone.
        let avail = (cap + free_queue).saturating_sub(self.used_this_tick);
        let carried = bytes.min(avail);
        let dropped_bytes = bytes - carried;
        self.used_this_tick += carried;
        let carried_pkts = (packets * carried).checked_div(bytes).unwrap_or(0);
        self.counters.in_octets += carried;
        self.counters.in_packets += carried_pkts;
        self.counters.drops += packets.saturating_sub(carried_pkts) * (dropped_bytes > 0) as u64;
        carried
    }

    /// Record line errors detected on this link (counted by SNMP sensors).
    pub fn record_errors(&mut self, n: u64) {
        self.counters.errors += n;
    }

    /// Interface counters (monotonic).
    pub fn counters(&self) -> &IfCounters {
        &self.counters
    }

    /// Utilisation of the link over the last tick, 0.0-1.0 (can exceed 1.0
    /// transiently when the queue absorbs a burst).
    pub fn utilisation(&self, tick_us: u64) -> f64 {
        let cap = self.capacity_bytes_per_tick(tick_us);
        if cap == 0 {
            0.0
        } else {
            self.used_this_tick as f64 / cap as f64
        }
    }

    /// Close out the tick: traffic accepted beyond the line rate stays in the
    /// queue and is drained at line rate on subsequent ticks.
    pub fn end_tick(&mut self, tick_us: u64) {
        let cap = self.capacity_bytes_per_tick(tick_us).max(1);
        self.backlog = (self.backlog + self.used_this_tick).saturating_sub(cap);
        self.backlog = self.backlog.min(self.spec.queue_bytes);
        self.used_this_tick = 0;
    }

    /// Bytes currently waiting in the drop-tail queue.
    pub fn backlog_bytes(&self) -> u64 {
        self.backlog
    }
}

/// A router or switch: a named device grouping link interfaces, polled by
/// the JAMM network (SNMP) sensors.
#[derive(Debug, Clone)]
pub struct Router {
    /// Device name (e.g. `lbl-border-router`).
    pub name: String,
    /// Links whose counters this device reports.
    pub interfaces: Vec<LinkId>,
}

impl Router {
    /// Create a router reporting on the given interfaces.
    pub fn new(name: impl Into<String>, interfaces: Vec<LinkId>) -> Self {
        Router {
            name: name.into(),
            interfaces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_scales_with_bandwidth_and_tick() {
        let l = Link::new(LinkId(0), LinkSpec::new("l", 100_000_000, 1_000));
        assert_eq!(l.capacity_bytes_per_tick(1_000), 12_500); // 100Mb/s for 1ms
        assert_eq!(l.capacity_bytes_per_tick(10_000), 125_000);
        let oc48 = Link::new(LinkId(1), LinkSpec::oc48("oc48", 5_000));
        assert_eq!(oc48.capacity_bytes_per_tick(1_000), 300_000);
    }

    #[test]
    fn carry_respects_capacity_plus_queue() {
        let mut l = Link::new(
            LinkId(0),
            LinkSpec::new("l", 8_000_000, 1_000).queue_bytes(500),
        );
        // 8 Mb/s = 1000 bytes per 1ms tick, +500 queue.
        let carried = l.carry(2_000, 2, 1_000);
        assert_eq!(carried, 1_500);
        assert_eq!(l.counters().in_octets, 1_500);
        assert!(l.counters().drops > 0);
        // Second call in the same tick sees no remaining room.
        assert_eq!(l.carry(100, 1, 1_000), 0);
        l.end_tick(1_000);
        assert_eq!(l.carry(100, 1, 1_000), 100);
    }

    #[test]
    fn utilisation_reflects_carried_traffic() {
        let mut l = Link::new(LinkId(0), LinkSpec::gige("ge"));
        let cap = l.capacity_bytes_per_tick(1_000);
        l.carry(cap / 2, 50, 1_000);
        assert!((l.utilisation(1_000) - 0.5).abs() < 0.01);
        l.end_tick(1_000);
        assert_eq!(l.utilisation(1_000), 0.0);
    }

    #[test]
    fn convenience_constructors() {
        assert_eq!(LinkSpec::oc12("x", 1).bandwidth_bps, 622_000_000);
        assert_eq!(LinkSpec::gige("x").bandwidth_bps, 1_000_000_000);
        assert_eq!(LinkSpec::fast_ethernet("x").bandwidth_bps, 100_000_000);
        let r = Router::new("core", vec![LinkId(1), LinkId(2)]);
        assert_eq!(r.interfaces.len(), 2);
    }

    #[test]
    fn error_counter() {
        let mut l = Link::new(LinkId(0), LinkSpec::gige("ge").error_rate(0.1));
        l.record_errors(7);
        assert_eq!(l.counters().errors, 7);
        assert!(l.spec.error_rate > 0.0);
    }
}
