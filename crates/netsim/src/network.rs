//! The network: topology container and per-tick update loop.
//!
//! `Network` owns the hosts, links, routers and TCP flows and advances them
//! one tick at a time.  Applications (DPSS, iperf, the frame player) sit on
//! top: they enqueue data on flows before the tick and read
//! [`crate::tcp::TcpFlow::tick_report`] afterwards.  Monitoring sensors read
//! host statistics, link counters and flow counters between ticks — the same
//! quantities `vmstat`, `netstat`, SNMP and the instrumented `tcpdump`
//! reported on the real testbed.

use jamm_core::rng::Rng;
use std::collections::HashMap;

use crate::clock::SimClock;
use crate::host::{Host, HostId, HostSpec};
use crate::link::{Link, LinkId, LinkSpec, Router};
use crate::tcp::{FlowState, TcpFlow, MSS};

pub use crate::tcp::FlowId;

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    clock: SimClock,
    hosts: Vec<Host>,
    links: Vec<Link>,
    routers: Vec<Router>,
    flows: Vec<TcpFlow>,
    host_index: HashMap<String, HostId>,
    rng: Rng,
    /// Per-(host, port) bytes delivered during the last tick; what the JAMM
    /// port-monitor agent inspects.
    port_activity: HashMap<(HostId, u16), u64>,
}

impl Network {
    /// Create an empty network with the given clock and RNG seed.
    pub fn new(clock: SimClock, seed: u64) -> Self {
        Network {
            clock,
            hosts: Vec::new(),
            links: Vec::new(),
            routers: Vec::new(),
            flows: Vec::new(),
            host_index: HashMap::new(),
            rng: Rng::seed_from_u64(seed),
            port_activity: HashMap::new(),
        }
    }

    /// Current simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Add a host; returns its id.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        let id = HostId(self.hosts.len());
        self.host_index.insert(spec.name.clone(), id);
        self.hosts.push(Host::new(id, spec));
        id
    }

    /// Add a link; returns its id.
    pub fn add_link(&mut self, spec: LinkSpec) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(Link::new(id, spec));
        id
    }

    /// Add a router/switch device reporting on the given interfaces.
    pub fn add_router(&mut self, router: Router) {
        self.routers.push(router);
    }

    /// Open a TCP flow from `src` to `dst` along `path`.  The RTT is derived
    /// from the path's propagation delays plus a processing allowance.
    pub fn open_flow(
        &mut self,
        name: impl Into<String>,
        src: HostId,
        dst: HostId,
        dst_port: u16,
        path: Vec<LinkId>,
        rcv_window: u64,
    ) -> FlowId {
        let prop: u64 = path.iter().map(|l| self.links[l.0].spec.delay_us).sum();
        let rtt = 2 * prop + 2 * self.clock.tick_us();
        let id = FlowId(self.flows.len());
        self.flows.push(TcpFlow::new(
            id, name, src, dst, dst_port, path, rtt, rcv_window,
        ));
        id
    }

    /// Host accessor.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0]
    }

    /// Mutable host accessor.
    pub fn host_mut(&mut self, id: HostId) -> &mut Host {
        &mut self.hosts[id.0]
    }

    /// Look a host up by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.host_index.get(name).copied()
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Mutable link accessor (fault injection: degrading or restoring a
    /// link's bandwidth mid-run).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All routers.
    pub fn routers(&self) -> &[Router] {
        &self.routers
    }

    /// Flow accessor.
    pub fn flow(&self, id: FlowId) -> &TcpFlow {
        &self.flows[id.0]
    }

    /// Mutable flow accessor.
    pub fn flow_mut(&mut self, id: FlowId) -> &mut TcpFlow {
        &mut self.flows[id.0]
    }

    /// All flows.
    pub fn flows(&self) -> &[TcpFlow] {
        &self.flows
    }

    /// Bytes delivered on (host, port) during the last tick — the signal the
    /// port-monitor agent uses to decide an application is active.
    pub fn port_activity(&self, host: HostId, port: u16) -> u64 {
        self.port_activity.get(&(host, port)).copied().unwrap_or(0)
    }

    /// Advance the simulation by one tick.
    pub fn step(&mut self) {
        let tick_us = self.clock.tick_us();
        let now_us = self.clock.now_us();
        self.port_activity.clear();

        // Phase 0: clear last tick's per-flow reports (applications read the
        // report *after* step(), so stale data must never survive a tick in
        // which the flow moved nothing), then expire retransmission timeouts.
        for flow in &mut self.flows {
            flow.tick_report = crate::tcp::FlowTickReport::default();
            flow.maybe_recover(now_us);
        }

        // Phase 1: declare socket concurrency at each receiver so the
        // per-packet cost reflects how many sockets will move data this tick.
        let mut inflight_per_host: HashMap<HostId, u64> = HashMap::new();
        for flow in &self.flows {
            if matches!(flow.state, FlowState::Open) && flow.pending_bytes > 0 {
                *inflight_per_host.entry(flow.dst).or_insert(0) +=
                    flow.estimated_in_flight(tick_us);
            }
        }
        let active_ids: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|f| matches!(f.state, FlowState::Open) && f.pending_bytes > 0)
            .map(|f| f.id)
            .collect();
        for fid in &active_ids {
            let dst = self.flows[fid.0].dst;
            self.hosts[dst.0].mark_socket_active();
        }
        // Flows that are idle this tick contribute nothing to the in-flight
        // estimate next tick either.
        for flow in &mut self.flows {
            if !(matches!(flow.state, FlowState::Open) && flow.pending_bytes > 0) {
                flow.last_tick_delivered = 0;
            }
        }

        // Phase 2: move data, rotating the starting flow each tick so no flow
        // systematically wins the first claim on shared links.
        let n = active_ids.len();
        let start = if n == 0 {
            0
        } else {
            (now_us / tick_us) as usize % n
        };
        for k in 0..n {
            let fid = active_ids[(start + k) % n];
            self.step_flow(fid, tick_us, now_us, &inflight_per_host);
        }

        // Phase 3: close out the tick on hosts and links, then advance time.
        for host in &mut self.hosts {
            host.end_tick(tick_us);
        }
        for link in &mut self.links {
            link.end_tick(tick_us);
        }
        self.clock.advance();
    }

    /// Advance the simulation by `n` ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    fn step_flow(
        &mut self,
        fid: FlowId,
        tick_us: u64,
        now_us: u64,
        inflight_per_host: &HashMap<HostId, u64>,
    ) {
        let (desired, dst, src, path, dst_port) = {
            let f = &self.flows[fid.0];
            (
                f.desired_bytes(tick_us),
                f.dst,
                f.src,
                f.path.clone(),
                f.dst_port,
            )
        };
        if desired == 0 {
            self.flows[fid.0].apply_tick(now_us, 0, 0, 0);
            return;
        }

        // Carry the burst across every link on the path; the running minimum
        // is what arrives at the receiver's NIC.
        let mut bytes = desired;
        let mut line_error_packets = 0u64;
        for lid in &path {
            let pkts = bytes.div_ceil(MSS);
            let carried = self.links[lid.0].carry(bytes, pkts, tick_us);
            bytes = bytes.min(carried);
            let err_rate = self.links[lid.0].spec.error_rate;
            if err_rate > 0.0 && bytes > 0 {
                let pkts_here = bytes.div_ceil(MSS);
                let mut errs = 0u64;
                for _ in 0..pkts_here.min(1_000) {
                    if self.rng.gen_f64() < err_rate {
                        errs += 1;
                    }
                }
                if errs > 0 {
                    self.links[lid.0].record_errors(errs);
                    line_error_packets += errs;
                }
            }
            if bytes == 0 {
                break;
            }
        }

        let sent_packets = desired.div_ceil(MSS);
        let arrived_packets = bytes.div_ceil(MSS);
        let queue_lost = sent_packets - arrived_packets;

        // Receiver ring overflow: when the sum of in-flight bytes destined to
        // this host exceeds its receive-buffer memory, the excess fraction of
        // this burst is dropped before the stack sees it.
        let total_inflight = inflight_per_host.get(&dst).copied().unwrap_or(0);
        let ring = self.hosts[dst.0].spec.rcv_buffer_bytes;
        let mut ring_lost = 0u64;
        let mut bytes_after_ring = bytes;
        if total_inflight > ring && bytes > 0 {
            let excess_frac = (total_inflight - ring) as f64 / total_inflight as f64;
            let lost_bytes = (bytes as f64 * excess_frac) as u64;
            bytes_after_ring = bytes - lost_bytes;
            ring_lost = lost_bytes.div_ceil(MSS);
        }

        // Receiver CPU budget: packets beyond the budget are dropped.
        let pkts_to_stack = bytes_after_ring.div_ceil(MSS);
        let processed = self.hosts[dst.0].receive_packets(pkts_to_stack, bytes_after_ring, tick_us);
        let cpu_lost = pkts_to_stack - processed;
        let mut delivered_bytes = (bytes_after_ring * processed)
            .checked_div(pkts_to_stack)
            .unwrap_or(0);

        // Gigabit-card / driver pathology: with several concurrently active
        // sockets, each delivered packet has a small chance of being dropped
        // by the driver (the receiving-host problem the paper tracked down).
        let driver_p = self.hosts[dst.0].driver_loss_probability();
        let mut driver_lost = 0u64;
        if driver_p > 0.0 && processed > 0 {
            for _ in 0..processed.min(10_000) {
                if self.rng.gen_f64() < driver_p {
                    driver_lost += 1;
                }
            }
            delivered_bytes = delivered_bytes.saturating_sub(driver_lost * MSS);
        }

        let lost = queue_lost + ring_lost + cpu_lost + line_error_packets + driver_lost;
        self.hosts[src.0].transmit_bytes(desired, sent_packets);
        if lost > 0 {
            self.hosts[dst.0].record_retransmit(lost);
        }
        if delivered_bytes > 0 {
            *self.port_activity.entry((dst, dst_port)).or_insert(0) += delivered_bytes;
        }
        self.flows[fid.0].apply_tick(now_us, sent_packets, lost, delivered_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;

    /// Two hosts connected by one 100 Mbit/s link with 5 ms one-way delay.
    fn simple_net() -> (Network, HostId, HostId, LinkId) {
        let mut net = Network::new(SimClock::matisse(), 42);
        let a = net.add_host(HostSpec::new("sender.lbl.gov"));
        let b = net.add_host(HostSpec::new("receiver.lbl.gov"));
        let l = net.add_link(LinkSpec::new("wan", 100_000_000, 5_000));
        (net, a, b, l)
    }

    #[test]
    fn single_flow_reaches_near_link_rate() {
        let (mut net, a, b, l) = simple_net();
        let f = net.open_flow("bulk", a, b, 5_000, vec![l], 4 << 20);
        net.flow_mut(f).set_unlimited();
        net.run_ticks(5_000); // 5 simulated seconds
        let rate = net.flow(f).average_rate_bps(net.clock().now_us());
        assert!(
            rate > 70_000_000.0 && rate < 110_000_000.0,
            "expected near 100 Mbit/s, got {:.1} Mbit/s",
            rate / 1e6
        );
    }

    #[test]
    fn small_receive_window_limits_throughput() {
        let (mut net, a, b, l) = simple_net();
        // 64 KB window over ~12 ms RTT -> about 43 Mbit/s ceiling.
        let f = net.open_flow("limited", a, b, 5_000, vec![l], 64 * 1024);
        net.flow_mut(f).set_unlimited();
        net.run_ticks(5_000);
        let rate = net.flow(f).average_rate_bps(net.clock().now_us());
        assert!(
            rate < 60_000_000.0,
            "window-limited flow should stay well under link rate, got {:.1} Mbit/s",
            rate / 1e6
        );
        assert!(
            rate > 20_000_000.0,
            "but not collapse: {:.1} Mbit/s",
            rate / 1e6
        );
    }

    #[test]
    fn finite_transfer_completes_and_port_activity_visible() {
        let (mut net, a, b, l) = simple_net();
        let f = net.open_flow("ftp", a, b, 21, vec![l], 1 << 20);
        net.flow_mut(f).enqueue(2_000_000);
        let mut saw_activity = false;
        for _ in 0..10_000 {
            net.step();
            if net.port_activity(b, 21) > 0 {
                saw_activity = true;
            }
            if net.flow(f).pending_bytes == 0 {
                break;
            }
        }
        assert!(saw_activity, "port monitor should see traffic on port 21");
        assert_eq!(net.flow(f).pending_bytes, 0);
        assert_eq!(net.flow(f).total_delivered, 2_000_000);
        // And afterwards the port goes quiet again.
        net.step();
        assert_eq!(net.port_activity(b, 21), 0);
    }

    #[test]
    fn receiver_cpu_saturation_causes_retransmits() {
        let mut net = Network::new(SimClock::matisse(), 7);
        let a = net.add_host(HostSpec::new("fast-sender"));
        // A receiver with a very slow protocol stack.
        let b = net.add_host(HostSpec::new("slow-receiver").cpus(1).pkt_cost_us(200.0));
        let l = net.add_link(LinkSpec::gige("lan"));
        let f = net.open_flow("blast", a, b, 9_000, vec![l], 8 << 20);
        net.flow_mut(f).set_unlimited();
        net.run_ticks(3_000);
        assert!(
            net.flow(f).retransmits > 0,
            "CPU-bound receiver must force losses"
        );
        assert!(net.host(b).stats().rx_drops > 0);
        // Delivered rate is bounded by the stack: 5000 pkt/s * 1460 B ~ 58 Mbit/s.
        let rate = net.flow(f).average_rate_bps(net.clock().now_us());
        assert!(rate < 80_000_000.0, "got {:.1} Mbit/s", rate / 1e6);
    }

    #[test]
    fn two_flows_share_a_bottleneck_roughly_fairly() {
        let (mut net, a, b, l) = simple_net();
        let f1 = net.open_flow("one", a, b, 5_001, vec![l], 1 << 20);
        let f2 = net.open_flow("two", a, b, 5_002, vec![l], 1 << 20);
        net.flow_mut(f1).set_unlimited();
        net.flow_mut(f2).set_unlimited();
        net.run_ticks(10_000);
        let r1 = net.flow(f1).average_rate_bps(net.clock().now_us());
        let r2 = net.flow(f2).average_rate_bps(net.clock().now_us());
        let total = (r1 + r2) / 1e6;
        assert!(total > 60.0 && total < 115.0, "aggregate {total:.1} Mbit/s");
        let ratio = r1.max(r2) / r1.min(r2).max(1.0);
        assert!(ratio < 4.5, "gross unfairness: {r1:.0} vs {r2:.0}");
    }

    #[test]
    fn line_errors_are_counted_on_the_link() {
        let mut net = Network::new(SimClock::matisse(), 11);
        let a = net.add_host(HostSpec::new("a"));
        let b = net.add_host(HostSpec::new("b"));
        let l = net.add_link(LinkSpec::new("noisy", 100_000_000, 1_000).error_rate(0.01));
        let f = net.open_flow("x", a, b, 80, vec![l], 1 << 20);
        net.flow_mut(f).set_unlimited();
        net.run_ticks(2_000);
        assert!(net.link(l).counters().errors > 0);
        assert!(net.flow(f).retransmits > 0);
    }

    #[test]
    fn host_lookup_by_name() {
        let (net, a, b, _) = simple_net();
        assert_eq!(net.host_by_name("sender.lbl.gov"), Some(a));
        assert_eq!(net.host_by_name("receiver.lbl.gov"), Some(b));
        assert_eq!(net.host_by_name("nonexistent"), None);
    }

    #[test]
    fn closed_flow_moves_no_data() {
        let (mut net, a, b, l) = simple_net();
        let f = net.open_flow("x", a, b, 80, vec![l], 1 << 20);
        net.flow_mut(f).set_unlimited();
        net.run_ticks(100);
        let delivered = net.flow(f).total_delivered;
        assert!(delivered > 0);
        net.flow_mut(f).close();
        net.run_ticks(100);
        assert_eq!(net.flow(f).total_delivered, delivered);
    }
}
