//! Collection of monitoring events produced during a simulation.
//!
//! Applications (the DPSS servers, the frame player) and the sensors layered
//! on top of the simulator all append ULM events here.  The trace is what the
//! NetLogger analysis tools consume to draw Figure 7 — lifelines, loadlines
//! and retransmit points on a common time axis.

use jamm_ulm::{Event, Timestamp};

/// An append-only log of monitoring events.
#[derive(Debug, Default, Clone)]
pub struct TraceLog {
    events: Vec<Event>,
}

impl TraceLog {
    /// Create an empty trace.
    pub fn new() -> Self {
        TraceLog { events: Vec::new() }
    }

    /// Append one event.
    pub fn record(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Append many events.
    pub fn extend(&mut self, events: impl IntoIterator<Item = Event>) {
        self.events.extend(events);
    }

    /// All recorded events, in insertion order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of a given NetLogger event type.
    pub fn by_type<'a>(&'a self, event_type: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events
            .iter()
            .filter(move |e| e.event_type == event_type)
    }

    /// Events generated on a given host.
    pub fn by_host<'a>(&'a self, host: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events.iter().filter(move |e| e.host == host)
    }

    /// Events within `[start, end)`.
    pub fn in_window(&self, start: Timestamp, end: Timestamp) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(move |e| e.timestamp >= start && e.timestamp < end)
    }

    /// Drain all events out of the trace (used by streaming collectors).
    pub fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Sort events by timestamp (stable, so equal timestamps keep insertion
    /// order).  NetLogger's log-merge tool does the same before analysis.
    pub fn sort_by_time(&mut self) {
        self.events.sort_by_key(|e| e.timestamp);
    }

    /// Serialise the whole trace as ULM text, one event per line.
    pub fn to_ulm_text(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&jamm_ulm::text::encode(e));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_ulm::Level;

    fn ev(t: u64, host: &str, ty: &str) -> Event {
        Event::builder("prog", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_micros(t))
            .build()
    }

    #[test]
    fn record_filter_and_count() {
        let mut log = TraceLog::new();
        assert!(log.is_empty());
        log.record(ev(2, "a", "X"));
        log.record(ev(1, "b", "Y"));
        log.record(ev(3, "a", "X"));
        assert_eq!(log.len(), 3);
        assert_eq!(log.by_type("X").count(), 2);
        assert_eq!(log.by_host("b").count(), 1);
        assert_eq!(
            log.in_window(Timestamp::from_micros(1), Timestamp::from_micros(3))
                .count(),
            2
        );
    }

    #[test]
    fn sort_is_stable_by_time() {
        let mut log = TraceLog::new();
        log.record(ev(5, "a", "later"));
        log.record(ev(1, "a", "first"));
        log.record(ev(5, "a", "later2"));
        log.sort_by_time();
        let types: Vec<_> = log.events().iter().map(|e| e.event_type.as_str()).collect();
        assert_eq!(types, vec!["first", "later", "later2"]);
    }

    #[test]
    fn drain_empties_the_log() {
        let mut log = TraceLog::new();
        log.extend([ev(1, "a", "X"), ev(2, "a", "Y")]);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
    }

    #[test]
    fn ulm_text_round_trips() {
        let mut log = TraceLog::new();
        log.record(ev(1_000_000, "h", "A"));
        log.record(ev(2_000_000, "h", "B"));
        let text = log.to_ulm_text();
        let parsed = jamm_ulm::text::decode_all_lossy(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].event_type, "B");
    }
}
