//! The Distributed Parallel Storage System (DPSS) model.
//!
//! In the MATISSE demonstration the MEMS video frames lived on a DPSS — a
//! block-oriented, striped storage cluster at LBNL — and were pulled across
//! the WAN by the compute cluster.  For the reproduction we model the part
//! that matters to the monitoring story: a set of block servers, each with a
//! disk-read latency and its own TCP connection to the client, serving frame
//! requests striped round-robin across the servers.  The servers emit the
//! `DPSS_*` NetLogger events that appear as lifeline stages in Figure 7.

use std::collections::VecDeque;

use jamm_ulm::{keys, Event, Level};

use crate::host::HostId;
use crate::network::{FlowId, Network};
use crate::trace::TraceLog;

/// Default DPSS block size: 64 KB, as used by the real DPSS.
pub const DEFAULT_BLOCK_BYTES: u64 = 64 * 1024;

/// A block waiting for its simulated disk read to complete.
#[derive(Debug, Clone)]
struct PendingBlock {
    frame_id: u64,
    bytes: u64,
    ready_at_us: u64,
}

/// A block whose bytes have been handed to TCP but not yet fully delivered.
#[derive(Debug, Clone)]
struct InFlightBlock {
    frame_id: u64,
    remaining: u64,
    total: u64,
}

/// One DPSS block server.
#[derive(Debug, Clone)]
pub struct DpssServer {
    /// Host the server process runs on.
    pub host: HostId,
    /// Host name (cached for event emission).
    pub host_name: String,
    /// TCP connection from this server to the client.
    pub flow: FlowId,
    /// Simulated disk read latency per block, microseconds.
    pub disk_latency_us: u64,
    disk_queue: VecDeque<PendingBlock>,
    in_flight: VecDeque<InFlightBlock>,
    /// Total bytes served by this server.
    pub bytes_served: u64,
}

impl DpssServer {
    /// Create a server on `host` using `flow` towards the client.
    pub fn new(
        host: HostId,
        host_name: impl Into<String>,
        flow: FlowId,
        disk_latency_us: u64,
    ) -> Self {
        DpssServer {
            host,
            host_name: host_name.into(),
            flow,
            disk_latency_us,
            disk_queue: VecDeque::new(),
            in_flight: VecDeque::new(),
            bytes_served: 0,
        }
    }
}

/// Bytes of a particular frame delivered to the client during one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameDelivery {
    /// The frame the bytes belong to.
    pub frame_id: u64,
    /// Number of bytes delivered.
    pub bytes: u64,
}

/// A striped DPSS cluster serving frames to a single client.
#[derive(Debug, Clone)]
pub struct DpssCluster {
    servers: Vec<DpssServer>,
    /// Stripe unit (block) size in bytes.
    pub block_bytes: u64,
    next_stripe: usize,
}

impl DpssCluster {
    /// Build a cluster from its servers.
    pub fn new(servers: Vec<DpssServer>, block_bytes: u64) -> Self {
        assert!(
            !servers.is_empty(),
            "a DPSS cluster needs at least one server"
        );
        assert!(block_bytes > 0);
        DpssCluster {
            servers,
            block_bytes,
            next_stripe: 0,
        }
    }

    /// Number of servers in the cluster.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The servers (read-only).
    pub fn servers(&self) -> &[DpssServer] {
        &self.servers
    }

    /// Request a frame of `frame_bytes` bytes.  Blocks are striped
    /// round-robin across the servers; each block becomes available to TCP
    /// after the server's disk latency.  Emits one `DPSS_SERV_IN` event per
    /// server that received part of the request.
    pub fn request_frame(
        &mut self,
        net: &Network,
        frame_id: u64,
        frame_bytes: u64,
        trace: &mut TraceLog,
    ) {
        let now = net.clock().now_us();
        let mut remaining = frame_bytes;
        let mut touched = vec![false; self.servers.len()];
        while remaining > 0 {
            let chunk = remaining.min(self.block_bytes);
            let idx = self.next_stripe % self.servers.len();
            self.next_stripe = self.next_stripe.wrapping_add(1);
            let server = &mut self.servers[idx];
            // Disk requests queue behind each other on the same spindle.
            let queue_delay = server.disk_queue.len() as u64 * (server.disk_latency_us / 4);
            server.disk_queue.push_back(PendingBlock {
                frame_id,
                bytes: chunk,
                ready_at_us: now + server.disk_latency_us + queue_delay,
            });
            touched[idx] = true;
            remaining -= chunk;
        }
        for (idx, was_touched) in touched.iter().enumerate() {
            if *was_touched {
                let server = &self.servers[idx];
                trace.record(
                    Event::builder("dpss_block_server", server.host_name.clone())
                        .level(Level::Usage)
                        .event_type(keys::matisse::DPSS_SERV_IN)
                        .timestamp(net.clock().timestamp())
                        .object_id(format!("frame-{frame_id}"))
                        .field("FRAME.ID", frame_id)
                        .build(),
                );
            }
        }
    }

    /// Advance the cluster by one tick *after* the network has been stepped:
    /// move disk-complete blocks onto their TCP flows and attribute bytes the
    /// network delivered this tick to the frames they belong to.
    pub fn tick(&mut self, net: &mut Network, trace: &mut TraceLog) -> Vec<FrameDelivery> {
        let now = net.clock().now_us();
        let ts = net.clock().timestamp();
        let mut deliveries: Vec<FrameDelivery> = Vec::new();

        for server in &mut self.servers {
            // Disk reads that completed become TCP payload.
            while let Some(block) = server.disk_queue.front() {
                if block.ready_at_us > now {
                    break;
                }
                let block = server.disk_queue.pop_front().expect("front checked");
                trace.record(
                    Event::builder("dpss_block_server", server.host_name.clone())
                        .level(Level::Usage)
                        .event_type(keys::matisse::DPSS_START_WRITE)
                        .timestamp(ts)
                        .object_id(format!("frame-{}", block.frame_id))
                        .field("FRAME.ID", block.frame_id)
                        .field("BLOCK.SZ", block.bytes)
                        .build(),
                );
                net.flow_mut(server.flow).enqueue(block.bytes);
                server.in_flight.push_back(InFlightBlock {
                    frame_id: block.frame_id,
                    remaining: block.bytes,
                    total: block.bytes,
                });
            }

            // Attribute this tick's TCP deliveries to in-flight blocks, FIFO.
            let mut delivered = net.flow(server.flow).tick_report.delivered_bytes;
            server.bytes_served += delivered;
            while delivered > 0 {
                let Some(front) = server.in_flight.front_mut() else {
                    break;
                };
                let eaten = delivered.min(front.remaining);
                front.remaining -= eaten;
                delivered -= eaten;
                match deliveries.iter_mut().find(|d| d.frame_id == front.frame_id) {
                    Some(d) => d.bytes += eaten,
                    None => deliveries.push(FrameDelivery {
                        frame_id: front.frame_id,
                        bytes: eaten,
                    }),
                }
                if front.remaining == 0 {
                    trace.record(
                        Event::builder("dpss_block_server", server.host_name.clone())
                            .level(Level::Usage)
                            .event_type(keys::matisse::DPSS_END_WRITE)
                            .timestamp(ts)
                            .object_id(format!("frame-{}", front.frame_id))
                            .field("FRAME.ID", front.frame_id)
                            .field("BLOCK.SZ", front.total)
                            .build(),
                    );
                    server.in_flight.pop_front();
                }
            }
        }
        deliveries
    }

    /// Bytes queued on disks or in flight, across all servers.  Zero means
    /// every requested byte has been delivered.
    pub fn outstanding_bytes(&self) -> u64 {
        self.servers
            .iter()
            .map(|s| {
                s.disk_queue.iter().map(|b| b.bytes).sum::<u64>()
                    + s.in_flight.iter().map(|b| b.remaining).sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::host::HostSpec;
    use crate::link::LinkSpec;

    /// One server, one client, fat LAN link.
    fn setup(n_servers: usize) -> (Network, DpssCluster, HostId) {
        let mut net = Network::new(SimClock::matisse(), 3);
        let client = net.add_host(HostSpec::new("client.lbl.gov"));
        let lan = net.add_link(LinkSpec::gige("lan"));
        let mut servers = Vec::new();
        for i in 0..n_servers {
            let name = format!("dpss{}.lbl.gov", i + 1);
            let h = net.add_host(HostSpec::new(name.clone()));
            let f = net.open_flow(
                format!("dpss{}", i + 1),
                h,
                client,
                7_000,
                vec![lan],
                1 << 20,
            );
            servers.push(DpssServer::new(h, name, f, 8_000));
        }
        let cluster = DpssCluster::new(servers, DEFAULT_BLOCK_BYTES);
        (net, cluster, client)
    }

    fn run_frame(
        net: &mut Network,
        cluster: &mut DpssCluster,
        trace: &mut TraceLog,
        frame_id: u64,
        frame_bytes: u64,
        max_ticks: u64,
    ) -> u64 {
        cluster.request_frame(net, frame_id, frame_bytes, trace);
        let mut got = 0;
        for tick in 0..max_ticks {
            net.step();
            for d in cluster.tick(net, trace) {
                assert_eq!(d.frame_id, frame_id);
                got += d.bytes;
            }
            if got >= frame_bytes {
                return tick;
            }
        }
        panic!("frame not delivered after {max_ticks} ticks (got {got}/{frame_bytes})");
    }

    #[test]
    fn single_server_delivers_a_full_frame() {
        let (mut net, mut cluster, _) = setup(1);
        let mut trace = TraceLog::new();
        let frame = 1_500_000;
        run_frame(&mut net, &mut cluster, &mut trace, 1, frame, 5_000);
        assert_eq!(cluster.outstanding_bytes(), 0);
        assert_eq!(cluster.servers()[0].bytes_served, frame);
        // One SERV_IN per touched server, START/END per block.
        assert_eq!(trace.by_type(keys::matisse::DPSS_SERV_IN).count(), 1);
        let blocks = (frame as f64 / DEFAULT_BLOCK_BYTES as f64).ceil() as usize;
        assert_eq!(
            trace.by_type(keys::matisse::DPSS_START_WRITE).count(),
            blocks
        );
        assert_eq!(trace.by_type(keys::matisse::DPSS_END_WRITE).count(), blocks);
    }

    #[test]
    fn striping_spreads_bytes_across_servers() {
        let (mut net, mut cluster, _) = setup(4);
        let mut trace = TraceLog::new();
        run_frame(&mut net, &mut cluster, &mut trace, 7, 2_000_000, 10_000);
        let served: Vec<u64> = cluster.servers().iter().map(|s| s.bytes_served).collect();
        assert!(
            served.iter().all(|&b| b > 0),
            "all servers served data: {served:?}"
        );
        let max = *served.iter().max().unwrap();
        let min = *served.iter().min().unwrap();
        assert!(
            max - min <= 2 * DEFAULT_BLOCK_BYTES,
            "stripe imbalance: {served:?}"
        );
        assert_eq!(trace.by_type(keys::matisse::DPSS_SERV_IN).count(), 4);
    }

    #[test]
    fn disk_latency_delays_first_delivery() {
        let (mut net, mut cluster, _) = setup(1);
        cluster.servers[0].disk_latency_us = 50_000; // 50 ms disk
        let mut trace = TraceLog::new();
        cluster.request_frame(&net, 1, 64 * 1024, &mut trace);
        let mut first_delivery_tick = None;
        for tick in 0..2_000u64 {
            net.step();
            let d = cluster.tick(&mut net, &mut trace);
            if !d.is_empty() && first_delivery_tick.is_none() {
                first_delivery_tick = Some(tick);
                break;
            }
        }
        let t = first_delivery_tick.expect("delivery happened");
        assert!(
            t >= 50,
            "nothing can arrive before the disk read finishes (tick {t})"
        );
    }

    #[test]
    fn interleaved_frames_are_attributed_separately() {
        let (mut net, mut cluster, _) = setup(2);
        let mut trace = TraceLog::new();
        cluster.request_frame(&net, 1, 300_000, &mut trace);
        cluster.request_frame(&net, 2, 300_000, &mut trace);
        let mut got = std::collections::HashMap::new();
        for _ in 0..20_000 {
            net.step();
            for d in cluster.tick(&mut net, &mut trace) {
                *got.entry(d.frame_id).or_insert(0u64) += d.bytes;
            }
            if cluster.outstanding_bytes() == 0 {
                break;
            }
        }
        assert_eq!(got.get(&1).copied(), Some(300_000));
        assert_eq!(got.get(&2).copied(), Some(300_000));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_cluster_rejected() {
        let _ = DpssCluster::new(Vec::new(), DEFAULT_BLOCK_BYTES);
    }
}
