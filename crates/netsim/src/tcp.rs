//! TCP flow model.
//!
//! Each flow is a fluid AIMD model: per simulation tick it sends
//! `min(cwnd, rcv_window) / RTT * tick` bytes, capped by the links along its
//! path and by the receiving host's packet-processing budget.  Packet losses
//! (queue overflow, receive-ring overflow, CPU exhaustion or line errors)
//! trigger either a fast-retransmit halving or — for burst losses — a
//! retransmission timeout with a slow-start restart, which is the mechanism
//! behind the 4-stream WAN throughput collapse the paper reports.

use crate::host::HostId;
use crate::link::LinkId;

/// Maximum segment size used by all flows (standard Ethernet MSS).
pub const MSS: u64 = 1_460;

/// Default retransmission-timeout length in microseconds.
pub const DEFAULT_RTO_US: u64 = 500_000;

/// Identifies a flow within a [`crate::network::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub usize);

/// Congestion-control state of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowState {
    /// Transmitting normally.
    Open,
    /// Waiting out a retransmission timeout until the given simulated time
    /// (microseconds since simulation start).
    TimedOut {
        /// Simulated time at which transmission resumes.
        until_us: u64,
    },
    /// The application closed the connection.
    Closed,
}

/// Per-tick outcome of a flow's transmission, used by applications layered on
/// top (DPSS, iperf, the frame player) and by the monitoring sensors.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlowTickReport {
    /// Bytes delivered to the receiving application this tick.
    pub delivered_bytes: u64,
    /// Packets lost this tick (any cause).
    pub lost_packets: u64,
    /// Whether a retransmission timeout was taken this tick.
    pub timed_out: bool,
}

/// A simulated TCP connection.
#[derive(Debug, Clone)]
pub struct TcpFlow {
    /// Identifier within the owning network.
    pub id: FlowId,
    /// Human-readable label (shows up in emitted monitoring events).
    pub name: String,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Destination port (what the JAMM port-monitor agent watches).
    pub dst_port: u16,
    /// Links traversed from `src` to `dst`, in order.
    pub path: Vec<LinkId>,
    /// Receiver window in bytes (the buffer the network-aware client tunes).
    pub rcv_window: u64,
    /// Round-trip time in microseconds (path propagation + processing).
    pub rtt_us: u64,
    /// Retransmission-timeout length in microseconds.
    pub rto_us: u64,

    /// Congestion window, bytes.
    pub cwnd: u64,
    /// Slow-start threshold, bytes.
    pub ssthresh: u64,
    /// Current state.
    pub state: FlowState,

    /// Bytes the application has queued for transmission.  `u64::MAX` means
    /// the source is unlimited (iperf-style).
    pub pending_bytes: u64,

    /// Cumulative bytes delivered to the receiver.
    pub total_delivered: u64,
    /// Cumulative retransmitted packets.
    pub retransmits: u64,
    /// Cumulative retransmission timeouts.
    pub timeouts: u64,
    /// Bytes delivered during the previous tick (sensor-visible rate).
    pub last_tick_delivered: u64,
    /// Report for the tick currently being processed.
    pub tick_report: FlowTickReport,
}

impl TcpFlow {
    /// Create a new flow in slow start with one MSS of congestion window.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: FlowId,
        name: impl Into<String>,
        src: HostId,
        dst: HostId,
        dst_port: u16,
        path: Vec<LinkId>,
        rtt_us: u64,
        rcv_window: u64,
    ) -> Self {
        TcpFlow {
            id,
            name: name.into(),
            src,
            dst,
            dst_port,
            path,
            rcv_window: rcv_window.max(MSS),
            rtt_us: rtt_us.max(200),
            rto_us: DEFAULT_RTO_US.max(2 * rtt_us),
            cwnd: 2 * MSS,
            ssthresh: rcv_window.max(MSS),
            state: FlowState::Open,
            pending_bytes: 0,
            total_delivered: 0,
            retransmits: 0,
            timeouts: 0,
            last_tick_delivered: 0,
            tick_report: FlowTickReport::default(),
        }
    }

    /// The effective send window: min of congestion and receiver windows.
    pub fn window(&self) -> u64 {
        self.cwnd.min(self.rcv_window)
    }

    /// Queue application data for transmission.
    pub fn enqueue(&mut self, bytes: u64) {
        if self.pending_bytes != u64::MAX {
            self.pending_bytes = self.pending_bytes.saturating_add(bytes);
        }
    }

    /// Make the source unlimited (always has data to send).
    pub fn set_unlimited(&mut self) {
        self.pending_bytes = u64::MAX;
    }

    /// Close the connection from the application side.
    pub fn close(&mut self) {
        self.state = FlowState::Closed;
        if self.pending_bytes == u64::MAX {
            self.pending_bytes = 0;
        }
    }

    /// Whether the flow wants to transmit this tick.
    pub fn wants_to_send(&self, now_us: u64) -> bool {
        match self.state {
            FlowState::Open => self.pending_bytes > 0,
            FlowState::TimedOut { until_us } => {
                // The check is made before the timeout expiry processing; a
                // flow still inside its RTO sends nothing.
                now_us >= until_us && self.pending_bytes > 0
            }
            FlowState::Closed => false,
        }
    }

    /// Bytes the fluid model would like to send in a tick of `tick_us`.
    pub fn desired_bytes(&self, tick_us: u64) -> u64 {
        let w = self.window() as f64;
        let rate_bps = w / (self.rtt_us as f64 / 1e6); // bytes per second
        let bytes = (rate_bps * tick_us as f64 / 1e6).ceil() as u64;
        bytes.min(self.pending_bytes)
    }

    /// Estimated bytes in flight, for the receiver ring-overflow model:
    /// bounded by the window and by what the achieved rate can keep in the
    /// pipe.
    pub fn estimated_in_flight(&self, tick_us: u64) -> u64 {
        if self.pending_bytes == 0 || !matches!(self.state, FlowState::Open) {
            return 0;
        }
        let by_rate =
            self.last_tick_delivered.saturating_mul(self.rtt_us) / tick_us.max(1) + 2 * MSS;
        self.window().min(by_rate)
    }

    /// If the flow is in timeout and the timer expired, reopen it in slow
    /// start.  Returns true if the flow (re)opened.
    pub fn maybe_recover(&mut self, now_us: u64) -> bool {
        if let FlowState::TimedOut { until_us } = self.state {
            if now_us >= until_us {
                self.state = FlowState::Open;
                self.cwnd = 2 * MSS;
                return true;
            }
        }
        false
    }

    /// Apply the outcome of a tick's transmission attempt.
    ///
    /// `sent_packets` is how many packets were put on the wire, `lost_packets`
    /// how many of them were lost (any cause), `delivered_bytes` how many
    /// bytes reached the application.  Congestion control reacts:
    /// no loss → additive/exponential growth; some loss → fast retransmit
    /// (halve); loss of more than a third of the burst → timeout.
    pub fn apply_tick(
        &mut self,
        now_us: u64,
        sent_packets: u64,
        lost_packets: u64,
        delivered_bytes: u64,
    ) {
        self.tick_report = FlowTickReport {
            delivered_bytes,
            lost_packets,
            timed_out: false,
        };
        if self.pending_bytes != u64::MAX {
            self.pending_bytes = self.pending_bytes.saturating_sub(delivered_bytes);
        }
        self.total_delivered += delivered_bytes;
        self.last_tick_delivered = delivered_bytes;

        if lost_packets == 0 {
            // Window growth on successful delivery.
            if self.cwnd < self.ssthresh {
                self.cwnd = (self.cwnd + delivered_bytes).min(self.rcv_window);
            } else if self.cwnd > 0 {
                let incr = (MSS as f64 * delivered_bytes as f64 / self.cwnd as f64) as u64;
                self.cwnd = (self.cwnd + incr).min(self.rcv_window);
            }
            return;
        }

        self.retransmits += lost_packets;
        let burst_loss = sent_packets > 0 && lost_packets * 3 >= sent_packets;
        if burst_loss {
            // Severe loss: retransmission timeout, slow-start restart.
            self.timeouts += 1;
            self.ssthresh = (self.window() / 2).max(2 * MSS);
            self.cwnd = MSS;
            self.state = FlowState::TimedOut {
                until_us: now_us + self.rto_us,
            };
            self.tick_report.timed_out = true;
        } else {
            // Isolated loss: fast retransmit / recovery.
            self.ssthresh = (self.window() / 2).max(2 * MSS);
            self.cwnd = self.ssthresh;
        }
    }

    /// Average delivery rate in bits per second over `elapsed_us` of
    /// simulated time.
    pub fn average_rate_bps(&self, elapsed_us: u64) -> f64 {
        if elapsed_us == 0 {
            0.0
        } else {
            self.total_delivered as f64 * 8.0 / (elapsed_us as f64 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> TcpFlow {
        TcpFlow::new(
            FlowId(0),
            "test",
            HostId(0),
            HostId(1),
            14_830,
            vec![LinkId(0)],
            60_000,
            1 << 20,
        )
    }

    #[test]
    fn slow_start_doubles_per_delivered_window() {
        let mut f = flow();
        f.set_unlimited();
        let before = f.cwnd;
        f.apply_tick(0, 10, 0, before);
        assert_eq!(f.cwnd, before * 2, "slow start: cwnd grows by bytes acked");
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut f = flow();
        f.set_unlimited();
        f.ssthresh = 4 * MSS;
        f.cwnd = 8 * MSS;
        f.apply_tick(0, 8, 0, 8 * MSS);
        // One MSS per window's worth of acks.
        assert_eq!(f.cwnd, 9 * MSS);
    }

    #[test]
    fn cwnd_never_exceeds_receiver_window() {
        let mut f = flow();
        f.set_unlimited();
        f.cwnd = f.rcv_window - MSS / 2;
        f.apply_tick(0, 100, 0, 500_000);
        assert_eq!(f.cwnd, f.rcv_window);
        assert_eq!(f.window(), f.rcv_window);
    }

    #[test]
    fn isolated_loss_halves_window() {
        let mut f = flow();
        f.set_unlimited();
        f.cwnd = 100 * MSS;
        f.apply_tick(0, 100, 1, 99 * MSS);
        assert_eq!(f.cwnd, 50 * MSS);
        assert_eq!(f.retransmits, 1);
        assert_eq!(f.timeouts, 0);
        assert!(matches!(f.state, FlowState::Open));
    }

    #[test]
    fn burst_loss_causes_timeout_and_slow_start_restart() {
        let mut f = flow();
        f.set_unlimited();
        f.cwnd = 100 * MSS;
        f.apply_tick(1_000, 90, 40, 50 * MSS);
        assert_eq!(f.timeouts, 1);
        assert_eq!(f.cwnd, MSS);
        assert!(matches!(f.state, FlowState::TimedOut { .. }));
        assert!(f.tick_report.timed_out);
        // Not yet recovered before the RTO expires.
        assert!(!f.maybe_recover(1_000 + f.rto_us - 1));
        assert!(f.maybe_recover(1_000 + f.rto_us));
        assert!(matches!(f.state, FlowState::Open));
        assert_eq!(f.cwnd, 2 * MSS);
    }

    #[test]
    fn pending_bytes_drain_and_limit_sending() {
        let mut f = flow();
        f.enqueue(10_000);
        assert!(f.wants_to_send(0));
        assert!(f.desired_bytes(1_000) <= 10_000);
        f.apply_tick(0, 7, 0, 10_000);
        assert_eq!(f.pending_bytes, 0);
        assert!(!f.wants_to_send(0));
        assert_eq!(f.total_delivered, 10_000);
    }

    #[test]
    fn unlimited_source_never_drains() {
        let mut f = flow();
        f.set_unlimited();
        f.apply_tick(0, 100, 0, 1 << 20);
        assert_eq!(f.pending_bytes, u64::MAX);
        f.close();
        assert_eq!(f.pending_bytes, 0);
        assert!(!f.wants_to_send(0));
    }

    #[test]
    fn desired_bytes_follows_window_over_rtt() {
        let mut f = flow();
        f.set_unlimited();
        f.cwnd = 600_000; // bytes
                          // rate = 600k / 60ms = 10 MB/s -> 10k bytes per 1ms tick.
        let d = f.desired_bytes(1_000);
        assert!((d as i64 - 10_000).abs() <= 10, "got {d}");
    }

    #[test]
    fn average_rate_computation() {
        let mut f = flow();
        f.set_unlimited();
        f.apply_tick(0, 10, 0, 1_250_000); // 1.25 MB in 1 s => 10 Mbit/s
        assert!((f.average_rate_bps(1_000_000) - 10_000_000.0).abs() < 1.0);
        assert_eq!(f.average_rate_bps(0), 0.0);
    }

    #[test]
    fn in_flight_estimate_bounded_by_window() {
        let mut f = flow();
        f.set_unlimited();
        f.cwnd = 4 * MSS;
        f.last_tick_delivered = 1 << 20;
        assert!(f.estimated_in_flight(1_000) <= f.window());
        f.pending_bytes = 0;
        assert_eq!(f.estimated_in_flight(1_000), 0);
    }
}
