//! Deterministic fault injection.
//!
//! A [`FaultInjector`] holds the spec's timeline sorted stably by firing
//! time and releases entries as the simulated clock passes them; the
//! engine applies each one by mutating the simulated network and the
//! monitoring deployment.  Everything is driven by the tick counter —
//! there is no wall clock anywhere, so a seeded scenario replays
//! byte-identically.

use jamm_archive::ArchiveQuery;
use jamm_directory::Dn;

use super::spec::{Fault, TimelineEntry};
use super::ScenarioEngine;

/// Releases timeline entries as simulated time passes them.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Entries sorted stably by `at_us` (spec order breaks ties, so
    /// same-tick faults apply in the order they were written).
    schedule: Vec<TimelineEntry>,
    next: usize,
}

impl FaultInjector {
    /// Build an injector from a spec timeline.
    pub fn new(timeline: &[TimelineEntry]) -> Self {
        let mut schedule = timeline.to_vec();
        schedule.sort_by_key(|e| e.at_us);
        FaultInjector { schedule, next: 0 }
    }

    /// Entries that fire at or before `now_us` and have not fired yet.
    pub fn due(&mut self, now_us: u64) -> Vec<TimelineEntry> {
        let start = self.next;
        while self.next < self.schedule.len() && self.schedule[self.next].at_us <= now_us {
            self.next += 1;
        }
        self.schedule[start..self.next].to_vec()
    }

    /// Entries not yet released.
    pub fn remaining(&self) -> usize {
        self.schedule.len() - self.next
    }
}

impl ScenarioEngine {
    /// Apply one timeline entry to the running scenario.
    pub(crate) fn apply(&mut self, entry: &TimelineEntry) {
        let desc = match &entry.fault {
            Fault::LinkDegrade {
                link,
                bandwidth_bps,
            } => {
                self.degrade_link(link, *bandwidth_bps);
                format!("link {link} degraded to {bandwidth_bps} bit/s")
            }
            Fault::LinkRestore { link } => {
                self.restore_link(link);
                format!("link {link} restored")
            }
            Fault::HostCrash { host } => {
                self.crash_host(host);
                format!("host {host} crashed")
            }
            Fault::HostRecover { host } => {
                self.recover_host(host);
                format!("host {host} recovered")
            }
            Fault::Partition { groups } => {
                self.partition = Some(groups.clone());
                let rendered: Vec<String> = groups.iter().map(|g| g.join(",")).collect();
                format!("partition {{{}}}", rendered.join("}{"))
            }
            Fault::Heal => {
                self.partition = None;
                "partition healed".to_string()
            }
            Fault::SubscriberStall { name, period_us } => {
                if let Some(s) = self.subscribers.iter_mut().find(|s| s.name == *name) {
                    s.stalled_us = Some(*period_us);
                }
                format!("subscriber {name} stalled to {period_us} us per drain")
            }
            Fault::SubscriberResume { name } => {
                if let Some(s) = self.subscribers.iter_mut().find(|s| s.name == *name) {
                    s.stalled_us = None;
                }
                format!("subscriber {name} resumed")
            }
            Fault::SensorStop { host } => {
                for s in self.sensors.iter_mut().filter(|s| s.host == *host) {
                    s.on = false;
                }
                format!("sensors on {host} stopped")
            }
            Fault::SensorStart { host } => {
                for s in self.sensors.iter_mut().filter(|s| s.host == *host) {
                    s.on = true;
                }
                format!("sensors on {host} started")
            }
            Fault::SensorPeriod { host, every_us } => {
                for s in self
                    .sensors
                    .iter_mut()
                    .filter(|s| host == "*" || s.host == *host)
                {
                    s.every_us = *every_us;
                }
                format!("sensors on {host} now every {every_us} us")
            }
            Fault::Replay { archiver, via } => {
                let n = self.replay_archive(archiver, via);
                format!("replayed {n} archived events from {archiver} via {via}")
            }
        };
        self.fault_log.push((entry.at_us, desc));
    }

    fn degrade_link(&mut self, name: &str, bandwidth_bps: u64) {
        let Some(id) = self.link_id_by_name(name) else {
            return;
        };
        let link = self.net.link_mut(id);
        if !self.saved_bw.iter().any(|(n, _)| n == name) {
            self.saved_bw
                .push((name.to_string(), link.spec.bandwidth_bps));
        }
        link.spec.bandwidth_bps = bandwidth_bps;
    }

    fn restore_link(&mut self, name: &str) {
        let Some(pos) = self.saved_bw.iter().position(|(n, _)| n == name) else {
            return;
        };
        let (_, original) = self.saved_bw.remove(pos);
        if let Some(id) = self.link_id_by_name(name) {
            self.net.link_mut(id).spec.bandwidth_bps = original;
        }
    }

    fn link_id_by_name(&self, name: &str) -> Option<crate::link::LinkId> {
        self.net
            .links()
            .iter()
            .find(|l| l.spec.name == name)
            .map(|l| l.id)
    }

    /// Crash a host: processes die, its gateways are marked down in the
    /// directory, and every TCP flow touching it closes (remembering what
    /// was still owed so recovery can restart it).
    fn crash_host(&mut self, host: &str) {
        if self.crashed.iter().any(|h| h == host) {
            return;
        }
        self.crashed.push(host.to_string());
        if let Some(id) = self.net.host_by_name(host) {
            let procs: Vec<String> = self
                .net
                .host(id)
                .processes()
                .map(|(p, _)| p.to_string())
                .collect();
            for p in procs {
                self.net.host_mut(id).kill_process(&p);
            }
            for i in 0..self.flows.len() {
                if self.flows[i].suspended {
                    continue;
                }
                if self.flows[i].src == id || self.flows[i].dst == id {
                    let fid = self.flows[i].id;
                    self.flows[i].delivered_closed += self.net.flow(fid).total_delivered;
                    self.net.flow_mut(fid).close();
                    self.flows[i].suspended = true;
                }
            }
        }
        // Mark the host's gateways down so sensor routing fails over.
        let down: Vec<String> = self
            .gateways
            .iter()
            .filter(|g| g.host == host)
            .map(|g| g.name.clone())
            .collect();
        for name in down {
            self.set_gateway_status(&name, "down");
        }
    }

    /// Recover a crashed host: processes restart, gateways come back up,
    /// and suspended flows reopen as fresh connections (slow-start from
    /// scratch, like a real reconnect).
    fn recover_host(&mut self, host: &str) {
        let Some(pos) = self.crashed.iter().position(|h| h == host) else {
            return;
        };
        self.crashed.remove(pos);
        if let Some(id) = self.net.host_by_name(host) {
            let procs: Vec<String> = self
                .net
                .host(id)
                .processes()
                .map(|(p, _)| p.to_string())
                .collect();
            for p in procs {
                self.net.host_mut(id).restart_process(&p);
            }
            for i in 0..self.flows.len() {
                if !self.flows[i].suspended {
                    continue;
                }
                if self.flows[i].src == id || self.flows[i].dst == id {
                    let other = if self.flows[i].src == id {
                        self.flows[i].dst
                    } else {
                        self.flows[i].src
                    };
                    let other_down = self
                        .crashed
                        .iter()
                        .any(|h| self.net.host_by_name(h) == Some(other));
                    if other_down {
                        continue;
                    }
                    let d = &self.flows[i].decl;
                    let new_id = self.net.open_flow(
                        &d.name,
                        self.flows[i].src,
                        self.flows[i].dst,
                        d.port,
                        self.flows[i].path.clone(),
                        d.window,
                    );
                    match d.bytes {
                        Some(total) => {
                            let owed = total.saturating_sub(self.flows[i].delivered_closed);
                            self.net.flow_mut(new_id).enqueue(owed);
                        }
                        None => self.net.flow_mut(new_id).set_unlimited(),
                    }
                    self.flows[i].id = new_id;
                    self.flows[i].suspended = false;
                }
            }
        }
        let up: Vec<String> = self
            .gateways
            .iter()
            .filter(|g| g.host == host)
            .map(|g| g.name.clone())
            .collect();
        for name in up {
            self.set_gateway_status(&name, "up");
        }
    }

    fn set_gateway_status(&self, gateway: &str, status: &str) {
        let Ok(dn) = Dn::parse(&format!("gw={gateway},o=grid")) else {
            return;
        };
        let _ = self
            .directory
            .modify(&dn, |e| e.set("status", vec![status.to_string()]));
    }

    /// Replay everything an archiver has stored back through a gateway —
    /// the paper's "retrieve archived events for post-mortem analysis"
    /// path, which under a partition overflows bounded subscriptions.
    fn replay_archive(&mut self, archiver: &str, via: &str) -> usize {
        let Some(a) = self.archivers.iter().find(|a| a.name == archiver) else {
            return 0;
        };
        let events: Vec<_> = a.agent.archive().query(&ArchiveQuery::all());
        let Some(gw) = self.registry.resolve(via) else {
            return 0;
        };
        let n = events.len();
        for e in &events {
            gw.publish(e);
        }
        self.published += n as u64;
        n
    }
}
