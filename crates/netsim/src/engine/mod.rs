//! The declarative scenario engine.
//!
//! The ROADMAP asks for fault scenarios to be *tests*, not demos: a
//! config-driven simulator in the simba style (declarative config + a
//! result analyser).  This module compiles a [`ScenarioSpec`] — a small
//! text format describing hosts, links, TCP flows, a real monitoring
//! deployment (event gateways, subscribing consumers, an archiver, a
//! sensor directory) and a fault timeline — onto the existing
//! [`crate::network::Network`] simulator, runs it on the simulated clock
//! with **no wall-clock dependence anywhere**, and hands back a
//! [`ScenarioReport`] with a fluent assertion API
//! ([`ScenarioReport::expect`]).
//!
//! The monitoring components are the real ones: `jamm_gateway`
//! gateways with a `PipelineTracer` whose [`TraceClock`] is the shared
//! simulated-time cell, `jamm_consumers` collectors and archiver,
//! and a `jamm_directory` server used for gateway failover.  The
//! self-lifeline events the tracer emits therefore measure *simulated*
//! stage-to-stage latencies, and `jamm_netlogger::analysis::diagnose`
//! localizes injected bottlenecks exactly the way the paper's human
//! analyst localized the MATISSE receive-host collapse.

pub mod analysis;
pub mod faults;
pub mod spec;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jamm_consumers::archiver::ArchiverAgent;
use jamm_consumers::collector::EventCollector;
use jamm_consumers::GatewayRegistry;
use jamm_core::{Backoff, CircuitBreaker};
use jamm_directory::{DirectoryServer, Dn, Entry, Filter, Scope};
use jamm_gateway::{
    EventGateway, GatewayConfig, PipelineTracer, QosConfig, Subscription, TraceClock,
};
use jamm_ulm::{keys, Event, Level, SharedEvent};

use crate::host::HostId;
use crate::link::{LinkId, Router};
use crate::network::Network;
use crate::{clock::SimClock, host::HostSpec, link::LinkSpec, FlowId};

pub use analysis::{
    ConsumerReport, Expectations, GatewayQosReport, ReaderReport, ScenarioReport, SecondSample,
};
pub use faults::FaultInjector;
pub use spec::{Fault, QosDecl, ReaderDecl, ScenarioSpec, SpecError, TimelineEntry};

/// Why a spec failed to compile or parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The text did not parse.
    Parse(SpecError),
    /// The spec parsed but references something undeclared (an unknown
    /// host, link or gateway).
    Compile(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Compile(reason) => write!(f, "scenario compile error: {reason}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SpecError> for EngineError {
    fn from(e: SpecError) -> Self {
        EngineError::Parse(e)
    }
}

/// A spec's topology compiled onto a fresh [`Network`] (hosts, links and
/// routers only — no flows, no monitoring plane).  This is the piece the
/// canned [`crate::scenario::matisse_topology`] builds on.
#[derive(Debug)]
pub struct CompiledTopology {
    /// The simulated network.
    pub net: Network,
    /// Host IDs, in declaration order.
    pub hosts: Vec<(String, HostId)>,
    /// Link IDs, in declaration order.
    pub links: Vec<(String, LinkId)>,
}

impl CompiledTopology {
    /// Look up a declared host by name.
    pub fn host_id(&self, name: &str) -> Option<HostId> {
        self.hosts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
    }

    /// Look up a declared link by name.
    pub fn link_id(&self, name: &str) -> Option<LinkId> {
        self.links
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
    }

    /// Resolve a list of link names to IDs (a flow path).
    pub fn resolve_path(&self, via: &[String]) -> Result<Vec<LinkId>, EngineError> {
        via.iter()
            .map(|name| {
                self.link_id(name)
                    .ok_or_else(|| EngineError::Compile(format!("unknown link `{name}`")))
            })
            .collect()
    }
}

/// Build the network described by a spec's `host` / `link` / `router`
/// directives, in declaration order (which fixes simulator IDs and the
/// seeded RNG stream — byte-identical specs produce identical networks).
pub fn compile_topology(spec: &ScenarioSpec) -> Result<CompiledTopology, EngineError> {
    let mut net = Network::new(
        SimClock::new(crate::clock::SimClock::matisse().timestamp(), spec.tick_us),
        spec.seed,
    );
    let mut hosts = Vec::new();
    for h in &spec.hosts {
        let mut hs = HostSpec::new(&h.name);
        if let Some(v) = h.cpus {
            hs = hs.cpus(v);
        }
        if let Some(v) = h.memory_kb {
            hs = hs.memory_kb(v);
        }
        if let Some(v) = h.pkt_cost_us {
            hs = hs.pkt_cost_us(v);
        }
        if let Some(v) = h.socket_overhead {
            hs = hs.socket_overhead(v);
        }
        if let Some(v) = h.rcv_buffer_bytes {
            hs = hs.rcv_buffer_bytes(v);
        }
        if let Some(v) = h.multi_socket_loss {
            hs = hs.multi_socket_loss(v);
        }
        let id = net.add_host(hs);
        for p in &h.processes {
            net.host_mut(id).register_process(p);
        }
        hosts.push((h.name.clone(), id));
    }
    let mut links: Vec<(String, LinkId)> = Vec::new();
    for l in &spec.links {
        let mut ls = LinkSpec::new(&l.name, l.bandwidth_bps, l.delay_us);
        if let Some(q) = l.queue_bytes {
            ls = ls.queue_bytes(q);
        }
        if let Some(e) = l.error_rate {
            ls = ls.error_rate(e);
        }
        links.push((l.name.clone(), net.add_link(ls)));
    }
    for r in &spec.routers {
        let resolved = r
            .links
            .iter()
            .map(|name| {
                links
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, id)| *id)
                    .ok_or_else(|| EngineError::Compile(format!("unknown link `{name}`")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        net.add_router(Router::new(&r.name, resolved));
    }
    Ok(CompiledTopology { net, hosts, links })
}

pub(crate) struct GatewayRt {
    pub name: String,
    pub host: String,
    /// Does this gateway run a QoS plane (tiering + shedding)?
    pub qos: bool,
}

/// Translate a spec's qos attributes onto the library defaults.
fn qos_config(d: &spec::QosDecl) -> QosConfig {
    let mut c = QosConfig::default();
    if let Some(v) = d.retier {
        c.retier_every = v.max(1);
    }
    if let Some(v) = d.lag_enter {
        c.tiers.lag_enter = v;
    }
    if let Some(v) = d.lag_exit {
        c.tiers.lag_exit = v;
    }
    if let Some(v) = d.probation_enter {
        c.tiers.probation_enter = v;
    }
    if let Some(v) = d.probation_exit {
        c.tiers.probation_exit = v;
    }
    if let Some(v) = d.shed_enter {
        c.overload.enter = v;
    }
    if let Some(v) = d.shed_exit {
        c.overload.exit = v;
    }
    if let Some(v) = d.budget_lagging {
        c.budgets[1] = v;
    }
    if let Some(v) = d.budget_probation {
        c.budgets[2] = v;
    }
    c
}

pub(crate) struct SubscriberRt {
    pub name: String,
    pub host: String,
    /// One collector per subscribed gateway, all acting as the same
    /// consumer principal, so drains can be gated per gateway (a
    /// partition cuts one gateway off without freezing the rest).
    pub collectors: Vec<(String, EventCollector)>,
    /// Index into each collector's log of what has been latency-measured.
    pub marks: Vec<usize>,
    pub drain_us: u64,
    pub stalled_us: Option<u64>,
    pub next_drain_us: u64,
    pub cpu_of: Option<HostId>,
    /// Set when the last drain slot was skipped because the coupled host
    /// was saturated; the next (deferred) slot drains unconditionally, so
    /// a starved consumer still makes slow progress instead of none.
    pub starved: bool,
    /// Coupled host's retransmit counter at the last drain slot — receive
    /// path churn (loss recovery, interrupt storms) between slots starves
    /// the consumer just like outright CPU saturation does.
    pub last_coupled_retrans: u64,
    pub latencies_us: Vec<u64>,
}

impl SubscriberRt {
    fn effective_drain_us(&self) -> u64 {
        self.stalled_us.unwrap_or(self.drain_us)
    }

    pub(crate) fn delivered(&self) -> u64 {
        self.collectors
            .iter()
            .map(|(_, c)| c.events().len() as u64)
            .sum()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.collectors.iter().map(|(_, c)| c.dropped()).sum()
    }
}

pub(crate) struct ReaderRt {
    pub name: String,
    pub host: String,
    pub via: String,
    pub count: u64,
    pub every_us: u64,
    pub next_at_us: u64,
    /// View snapshots taken (one per reader per period).
    pub reads: u64,
    /// Reads served from the materialized view (an `Arc` clone).
    pub served_from_views: u64,
    /// Reads that would have needed an archive scan (view unavailable) —
    /// the counter the `served_from_views` expectation pins at zero.
    pub archive_scans: u64,
    /// Events visible in the most recent snapshot read.
    pub last_snapshot_len: u64,
}

pub(crate) struct ArchiverRt {
    pub name: String,
    pub host: String,
    pub via: Vec<String>,
    pub agent: ArchiverAgent,
}

pub(crate) struct SensorRt {
    pub host: String,
    pub host_id: HostId,
    pub via: String,
    pub on: bool,
    pub every_us: u64,
    pub next_at_us: u64,
    /// Events that could not reach any gateway (host crashed upstream,
    /// partition): buffered locally, NetLogger-style, and flushed when a
    /// gateway becomes reachable again.
    pub pending: VecDeque<Event>,
    /// Self-healing routing, when `backoff=` was declared: after a failed
    /// resolution the breaker opens and the pump buffers without probing
    /// the directory again until the (jittered, exponential, sim-clock)
    /// retry time — the fail-fast discipline of the network clients.
    pub breaker: Option<CircuitBreaker>,
    /// Pumps run so far (drives the `summaries=` cadence).
    pub pumps: u64,
    /// Emit a `*_AVG_*` summary every n-th pump.
    pub summary_every: Option<u64>,
}

pub(crate) struct FlowRt {
    pub decl: spec::FlowDecl,
    pub id: FlowId,
    pub src: HostId,
    pub dst: HostId,
    pub path: Vec<LinkId>,
    /// Bytes delivered by earlier incarnations (before crash suspensions).
    pub delivered_closed: u64,
    pub suspended: bool,
}

impl FlowRt {
    pub(crate) fn cumulative_delivered(&self, net: &Network) -> u64 {
        self.delivered_closed
            + if self.suspended {
                0
            } else {
                net.flow(self.id).total_delivered
            }
    }
}

/// How many locally buffered sensor events a cut-off host keeps.
const SENSOR_BUFFER_CAP: usize = 65_536;

/// A compiled, runnable scenario: the simulated network plus a real
/// monitoring deployment driven tick-by-tick on the simulated clock.
pub struct ScenarioEngine {
    spec: ScenarioSpec,
    pub(crate) net: Network,
    pub(crate) clock_cell: Arc<AtomicU64>,
    pub(crate) directory: Arc<DirectoryServer>,
    pub(crate) registry: GatewayRegistry,
    tracer: Arc<PipelineTracer>,
    self_sub: Subscription,
    pub(crate) gateways: Vec<GatewayRt>,
    pub(crate) subscribers: Vec<SubscriberRt>,
    pub(crate) readers: Vec<ReaderRt>,
    pub(crate) archivers: Vec<ArchiverRt>,
    pub(crate) sensors: Vec<SensorRt>,
    pub(crate) flows: Vec<FlowRt>,
    /// Current partition groups (None = fully connected).
    pub(crate) partition: Option<Vec<Vec<String>>>,
    /// Host names currently crashed.
    pub(crate) crashed: Vec<String>,
    /// Original bandwidth of degraded links.
    pub(crate) saved_bw: Vec<(String, u64)>,
    injector: FaultInjector,
    pub(crate) published: u64,
    /// Summary (`*_AVG_*`) events emitted by `summaries=` sensor pumps.
    pub(crate) summaries_published: u64,
    /// (simulated µs, host) per sensor-breaker revival (a probe that
    /// succeeded after the breaker had opened).
    pub(crate) revival_log: Vec<(u64, String)>,
    pub(crate) self_events: Vec<SharedEvent>,
    pub(crate) fault_log: Vec<(u64, String)>,
    seconds: Vec<SecondSample>,
    last_sample: SampleCursor,
}

#[derive(Default)]
struct SampleCursor {
    data_bytes: u64,
    published: u64,
    delivered: u64,
    dropped: u64,
    next_at_us: u64,
}

impl ScenarioEngine {
    /// Parse and compile a scenario from its textual form.
    pub fn from_text(text: &str) -> Result<ScenarioEngine, EngineError> {
        Self::new(ScenarioSpec::parse(text)?)
    }

    /// Compile a parsed spec: build the network, open the flows, wire the
    /// monitoring deployment, register gateways in the directory.
    pub fn new(spec: ScenarioSpec) -> Result<ScenarioEngine, EngineError> {
        let CompiledTopology {
            mut net,
            hosts,
            links,
        } = compile_topology(&spec)?;
        let host_id = |name: &str| -> Result<HostId, EngineError> {
            hosts
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, id)| *id)
                .ok_or_else(|| EngineError::Compile(format!("unknown host `{name}`")))
        };
        let resolve_path = |via: &[String]| -> Result<Vec<LinkId>, EngineError> {
            via.iter()
                .map(|name| {
                    links
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, id)| *id)
                        .ok_or_else(|| EngineError::Compile(format!("unknown link `{name}`")))
                })
                .collect()
        };

        let mut flows = Vec::new();
        for f in &spec.flows {
            let src = host_id(&f.src)?;
            let dst = host_id(&f.dst)?;
            let path = resolve_path(&f.via)?;
            let id = net.open_flow(&f.name, src, dst, f.port, path.clone(), f.window);
            match f.bytes {
                Some(b) => net.flow_mut(id).enqueue(b),
                None => net.flow_mut(id).set_unlimited(),
            }
            flows.push(FlowRt {
                decl: f.clone(),
                id,
                src,
                dst,
                path,
                delivered_closed: 0,
                suspended: false,
            });
        }

        // The monitoring plane, stamped from the shared simulated clock.
        let clock_cell = Arc::new(AtomicU64::new(net.clock().timestamp().as_micros()));
        let sink = Arc::new(EventGateway::new(GatewayConfig::open("_jamm")));
        let self_sub = sink
            .subscribe()
            .stream()
            .as_consumer("_monitor")
            .capacity(1 << 16)
            .open()
            .expect("self-gateway subscription");
        let tracer = PipelineTracer::with_clock(
            Arc::clone(&sink),
            "sim-monitor",
            spec.sample_every,
            TraceClock::shared(Arc::clone(&clock_cell)),
        );

        let directory = Arc::new(DirectoryServer::new(
            "ldap://sim-directory",
            Dn::parse("o=grid").expect("static dn"),
        ));
        let mut registry = GatewayRegistry::new();
        let mut gateways = Vec::new();
        for g in &spec.gateways {
            host_id(&g.host)?;
            let mut config = GatewayConfig::open(&g.name).with_tracer(Arc::clone(&tracer));
            if let Some(q) = &g.qos {
                config = config.with_qos(qos_config(q));
            }
            let gw = Arc::new(EventGateway::new(config));
            registry.register(&g.name, Arc::clone(&gw));
            let dn = Dn::parse(&format!("gw={},o=grid", g.name))
                .map_err(|_| EngineError::Compile(format!("bad gateway name `{}`", g.name)))?;
            directory
                .add(
                    Entry::new(dn)
                        .with("objectclass", "gateway")
                        .with("gateway", &g.name)
                        .with("host", &g.host)
                        .with("status", "up"),
                )
                .map_err(|e| EngineError::Compile(format!("directory add: {e:?}")))?;
            gateways.push(GatewayRt {
                name: g.name.clone(),
                host: g.host.clone(),
                qos: g.qos.is_some(),
            });
        }
        let gateway_exists = |name: &str| gateways.iter().any(|g| g.name == name);

        let mut subscribers = Vec::new();
        for s in &spec.subscribers {
            host_id(&s.host)?;
            let cpu_of = match &s.cpu_of {
                Some(h) => Some(host_id(h)?),
                None => None,
            };
            let mut collectors = Vec::new();
            for gw_name in &s.via {
                if !gateway_exists(gw_name) {
                    return Err(EngineError::Compile(format!(
                        "subscriber `{}` references unknown gateway `{gw_name}`",
                        s.name
                    )));
                }
                let mut c = EventCollector::new(&s.name);
                c.set_tracer(Arc::clone(&tracer));
                let gw = registry.resolve(gw_name).expect("gateway just registered");
                let sub = gw
                    .subscribe()
                    .stream()
                    .as_consumer(&s.name)
                    .capacity(s.capacity)
                    .open()
                    .map_err(|e| EngineError::Compile(format!("subscriber `{}`: {e}", s.name)))?;
                c.adopt_subscription(gw_name, sub);
                collectors.push((gw_name.clone(), c));
            }
            let marks = vec![0; collectors.len()];
            subscribers.push(SubscriberRt {
                name: s.name.clone(),
                host: s.host.clone(),
                collectors,
                marks,
                drain_us: s.drain_us.max(spec.tick_us),
                stalled_us: None,
                next_drain_us: s.drain_us.max(spec.tick_us),
                cpu_of,
                starved: false,
                last_coupled_retrans: 0,
                latencies_us: Vec::new(),
            });
        }

        let mut readers = Vec::new();
        for r in &spec.readers {
            host_id(&r.host)?;
            if !gateway_exists(&r.via) {
                return Err(EngineError::Compile(format!(
                    "readers `{}` reference unknown gateway `{}`",
                    r.name, r.via
                )));
            }
            // Register the pool's continuous query as a materialized view
            // on the gateway: from here on the publish path maintains it
            // and the readers only ever take snapshots.
            let gw = registry.resolve(&r.via).expect("gateway just registered");
            gw.register_view(&r.name, &r.query).map_err(|e| {
                EngineError::Compile(format!("readers `{}`: bad query: {e}", r.name))
            })?;
            readers.push(ReaderRt {
                name: r.name.clone(),
                host: r.host.clone(),
                via: r.via.clone(),
                count: r.count.max(1),
                every_us: r.every_us.max(spec.tick_us),
                next_at_us: r.every_us.max(spec.tick_us),
                reads: 0,
                served_from_views: 0,
                archive_scans: 0,
                last_snapshot_len: 0,
            });
        }

        let mut archivers = Vec::new();
        for a in &spec.archivers {
            host_id(&a.host)?;
            let catalog_dn = Dn::parse(&format!("archive={},o=grid", a.name))
                .map_err(|_| EngineError::Compile(format!("bad archiver name `{}`", a.name)))?;
            let mut agent = ArchiverAgent::new(
                &a.name,
                Arc::new(jamm_archive::EventArchive::new()),
                catalog_dn,
            );
            agent.set_tracer(Arc::clone(&tracer));
            for gw_name in &a.via {
                agent
                    .subscribe(&registry, gw_name, vec![])
                    .map_err(|e| EngineError::Compile(format!("archiver subscribe: {e:?}")))?;
            }
            archivers.push(ArchiverRt {
                name: a.name.clone(),
                host: a.host.clone(),
                via: a.via.clone(),
                agent,
            });
        }

        let mut sensors = Vec::new();
        for s in &spec.sensors {
            if !gateway_exists(&s.via) {
                return Err(EngineError::Compile(format!(
                    "sensors on `{}` reference unknown gateway `{}`",
                    s.host, s.via
                )));
            }
            // Deterministic jitter stream: the spec seed folded with the
            // host name, so runs of the same spec replay byte-identically.
            let breaker = s.backoff_us.map(|base| {
                let seed = s
                    .host
                    .bytes()
                    .fold(spec.seed ^ 0xcbf2_9ce4_8422_2325, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                    });
                CircuitBreaker::new(1, Backoff::new(base.max(1), base.max(1) * 8, seed))
            });
            sensors.push(SensorRt {
                host: s.host.clone(),
                host_id: host_id(&s.host)?,
                via: s.via.clone(),
                on: true,
                every_us: s.every_us.max(spec.tick_us),
                next_at_us: s.every_us.max(spec.tick_us),
                pending: VecDeque::new(),
                breaker,
                pumps: 0,
                summary_every: s.summary_every.map(|n| n.max(1)),
            });
        }

        let injector = FaultInjector::new(&spec.timeline);
        let first_second = 1_000_000;
        Ok(ScenarioEngine {
            spec,
            net,
            clock_cell,
            directory,
            registry,
            tracer,
            self_sub,
            gateways,
            subscribers,
            readers,
            archivers,
            sensors,
            flows,
            partition: None,
            crashed: Vec::new(),
            saved_bw: Vec::new(),
            injector,
            published: 0,
            summaries_published: 0,
            revival_log: Vec::new(),
            self_events: Vec::new(),
            fault_log: Vec::new(),
            seconds: Vec::new(),
            last_sample: SampleCursor {
                next_at_us: first_second,
                ..SampleCursor::default()
            },
        })
    }

    /// The spec this engine was compiled from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Is monitoring traffic between two hosts currently cut?
    ///
    /// Hosts in different partition groups cannot exchange events; hosts
    /// absent from every group are unaffected.  A crashed host is
    /// unreachable from everywhere.
    pub(crate) fn reachable(&self, a: &str, b: &str) -> bool {
        if self.crashed.iter().any(|h| h == a || h == b) {
            return false;
        }
        let Some(groups) = &self.partition else {
            return true;
        };
        let find = |h: &str| groups.iter().position(|g| g.iter().any(|n| n == h));
        match (find(a), find(b)) {
            (Some(ga), Some(gb)) => ga == gb,
            _ => true,
        }
    }

    pub(crate) fn gateway_up(&self, name: &str) -> bool {
        self.gateways
            .iter()
            .find(|g| g.name == name)
            .is_some_and(|g| !self.crashed.contains(&g.host))
    }

    fn gateway_host(&self, name: &str) -> Option<&str> {
        self.gateways
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.host.as_str())
    }

    /// Pick the gateway a sensor on `host` publishes through: its
    /// preferred one if up and reachable, otherwise the first `status=up`
    /// gateway in the directory that is reachable — failover exactly as
    /// the paper's sensors re-resolve via the directory service.
    fn route_gateway(&self, host: &str, preferred: &str) -> Option<String> {
        let ok = |gw_name: &str| {
            self.gateway_up(gw_name)
                && self
                    .gateway_host(gw_name)
                    .is_some_and(|gh| self.reachable(host, gh))
        };
        if ok(preferred) {
            return Some(preferred.to_string());
        }
        let filter = Filter::parse("(&(objectclass=gateway)(status=up))").expect("static filter");
        let base = Dn::parse("o=grid").expect("static dn");
        let result = self.directory.search(&base, Scope::Subtree, &filter).ok()?;
        result
            .entries
            .iter()
            .filter_map(|e| e.get("gateway"))
            .find(|name| ok(name))
            .map(str::to_string)
    }

    fn pump_sensors(&mut self) {
        let now = self.net.clock().now_us();
        let ts = self.net.clock().timestamp();
        for i in 0..self.sensors.len() {
            if now < self.sensors[i].next_at_us {
                continue;
            }
            let every = self.sensors[i].every_us;
            self.sensors[i].next_at_us = now + every;
            let host_crashed = {
                let h = &self.sensors[i].host;
                self.crashed.iter().any(|c| c == h)
            };
            if !self.sensors[i].on || host_crashed {
                continue;
            }
            self.sensors[i].pumps += 1;
            // Read the simulated host and build the readings.
            let stats = *self.net.host(self.sensors[i].host_id).stats();
            let host = self.sensors[i].host.clone();
            let mk = |ty: &str, v: f64| {
                Event::builder("netlogd", host.clone())
                    .level(Level::Usage)
                    .event_type(ty)
                    .timestamp(ts)
                    .value(v)
                    .build()
            };
            let mut batch = vec![
                mk(keys::cpu::TOTAL, stats.cpu_user_pct + stats.cpu_sys_pct),
                mk(keys::mem::FREE, stats.mem_free_kb as f64),
                mk(keys::tcp::RETRANSMITS, stats.tcp_retransmits as f64),
            ];
            // Every n-th pump also emits a summary reading — the
            // protected (`_AVG_`) stream overload shedding never cuts.
            if let Some(n) = self.sensors[i].summary_every {
                if self.sensors[i].pumps.is_multiple_of(n) {
                    batch.push(mk(
                        &format!("{}_AVG_1M", keys::cpu::TOTAL),
                        stats.cpu_user_pct + stats.cpu_sys_pct,
                    ));
                    self.summaries_published += 1;
                }
            }
            // With a breaker, a pump whose last resolution failed does
            // not touch the directory again until the retry time — it
            // fails fast and buffers, exactly like an open-circuit
            // network client.
            let allowed = match &mut self.sensors[i].breaker {
                Some(br) => br.allow(now),
                None => true,
            };
            let routed = if allowed {
                self.route_gateway(&self.sensors[i].host, &self.sensors[i].via.clone())
            } else {
                None
            };
            if allowed {
                if let Some(br) = &mut self.sensors[i].breaker {
                    if routed.is_some() {
                        let before = br.stats().revivals;
                        br.record_success();
                        if br.stats().revivals > before {
                            self.revival_log.push((now, self.sensors[i].host.clone()));
                        }
                    } else {
                        br.record_failure(now);
                    }
                }
            }
            match routed {
                Some(gw_name) => {
                    let gw = self
                        .registry
                        .resolve(&gw_name)
                        .expect("routed gateway is registered");
                    // Flush anything buffered while cut off, then publish.
                    while let Some(e) = self.sensors[i].pending.pop_front() {
                        gw.publish(&e);
                        self.published += 1;
                    }
                    for e in batch {
                        gw.publish(&e);
                        self.published += 1;
                    }
                }
                None => {
                    let pending = &mut self.sensors[i].pending;
                    for e in batch {
                        if pending.len() == SENSOR_BUFFER_CAP {
                            pending.pop_front();
                        }
                        pending.push_back(e);
                    }
                }
            }
        }
    }

    fn drain_subscribers(&mut self) {
        let now = self.net.clock().now_us();
        let now_abs = self.net.clock().timestamp().as_micros();
        for i in 0..self.subscribers.len() {
            if now < self.subscribers[i].next_drain_us {
                continue;
            }
            let period = self.subscribers[i].effective_drain_us();
            // A consumer coupled to a busy host is starved of CPU: its
            // drain slot is deferred 32x, so watched events sit in the
            // subscription queue — the stage gap diagnose() sees.  "Busy"
            // is either outright CPU saturation or receive-path churn
            // (retransmit processing) since the last slot.  The deferred
            // slot itself drains even if the host is still busy (slow
            // progress, not none).
            if let Some(h) = self.subscribers[i].cpu_of {
                let stats = self.net.host(h).stats();
                let retrans = stats.tcp_retransmits;
                let busy = self.net.host(h).receiver_saturated()
                    || retrans > self.subscribers[i].last_coupled_retrans;
                self.subscribers[i].last_coupled_retrans = retrans;
                if !self.subscribers[i].starved && busy {
                    self.subscribers[i].next_drain_us = now + period * 32;
                    self.subscribers[i].starved = true;
                    continue;
                }
            }
            self.subscribers[i].starved = false;
            self.subscribers[i].next_drain_us = now + period;
            let host_down = {
                let h = &self.subscribers[i].host;
                self.crashed.iter().any(|c| c == h)
            };
            if host_down {
                continue;
            }
            let sub_host = self.subscribers[i].host.clone();
            for ci in 0..self.subscribers[i].collectors.len() {
                let gw_name = self.subscribers[i].collectors[ci].0.clone();
                let up = self.gateway_up(&gw_name);
                let reach = self
                    .gateway_host(&gw_name)
                    .map(str::to_string)
                    .is_some_and(|gh| self.reachable(&sub_host, &gh));
                if !up || !reach {
                    continue;
                }
                let sub = &mut self.subscribers[i];
                let (_, collector) = &mut sub.collectors[ci];
                collector.poll();
                let log = collector.events();
                for e in &log[sub.marks[ci]..] {
                    let lat = now_abs.saturating_sub(e.timestamp.as_micros());
                    sub.latencies_us.push(lat);
                }
                sub.marks[ci] = log.len();
            }
        }
    }

    /// Dashboard reader pools: each period, every reader in the pool
    /// takes the view's current snapshot.  A successful snapshot is an
    /// `Arc` clone — counted as served-from-view; a failed one (view
    /// missing) is what *would* have forced an archive scan, and the
    /// `served_from_views` expectation pins that counter at zero.
    fn poll_readers(&mut self) {
        let now = self.net.clock().now_us();
        for i in 0..self.readers.len() {
            if now < self.readers[i].next_at_us {
                continue;
            }
            let every = self.readers[i].every_us;
            self.readers[i].next_at_us = now + every;
            let host = self.readers[i].host.clone();
            if self.crashed.contains(&host) {
                continue;
            }
            let gw_name = self.readers[i].via.clone();
            let reach = self.gateway_up(&gw_name)
                && self
                    .gateway_host(&gw_name)
                    .map(str::to_string)
                    .is_some_and(|gh| self.reachable(&host, &gh));
            if !reach {
                continue;
            }
            let gw = self
                .registry
                .resolve(&gw_name)
                .expect("reader gateway is registered");
            // One deterministic snapshot cut per period (bounded
            // staleness), then the whole pool reads it concurrently.
            gw.views().flush();
            let r = &mut self.readers[i];
            for _ in 0..r.count {
                r.reads += 1;
                match gw.view_snapshot(&r.name, &r.name) {
                    Ok(snap) => {
                        r.served_from_views += 1;
                        r.last_snapshot_len = snap.events.len() as u64;
                    }
                    Err(_) => r.archive_scans += 1,
                }
            }
        }
    }

    fn poll_archivers(&mut self) {
        for i in 0..self.archivers.len() {
            let host = self.archivers[i].host.clone();
            if self.crashed.contains(&host) {
                continue;
            }
            let ok = self.archivers[i].via.iter().all(|gw| {
                self.gateway_up(gw)
                    && self
                        .gateway_host(gw)
                        .is_some_and(|gh| self.reachable(&host, gh))
            });
            if ok {
                self.archivers[i].agent.poll();
            }
        }
    }

    fn sample_second(&mut self) {
        let now = self.net.clock().now_us();
        while now >= self.last_sample.next_at_us {
            let sec = self.last_sample.next_at_us / 1_000_000;
            let data_bytes: u64 = self
                .flows
                .iter()
                .map(|f| f.cumulative_delivered(&self.net))
                .sum();
            let delivered: u64 = self.subscribers.iter().map(|s| s.delivered()).sum();
            let dropped: u64 = self.subscribers.iter().map(|s| s.dropped()).sum();
            self.seconds.push(SecondSample {
                sec,
                data_mbps: (data_bytes - self.last_sample.data_bytes) as f64 * 8.0 / 1e6,
                published: self.published - self.last_sample.published,
                delivered: delivered - self.last_sample.delivered,
                dropped: dropped - self.last_sample.dropped,
            });
            self.last_sample = SampleCursor {
                data_bytes,
                published: self.published,
                delivered,
                dropped,
                next_at_us: self.last_sample.next_at_us + 1_000_000,
            };
        }
    }

    /// Advance one simulated tick: apply due faults, pump sensors, step
    /// the network, drain consumers and the self-lifeline stream.
    pub fn step(&mut self) {
        self.clock_cell
            .store(self.net.clock().timestamp().as_micros(), Ordering::Relaxed);
        let due = self.injector.due(self.net.clock().now_us());
        for entry in due {
            self.apply(&entry);
        }
        self.pump_sensors();
        self.net.step();
        self.clock_cell
            .store(self.net.clock().timestamp().as_micros(), Ordering::Relaxed);
        self.drain_subscribers();
        self.poll_readers();
        self.poll_archivers();
        self.self_events.extend(self.self_sub.drain());
        self.sample_second();
    }

    /// Run the scenario to its declared duration and produce the report.
    pub fn run(mut self) -> ScenarioReport {
        while self.net.clock().now_us() < self.spec.duration_us {
            self.step();
        }
        self.finish()
    }

    /// Lifelines sampled by the tracer so far.
    pub fn lifelines_sampled(&self) -> u64 {
        self.tracer.sampled_count()
    }

    fn finish(mut self) -> ScenarioReport {
        // Final drain so nothing in flight is lost to the report.
        self.drain_subscribers();
        let tail = self.self_sub.drain();
        self.self_events.extend(tail);
        let consumers = self
            .subscribers
            .iter()
            .map(|s| ConsumerReport {
                name: s.name.clone(),
                delivered: s.delivered(),
                dropped: s.dropped(),
                delivered_summaries: s
                    .collectors
                    .iter()
                    .map(|(_, c)| {
                        c.events()
                            .iter()
                            .filter(|e| e.event_type.contains("_AVG_"))
                            .count() as u64
                    })
                    .sum(),
                latencies_us: s.latencies_us.clone(),
            })
            .collect();
        let archived = self
            .archivers
            .iter()
            .map(|a| (a.name.clone(), a.agent.archive().len() as u64))
            .collect();
        let readers = self
            .readers
            .iter()
            .map(|r| analysis::ReaderReport {
                name: r.name.clone(),
                count: r.count,
                reads: r.reads,
                served_from_views: r.served_from_views,
                archive_scans: r.archive_scans,
                last_snapshot_len: r.last_snapshot_len,
            })
            .collect();
        let qos = self
            .gateways
            .iter()
            .filter(|g| g.qos)
            .filter_map(|g| {
                let gw = self.registry.resolve(&g.name)?;
                let snap = gw.qos_snapshot()?;
                Some(analysis::GatewayQosReport {
                    gateway: g.name.clone(),
                    level: snap.level.as_str().to_string(),
                    pressure: snap.pressure,
                    shed: snap.shed,
                    budget_drops: snap.budget_drops,
                    retiers: snap.retiers,
                    tiers: gw
                        .tier_report()
                        .into_iter()
                        .map(|r| (r.consumer, r.tier.as_str().to_string()))
                        .collect(),
                })
            })
            .collect();
        ScenarioReport {
            name: self.spec.name.clone(),
            seed: self.spec.seed,
            duration_us: self.spec.duration_us,
            seconds: self.seconds,
            consumers,
            archived,
            readers,
            qos,
            self_dropped: self.self_sub.dropped(),
            summaries_published: self.summaries_published,
            revivals: self.revival_log,
            self_events: self.self_events,
            fault_log: self.fault_log,
            published: self.published,
            timeline: self.spec.timeline.clone(),
        }
    }
}
