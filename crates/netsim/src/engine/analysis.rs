//! The result analyser: a [`ScenarioReport`] captured from a finished
//! run plus a fluent assertion API ([`Expectations`]).
//!
//! The report is pure data derived from the simulated clock and seeded
//! RNG, so its [`ScenarioReport::render_text`] form is byte-identical
//! across runs of the same spec and seed — the determinism test in the
//! scenario suite asserts exactly that.  The
//! [`Expectations::diagnosis_localizes`] assertion feeds the captured
//! self-lifeline events through `jamm_netlogger::analysis::diagnose`,
//! closing the loop the ISSUE asks for: an *injected* bottleneck must be
//! *automatically* localized to the right stage pair and host.

use jamm_netlogger::analysis::{diagnose, Diagnosis};
use jamm_ulm::SharedEvent;

use super::spec::TimelineEntry;

/// One simulated second of aggregate activity.
#[derive(Debug, Clone, PartialEq)]
pub struct SecondSample {
    /// Which simulated second this covers (0-based, sample taken at its end).
    pub sec: u64,
    /// Application data delivered across all TCP flows, megabits/second.
    pub data_mbps: f64,
    /// Monitoring events published to gateways during the second.
    pub published: u64,
    /// Events drained by subscribing consumers during the second.
    pub delivered: u64,
    /// Events dropped from bounded subscription queues during the second.
    pub dropped: u64,
}

/// Per-consumer totals for the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsumerReport {
    /// Consumer principal.
    pub name: String,
    /// Events drained in total.
    pub delivered: u64,
    /// Events lost to queue overflow in total.
    pub dropped: u64,
    /// Delivered events of the protected summary stream (`*_AVG_*`).
    pub delivered_summaries: u64,
    /// Per-event delivery latency (drain time minus event timestamp), µs.
    pub latencies_us: Vec<u64>,
}

/// Whole-run totals of one dashboard reader pool (`readers` directive):
/// N concurrent readers over one continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct ReaderReport {
    /// Pool (and view) name.
    pub name: String,
    /// Concurrent readers in the pool.
    pub count: u64,
    /// View snapshots taken in total (one per reader per period).
    pub reads: u64,
    /// Reads served from the materialized view.
    pub served_from_views: u64,
    /// Reads that fell through to the archive-scan path.
    pub archive_scans: u64,
    /// Events in the last snapshot the pool read.
    pub last_snapshot_len: u64,
}

impl ReaderReport {
    /// Snapshot reads per reader — the per-dashboard throughput that
    /// must stay flat as the pool grows.
    pub fn reads_per_reader(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.reads as f64 / self.count as f64
    }
}

/// End-of-run state of one gateway's QoS plane (present only for
/// gateways declared with `qos=on`).
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayQosReport {
    /// Gateway name.
    pub gateway: String,
    /// Declared shed level at the end of the run.
    pub level: String,
    /// Pressure reading of the last re-tier pass.
    pub pressure: f64,
    /// Events shed per tier under declared overload, indexed
    /// fast/lagging/probation.
    pub shed: [u64; 3],
    /// Events dropped by per-tier queue budgets, same indexing.
    pub budget_drops: [u64; 3],
    /// Re-tier passes run.
    pub retiers: u64,
    /// Final `(consumer, tier)` assignment per subscription.
    pub tiers: Vec<(String, String)>,
}

impl GatewayQosReport {
    /// Shed counter for a tier named `fast`/`lagging`/`probation`.
    pub fn shed_for(&self, tier: &str) -> Option<u64> {
        ["fast", "lagging", "probation"]
            .iter()
            .position(|t| *t == tier)
            .map(|i| self.shed[i])
    }
}

impl ConsumerReport {
    /// The p-th percentile of delivery latency in microseconds (0 when the
    /// consumer saw no events).
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// Everything a finished scenario produced, ready to be asserted on.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name from the spec.
    pub name: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// Simulated duration in microseconds.
    pub duration_us: u64,
    /// Per-second aggregate samples.
    pub seconds: Vec<SecondSample>,
    /// Per-consumer totals.
    pub consumers: Vec<ConsumerReport>,
    /// (archiver name, events stored) pairs.
    pub archived: Vec<(String, u64)>,
    /// Dashboard reader pool totals (`readers` directives).
    pub readers: Vec<ReaderReport>,
    /// QoS plane state per `qos=on` gateway (empty otherwise).
    pub qos: Vec<GatewayQosReport>,
    /// Events dropped from the monitoring plane's own self-lifeline
    /// subscription — must stay 0 even under declared overload.
    pub self_dropped: u64,
    /// Summary (`*_AVG_*`) events emitted by `summaries=` sensor pumps.
    pub summaries_published: u64,
    /// (simulated µs, host) per sensor-breaker revival.
    pub revivals: Vec<(u64, String)>,
    /// Self-lifeline events captured from the monitoring plane's tracer.
    pub self_events: Vec<SharedEvent>,
    /// (simulated µs, description) per applied fault.
    pub fault_log: Vec<(u64, String)>,
    /// Total events published to gateways.
    pub published: u64,
    /// The spec's fault timeline (used to window assertions).
    pub timeline: Vec<TimelineEntry>,
}

impl ScenarioReport {
    /// Run the netlogger bottleneck analysis over the captured
    /// self-lifelines.
    pub fn diagnose(&self) -> Diagnosis {
        diagnose(self.self_events.iter().map(|e| &**e))
    }

    /// Look up a consumer's totals by name.
    pub fn consumer(&self, name: &str) -> Option<&ConsumerReport> {
        self.consumers.iter().find(|c| c.name == name)
    }

    /// Look up a gateway's QoS report by name.
    pub fn qos_for(&self, gateway: &str) -> Option<&GatewayQosReport> {
        self.qos.iter().find(|q| q.gateway == gateway)
    }

    /// Look up a reader pool's totals by name.
    pub fn reader_pool(&self, name: &str) -> Option<&ReaderReport> {
        self.readers.iter().find(|r| r.name == name)
    }

    /// Mean data throughput (Mbit/s) over a closed range of simulated
    /// seconds, clamped to the samples that exist.
    pub fn mean_mbps(&self, from_sec: u64, to_sec: u64) -> f64 {
        let window: Vec<f64> = self
            .seconds
            .iter()
            .filter(|s| s.sec >= from_sec && s.sec <= to_sec)
            .map(|s| s.data_mbps)
            .collect();
        if window.is_empty() {
            return 0.0;
        }
        window.iter().sum::<f64>() / window.len() as f64
    }

    /// Time of the first fault in the timeline (µs), if any.
    pub fn first_fault_us(&self) -> Option<u64> {
        self.timeline.iter().map(|e| e.at_us).min()
    }

    /// Time of the last fault in the timeline (µs), if any.
    pub fn last_fault_us(&self) -> Option<u64> {
        self.timeline.iter().map(|e| e.at_us).max()
    }

    /// Start asserting on this report.
    pub fn expect(&self) -> Expectations<'_> {
        Expectations {
            report: self,
            failures: Vec::new(),
            checks: 0,
        }
    }

    /// A deterministic plain-text rendering of the whole report.  Every
    /// number in it is derived from the simulated clock and the seeded
    /// RNG, so two runs of the same spec + seed must produce identical
    /// bytes — the determinism test compares exactly this string.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scenario {} seed={} duration={}s",
            self.name,
            self.seed,
            self.duration_us / 1_000_000
        );
        let _ = writeln!(out, "published {} events", self.published);
        for c in &self.consumers {
            let _ = writeln!(
                out,
                "consumer {}: delivered={} dropped={} p50={}us p99={}us",
                c.name,
                c.delivered,
                c.dropped,
                c.latency_percentile_us(50.0),
                c.latency_percentile_us(99.0),
            );
        }
        for (name, stored) in &self.archived {
            let _ = writeln!(out, "archiver {name}: stored={stored}");
        }
        for r in &self.readers {
            let _ = writeln!(
                out,
                "readers {}: n={} reads={} served_from_views={} archive_scans={} snapshot_len={}",
                r.name, r.count, r.reads, r.served_from_views, r.archive_scans, r.last_snapshot_len
            );
        }
        for q in &self.qos {
            let _ = writeln!(
                out,
                "qos {}: level={} pressure={:.3} retiers={} \
                 shed=fast:{},lagging:{},probation:{} \
                 budget=fast:{},lagging:{},probation:{}",
                q.gateway,
                q.level,
                q.pressure,
                q.retiers,
                q.shed[0],
                q.shed[1],
                q.shed[2],
                q.budget_drops[0],
                q.budget_drops[1],
                q.budget_drops[2],
            );
            for (consumer, tier) in &q.tiers {
                let _ = writeln!(out, "  tier {consumer}: {tier}");
            }
        }
        if self.summaries_published > 0 {
            let _ = writeln!(out, "summaries published: {}", self.summaries_published);
        }
        if self.self_dropped > 0 {
            let _ = writeln!(out, "self-lifelines dropped: {}", self.self_dropped);
        }
        for (at, host) in &self.revivals {
            let _ = writeln!(out, "sensor {host} revived at {}s", at / 1_000_000);
        }
        let _ = writeln!(out, "faults:");
        for (at, desc) in &self.fault_log {
            let _ = writeln!(out, "  {:>6}s  {desc}", at / 1_000_000);
        }
        let _ = writeln!(
            out,
            "per-second (sec data_mbps published delivered dropped):"
        );
        for s in &self.seconds {
            let _ = writeln!(
                out,
                "  {:>4} {:>10.3} {:>8} {:>8} {:>8}",
                s.sec, s.data_mbps, s.published, s.delivered, s.dropped
            );
        }
        let _ = writeln!(out, "self-lifeline events: {}", self.self_events.len());
        let _ = writeln!(out, "analysis: {}", self.diagnose().render_text());
        out
    }
}

/// A fluent chain of assertions over a [`ScenarioReport`].  Failures
/// accumulate; [`Expectations::verify`] returns them all at once and
/// [`Expectations::assert_ok`] panics with the full list, so a failing
/// scenario shows every broken expectation, not just the first.
pub struct Expectations<'a> {
    report: &'a ScenarioReport,
    failures: Vec<String>,
    checks: usize,
}

impl<'a> Expectations<'a> {
    fn check(mut self, ok: bool, failure: String) -> Self {
        self.checks += 1;
        if !ok {
            self.failures.push(failure);
        }
        self
    }

    /// Mean data throughput over the whole run is at least `mbps`.
    pub fn throughput_at_least(self, mbps: f64) -> Self {
        let got = {
            let last = self.report.seconds.last().map(|s| s.sec).unwrap_or(0);
            self.report.mean_mbps(0, last)
        };
        self.check(
            got >= mbps,
            format!("mean throughput {got:.2} Mbit/s < expected {mbps:.2}"),
        )
    }

    /// Mean data throughput over `[from_sec, to_sec]` is at least `mbps`.
    pub fn throughput_at_least_during(self, from_sec: u64, to_sec: u64, mbps: f64) -> Self {
        let got = self.report.mean_mbps(from_sec, to_sec);
        self.check(
            got >= mbps,
            format!("throughput {got:.2} Mbit/s in [{from_sec}s,{to_sec}s] < expected {mbps:.2}"),
        )
    }

    /// Mean data throughput over `[from_sec, to_sec]` is at most `mbps`
    /// (asserting a collapse really collapsed).
    pub fn throughput_at_most_during(self, from_sec: u64, to_sec: u64, mbps: f64) -> Self {
        let got = self.report.mean_mbps(from_sec, to_sec);
        self.check(
            got <= mbps,
            format!("throughput {got:.2} Mbit/s in [{from_sec}s,{to_sec}s] > expected {mbps:.2}"),
        )
    }

    /// Consumer `name`'s 99th-percentile delivery latency is under `us`.
    pub fn delivery_p99_under(self, name: &str, us: u64) -> Self {
        match self.report.consumer(name) {
            Some(c) => {
                let got = c.latency_percentile_us(99.0);
                self.check(
                    got < us,
                    format!("consumer {name} p99 latency {got}us >= expected {us}us"),
                )
            }
            None => self.check(false, format!("no consumer named {name}")),
        }
    }

    /// Consumer `name` received at least `n` events.
    pub fn events_delivered_at_least(self, name: &str, n: u64) -> Self {
        match self.report.consumer(name) {
            Some(c) => {
                let got = c.delivered;
                self.check(
                    got >= n,
                    format!("consumer {name} delivered {got} events < expected {n}"),
                )
            }
            None => self.check(false, format!("no consumer named {name}")),
        }
    }

    /// Some subscription dropped events somewhere in the run (asserting an
    /// injected overload really overflowed a bounded queue).
    pub fn drops_at_least(self, n: u64) -> Self {
        let got: u64 = self.report.consumers.iter().map(|c| c.dropped).sum();
        self.check(got >= n, format!("total drops {got} < expected {n}"))
    }

    /// Queue-overflow drops only happen inside `[from_sec, to_sec]`; the
    /// rest of the run delivers losslessly.
    pub fn no_drops_outside(self, from_sec: u64, to_sec: u64) -> Self {
        let offenders: Vec<String> = self
            .report
            .seconds
            .iter()
            .filter(|s| (s.sec < from_sec || s.sec > to_sec) && s.dropped > 0)
            .map(|s| format!("{} drops at {}s", s.dropped, s.sec))
            .collect();
        self.check(
            offenders.is_empty(),
            format!(
                "drops outside [{from_sec}s,{to_sec}s]: {}",
                offenders.join(", ")
            ),
        )
    }

    /// Within `secs` simulated seconds of the *last* timeline entry, data
    /// throughput is back to at least half its pre-fault baseline.
    pub fn recovered_within(self, secs: u64) -> Self {
        let Some(first) = self.report.first_fault_us() else {
            return self.check(false, "recovered_within on a faultless scenario".into());
        };
        let last = self.report.last_fault_us().unwrap() / 1_000_000;
        let first = first / 1_000_000;
        let baseline = if first == 0 {
            0.0
        } else {
            self.report.mean_mbps(0, first.saturating_sub(1))
        };
        if baseline == 0.0 {
            return self.check(false, "no pre-fault baseline to recover to".into());
        }
        let recovered_at = self
            .report
            .seconds
            .iter()
            .filter(|s| s.sec > last && s.data_mbps >= baseline * 0.5)
            .map(|s| s.sec)
            .next();
        match recovered_at {
            Some(at) if at <= last + secs => self.check(true, String::new()),
            Some(at) => self.check(
                false,
                format!(
                    "recovered at {at}s, {} s after the last fault (allowed {secs})",
                    at - last
                ),
            ),
            None => self.check(
                false,
                format!("never recovered to 50% of baseline {baseline:.2} Mbit/s"),
            ),
        }
    }

    /// The netlogger bottleneck analysis localizes the injected fault: the
    /// dominant stage gap is `from_stage -> to_stage` and its target (the
    /// host or consumer stamped on the `to` event) is `target`.
    pub fn diagnosis_localizes(self, from_stage: &str, to_stage: &str, target: &str) -> Self {
        let diagnosis = self.report.diagnose();
        match diagnosis.bottleneck() {
            Some(b) => {
                let ok = b.from == from_stage && b.to == to_stage && b.target == target;
                self.check(
                    ok,
                    format!(
                        "diagnosis found {} -> {} at {} (wanted {from_stage} -> {to_stage} at {target})",
                        b.from, b.to, b.target
                    ),
                )
            }
            None => {
                let n = self.report.self_events.len();
                self.check(
                    false,
                    format!(
                        "diagnosis found no bottleneck over {n} self-lifeline events \
                         (wanted {from_stage} -> {to_stage} at {target})"
                    ),
                )
            }
        }
    }

    /// At least `n` archived events ended up in archiver `name`.
    pub fn archived_at_least(self, name: &str, n: u64) -> Self {
        match self.report.archived.iter().find(|(a, _)| a == name) {
            Some((_, got)) => self.check(
                *got >= n,
                format!("archiver {name} stored {got} < expected {n}"),
            ),
            None => self.check(false, format!("no archiver named {name}")),
        }
    }

    /// Gateway `gateway` ended the run with consumer `consumer` assigned
    /// to tier `tier` (`fast`/`lagging`/`probation`).
    pub fn tiered_as(self, gateway: &str, consumer: &str, tier: &str) -> Self {
        match self.report.qos_for(gateway) {
            Some(q) => match q.tiers.iter().find(|(c, _)| c == consumer) {
                Some((_, got)) => self.check(
                    got == tier,
                    format!("{gateway}: consumer {consumer} in tier {got}, expected {tier}"),
                ),
                None => self.check(
                    false,
                    format!("{gateway}: no tier row for consumer {consumer}"),
                ),
            },
            None => self.check(false, format!("no qos plane on gateway {gateway}")),
        }
    }

    /// Every queue drop in the run belongs to consumer `name` — the
    /// quarantine property: a misbehaving subscriber's losses stay its
    /// own.
    pub fn drops_only_for(self, name: &str) -> Self {
        let offenders: Vec<String> = self
            .report
            .consumers
            .iter()
            .filter(|c| c.name != name && c.dropped > 0)
            .map(|c| format!("{} dropped {}", c.name, c.dropped))
            .collect();
        self.check(
            offenders.is_empty(),
            format!("drops outside {name}: {}", offenders.join(", ")),
        )
    }

    /// Gateway `gateway` shed at least `n` deliveries to tier `tier`.
    pub fn shed_at_least(self, gateway: &str, tier: &str, n: u64) -> Self {
        match self.report.qos_for(gateway).and_then(|q| q.shed_for(tier)) {
            Some(got) => self.check(
                got >= n,
                format!("{gateway} shed {got} {tier}-tier events < expected {n}"),
            ),
            None => self.check(false, format!("no qos shed counter {gateway}/{tier}")),
        }
    }

    /// Gateway `gateway` shed nothing to tier `tier` — the degradation
    /// order: higher tiers survive while lower ones are cut.
    pub fn shed_none(self, gateway: &str, tier: &str) -> Self {
        match self.report.qos_for(gateway).and_then(|q| q.shed_for(tier)) {
            Some(got) => self.check(
                got == 0,
                format!("{gateway} shed {got} {tier}-tier events, expected none"),
            ),
            None => self.check(false, format!("no qos shed counter {gateway}/{tier}")),
        }
    }

    /// The monitoring plane's own self-lifeline stream lost nothing —
    /// under overload the plane must stay diagnosable.
    pub fn self_lifelines_lossless(self) -> Self {
        let got = self.report.self_dropped;
        self.check(got == 0, format!("self-lifeline stream dropped {got}"))
    }

    /// Consumer `name` received at least `n` protected summary
    /// (`*_AVG_*`) events.
    pub fn summaries_delivered_at_least(self, name: &str, n: u64) -> Self {
        match self.report.consumer(name) {
            Some(c) => {
                let got = c.delivered_summaries;
                self.check(
                    got >= n,
                    format!("consumer {name} got {got} summaries < expected {n}"),
                )
            }
            None => self.check(false, format!("no consumer named {name}")),
        }
    }

    /// Reader pool `name` was served entirely from its materialized view:
    /// it actually read something, every read was a snapshot, it saw
    /// events, and the archive-scan fallback counter stayed at zero.
    pub fn served_from_views(self, name: &str) -> Self {
        match self.report.reader_pool(name) {
            Some(r) => {
                let ok = r.reads > 0
                    && r.served_from_views == r.reads
                    && r.archive_scans == 0
                    && r.last_snapshot_len > 0;
                self.check(
                    ok,
                    format!(
                        "reader pool {name}: reads={} served_from_views={} \
                         archive_scans={} snapshot_len={} (wanted all reads from \
                         a non-empty view, zero scans)",
                        r.reads, r.served_from_views, r.archive_scans, r.last_snapshot_len
                    ),
                )
            }
            None => self.check(false, format!("no reader pool named {name}")),
        }
    }

    /// Per-reader snapshot throughput stays flat as the pool grows: pool
    /// `big` (more readers) achieves at least 90% of pool `small`'s
    /// reads-per-reader.  With per-reader rescans this would collapse
    /// with N; with snapshot reads it cannot.
    pub fn reader_rate_flat(self, small: &str, big: &str) -> Self {
        match (self.report.reader_pool(small), self.report.reader_pool(big)) {
            (Some(s), Some(b)) => {
                let (rs, rb) = (s.reads_per_reader(), b.reads_per_reader());
                let ok = rs > 0.0 && rb >= rs * 0.9;
                self.check(
                    ok,
                    format!(
                        "reader rate not flat: {small} {rs:.1} reads/reader vs \
                         {big} {rb:.1} (wanted >= 90%)"
                    ),
                )
            }
            (s, b) => {
                let missing = [(small, s.is_none()), (big, b.is_none())]
                    .iter()
                    .filter(|(_, m)| *m)
                    .map(|(n, _)| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                self.check(false, format!("no reader pool named {missing}"))
            }
        }
    }

    /// At least `n` sensor breakers revived (a probe succeeded after the
    /// breaker had opened).
    pub fn revived_at_least(self, n: usize) -> Self {
        let got = self.report.revivals.len();
        self.check(got >= n, format!("{got} breaker revivals < expected {n}"))
    }

    /// Every breaker revival happened within `secs` simulated seconds of
    /// the last timeline entry — the reconnect landed inside the backoff
    /// envelope (and there was at least one revival to speak of).
    pub fn revived_within(self, secs: u64) -> Self {
        let Some(last) = self.report.last_fault_us() else {
            return self.check(false, "revived_within on a faultless scenario".into());
        };
        if self.report.revivals.is_empty() {
            return self.check(false, "no breaker revivals at all".into());
        }
        let deadline = last + secs * 1_000_000;
        let late: Vec<String> = self
            .report
            .revivals
            .iter()
            .filter(|(at, _)| *at > deadline)
            .map(|(at, host)| format!("{host} at {}s", at / 1_000_000))
            .collect();
        self.check(
            late.is_empty(),
            format!(
                "revivals after the {}s backoff envelope: {}",
                secs,
                late.join(", ")
            ),
        )
    }

    /// How many assertions have been chained so far.
    pub fn checks(&self) -> usize {
        self.checks
    }

    /// All failures at once, or `Ok(checks_run)`.
    pub fn verify(self) -> Result<usize, Vec<String>> {
        if self.failures.is_empty() {
            Ok(self.checks)
        } else {
            Err(self.failures)
        }
    }

    /// Panic with every failed expectation (and the rendered report for
    /// context) if any assertion failed.
    pub fn assert_ok(self) {
        let rendered = self.report.render_text();
        if let Err(failures) = self.verify() {
            panic!(
                "scenario expectations failed:\n  - {}\n\nreport:\n{rendered}",
                failures.join("\n  - ")
            );
        }
    }
}
