//! The declarative scenario format.
//!
//! A scenario is a small line-oriented text file: a topology (hosts,
//! links, routers, TCP flows), a monitoring deployment (gateways,
//! subscribers, an archiver, per-host sensors), and a **fault timeline**
//! of `at <time> ...` entries applied deterministically at simulated
//! ticks.  The format is std-only — no external parser — in the same
//! spirit as `jamm_core::query::Predicate`: parse errors carry the byte
//! position and a reason, and every spec re-renders canonically through
//! [`std::fmt::Display`] such that parse → render → parse round-trips.
//!
//! ```text
//! scenario slow-consumer
//! seed 7
//! duration 30s
//!
//! host mems.cairn.net cpus=1 pkt-cost=50 process=mplay
//! link viz-gige bw=1gbit delay=150us
//! gateway gw-isi on mems.cairn.net
//! subscriber viz on mems.cairn.net via=gw-isi drain=2ms
//! sensors mems.cairn.net every=100ms via=gw-isi
//!
//! at 10s subscriber viz stall 80ms
//! at 20s subscriber viz resume
//! ```

use std::fmt;

/// A parse failure: where in the input, and why.
///
/// Mirrors `jamm_core::query::ParseError` — the byte offset points at
/// the token that failed, so an editor can jump straight to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Byte offset in the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario parse error at byte {}: {}",
            self.pos, self.reason
        )
    }
}

impl std::error::Error for SpecError {}

/// A host declaration (`host <name> [key=value ...]`).
///
/// Unset optional knobs fall back to [`crate::host::HostSpec`] defaults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HostDecl {
    /// Host name (also its sensor identity).
    pub name: String,
    /// CPU count.
    pub cpus: Option<u32>,
    /// Physical memory in KB (`mem=` accepts byte sizes, stored as KB).
    pub memory_kb: Option<u64>,
    /// Per-packet receive cost, microseconds (`pkt-cost=`).
    pub pkt_cost_us: Option<f64>,
    /// Extra per-packet cost fraction per additional active socket.
    pub socket_overhead: Option<f64>,
    /// Kernel receive buffer, bytes (`rcv-buffer=`).
    pub rcv_buffer_bytes: Option<u64>,
    /// Driver loss probability per extra concurrent socket.
    pub multi_socket_loss: Option<f64>,
    /// Processes registered on the host (`process=` repeats).
    pub processes: Vec<String>,
}

/// A link declaration (`link <name> bw=<rate> delay=<dur> [queue=<size>]
/// [error-rate=<f>]`).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDecl {
    /// Link name.
    pub name: String,
    /// Capacity, bits per second.
    pub bandwidth_bps: u64,
    /// One-way delay, microseconds.
    pub delay_us: u64,
    /// Queue bound in bytes (default: the simulator's BDP rule).
    pub queue_bytes: Option<u64>,
    /// Random line-error rate.
    pub error_rate: Option<f64>,
}

/// A router declaration (`router <name> links=<l1>,<l2>,...`).
#[derive(Debug, Clone, PartialEq)]
pub struct RouterDecl {
    /// Router name.
    pub name: String,
    /// Links whose SNMP counters this router exposes.
    pub links: Vec<String>,
}

/// A TCP flow declaration (`flow <name> <src> -> <dst> port=<p>
/// window=<size> via=<l1>,... [bytes=<size>]`).  Without `bytes=` the
/// flow is an unlimited bulk stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDecl {
    /// Flow name.
    pub name: String,
    /// Source host name.
    pub src: String,
    /// Destination host name.
    pub dst: String,
    /// Destination port (what the port monitor watches).
    pub port: u16,
    /// Receiver window, bytes.
    pub window: u64,
    /// Link names along the path.
    pub via: Vec<String>,
    /// Total bytes to transfer, or `None` for an unlimited stream.
    pub bytes: Option<u64>,
}

/// An event gateway (`gateway <name> on <host> [qos=on ...]`).
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayDecl {
    /// Gateway name (what sensors and consumers reference).
    pub name: String,
    /// Host the gateway runs on (crashing it takes the gateway down).
    pub host: String,
    /// Delivery-QoS plane configuration (`qos=on` plus optional
    /// threshold overrides); `None` runs the gateway without tiers.
    pub qos: Option<QosDecl>,
}

/// The QoS attributes of a gateway line.  Every field is optional and
/// falls back to the `jamm_gateway::QosConfig` default; the mere
/// presence of `qos=on` (or any qos attribute) enables the plane.
///
/// ```text
/// gateway gw on mon qos=on retier=64 lag-enter=0.25 lag-exit=0.1
///     prob-enter=0.6 prob-exit=0.35 shed-enter=0.75 shed-exit=0.4
///     budget-lagging=0.5 budget-probation=0.25
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QosDecl {
    /// Publishes between re-tier passes (`retier=`).
    pub retier: Option<u64>,
    /// Score at which a fast subscription becomes lagging (`lag-enter=`).
    pub lag_enter: Option<f64>,
    /// Score below which a lagging subscription returns to fast
    /// (`lag-exit=`).
    pub lag_exit: Option<f64>,
    /// Score at which a lagging subscription enters probation
    /// (`prob-enter=`).
    pub probation_enter: Option<f64>,
    /// Score below which a probation subscription returns to lagging
    /// (`prob-exit=`).
    pub probation_exit: Option<f64>,
    /// Pressure at which the gateway declares overload (`shed-enter=`).
    pub shed_enter: Option<f64>,
    /// Pressure below which the shed level steps back down
    /// (`shed-exit=`).
    pub shed_exit: Option<f64>,
    /// Queue-budget fraction of lagging subscriptions
    /// (`budget-lagging=`).
    pub budget_lagging: Option<f64>,
    /// Queue-budget fraction of probation subscriptions
    /// (`budget-probation=`).
    pub budget_probation: Option<f64>,
}

/// A subscribing consumer (`subscriber <name> on <host> via=<gw>,...
/// [drain=<dur>] [capacity=<n>] [cpu-of=<host>]`).
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriberDecl {
    /// Consumer principal (the `TARGET` of its lifeline trace points).
    pub name: String,
    /// Host the consumer runs on.
    pub host: String,
    /// Gateways it subscribes to.
    pub via: Vec<String>,
    /// Drain period, microseconds (default 2 ms).
    pub drain_us: u64,
    /// Per-gateway subscription queue bound, events (default 4096).
    pub capacity: usize,
    /// Couple drain scheduling to this host's receive-path CPU: while the
    /// named host is saturated the consumer is starved and its drain slot
    /// is deferred — how the MATISSE frame player behaves on the
    /// overloaded receiving node.
    pub cpu_of: Option<String>,
}

/// A pool of dashboard readers over one continuous query
/// (`readers <name> on <host> n=<count> via=<gw> query=<predicate>
/// [every=<dur>]`).
///
/// At compile time the engine registers `query` as a materialized view
/// on the gateway; every `every` period each of the `n` readers grabs
/// the view's current snapshot — an `Arc` clone, never a rescan.  The
/// per-pool counters feed the `served_from_views` and
/// `reader_rate_flat` expectations: reader throughput must stay flat as
/// `n` grows while archive scan counters stay at zero.
#[derive(Debug, Clone, PartialEq)]
pub struct ReaderDecl {
    /// Pool name (also the registered view's name).
    pub name: String,
    /// Host the readers run on.
    pub host: String,
    /// Number of concurrent readers in the pool.
    pub count: u64,
    /// Gateway whose view they read.
    pub via: String,
    /// The continuous query's predicate text (no whitespace — the query
    /// grammar is fully parenthesized).
    pub query: String,
    /// Read period per reader, microseconds (default 100 ms).
    pub every_us: u64,
}

/// An archiver agent (`archiver <name> on <host> via=<gw>,...`).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiverDecl {
    /// Archiver consumer principal.
    pub name: String,
    /// Host the archiver runs on.
    pub host: String,
    /// Gateways it subscribes to.
    pub via: Vec<String>,
}

/// Per-host sensor pump (`sensors <host> every=<dur> via=<gw>
/// [backoff=<dur>] [summaries=<n>]`).
///
/// The engine publishes CPU / memory / TCP readings for the host at the
/// given period, through the named gateway (failing over via the
/// directory when it is down or partitioned away).  With `backoff=` the
/// pump carries a circuit breaker: after a failed routing attempt it
/// stops probing for a jittered exponential delay (base `backoff`,
/// capped at 8x), buffering locally, instead of re-resolving the
/// directory on every period — the self-healing-client discipline on
/// the simulated clock.  With `summaries=<n>` every n-th pump also
/// emits a `*_AVG_*` summary event, the protected stream overload
/// shedding must never cut.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorDecl {
    /// Monitored host.
    pub host: String,
    /// Emission period, microseconds.
    pub every_us: u64,
    /// Preferred gateway.
    pub via: String,
    /// Circuit-breaker base delay after a failed gateway resolution,
    /// microseconds (`None` = probe every period, the legacy behaviour).
    pub backoff_us: Option<u64>,
    /// Emit a summary event every n-th pump (`None` = raw readings only).
    pub summary_every: Option<u64>,
}

/// One fault-timeline entry: apply `fault` once the simulated clock
/// reaches `at_us`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Simulated microseconds from scenario start.
    pub at_us: u64,
    /// What happens.
    pub fault: Fault,
}

/// The fault vocabulary of the timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// `link <name> degrade <rate>` — clamp capacity to the given rate.
    LinkDegrade {
        /// Link name.
        link: String,
        /// New capacity, bits per second.
        bandwidth_bps: u64,
    },
    /// `link <name> restore` — undo a degrade.
    LinkRestore {
        /// Link name.
        link: String,
    },
    /// `host <name> crash` — kill its processes, sensors, gateways,
    /// consumers and flows.
    HostCrash {
        /// Host name.
        host: String,
    },
    /// `host <name> recover` — bring everything on the host back.
    HostRecover {
        /// Host name.
        host: String,
    },
    /// `partition {a,b} {c}` — monitoring traffic between hosts in
    /// different groups is cut; unlisted hosts stay reachable from all.
    Partition {
        /// The partition groups.
        groups: Vec<Vec<String>>,
    },
    /// `heal` — remove the partition.
    Heal,
    /// `subscriber <name> stall <dur>` — the consumer drains only once
    /// per `<dur>` (a slow/hung tier).
    SubscriberStall {
        /// Consumer name.
        name: String,
        /// Stalled drain period, microseconds.
        period_us: u64,
    },
    /// `subscriber <name> resume` — back to the declared drain period.
    SubscriberResume {
        /// Consumer name.
        name: String,
    },
    /// `sensor <host> stop` — the host's sensor pump goes quiet.
    SensorStop {
        /// Host name.
        host: String,
    },
    /// `sensor <host> start` — the pump resumes.
    SensorStart {
        /// Host name.
        host: String,
    },
    /// `sensor <host> period <dur>` — change the emission period
    /// (`*` applies to every sensor: diurnal load modulation).
    SensorPeriod {
        /// Host name, or `*` for all.
        host: String,
        /// New period, microseconds.
        every_us: u64,
    },
    /// `replay <archiver> via <gateway>` — replay everything the named
    /// archiver has stored back through a gateway.
    Replay {
        /// Archiver name.
        archiver: String,
        /// Gateway to publish the replayed events through.
        via: String,
    },
}

/// A parsed scenario: topology + monitoring deployment + fault timeline.
///
/// Build one with [`ScenarioSpec::parse`]; run it with
/// [`crate::engine::ScenarioEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name.
    pub name: String,
    /// RNG seed for the simulated network.
    pub seed: u64,
    /// Simulator tick, microseconds (default 1 ms).
    pub tick_us: u64,
    /// Run length, simulated microseconds (default 30 s).
    pub duration_us: u64,
    /// Self-lifeline sampling rate (1-in-N publishes; default 16).
    pub sample_every: u64,
    /// Hosts, in declaration order (which fixes simulator IDs).
    pub hosts: Vec<HostDecl>,
    /// Links, in declaration order.
    pub links: Vec<LinkDecl>,
    /// Routers.
    pub routers: Vec<RouterDecl>,
    /// TCP flows.
    pub flows: Vec<FlowDecl>,
    /// Event gateways.
    pub gateways: Vec<GatewayDecl>,
    /// Subscribing consumers.
    pub subscribers: Vec<SubscriberDecl>,
    /// Dashboard reader pools over continuous queries.
    pub readers: Vec<ReaderDecl>,
    /// Archiver agents.
    pub archivers: Vec<ArchiverDecl>,
    /// Sensor pumps.
    pub sensors: Vec<SensorDecl>,
    /// The fault timeline, kept in declaration order (the injector sorts
    /// stably by time).
    pub timeline: Vec<TimelineEntry>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "unnamed".to_string(),
            seed: 0,
            tick_us: 1_000,
            duration_us: 30_000_000,
            sample_every: 16,
            hosts: Vec::new(),
            links: Vec::new(),
            routers: Vec::new(),
            flows: Vec::new(),
            gateways: Vec::new(),
            subscribers: Vec::new(),
            readers: Vec::new(),
            archivers: Vec::new(),
            sensors: Vec::new(),
            timeline: Vec::new(),
        }
    }
}

impl ScenarioSpec {
    /// Parse a scenario from its textual form.
    pub fn parse(input: &str) -> Result<ScenarioSpec, SpecError> {
        let mut spec = ScenarioSpec::default();
        let mut offset = 0usize;
        for line in input.split_inclusive('\n') {
            let base = offset;
            offset += line.len();
            let line = line.trim_end_matches(['\n', '\r']);
            let mut p = LineParser::new(line, base);
            let Some((directive, dpos)) = p.next_token() else {
                continue; // blank line
            };
            if directive.starts_with('#') {
                continue; // comment
            }
            match directive {
                "scenario" => spec.name = p.required("scenario name")?.0.to_string(),
                "seed" => spec.seed = p.u64_token("seed")?,
                "tick" => spec.tick_us = p.duration_token("tick")?,
                "duration" => spec.duration_us = p.duration_token("duration")?,
                "sample" => spec.sample_every = p.u64_token("sample rate")?,
                "host" => spec.hosts.push(parse_host(&mut p)?),
                "link" => spec.links.push(parse_link(&mut p)?),
                "router" => spec.routers.push(parse_router(&mut p)?),
                "flow" => spec.flows.push(parse_flow(&mut p)?),
                "gateway" => spec.gateways.push(parse_gateway(&mut p)?),
                "subscriber" => spec.subscribers.push(parse_subscriber(&mut p)?),
                "readers" => spec.readers.push(parse_readers(&mut p)?),
                "archiver" => spec.archivers.push(parse_archiver(&mut p)?),
                "sensors" => spec.sensors.push(parse_sensors(&mut p)?),
                "at" => spec.timeline.push(parse_timeline(&mut p)?),
                other => {
                    return Err(SpecError {
                        pos: dpos,
                        reason: format!("unknown directive `{other}`"),
                    })
                }
            }
            p.expect_end()?;
        }
        Ok(spec)
    }
}

// ---------------------------------------------------------------------
// Directive parsers.
// ---------------------------------------------------------------------

fn parse_host(p: &mut LineParser<'_>) -> Result<HostDecl, SpecError> {
    let mut h = HostDecl {
        name: p.required("host name")?.0.to_string(),
        ..HostDecl::default()
    };
    while let Some((tok, pos)) = p.next_token() {
        let (key, value) = split_attr(tok, pos)?;
        match key {
            "cpus" => h.cpus = Some(parse_u64(value, pos)? as u32),
            "mem" => h.memory_kb = Some(parse_size(value, pos)? / 1024),
            "pkt-cost" => h.pkt_cost_us = Some(parse_f64(value, pos)?),
            "socket-overhead" => h.socket_overhead = Some(parse_f64(value, pos)?),
            "rcv-buffer" => h.rcv_buffer_bytes = Some(parse_size(value, pos)?),
            "multi-socket-loss" => h.multi_socket_loss = Some(parse_f64(value, pos)?),
            "process" => h.processes.push(value.to_string()),
            other => {
                return Err(SpecError {
                    pos,
                    reason: format!("unknown host attribute `{other}`"),
                })
            }
        }
    }
    Ok(h)
}

fn parse_link(p: &mut LineParser<'_>) -> Result<LinkDecl, SpecError> {
    let (name, npos) = p.required("link name")?;
    let mut l = LinkDecl {
        name: name.to_string(),
        bandwidth_bps: 0,
        delay_us: 0,
        queue_bytes: None,
        error_rate: None,
    };
    let mut saw_bw = false;
    while let Some((tok, pos)) = p.next_token() {
        let (key, value) = split_attr(tok, pos)?;
        match key {
            "bw" => {
                l.bandwidth_bps = parse_rate(value, pos)?;
                saw_bw = true;
            }
            "delay" => l.delay_us = parse_duration(value, pos)?,
            "queue" => l.queue_bytes = Some(parse_size(value, pos)?),
            "error-rate" => l.error_rate = Some(parse_f64(value, pos)?),
            other => {
                return Err(SpecError {
                    pos,
                    reason: format!("unknown link attribute `{other}`"),
                })
            }
        }
    }
    if !saw_bw {
        return Err(SpecError {
            pos: npos,
            reason: format!("link `{name}` needs bw="),
        });
    }
    Ok(l)
}

fn parse_router(p: &mut LineParser<'_>) -> Result<RouterDecl, SpecError> {
    let name = p.required("router name")?.0.to_string();
    let (tok, pos) = p.required("links=")?;
    let (key, value) = split_attr(tok, pos)?;
    if key != "links" {
        return Err(SpecError {
            pos,
            reason: format!("expected links=, got `{key}`"),
        });
    }
    Ok(RouterDecl {
        name,
        links: split_list(value),
    })
}

fn parse_flow(p: &mut LineParser<'_>) -> Result<FlowDecl, SpecError> {
    let name = p.required("flow name")?.0.to_string();
    let src = p.required("source host")?.0.to_string();
    let (arrow, apos) = p.required("->")?;
    if arrow != "->" {
        return Err(SpecError {
            pos: apos,
            reason: format!("expected `->`, got `{arrow}`"),
        });
    }
    let dst = p.required("destination host")?.0.to_string();
    let mut f = FlowDecl {
        name,
        src,
        dst,
        port: 7_000,
        window: 1 << 20,
        via: Vec::new(),
        bytes: None,
    };
    while let Some((tok, pos)) = p.next_token() {
        let (key, value) = split_attr(tok, pos)?;
        match key {
            "port" => f.port = parse_u64(value, pos)? as u16,
            "window" => f.window = parse_size(value, pos)?,
            "via" => f.via = split_list(value),
            "bytes" => f.bytes = Some(parse_size(value, pos)?),
            other => {
                return Err(SpecError {
                    pos,
                    reason: format!("unknown flow attribute `{other}`"),
                })
            }
        }
    }
    Ok(f)
}

fn parse_on(p: &mut LineParser<'_>, what: &str) -> Result<String, SpecError> {
    let (on, pos) = p.required("on")?;
    if on != "on" {
        return Err(SpecError {
            pos,
            reason: format!("expected `on <host>` after {what} name, got `{on}`"),
        });
    }
    Ok(p.required("host name")?.0.to_string())
}

fn parse_gateway(p: &mut LineParser<'_>) -> Result<GatewayDecl, SpecError> {
    let name = p.required("gateway name")?.0.to_string();
    let host = parse_on(p, "gateway")?;
    let mut qos: Option<QosDecl> = None;
    while let Some((tok, pos)) = p.next_token() {
        let (key, value) = split_attr(tok, pos)?;
        // Any qos attribute enables the plane; `qos=on` alone enables it
        // with every threshold at its library default.
        let q = qos.get_or_insert_with(QosDecl::default);
        match key {
            "qos" => {
                if value != "on" {
                    return Err(SpecError {
                        pos,
                        reason: format!("expected qos=on, got `qos={value}`"),
                    });
                }
            }
            "retier" => q.retier = Some(parse_u64(value, pos)?),
            "lag-enter" => q.lag_enter = Some(parse_f64(value, pos)?),
            "lag-exit" => q.lag_exit = Some(parse_f64(value, pos)?),
            "prob-enter" => q.probation_enter = Some(parse_f64(value, pos)?),
            "prob-exit" => q.probation_exit = Some(parse_f64(value, pos)?),
            "shed-enter" => q.shed_enter = Some(parse_f64(value, pos)?),
            "shed-exit" => q.shed_exit = Some(parse_f64(value, pos)?),
            "budget-lagging" => q.budget_lagging = Some(parse_f64(value, pos)?),
            "budget-probation" => q.budget_probation = Some(parse_f64(value, pos)?),
            other => {
                return Err(SpecError {
                    pos,
                    reason: format!("unknown gateway attribute `{other}`"),
                })
            }
        }
    }
    Ok(GatewayDecl { name, host, qos })
}

fn parse_subscriber(p: &mut LineParser<'_>) -> Result<SubscriberDecl, SpecError> {
    let name = p.required("subscriber name")?.0.to_string();
    let host = parse_on(p, "subscriber")?;
    let mut s = SubscriberDecl {
        name,
        host,
        via: Vec::new(),
        drain_us: 2_000,
        capacity: 4_096,
        cpu_of: None,
    };
    while let Some((tok, pos)) = p.next_token() {
        let (key, value) = split_attr(tok, pos)?;
        match key {
            "via" => s.via = split_list(value),
            "drain" => s.drain_us = parse_duration(value, pos)?,
            "capacity" => s.capacity = parse_u64(value, pos)? as usize,
            "cpu-of" => s.cpu_of = Some(value.to_string()),
            other => {
                return Err(SpecError {
                    pos,
                    reason: format!("unknown subscriber attribute `{other}`"),
                })
            }
        }
    }
    Ok(s)
}

fn parse_readers(p: &mut LineParser<'_>) -> Result<ReaderDecl, SpecError> {
    let (name, npos) = p.required("reader pool name")?;
    let name = name.to_string();
    let host = parse_on(p, "reader pool")?;
    let mut r = ReaderDecl {
        name,
        host,
        count: 0,
        via: String::new(),
        query: String::new(),
        every_us: 100_000,
    };
    while let Some((tok, pos)) = p.next_token() {
        let (key, value) = split_attr(tok, pos)?;
        match key {
            "n" => r.count = parse_u64(value, pos)?,
            "via" => r.via = value.to_string(),
            "query" => r.query = value.to_string(),
            "every" => r.every_us = parse_duration(value, pos)?,
            other => {
                return Err(SpecError {
                    pos,
                    reason: format!("unknown readers attribute `{other}`"),
                })
            }
        }
    }
    if r.count == 0 || r.via.is_empty() || r.query.is_empty() {
        return Err(SpecError {
            pos: npos,
            reason: format!(
                "readers `{}` need n=<count>, via=<gateway> and query=<predicate>",
                r.name
            ),
        });
    }
    Ok(r)
}

fn parse_archiver(p: &mut LineParser<'_>) -> Result<ArchiverDecl, SpecError> {
    let name = p.required("archiver name")?.0.to_string();
    let host = parse_on(p, "archiver")?;
    let mut via = Vec::new();
    while let Some((tok, pos)) = p.next_token() {
        let (key, value) = split_attr(tok, pos)?;
        match key {
            "via" => via = split_list(value),
            other => {
                return Err(SpecError {
                    pos,
                    reason: format!("unknown archiver attribute `{other}`"),
                })
            }
        }
    }
    Ok(ArchiverDecl { name, host, via })
}

fn parse_sensors(p: &mut LineParser<'_>) -> Result<SensorDecl, SpecError> {
    let (host, hpos) = p.required("host name")?;
    let mut s = SensorDecl {
        host: host.to_string(),
        every_us: 1_000_000,
        via: String::new(),
        backoff_us: None,
        summary_every: None,
    };
    while let Some((tok, pos)) = p.next_token() {
        let (key, value) = split_attr(tok, pos)?;
        match key {
            "every" => s.every_us = parse_duration(value, pos)?,
            "via" => s.via = value.to_string(),
            "backoff" => s.backoff_us = Some(parse_duration(value, pos)?),
            "summaries" => s.summary_every = Some(parse_u64(value, pos)?),
            other => {
                return Err(SpecError {
                    pos,
                    reason: format!("unknown sensors attribute `{other}`"),
                })
            }
        }
    }
    if s.via.is_empty() {
        return Err(SpecError {
            pos: hpos,
            reason: format!("sensors on `{}` need via=<gateway>", s.host),
        });
    }
    Ok(s)
}

fn parse_timeline(p: &mut LineParser<'_>) -> Result<TimelineEntry, SpecError> {
    let at_us = p.duration_token("fault time")?;
    let (kind, kpos) = p.required("fault kind")?;
    let fault = match kind {
        "link" => {
            let link = p.required("link name")?.0.to_string();
            let (verb, vpos) = p.required("degrade|restore")?;
            match verb {
                "degrade" => {
                    let (rate, rpos) = p.required("rate")?;
                    Fault::LinkDegrade {
                        link,
                        bandwidth_bps: parse_rate(rate, rpos)?,
                    }
                }
                "restore" => Fault::LinkRestore { link },
                other => {
                    return Err(SpecError {
                        pos: vpos,
                        reason: format!("unknown link fault `{other}`"),
                    })
                }
            }
        }
        "host" => {
            let host = p.required("host name")?.0.to_string();
            let (verb, vpos) = p.required("crash|recover")?;
            match verb {
                "crash" => Fault::HostCrash { host },
                "recover" => Fault::HostRecover { host },
                other => {
                    return Err(SpecError {
                        pos: vpos,
                        reason: format!("unknown host fault `{other}`"),
                    })
                }
            }
        }
        "partition" => {
            let mut groups = Vec::new();
            while let Some((tok, pos)) = p.next_token() {
                let inner = tok
                    .strip_prefix('{')
                    .and_then(|t| t.strip_suffix('}'))
                    .ok_or_else(|| SpecError {
                        pos,
                        reason: format!("expected {{a,b,...}} group, got `{tok}`"),
                    })?;
                groups.push(split_list(inner));
            }
            if groups.len() < 2 {
                return Err(SpecError {
                    pos: kpos,
                    reason: "partition needs at least two {..} groups".to_string(),
                });
            }
            Fault::Partition { groups }
        }
        "heal" => Fault::Heal,
        "subscriber" => {
            let name = p.required("subscriber name")?.0.to_string();
            let (verb, vpos) = p.required("stall|resume")?;
            match verb {
                "stall" => Fault::SubscriberStall {
                    name,
                    period_us: p.duration_token("stall period")?,
                },
                "resume" => Fault::SubscriberResume { name },
                other => {
                    return Err(SpecError {
                        pos: vpos,
                        reason: format!("unknown subscriber fault `{other}`"),
                    })
                }
            }
        }
        "sensor" => {
            let host = p.required("host name")?.0.to_string();
            let (verb, vpos) = p.required("stop|start|period")?;
            match verb {
                "stop" => Fault::SensorStop { host },
                "start" => Fault::SensorStart { host },
                "period" => Fault::SensorPeriod {
                    host,
                    every_us: p.duration_token("sensor period")?,
                },
                other => {
                    return Err(SpecError {
                        pos: vpos,
                        reason: format!("unknown sensor fault `{other}`"),
                    })
                }
            }
        }
        "replay" => {
            let archiver = p.required("archiver name")?.0.to_string();
            let (via, vpos) = p.required("via")?;
            if via != "via" {
                return Err(SpecError {
                    pos: vpos,
                    reason: format!("expected `via <gateway>`, got `{via}`"),
                });
            }
            Fault::Replay {
                archiver,
                via: p.required("gateway name")?.0.to_string(),
            }
        }
        other => {
            return Err(SpecError {
                pos: kpos,
                reason: format!("unknown fault kind `{other}`"),
            })
        }
    };
    Ok(TimelineEntry { at_us, fault })
}

// ---------------------------------------------------------------------
// Token-level helpers.
// ---------------------------------------------------------------------

/// Tokenizer over one line that reports absolute byte positions.
struct LineParser<'a> {
    line: &'a str,
    base: usize,
    cur: usize,
}

impl<'a> LineParser<'a> {
    fn new(line: &'a str, base: usize) -> Self {
        LineParser { line, base, cur: 0 }
    }

    /// Next whitespace-separated token and its absolute byte position.
    fn next_token(&mut self) -> Option<(&'a str, usize)> {
        let rest = &self.line[self.cur..];
        let skip = rest.len() - rest.trim_start().len();
        let start = self.cur + skip;
        let rest = &self.line[start..];
        if rest.is_empty() {
            self.cur = self.line.len();
            return None;
        }
        let end = rest
            .find(char::is_whitespace)
            .map_or(self.line.len(), |i| start + i);
        self.cur = end;
        Some((&self.line[start..end], self.base + start))
    }

    fn required(&mut self, what: &str) -> Result<(&'a str, usize), SpecError> {
        self.next_token().ok_or_else(|| SpecError {
            pos: self.base + self.line.len(),
            reason: format!("expected {what}"),
        })
    }

    fn u64_token(&mut self, what: &str) -> Result<u64, SpecError> {
        let (tok, pos) = self.required(what)?;
        parse_u64(tok, pos)
    }

    fn duration_token(&mut self, what: &str) -> Result<u64, SpecError> {
        let (tok, pos) = self.required(what)?;
        parse_duration(tok, pos)
    }

    fn expect_end(&mut self) -> Result<(), SpecError> {
        match self.next_token() {
            None => Ok(()),
            Some((tok, pos)) => Err(SpecError {
                pos,
                reason: format!("unexpected trailing token `{tok}`"),
            }),
        }
    }
}

fn split_attr(tok: &str, pos: usize) -> Result<(&str, &str), SpecError> {
    tok.split_once('=').ok_or_else(|| SpecError {
        pos,
        reason: format!("expected key=value, got `{tok}`"),
    })
}

fn split_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_u64(tok: &str, pos: usize) -> Result<u64, SpecError> {
    tok.parse().map_err(|_| SpecError {
        pos,
        reason: format!("expected an integer, got `{tok}`"),
    })
}

fn parse_f64(tok: &str, pos: usize) -> Result<f64, SpecError> {
    tok.parse().map_err(|_| SpecError {
        pos,
        reason: format!("expected a number, got `{tok}`"),
    })
}

/// `80ms`, `12s`, `500us` → microseconds.
fn parse_duration(tok: &str, pos: usize) -> Result<u64, SpecError> {
    let (digits, mult) = if let Some(d) = tok.strip_suffix("us") {
        (d, 1)
    } else if let Some(d) = tok.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = tok.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        return Err(SpecError {
            pos,
            reason: format!("expected a duration (us/ms/s), got `{tok}`"),
        });
    };
    Ok(parse_u64(digits, pos)? * mult)
}

/// `30mbit`, `1gbit`, `622mbit`, `64kbit`, `100bit` → bits per second.
fn parse_rate(tok: &str, pos: usize) -> Result<u64, SpecError> {
    let (digits, mult) = if let Some(d) = tok.strip_suffix("gbit") {
        (d, 1_000_000_000)
    } else if let Some(d) = tok.strip_suffix("mbit") {
        (d, 1_000_000)
    } else if let Some(d) = tok.strip_suffix("kbit") {
        (d, 1_000)
    } else if let Some(d) = tok.strip_suffix("bit") {
        (d, 1)
    } else {
        return Err(SpecError {
            pos,
            reason: format!("expected a rate (bit/kbit/mbit/gbit), got `{tok}`"),
        });
    };
    Ok(parse_u64(digits, pos)? * mult)
}

/// `6m`, `512k`, `1g`, `1048576` → bytes (binary suffixes).
fn parse_size(tok: &str, pos: usize) -> Result<u64, SpecError> {
    let (digits, mult) = if let Some(d) = tok.strip_suffix('g') {
        (d, 1 << 30)
    } else if let Some(d) = tok.strip_suffix('m') {
        (d, 1 << 20)
    } else if let Some(d) = tok.strip_suffix('k') {
        (d, 1 << 10)
    } else {
        (tok, 1)
    };
    Ok(parse_u64(digits, pos)? * mult)
}

// ---------------------------------------------------------------------
// Canonical rendering (Display).
// ---------------------------------------------------------------------

/// Render microseconds with the largest exact unit.
pub(crate) fn fmt_dur(us: u64) -> String {
    if us.is_multiple_of(1_000_000) {
        format!("{}s", us / 1_000_000)
    } else if us.is_multiple_of(1_000) {
        format!("{}ms", us / 1_000)
    } else {
        format!("{us}us")
    }
}

fn fmt_rate(bps: u64) -> String {
    if bps.is_multiple_of(1_000_000_000) {
        format!("{}gbit", bps / 1_000_000_000)
    } else if bps.is_multiple_of(1_000_000) {
        format!("{}mbit", bps / 1_000_000)
    } else if bps.is_multiple_of(1_000) {
        format!("{}kbit", bps / 1_000)
    } else {
        format!("{bps}bit")
    }
}

fn fmt_size(bytes: u64) -> String {
    if bytes > 0 && bytes.is_multiple_of(1 << 30) {
        format!("{}g", bytes >> 30)
    } else if bytes > 0 && bytes.is_multiple_of(1 << 20) {
        format!("{}m", bytes >> 20)
    } else if bytes > 0 && bytes.is_multiple_of(1 << 10) {
        format!("{}k", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario {}", self.name)?;
        writeln!(f, "seed {}", self.seed)?;
        writeln!(f, "tick {}", fmt_dur(self.tick_us))?;
        writeln!(f, "duration {}", fmt_dur(self.duration_us))?;
        writeln!(f, "sample {}", self.sample_every)?;
        for h in &self.hosts {
            write!(f, "host {}", h.name)?;
            if let Some(v) = h.cpus {
                write!(f, " cpus={v}")?;
            }
            if let Some(v) = h.memory_kb {
                write!(f, " mem={}", fmt_size(v * 1024))?;
            }
            if let Some(v) = h.pkt_cost_us {
                write!(f, " pkt-cost={v}")?;
            }
            if let Some(v) = h.socket_overhead {
                write!(f, " socket-overhead={v}")?;
            }
            if let Some(v) = h.rcv_buffer_bytes {
                write!(f, " rcv-buffer={}", fmt_size(v))?;
            }
            if let Some(v) = h.multi_socket_loss {
                write!(f, " multi-socket-loss={v}")?;
            }
            for pr in &h.processes {
                write!(f, " process={pr}")?;
            }
            writeln!(f)?;
        }
        for l in &self.links {
            write!(
                f,
                "link {} bw={} delay={}",
                l.name,
                fmt_rate(l.bandwidth_bps),
                fmt_dur(l.delay_us)
            )?;
            if let Some(q) = l.queue_bytes {
                write!(f, " queue={}", fmt_size(q))?;
            }
            if let Some(e) = l.error_rate {
                write!(f, " error-rate={e}")?;
            }
            writeln!(f)?;
        }
        for r in &self.routers {
            writeln!(f, "router {} links={}", r.name, r.links.join(","))?;
        }
        for fl in &self.flows {
            write!(
                f,
                "flow {} {} -> {} port={} window={} via={}",
                fl.name,
                fl.src,
                fl.dst,
                fl.port,
                fmt_size(fl.window),
                fl.via.join(",")
            )?;
            if let Some(b) = fl.bytes {
                write!(f, " bytes={}", fmt_size(b))?;
            }
            writeln!(f)?;
        }
        for g in &self.gateways {
            write!(f, "gateway {} on {}", g.name, g.host)?;
            if let Some(q) = &g.qos {
                write!(f, " qos=on")?;
                if let Some(v) = q.retier {
                    write!(f, " retier={v}")?;
                }
                if let Some(v) = q.lag_enter {
                    write!(f, " lag-enter={v}")?;
                }
                if let Some(v) = q.lag_exit {
                    write!(f, " lag-exit={v}")?;
                }
                if let Some(v) = q.probation_enter {
                    write!(f, " prob-enter={v}")?;
                }
                if let Some(v) = q.probation_exit {
                    write!(f, " prob-exit={v}")?;
                }
                if let Some(v) = q.shed_enter {
                    write!(f, " shed-enter={v}")?;
                }
                if let Some(v) = q.shed_exit {
                    write!(f, " shed-exit={v}")?;
                }
                if let Some(v) = q.budget_lagging {
                    write!(f, " budget-lagging={v}")?;
                }
                if let Some(v) = q.budget_probation {
                    write!(f, " budget-probation={v}")?;
                }
            }
            writeln!(f)?;
        }
        for s in &self.subscribers {
            write!(
                f,
                "subscriber {} on {} via={} drain={} capacity={}",
                s.name,
                s.host,
                s.via.join(","),
                fmt_dur(s.drain_us),
                s.capacity
            )?;
            if let Some(h) = &s.cpu_of {
                write!(f, " cpu-of={h}")?;
            }
            writeln!(f)?;
        }
        for r in &self.readers {
            writeln!(
                f,
                "readers {} on {} n={} via={} query={} every={}",
                r.name,
                r.host,
                r.count,
                r.via,
                r.query,
                fmt_dur(r.every_us)
            )?;
        }
        for a in &self.archivers {
            writeln!(
                f,
                "archiver {} on {} via={}",
                a.name,
                a.host,
                a.via.join(",")
            )?;
        }
        for s in &self.sensors {
            write!(
                f,
                "sensors {} every={} via={}",
                s.host,
                fmt_dur(s.every_us),
                s.via
            )?;
            if let Some(b) = s.backoff_us {
                write!(f, " backoff={}", fmt_dur(b))?;
            }
            if let Some(n) = s.summary_every {
                write!(f, " summaries={n}")?;
            }
            writeln!(f)?;
        }
        for entry in &self.timeline {
            write!(f, "at {} ", fmt_dur(entry.at_us))?;
            match &entry.fault {
                Fault::LinkDegrade {
                    link,
                    bandwidth_bps,
                } => writeln!(f, "link {link} degrade {}", fmt_rate(*bandwidth_bps))?,
                Fault::LinkRestore { link } => writeln!(f, "link {link} restore")?,
                Fault::HostCrash { host } => writeln!(f, "host {host} crash")?,
                Fault::HostRecover { host } => writeln!(f, "host {host} recover")?,
                Fault::Partition { groups } => {
                    write!(f, "partition")?;
                    for g in groups {
                        write!(f, " {{{}}}", g.join(","))?;
                    }
                    writeln!(f)?;
                }
                Fault::Heal => writeln!(f, "heal")?,
                Fault::SubscriberStall { name, period_us } => {
                    writeln!(f, "subscriber {name} stall {}", fmt_dur(*period_us))?
                }
                Fault::SubscriberResume { name } => writeln!(f, "subscriber {name} resume")?,
                Fault::SensorStop { host } => writeln!(f, "sensor {host} stop")?,
                Fault::SensorStart { host } => writeln!(f, "sensor {host} start")?,
                Fault::SensorPeriod { host, every_us } => {
                    writeln!(f, "sensor {host} period {}", fmt_dur(*every_us))?
                }
                Fault::Replay { archiver, via } => writeln!(f, "replay {archiver} via {via}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
scenario demo
seed 42
tick 1ms
duration 30s

host a.lbl.gov cpus=2 mem=512m pkt-cost=20 process=worker
host b.isi.edu cpus=1 pkt-cost=50 socket-overhead=0.25 rcv-buffer=6m multi-socket-loss=0.00035
link wan bw=30mbit delay=28ms queue=64k
router core links=wan
flow bulk a.lbl.gov -> b.isi.edu port=7000 window=1m via=wan
gateway gw on a.lbl.gov
gateway gw2 on b.isi.edu qos=on retier=64 lag-enter=0.25 lag-exit=0.1 shed-enter=0.7 shed-exit=0.4 budget-probation=0.25
subscriber viz on b.isi.edu via=gw drain=2ms capacity=512 cpu-of=b.isi.edu
readers dash on b.isi.edu n=32 via=gw query=(&(type=CPU_TOTAL)(host=a.lbl.gov)) every=250ms
archiver arch on a.lbl.gov via=gw
sensors a.lbl.gov every=100ms via=gw
sensors b.isi.edu every=100ms via=gw2 backoff=500ms summaries=10
at 12s link wan degrade 30mbit
at 20s host b.isi.edu crash
at 25s host b.isi.edu recover
at 30s partition {a.lbl.gov} {b.isi.edu}
at 35s heal
at 40s subscriber viz stall 80ms
at 41s subscriber viz resume
at 42s sensor a.lbl.gov stop
at 43s sensor a.lbl.gov start
at 44s sensor * period 10ms
at 45s replay arch via gw
";

    #[test]
    fn sample_parses_and_round_trips() {
        let spec = ScenarioSpec::parse(SAMPLE).expect("parses");
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.hosts.len(), 2);
        assert_eq!(spec.hosts[0].memory_kb, Some(512 * 1024));
        assert_eq!(spec.links[0].bandwidth_bps, 30_000_000);
        assert_eq!(spec.gateways[0].qos, None);
        let q = spec.gateways[1].qos.expect("gw2 has a qos plane");
        assert_eq!(q.retier, Some(64));
        assert_eq!(q.lag_enter, Some(0.25));
        assert_eq!(q.shed_enter, Some(0.7));
        assert_eq!(q.budget_probation, Some(0.25));
        assert_eq!(q.probation_enter, None, "unset thresholds stay default");
        assert_eq!(spec.sensors[1].backoff_us, Some(500_000));
        assert_eq!(spec.sensors[1].summary_every, Some(10));
        assert_eq!(spec.readers.len(), 1);
        assert_eq!(spec.readers[0].count, 32);
        assert_eq!(spec.readers[0].query, "(&(type=CPU_TOTAL)(host=a.lbl.gov))");
        assert_eq!(spec.readers[0].every_us, 250_000);
        assert_eq!(spec.timeline.len(), 11);
        let rendered = spec.to_string();
        let again = ScenarioSpec::parse(&rendered).expect("round-trip parses");
        assert_eq!(spec, again);
    }

    #[test]
    fn unknown_directive_reports_byte_position() {
        let input = "scenario x\nfrobnicate y\n";
        let err = ScenarioSpec::parse(input).unwrap_err();
        assert_eq!(err.pos, input.find("frobnicate").unwrap());
        assert!(err.reason.contains("frobnicate"), "{}", err.reason);
    }

    #[test]
    fn bad_rate_points_at_the_value() {
        let input = "link l bw=fast delay=1ms\n";
        let err = ScenarioSpec::parse(input).unwrap_err();
        assert_eq!(err.pos, input.find("bw=fast").unwrap());
    }

    #[test]
    fn partition_requires_two_groups() {
        let err = ScenarioSpec::parse("at 1s partition {a}\n").unwrap_err();
        assert!(err.reason.contains("two"), "{}", err.reason);
    }

    #[test]
    fn readers_require_count_gateway_and_query() {
        let err = ScenarioSpec::parse("readers dash on h n=4 via=gw\n").unwrap_err();
        assert!(err.reason.contains("query="), "{}", err.reason);
        let err = ScenarioSpec::parse("readers dash on h via=gw query=(&)\n").unwrap_err();
        assert!(err.reason.contains("n="), "{}", err.reason);
    }
}
