//! # jamm-netsim — simulated Grid testbed
//!
//! The paper's evaluation (§6) runs JAMM on the DARPA MATISSE testbed: a
//! DPSS storage cluster at LBNL, the OC-48 Supernet WAN, a Linux compute
//! cluster and a visualisation workstation at ISI East, with gigabit-ethernet
//! edges.  We obviously do not have that hardware, so this crate provides a
//! deterministic, tick-based discrete-event simulator of the same moving
//! parts:
//!
//! * [`host::Host`] — CPU (user/system), memory, and a NIC model whose
//!   per-packet processing cost grows with the number of concurrently active
//!   sockets (the receiver-side bottleneck the paper observed);
//! * [`link::Link`] / [`link::Router`] — bandwidth/latency/queueing with
//!   SNMP-style interface counters;
//! * [`tcp::TcpFlow`] — an AIMD congestion-control model with retransmission
//!   accounting, receive-window limits and loss feedback from the receiver;
//! * [`network::Network`] — topology + per-tick update loop;
//! * [`dpss`] — a striped block server (the Distributed Parallel Storage
//!   System) and its client;
//! * [`player`] — the MEMS video frame player from the MATISSE demo;
//! * [`iperf`] — the memory-to-memory throughput test used in §6;
//! * [`scenario`] — canned topologies: the MATISSE WAN testbed and a LAN
//!   variant, plus a generic monitored cluster;
//! * [`engine`] — the declarative scenario engine: a parsed
//!   [`engine::ScenarioSpec`] (topology + monitoring deployment + fault
//!   timeline) compiled onto the simulator with a *real* gateway /
//!   collector / archiver / directory deployment riding the simulated
//!   clock, plus the [`engine::ScenarioReport`] result analyser.
//!
//! All randomness flows from a caller-supplied seed, so every experiment in
//! the benchmark harness is reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod dpss;
pub mod engine;
pub mod host;
pub mod iperf;
pub mod link;
pub mod network;
pub mod player;
pub mod scenario;
pub mod tcp;
pub mod trace;
pub mod workload;

pub use clock::SimClock;
pub use host::{Host, HostId, HostSpec};
pub use link::{Link, LinkId, LinkSpec, Router};
pub use network::{FlowId, Network};
pub use trace::TraceLog;

/// Convenient prelude for building simulations.
pub mod prelude {
    pub use crate::clock::SimClock;
    pub use crate::engine::{ScenarioEngine, ScenarioReport, ScenarioSpec};
    pub use crate::host::{Host, HostId, HostSpec};
    pub use crate::link::{Link, LinkId, LinkSpec};
    pub use crate::network::{FlowId, Network};
    pub use crate::scenario::{self, MatisseScenario};
    pub use crate::trace::TraceLog;
}
