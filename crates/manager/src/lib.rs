//! # jamm-manager — the JAMM sensor manager and port-monitor agent
//!
//! "The sensor manager agent is responsible for starting and stopping the
//! sensors, and keeping the sensor directory up to date.  Sensors to be run
//! are specified by a configuration file, which may be local or on a remote
//! HTTP server.  Sensors can be configured to run always, when requested by
//! a sensor manager GUI, or when requested by the port monitor agent.  There
//! is typically one sensor manager per host." (§2.2)
//!
//! * [`config`] — the sensor configuration file: which sensors, at what
//!   frequency, under which run policy (always / on request / port
//!   triggered), with hot-reload support;
//! * [`portmon`] — the port monitor agent: watches traffic on configured
//!   ports and tells the manager which application-triggered sensors should
//!   currently be running;
//! * [`manager`] — the [`manager::SensorManager`] itself: builds sensors
//!   from the configuration, samples them on schedule, pushes events to the
//!   host's event gateway, and publishes/refreshes sensor entries in the
//!   directory service.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod manager;
pub mod portmon;

pub use config::{ManagerConfig, RunPolicy, SensorConfigEntry, SensorTemplate};
pub use manager::{PortActivitySource, SensorManager, SensorStatus};
pub use portmon::PortMonitorAgent;
