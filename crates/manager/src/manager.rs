//! The sensor manager.
//!
//! One manager runs per host.  It instantiates sensors from the
//! configuration, starts and stops them according to their run policy
//! (always / on request / port triggered), samples the running ones at their
//! configured frequency, pushes the resulting events into the host's event
//! gateway, and keeps the sensor directory up to date (publishing a sensor
//! entry when a sensor starts, refreshing its status, and marking it stopped
//! when it stops).

use std::collections::HashMap;
use std::sync::Arc;

use jamm_core::flow::EventSink;
use jamm_directory::{DirectoryServer, Dn, Entry};
use jamm_sensors::application::ApplicationSensor;
use jamm_sensors::host::{CpuSensor, MemorySensor};
use jamm_sensors::network::SnmpSensor;
use jamm_sensors::process::ProcessSensor;
use jamm_sensors::tcp::{NetstatCounterSensor, TcpSensor};
use jamm_sensors::{SampleContext, Sensor, StatsSource};
use jamm_ulm::SharedEvent;
use jamm_ulm::Timestamp;

use crate::config::{ConfigProvider, ManagerConfig, RunPolicy, SensorTemplate};
use crate::portmon::PortMonitorAgent;

/// Where the manager learns about per-port traffic (the signal feeding the
/// port monitor agent).  The simulator's `Network` and any packet-capture
/// front-end can implement this.
pub trait PortActivitySource {
    /// Bytes delivered to `host` on `port` during the last monitoring
    /// interval.
    fn bytes_on_port(&self, host: &str, port: u16) -> u64;
}

/// Status of one managed sensor (the data behind the Sensor Data GUI).
#[derive(Debug, Clone, PartialEq)]
pub struct SensorStatus {
    /// Sensor name.
    pub name: String,
    /// Whether the sensor is currently running.
    pub running: bool,
    /// Run policy from the configuration.
    pub policy: RunPolicy,
    /// Sampling period in seconds.
    pub frequency_secs: f64,
    /// When the sensor last sampled.
    pub last_sample: Option<Timestamp>,
    /// Events emitted since the manager started it.
    pub events_emitted: u64,
}

struct ManagedSensor {
    sensor: Box<dyn Sensor>,
    policy: RunPolicy,
    frequency_secs: f64,
    running: bool,
    explicitly_requested: bool,
    last_sample: Option<Timestamp>,
    events_emitted: u64,
}

/// The per-host sensor manager agent.
pub struct SensorManager {
    host: String,
    gateway_name: String,
    config_version: u64,
    sensors: HashMap<String, ManagedSensor>,
    port_monitor: PortMonitorAgent,
    directory_base: Dn,
    events_published: u64,
    delivery_failures: u64,
}

impl SensorManager {
    /// Create a manager for `config.host`, publishing directory entries under
    /// `directory_base` (e.g. `o=lbl,o=grid`).
    pub fn new(config: &ManagerConfig, directory_base: Dn) -> Self {
        let mut mgr = SensorManager {
            host: config.host.clone(),
            gateway_name: config.gateway.clone(),
            config_version: 0,
            sensors: HashMap::new(),
            port_monitor: PortMonitorAgent::new(),
            directory_base,
            events_published: 0,
            delivery_failures: 0,
        };
        mgr.apply_config(config);
        mgr
    }

    /// The host this manager is responsible for.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The port monitor agent (for GUI-style reconfiguration).
    pub fn port_monitor_mut(&mut self) -> &mut PortMonitorAgent {
        &mut self.port_monitor
    }

    /// Total events pushed to the gateway since the manager started.
    pub fn events_published(&self) -> u64 {
        self.events_published
    }

    /// Events whose delivery the sink refused (closed or rejecting sink).
    /// Sensors keep running through sink outages; this counter is how the
    /// loss stays visible.
    pub fn delivery_failures(&self) -> u64 {
        self.delivery_failures
    }

    /// Apply (or re-apply) a configuration: new sensors are created, removed
    /// sensors are dropped, changed policies/frequencies take effect.
    /// Returns the number of sensor entries that changed.
    pub fn apply_config(&mut self, config: &ManagerConfig) -> usize {
        if config.version == self.config_version {
            return 0;
        }
        self.config_version = config.version;
        let mut changed = 0;
        let mut seen = Vec::new();
        for entry in &config.sensors {
            let name = entry.template.sensor_name();
            seen.push(name.clone());
            if let RunPolicy::PortTriggered { port, idle_secs } = &entry.policy {
                self.port_monitor.watch(*port, *idle_secs);
            }
            let needs_new = match self.sensors.get(&name) {
                Some(existing) => {
                    existing.policy != entry.policy
                        || existing.frequency_secs != entry.frequency_secs
                }
                None => true,
            };
            if needs_new {
                let sensor = build_sensor(&entry.template, &self.host, entry.frequency_secs);
                self.sensors.insert(
                    name,
                    ManagedSensor {
                        sensor,
                        policy: entry.policy.clone(),
                        frequency_secs: entry.frequency_secs,
                        running: false,
                        explicitly_requested: false,
                        last_sample: None,
                        events_emitted: 0,
                    },
                );
                changed += 1;
            }
        }
        let before = self.sensors.len();
        self.sensors.retain(|name, _| seen.contains(name));
        changed + (before - self.sensors.len())
    }

    /// Poll a configuration provider and re-apply if the version changed
    /// ("every few minutes the sensor managers check for updates").
    pub fn maybe_reload(&mut self, provider: &dyn ConfigProvider) -> usize {
        let cfg = provider.current();
        if cfg.version != self.config_version {
            self.apply_config(&cfg)
        } else {
            0
        }
    }

    /// Explicitly request an on-request sensor to start (the sensor-control
    /// GUI path).  Returns false if no such sensor is configured.
    pub fn request_start(&mut self, sensor_name: &str) -> bool {
        match self.sensors.get_mut(sensor_name) {
            Some(s) => {
                s.explicitly_requested = true;
                true
            }
            None => false,
        }
    }

    /// Explicitly stop an on-request sensor.
    pub fn request_stop(&mut self, sensor_name: &str) -> bool {
        match self.sensors.get_mut(sensor_name) {
            Some(s) => {
                s.explicitly_requested = false;
                true
            }
            None => false,
        }
    }

    /// Status of every configured sensor.
    pub fn status(&self) -> Vec<SensorStatus> {
        let mut out: Vec<SensorStatus> = self
            .sensors
            .iter()
            .map(|(name, s)| SensorStatus {
                name: name.clone(),
                running: s.running,
                policy: s.policy.clone(),
                frequency_secs: s.frequency_secs,
                last_sample: s.last_sample,
                events_emitted: s.events_emitted,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Names of currently running sensors.
    pub fn running_sensors(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .sensors
            .iter()
            .filter(|(_, s)| s.running)
            .map(|(n, _)| n.clone())
            .collect();
        v.sort();
        v
    }

    /// One manager cycle:
    ///
    /// 1. feed the port monitor with observed per-port traffic;
    /// 2. start / stop sensors according to their run policy;
    /// 3. sample every running sensor whose period has elapsed;
    /// 4. push the events into the sink (normally the host's event
    ///    gateway, but any [`EventSink`] — a remote bridge, an archive, a
    ///    test probe — works).  Each sampled event is wrapped once as a
    ///    [`SharedEvent`] at the push boundary: the publish side of the
    ///    pipeline never copies it again;
    /// 5. refresh the sensor directory.
    pub fn tick(
        &mut self,
        now: Timestamp,
        stats: &dyn StatsSource,
        ports: &dyn PortActivitySource,
        sink: &dyn EventSink<SharedEvent>,
        directory: Option<&Arc<DirectoryServer>>,
    ) -> u64 {
        // 1. Port activity.
        for port in self.port_monitor.watched_ports() {
            let bytes = ports.bytes_on_port(&self.host, port);
            self.port_monitor.observe(port, bytes, now);
        }

        // 2. Start/stop per policy.
        let mut transitions: Vec<(String, bool)> = Vec::new();
        for (name, s) in &mut self.sensors {
            let should_run = match &s.policy {
                RunPolicy::Always => true,
                RunPolicy::OnRequest => s.explicitly_requested,
                RunPolicy::PortTriggered { port, .. } => self.port_monitor.is_active(*port, now),
            };
            if should_run != s.running {
                s.running = should_run;
                transitions.push((name.clone(), should_run));
            }
        }

        // 3-4. Sample and publish.
        let mut published = 0u64;
        for s in self.sensors.values_mut() {
            if !s.running {
                continue;
            }
            let due = match s.last_sample {
                None => true,
                Some(last) => now.as_micros() >= last.as_micros() + (s.frequency_secs * 1e6) as u64,
            };
            if !due {
                continue;
            }
            s.last_sample = Some(now);
            let ctx = SampleContext {
                timestamp: now,
                source: stats,
            };
            let events: Vec<SharedEvent> = s
                .sensor
                .sample(&ctx)
                .into_iter()
                .map(SharedEvent::new)
                .collect();
            s.events_emitted += events.len() as u64;
            // A failing sink is not the manager's failure: the sensors keep
            // running, and the whole batch is counted as lost (the default
            // accept_batch aborts at the first error, so per-event progress
            // within a failed batch is unknowable here).
            if sink.accept_batch(&events).is_err() {
                self.delivery_failures += events.len() as u64;
            }
            published += events.len() as u64;
        }
        self.events_published += published;

        // 5. Directory maintenance.
        if let Some(dir) = directory {
            for (name, running) in &transitions {
                let _ = dir.add_or_replace(self.directory_entry(name, *running, now));
            }
        }
        published
    }

    /// The directory entry describing one of this manager's sensors.
    pub fn directory_entry(&self, sensor_name: &str, running: bool, now: Timestamp) -> Entry {
        let dn = self
            .directory_base
            .child("host", self.host.clone())
            .child("sensor", sensor_name);
        let mut entry = Entry::new(dn)
            .with("objectclass", "sensor")
            .with("host", self.host.clone())
            .with("sensor", sensor_name)
            .with("gateway", self.gateway_name.clone())
            .with("status", if running { "running" } else { "stopped" })
            .with("lastupdate", now.to_ulm_date());
        if let Some(s) = self.sensors.get(sensor_name) {
            entry.add("frequency", format!("{}", s.frequency_secs));
            for ty in &s.sensor.spec().event_types {
                entry.add("eventtype", ty.clone());
            }
        }
        entry
    }
}

/// Build a sensor instance from its template.
fn build_sensor(template: &SensorTemplate, host: &str, frequency_secs: f64) -> Box<dyn Sensor> {
    match template {
        SensorTemplate::Cpu => Box::new(CpuSensor::new(host, frequency_secs)),
        SensorTemplate::Memory => Box::new(MemorySensor::new(host, frequency_secs)),
        SensorTemplate::Tcp => Box::new(TcpSensor::new(host, frequency_secs)),
        SensorTemplate::NetstatCounter => Box::new(NetstatCounterSensor::new(host, frequency_secs)),
        SensorTemplate::Snmp { device } => {
            Box::new(SnmpSensor::new(device.clone(), frequency_secs))
        }
        SensorTemplate::Process { process } => {
            Box::new(ProcessSensor::new(host, process.clone(), frequency_secs))
        }
    }
}

/// A port-activity source that reports no traffic anywhere (useful when a
/// deployment has no port monitoring at all).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoPortActivity;

impl PortActivitySource for NoPortActivity {
    fn bytes_on_port(&self, _host: &str, _port: u16) -> u64 {
        0
    }
}

/// Allow an [`ApplicationSensor`] to be managed too: applications register
/// their sensor with the manager so its events flow through the same path.
impl SensorManager {
    /// Attach an application sensor under the given name with an
    /// always-running policy.
    pub fn attach_application_sensor(&mut self, sensor: ApplicationSensor) {
        let name = sensor.spec().name.clone();
        self.sensors.insert(
            name,
            ManagedSensor {
                sensor: Box::new(sensor),
                policy: RunPolicy::Always,
                frequency_secs: 0.0,
                running: false,
                explicitly_requested: false,
                last_sample: None,
                events_emitted: 0,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SensorConfigEntry, StaticConfigProvider};
    use jamm_gateway::{EventGateway, GatewayConfig};
    use jamm_sensors::{HostView, IfView};
    use std::cell::Cell;

    struct FakeStats {
        retrans: Cell<u64>,
        proc_alive: Cell<bool>,
    }
    impl StatsSource for FakeStats {
        fn host_stats(&self, _h: &str) -> Option<HostView> {
            Some(HostView {
                cpu_user_pct: 10.0,
                cpu_sys_pct: 20.0,
                mem_free_kb: 100_000,
                tcp_retransmits: self.retrans.get(),
                ..Default::default()
            })
        }
        fn device_interfaces(&self, _d: &str) -> Vec<IfView> {
            Vec::new()
        }
        fn process_alive(&self, _h: &str, _p: &str) -> Option<bool> {
            Some(self.proc_alive.get())
        }
    }

    struct FakePorts {
        active_port: Cell<Option<u16>>,
    }
    impl PortActivitySource for FakePorts {
        fn bytes_on_port(&self, _host: &str, port: u16) -> u64 {
            if self.active_port.get() == Some(port) {
                10_000
            } else {
                0
            }
        }
    }

    fn setup() -> (
        SensorManager,
        FakeStats,
        FakePorts,
        EventGateway,
        Arc<DirectoryServer>,
    ) {
        let cfg =
            ManagerConfig::standard_host("dpss1.lbl.gov", "gw1.lbl.gov:8765", &["dpss_master"])
                .with_sensor(SensorConfigEntry {
                    template: SensorTemplate::NetstatCounter,
                    frequency_secs: 1.0,
                    policy: RunPolicy::PortTriggered {
                        port: 7_000,
                        idle_secs: 5.0,
                    },
                });
        let mgr = SensorManager::new(&cfg, Dn::parse("o=lbl,o=grid").unwrap());
        let stats = FakeStats {
            retrans: Cell::new(0),
            proc_alive: Cell::new(true),
        };
        let ports = FakePorts {
            active_port: Cell::new(None),
        };
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let dir = Arc::new(DirectoryServer::new(
            "ldap://dir.lbl.gov",
            Dn::parse("o=grid").unwrap(),
        ));
        (mgr, stats, ports, gw, dir)
    }

    fn t(secs: f64) -> Timestamp {
        Timestamp::from_secs_f64(1_000.0 + secs)
    }

    #[test]
    fn always_sensors_run_and_publish_to_gateway_and_directory() {
        let (mut mgr, stats, ports, gw, dir) = setup();
        let published = mgr.tick(t(0.0), &stats, &ports, &gw, Some(&dir));
        assert!(published > 0);
        // CPU (3 events) + memory (1) + process STARTED (1); TCP emits nothing
        // without changes; netstat counter is port-triggered and off.
        assert!(mgr.running_sensors().contains(&"cpu".to_string()));
        assert!(!mgr.running_sensors().contains(&"netstat".to_string()));
        // Directory entries were published for the sensors that started.
        assert!(dir.entry_count() >= 4, "count = {}", dir.entry_count());
        let cpu_dn = Dn::parse("sensor=cpu,host=dpss1.lbl.gov,o=lbl,o=grid").unwrap();
        let e = dir.lookup(&cpu_dn).unwrap();
        assert_eq!(e.get("status"), Some("running"));
        assert_eq!(e.get("gateway"), Some("gw1.lbl.gov:8765"));
    }

    #[test]
    fn sampling_respects_frequency() {
        let (mut mgr, stats, ports, gw, _) = setup();
        mgr.tick(t(0.0), &stats, &ports, &gw, None);
        let first = mgr.events_published();
        // 0.5 s later the 1 Hz sensors are not yet due.
        mgr.tick(t(0.5), &stats, &ports, &gw, None);
        assert_eq!(mgr.events_published(), first);
        // 1.1 s later they are.
        mgr.tick(t(1.1), &stats, &ports, &gw, None);
        assert!(mgr.events_published() > first);
    }

    #[test]
    fn port_triggered_sensor_follows_traffic() {
        let (mut mgr, stats, ports, gw, dir) = setup();
        mgr.tick(t(0.0), &stats, &ports, &gw, Some(&dir));
        assert!(!mgr.running_sensors().contains(&"netstat".to_string()));
        // Traffic appears on the DPSS port: the netstat sensor starts.
        ports.active_port.set(Some(7_000));
        mgr.tick(t(1.0), &stats, &ports, &gw, Some(&dir));
        assert!(mgr.running_sensors().contains(&"netstat".to_string()));
        let dn = Dn::parse("sensor=netstat,host=dpss1.lbl.gov,o=lbl,o=grid").unwrap();
        assert_eq!(dir.lookup(&dn).unwrap().get("status"), Some("running"));
        // Traffic stops; after the 5 s idle timeout the sensor stops too.
        ports.active_port.set(None);
        mgr.tick(t(3.0), &stats, &ports, &gw, Some(&dir));
        assert!(
            mgr.running_sensors().contains(&"netstat".to_string()),
            "still within idle"
        );
        mgr.tick(t(7.0), &stats, &ports, &gw, Some(&dir));
        assert!(!mgr.running_sensors().contains(&"netstat".to_string()));
        assert_eq!(dir.lookup(&dn).unwrap().get("status"), Some("stopped"));
    }

    #[test]
    fn on_request_sensors_need_an_explicit_start() {
        let cfg = ManagerConfig::empty("h", "gw").with_sensor(SensorConfigEntry {
            template: SensorTemplate::Cpu,
            frequency_secs: 1.0,
            policy: RunPolicy::OnRequest,
        });
        let mut mgr = SensorManager::new(&cfg, Dn::parse("o=grid").unwrap());
        let stats = FakeStats {
            retrans: Cell::new(0),
            proc_alive: Cell::new(true),
        };
        let gw = EventGateway::new(GatewayConfig::open("gw"));
        mgr.tick(t(0.0), &stats, &NoPortActivity, &gw, None);
        assert!(mgr.running_sensors().is_empty());
        assert!(mgr.request_start("cpu"));
        assert!(!mgr.request_start("nonexistent"));
        mgr.tick(t(1.0), &stats, &NoPortActivity, &gw, None);
        assert_eq!(mgr.running_sensors(), vec!["cpu".to_string()]);
        mgr.request_stop("cpu");
        mgr.tick(t(2.0), &stats, &NoPortActivity, &gw, None);
        assert!(mgr.running_sensors().is_empty());
    }

    #[test]
    fn config_reload_adds_and_removes_sensors() {
        let (mut mgr, stats, ports, gw, _) = setup();
        let provider = StaticConfigProvider::new(ManagerConfig::standard_host(
            "dpss1.lbl.gov",
            "gw1.lbl.gov:8765",
            &["dpss_master"],
        ));
        // Same version as currently applied?  The provider starts at version
        // 1, the manager applied version 1 already, so nothing changes.
        assert_eq!(mgr.maybe_reload(&provider), 0);
        // Publish a new config that drops everything but CPU.
        let new_cfg = ManagerConfig::empty("dpss1.lbl.gov", "gw1.lbl.gov:8765").with_sensor(
            SensorConfigEntry {
                template: SensorTemplate::Cpu,
                frequency_secs: 2.0,
                policy: RunPolicy::Always,
            },
        );
        provider.publish(new_cfg);
        let changed = mgr.maybe_reload(&provider);
        assert!(changed > 0);
        mgr.tick(t(0.0), &stats, &ports, &gw, None);
        assert_eq!(mgr.running_sensors(), vec!["cpu".to_string()]);
        assert_eq!(mgr.status().len(), 1);
    }

    #[test]
    fn status_reflects_activity() {
        let (mut mgr, stats, ports, gw, _) = setup();
        mgr.tick(t(0.0), &stats, &ports, &gw, None);
        let status = mgr.status();
        let cpu = status.iter().find(|s| s.name == "cpu").unwrap();
        assert!(cpu.running);
        assert!(cpu.events_emitted >= 3);
        assert_eq!(cpu.last_sample, Some(t(0.0)));
        let netstat = status.iter().find(|s| s.name == "netstat").unwrap();
        assert!(!netstat.running);
        assert_eq!(netstat.events_emitted, 0);
    }

    #[test]
    fn events_flow_through_to_gateway_subscribers() {
        let (mut mgr, stats, ports, gw, _) = setup();
        let sub = gw
            .subscribe()
            .stream()
            .as_consumer("collector")
            .open()
            .unwrap();
        stats.retrans.set(5);
        mgr.tick(t(0.0), &stats, &ports, &gw, None);
        stats.retrans.set(9);
        mgr.tick(t(1.1), &stats, &ports, &gw, None);
        let events: Vec<_> = sub.events.try_iter().collect();
        assert!(events.iter().any(|e| e.event_type == "CPU_TOTAL"));
        assert!(events
            .iter()
            .any(|e| e.event_type == "TCPD_RETRANSMITS" && e.value() == Some(4.0)));
    }
}
