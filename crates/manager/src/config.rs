//! Sensor configuration.
//!
//! The configuration file lists, for one host, which sensors to run, how
//! often they sample, and under which policy they are started: always, only
//! when explicitly requested (from the sensor-control GUI), or only while
//! the port monitor sees traffic on an application's port.  "Every few
//! minutes the sensor managers check for updates to the configuration file,
//! and activate new sensors if necessary" — hence the version counter and
//! the [`ConfigProvider`] abstraction standing in for the HTTP-served file.

use jamm_core::json::{Json, Map};

/// What kind of sensor to instantiate.
#[derive(Debug, Clone, PartialEq)]
pub enum SensorTemplate {
    /// CPU utilisation sensor (`vmstat` family).
    Cpu,
    /// Free-memory sensor.
    Memory,
    /// TCP retransmission / window sensor (instrumented tcpdump family).
    Tcp,
    /// Unfiltered netstat counter sensor.
    NetstatCounter,
    /// SNMP network-device sensor for the named router/switch.
    Snmp {
        /// Device to poll.
        device: String,
    },
    /// Process liveness sensor for the named process.
    Process {
        /// Process name to watch.
        process: String,
    },
}

impl SensorTemplate {
    /// The sensor's short name as published in the directory.
    pub fn sensor_name(&self) -> String {
        match self {
            SensorTemplate::Cpu => "cpu".into(),
            SensorTemplate::Memory => "memory".into(),
            SensorTemplate::Tcp => "tcp".into(),
            SensorTemplate::NetstatCounter => "netstat".into(),
            SensorTemplate::Snmp { device } => format!("snmp-{device}"),
            SensorTemplate::Process { process } => format!("process-{process}"),
        }
    }
}

/// When a configured sensor should be running.
#[derive(Debug, Clone, PartialEq)]
pub enum RunPolicy {
    /// Run for the lifetime of the manager.
    Always,
    /// Run only after an explicit start request (sensor-control GUI / RMI).
    OnRequest,
    /// Run only while the port monitor sees traffic on this port; stop after
    /// `idle_secs` without traffic.
    PortTriggered {
        /// Port whose activity triggers the sensor.
        port: u16,
        /// Seconds of silence after which the sensor is stopped again.
        idle_secs: f64,
    },
}

/// One sensor entry in the configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorConfigEntry {
    /// What to run.
    pub template: SensorTemplate,
    /// Sampling period in seconds.
    pub frequency_secs: f64,
    /// When to run it.
    pub policy: RunPolicy,
}

/// The per-host sensor configuration file.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerConfig {
    /// Host this configuration applies to.
    pub host: String,
    /// Name of the event gateway sensors publish through.
    pub gateway: String,
    /// Monotonically increasing version; managers reload when it changes.
    pub version: u64,
    /// The sensors to manage.
    pub sensors: Vec<SensorConfigEntry>,
}

impl ManagerConfig {
    /// A configuration with no sensors.
    pub fn empty(host: impl Into<String>, gateway: impl Into<String>) -> Self {
        ManagerConfig {
            host: host.into(),
            gateway: gateway.into(),
            version: 1,
            sensors: Vec::new(),
        }
    }

    /// The default host configuration the paper describes: CPU, memory and
    /// TCP monitoring always on, plus process watching for the given
    /// processes.
    pub fn standard_host(
        host: impl Into<String>,
        gateway: impl Into<String>,
        watched_processes: &[&str],
    ) -> Self {
        let mut cfg = ManagerConfig::empty(host, gateway);
        cfg.sensors.push(SensorConfigEntry {
            template: SensorTemplate::Cpu,
            frequency_secs: 1.0,
            policy: RunPolicy::Always,
        });
        cfg.sensors.push(SensorConfigEntry {
            template: SensorTemplate::Memory,
            frequency_secs: 5.0,
            policy: RunPolicy::Always,
        });
        cfg.sensors.push(SensorConfigEntry {
            template: SensorTemplate::Tcp,
            frequency_secs: 1.0,
            policy: RunPolicy::Always,
        });
        for p in watched_processes {
            cfg.sensors.push(SensorConfigEntry {
                template: SensorTemplate::Process {
                    process: (*p).to_string(),
                },
                frequency_secs: 5.0,
                policy: RunPolicy::Always,
            });
        }
        cfg
    }

    /// Builder-style: add a sensor entry.
    pub fn with_sensor(mut self, entry: SensorConfigEntry) -> Self {
        self.sensors.push(entry);
        self
    }

    /// Serialise to the JSON configuration-file format.
    pub fn to_json(&self) -> String {
        let mut obj = Map::new();
        obj.insert("host".into(), Json::from(&self.host));
        obj.insert("gateway".into(), Json::from(&self.gateway));
        obj.insert("version".into(), Json::from(self.version));
        obj.insert(
            "sensors".into(),
            Json::Array(self.sensors.iter().map(sensor_to_json).collect()),
        );
        Json::Object(obj).to_pretty()
    }

    /// Parse the JSON configuration-file format.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| format!("invalid sensor configuration: {e}"))?;
        let host = doc["host"]
            .as_str()
            .ok_or("sensor configuration missing host")?
            .to_string();
        let gateway = doc["gateway"]
            .as_str()
            .ok_or("sensor configuration missing gateway")?
            .to_string();
        let version = doc["version"].as_u64().ok_or("missing version")?;
        let mut sensors = Vec::new();
        if let Some(list) = doc["sensors"].as_array() {
            for item in list {
                sensors.push(sensor_from_json(item)?);
            }
        }
        Ok(ManagerConfig {
            host,
            gateway,
            version,
            sensors,
        })
    }
}

fn sensor_to_json(entry: &SensorConfigEntry) -> Json {
    let mut obj = Map::new();
    let (template, extra) = match &entry.template {
        SensorTemplate::Cpu => ("cpu", None),
        SensorTemplate::Memory => ("memory", None),
        SensorTemplate::Tcp => ("tcp", None),
        SensorTemplate::NetstatCounter => ("netstat", None),
        SensorTemplate::Snmp { device } => ("snmp", Some(("device", device.clone()))),
        SensorTemplate::Process { process } => ("process", Some(("process", process.clone()))),
    };
    obj.insert("template".into(), Json::from(template));
    if let Some((key, value)) = extra {
        obj.insert(key.into(), Json::from(value));
    }
    obj.insert("frequency_secs".into(), Json::from(entry.frequency_secs));
    match &entry.policy {
        RunPolicy::Always => {
            obj.insert("policy".into(), Json::from("always"));
        }
        RunPolicy::OnRequest => {
            obj.insert("policy".into(), Json::from("on_request"));
        }
        RunPolicy::PortTriggered { port, idle_secs } => {
            obj.insert("policy".into(), Json::from("port_triggered"));
            obj.insert("port".into(), Json::from(*port as u64));
            obj.insert("idle_secs".into(), Json::from(*idle_secs));
        }
    }
    Json::Object(obj)
}

fn sensor_from_json(v: &Json) -> Result<SensorConfigEntry, String> {
    let template = match v["template"].as_str().ok_or("sensor missing template")? {
        "cpu" => SensorTemplate::Cpu,
        "memory" => SensorTemplate::Memory,
        "tcp" => SensorTemplate::Tcp,
        "netstat" => SensorTemplate::NetstatCounter,
        "snmp" => SensorTemplate::Snmp {
            device: v["device"]
                .as_str()
                .ok_or("snmp sensor missing device")?
                .to_string(),
        },
        "process" => SensorTemplate::Process {
            process: v["process"]
                .as_str()
                .ok_or("process sensor missing process")?
                .to_string(),
        },
        other => return Err(format!("unknown sensor template {other:?}")),
    };
    let frequency_secs = v["frequency_secs"]
        .as_f64()
        .ok_or("sensor missing frequency_secs")?;
    let policy = match v["policy"].as_str().ok_or("sensor missing policy")? {
        "always" => RunPolicy::Always,
        "on_request" => RunPolicy::OnRequest,
        "port_triggered" => RunPolicy::PortTriggered {
            port: v["port"]
                .as_u64()
                .ok_or("port_triggered policy missing port")? as u16,
            idle_secs: v["idle_secs"]
                .as_f64()
                .ok_or("port_triggered policy missing idle_secs")?,
        },
        other => return Err(format!("unknown run policy {other:?}")),
    };
    Ok(SensorConfigEntry {
        template,
        frequency_secs,
        policy,
    })
}

/// Source of configuration updates (stands in for the HTTP-served file the
/// managers poll every few minutes).
pub trait ConfigProvider {
    /// The currently published configuration.
    fn current(&self) -> ManagerConfig;
}

/// A simple in-memory provider used by tests and examples.
#[derive(Debug, Clone)]
pub struct StaticConfigProvider {
    config: std::sync::Arc<jamm_core::sync::RwLock<ManagerConfig>>,
}

impl StaticConfigProvider {
    /// Wrap an initial configuration.
    pub fn new(config: ManagerConfig) -> Self {
        StaticConfigProvider {
            config: std::sync::Arc::new(jamm_core::sync::RwLock::new(config)),
        }
    }

    /// Publish an updated configuration (bumps the version automatically if
    /// the caller forgot to).
    pub fn publish(&self, mut config: ManagerConfig) {
        let mut cur = self.config.write();
        if config.version <= cur.version {
            config.version = cur.version + 1;
        }
        *cur = config;
    }
}

impl ConfigProvider for StaticConfigProvider {
    fn current(&self) -> ManagerConfig {
        self.config.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_host_config_contents() {
        let cfg = ManagerConfig::standard_host("dpss1.lbl.gov", "gw1", &["dpss_master"]);
        assert_eq!(cfg.sensors.len(), 4);
        assert!(cfg
            .sensors
            .iter()
            .any(|s| matches!(&s.template, SensorTemplate::Process { process } if process == "dpss_master")));
        assert!(cfg.sensors.iter().all(|s| s.policy == RunPolicy::Always));
    }

    #[test]
    fn json_round_trip() {
        let cfg =
            ManagerConfig::standard_host("h", "gw", &["worker"]).with_sensor(SensorConfigEntry {
                template: SensorTemplate::Snmp {
                    device: "lbl-border-router".into(),
                },
                frequency_secs: 30.0,
                policy: RunPolicy::PortTriggered {
                    port: 7_000,
                    idle_secs: 60.0,
                },
            });
        let json = cfg.to_json();
        let back = ManagerConfig::from_json(&json).unwrap();
        assert_eq!(back, cfg);
        assert!(ManagerConfig::from_json("not json").is_err());
    }

    #[test]
    fn sensor_names_are_stable() {
        assert_eq!(SensorTemplate::Cpu.sensor_name(), "cpu");
        assert_eq!(
            SensorTemplate::Snmp {
                device: "sw1".into()
            }
            .sensor_name(),
            "snmp-sw1"
        );
        assert_eq!(
            SensorTemplate::Process {
                process: "dpss_master".into()
            }
            .sensor_name(),
            "process-dpss_master"
        );
    }

    #[test]
    fn provider_bumps_versions() {
        let provider = StaticConfigProvider::new(ManagerConfig::empty("h", "gw"));
        assert_eq!(provider.current().version, 1);
        let mut updated = provider.current();
        updated.sensors.push(SensorConfigEntry {
            template: SensorTemplate::Cpu,
            frequency_secs: 1.0,
            policy: RunPolicy::Always,
        });
        provider.publish(updated);
        assert_eq!(provider.current().version, 2);
        assert_eq!(provider.current().sensors.len(), 1);
    }
}
