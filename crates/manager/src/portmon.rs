//! The port monitor agent.
//!
//! "An important component of the JAMM sensor manager is the port monitor
//! agent.  This agent monitors traffic on specified ports, and starts
//! sensors only when network traffic on that port is detected. ...  The port
//! monitor has proven itself to be a very useful component, greatly reducing
//! the total amount of monitoring data that must be collected and managed."
//! (§2.2)

use std::collections::HashMap;

use jamm_ulm::Timestamp;

/// Tracks activity on a set of watched ports and decides which are "active"
/// (traffic seen within the idle timeout).
#[derive(Debug, Default)]
pub struct PortMonitorAgent {
    /// Watched ports and their idle timeout in seconds.
    watched: HashMap<u16, f64>,
    /// Last time traffic was seen on each port.
    last_seen: HashMap<u16, Timestamp>,
    /// Cumulative bytes observed per port.
    bytes_seen: HashMap<u16, u64>,
}

impl PortMonitorAgent {
    /// Create an agent with no watched ports.
    pub fn new() -> Self {
        PortMonitorAgent::default()
    }

    /// Watch a port; sensors triggered by it stay on for `idle_secs` after
    /// the last observed traffic.  Re-watching a port updates its timeout
    /// (the port-monitor GUI can "reconfigure the type of monitoring to be
    /// done when a port is active, or add a new port of interest").
    pub fn watch(&mut self, port: u16, idle_secs: f64) {
        self.watched.insert(port, idle_secs.max(0.0));
    }

    /// Stop watching a port.
    pub fn unwatch(&mut self, port: u16) {
        self.watched.remove(&port);
        self.last_seen.remove(&port);
    }

    /// The watched ports.
    pub fn watched_ports(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self.watched.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Report observed traffic (bytes delivered on a port during the last
    /// monitoring interval).  Zero bytes are ignored.
    pub fn observe(&mut self, port: u16, bytes: u64, now: Timestamp) {
        if bytes == 0 || !self.watched.contains_key(&port) {
            return;
        }
        self.last_seen.insert(port, now);
        *self.bytes_seen.entry(port).or_insert(0) += bytes;
    }

    /// Whether the port is currently considered active at time `now`.
    pub fn is_active(&self, port: u16, now: Timestamp) -> bool {
        let Some(idle_secs) = self.watched.get(&port) else {
            return false;
        };
        let Some(last) = self.last_seen.get(&port) else {
            return false;
        };
        let idle_us = (*idle_secs * 1e6) as u64;
        now.as_micros() <= last.as_micros() + idle_us
    }

    /// All ports currently active at `now`.
    pub fn active_ports(&self, now: Timestamp) -> Vec<u16> {
        let mut v: Vec<u16> = self
            .watched
            .keys()
            .copied()
            .filter(|p| self.is_active(*p, now))
            .collect();
        v.sort_unstable();
        v
    }

    /// Total bytes observed on a port since the agent started.
    pub fn bytes_on_port(&self, port: u16) -> u64 {
        self.bytes_seen.get(&port).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> Timestamp {
        Timestamp::from_secs_f64(secs)
    }

    #[test]
    fn activity_turns_ports_on_and_idle_turns_them_off() {
        let mut pm = PortMonitorAgent::new();
        pm.watch(21, 10.0); // FTP with a 10 s idle timeout
        pm.watch(7_000, 5.0); // DPSS data port
        assert_eq!(pm.watched_ports(), vec![21, 7_000]);
        assert!(!pm.is_active(21, t(0.0)), "no traffic yet");

        pm.observe(21, 50_000, t(1.0));
        assert!(pm.is_active(21, t(1.0)));
        assert!(pm.is_active(21, t(10.9)), "within the idle timeout");
        assert!(!pm.is_active(21, t(11.5)), "idle timeout expired");

        // Fresh traffic re-activates.
        pm.observe(21, 10_000, t(20.0));
        assert!(pm.is_active(21, t(25.0)));
        assert_eq!(pm.bytes_on_port(21), 60_000);
    }

    #[test]
    fn unwatched_ports_are_ignored() {
        let mut pm = PortMonitorAgent::new();
        pm.watch(21, 10.0);
        pm.observe(8_080, 1_000_000, t(1.0));
        assert!(!pm.is_active(8_080, t(1.0)));
        assert_eq!(pm.bytes_on_port(8_080), 0);
        pm.unwatch(21);
        pm.observe(21, 1_000, t(2.0));
        assert!(!pm.is_active(21, t(2.0)));
        assert!(pm.active_ports(t(2.0)).is_empty());
    }

    #[test]
    fn zero_byte_observations_do_not_activate() {
        let mut pm = PortMonitorAgent::new();
        pm.watch(21, 10.0);
        pm.observe(21, 0, t(1.0));
        assert!(!pm.is_active(21, t(1.0)));
    }

    #[test]
    fn active_ports_lists_only_currently_active() {
        let mut pm = PortMonitorAgent::new();
        pm.watch(21, 2.0);
        pm.watch(22, 2.0);
        pm.watch(23, 2.0);
        pm.observe(21, 100, t(0.0));
        assert_eq!(pm.active_ports(t(1.0)), vec![21]);
        pm.observe(23, 100, t(5.0));
        assert_eq!(pm.active_ports(t(5.5)), vec![23]);
    }
}
