//! Connection state: inbound buffer, frame-aligned backpressured outbox,
//! and the per-connection counters that make slow consumers observable.
//!
//! The outbox is the backpressure point of the whole network edge.  Frames
//! are queued as `Arc<Vec<u8>>` — a broadcast enqueues the *same* encoded
//! bytes on every subscriber (encode once, write N; the only per-connection
//! cost is a refcount bump).  When a consumer falls behind, the queue's
//! byte budget is enforced with the pipeline's own
//! [`OverflowPolicy`]:
//!
//! * `DropOldest` evicts whole frames from the front of the queue — but
//!   never the head frame once part of it has been written, so the byte
//!   stream stays frame-aligned and the peer's decoder never desyncs;
//! * `DropNewest` rejects the incoming frame and keeps what is queued.

use jamm_core::OverflowPolicy;
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-connection atomic counters, shared between the event loop (writer)
/// and observers such as `admin_stats` (readers).
#[derive(Debug, Default)]
pub struct SocketCounters {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    frames_out: AtomicU64,
    queued_bytes: AtomicU64,
    queued_frames: AtomicU64,
    dropped_frames: AtomicU64,
    dropped_bytes: AtomicU64,
    stalls: AtomicU64,
}

impl SocketCounters {
    /// Fresh zeroed counters.
    pub fn new() -> SocketCounters {
        SocketCounters::default()
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> SocketStats {
        SocketStats {
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            queued_bytes: self.queued_bytes.load(Ordering::Relaxed),
            queued_frames: self.queued_frames.load(Ordering::Relaxed),
            dropped_frames: self.dropped_frames.load(Ordering::Relaxed),
            dropped_bytes: self.dropped_bytes.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
        }
    }

    fn add_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    fn add_out(&self, bytes: u64, frames: u64) {
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
        self.frames_out.fetch_add(frames, Ordering::Relaxed);
    }

    fn add_dropped(&self, frames: u64, bytes: u64) {
        self.dropped_frames.fetch_add(frames, Ordering::Relaxed);
        self.dropped_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    fn add_stall(&self) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
    }

    fn set_queued(&self, bytes: u64, frames: u64) {
        self.queued_bytes.store(bytes, Ordering::Relaxed);
        self.queued_frames.store(frames, Ordering::Relaxed);
    }
}

/// Plain-data snapshot of [`SocketCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketStats {
    /// Bytes read from the peer.
    pub bytes_in: u64,
    /// Bytes written to the peer.
    pub bytes_out: u64,
    /// Whole frames fully written to the peer.
    pub frames_out: u64,
    /// Bytes currently waiting in the outbox (gauge).
    pub queued_bytes: u64,
    /// Frames currently waiting in the outbox (gauge).
    pub queued_frames: u64,
    /// Frames evicted or rejected by the overflow policy.
    pub dropped_frames: u64,
    /// Bytes those dropped frames held.
    pub dropped_bytes: u64,
    /// Times a write hit `EWOULDBLOCK` with data still queued — each one is
    /// a moment the peer's socket buffer was full.
    pub stalls: u64,
}

/// Result of queueing a frame on an [`Outbox`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Queued; nothing was displaced.
    Queued,
    /// Queued after evicting this many older frames (`DropOldest`).
    QueuedEvicting(u64),
    /// Rejected because the queue is full (`DropNewest`).
    Rejected,
}

/// Outcome of one [`Outbox::write_to`] flush.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flush {
    /// Bytes written in this flush.
    pub written: usize,
    /// Whole frames completed in this flush.
    pub frames_completed: u64,
    /// The write stopped on `EWOULDBLOCK` (socket buffer full).
    pub blocked: bool,
}

/// Frame-aligned outbound queue with a byte budget and an overflow policy.
#[derive(Debug)]
pub struct Outbox {
    frames: VecDeque<Arc<Vec<u8>>>,
    /// Bytes of the head frame already written to the socket.
    head_offset: usize,
    /// Bytes still to be written across all queued frames.
    queued_bytes: usize,
    capacity: usize,
    policy: OverflowPolicy,
}

/// Most slices handed to one `writev` call.
const MAX_SLICES: usize = 32;

impl Outbox {
    /// An empty outbox holding at most `capacity` queued bytes.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Outbox {
        Outbox {
            frames: VecDeque::new(),
            head_offset: 0,
            queued_bytes: 0,
            capacity: capacity.max(1),
            policy,
        }
    }

    /// True when nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Bytes still to be written.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Frames still queued (including a partially written head).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Queue a frame, applying the overflow policy against the byte budget.
    ///
    /// Returns what happened plus, for evictions, how many bytes were
    /// displaced (via [`PushOutcome::QueuedEvicting`] and the second tuple
    /// element).
    pub fn push(&mut self, frame: Arc<Vec<u8>>) -> (PushOutcome, u64) {
        let len = frame.len();
        if len == 0 {
            return (PushOutcome::Queued, 0);
        }
        match self.policy {
            OverflowPolicy::DropNewest => {
                if self.queued_bytes + len > self.capacity {
                    return (PushOutcome::Rejected, len as u64);
                }
                self.queued_bytes += len;
                self.frames.push_back(frame);
                (PushOutcome::Queued, 0)
            }
            OverflowPolicy::DropOldest => {
                let mut evicted = 0u64;
                let mut evicted_bytes = 0u64;
                while self.queued_bytes + len > self.capacity {
                    // Never evict the head frame once part of it has been
                    // written: a truncated frame would desync the peer's
                    // decoder.  Everything behind it is fair game.
                    let from = usize::from(self.head_offset > 0);
                    if self.frames.len() <= from {
                        break;
                    }
                    let victim = self.frames.remove(from).expect("index checked");
                    self.queued_bytes -= victim.len();
                    evicted += 1;
                    evicted_bytes += victim.len() as u64;
                }
                self.queued_bytes += len;
                self.frames.push_back(frame);
                if evicted > 0 {
                    (PushOutcome::QueuedEvicting(evicted), evicted_bytes)
                } else {
                    (PushOutcome::Queued, 0)
                }
            }
        }
    }

    /// Write up to `budget` queued bytes with vectored writes.
    ///
    /// Stops early on `EWOULDBLOCK` (reported via [`Flush::blocked`], not an
    /// error); `EINTR` is retried.
    pub fn write_to<W: Write>(&mut self, w: &mut W, budget: usize) -> io::Result<Flush> {
        let mut flush = Flush::default();
        let empty: &[u8] = &[];
        while !self.frames.is_empty() && flush.written < budget {
            let remaining = budget - flush.written;
            let mut slices = [IoSlice::new(empty); MAX_SLICES];
            let mut n = 0;
            let mut filled = 0usize;
            for (i, frame) in self.frames.iter().enumerate() {
                if n == MAX_SLICES || filled >= remaining {
                    break;
                }
                let body = if i == 0 {
                    &frame[self.head_offset..]
                } else {
                    &frame[..]
                };
                let take = body.len().min(remaining - filled);
                slices[n] = IoSlice::new(&body[..take]);
                n += 1;
                filled += take;
            }
            if n == 0 {
                break;
            }
            match w.write_vectored(&slices[..n]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(k) => {
                    flush.written += k;
                    flush.frames_completed += self.advance(k);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    flush.blocked = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(flush)
    }

    /// Account for `written` bytes leaving the queue; returns completed
    /// frame count.
    fn advance(&mut self, mut written: usize) -> u64 {
        let mut completed = 0u64;
        self.queued_bytes = self.queued_bytes.saturating_sub(written);
        while written > 0 {
            let head_left = self.frames[0].len() - self.head_offset;
            if written >= head_left {
                self.frames.pop_front();
                self.head_offset = 0;
                written -= head_left;
                completed += 1;
            } else {
                self.head_offset += written;
                written = 0;
            }
        }
        completed
    }
}

/// Most bytes read from one connection per readiness event, so a firehose
/// peer cannot starve the rest of the loop.
const READ_BUDGET: usize = 256 * 1024;

/// One nonblocking connection owned by the event loop.
#[derive(Debug)]
pub struct Conn {
    id: u64,
    stream: TcpStream,
    peer: String,
    inbuf: Vec<u8>,
    outbox: Outbox,
    counters: Arc<SocketCounters>,
    closing: bool,
    last_activity: Instant,
}

impl Conn {
    /// Wrap an already-nonblocking stream.
    pub fn new(
        id: u64,
        stream: TcpStream,
        peer: String,
        outbox_capacity: usize,
        policy: OverflowPolicy,
    ) -> Conn {
        Conn {
            id,
            stream,
            peer,
            inbuf: Vec::new(),
            outbox: Outbox::new(outbox_capacity, policy),
            counters: Arc::new(SocketCounters::new()),
            closing: false,
            last_activity: Instant::now(),
        }
    }

    /// The connection id (also its poller token).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The peer address, as a display string.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// The shared counters.
    pub fn counters(&self) -> &Arc<SocketCounters> {
        &self.counters
    }

    /// True once a graceful close was requested; the loop flushes the
    /// outbox and then closes.
    pub fn is_closing(&self) -> bool {
        self.closing
    }

    /// Request a graceful close (flush queued frames, then close).
    pub fn begin_close(&mut self) {
        self.closing = true;
    }

    /// When the connection last made byte progress in either direction.
    pub fn last_activity(&self) -> Instant {
        self.last_activity
    }

    pub(crate) fn poller_source(&self) -> crate::poller::Source {
        crate::poller::Source::new(&self.stream)
    }

    /// Read until `EWOULDBLOCK`, EOF or the per-event budget into the
    /// internal buffer; returns `(bytes_read, eof)`.
    pub(crate) fn fill_inbuf(&mut self, scratch: &mut [u8]) -> io::Result<(usize, bool)> {
        let mut total = 0usize;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return Ok((total, true)),
                Ok(n) => {
                    self.inbuf.extend_from_slice(&scratch[..n]);
                    total += n;
                    self.counters.add_in(n as u64);
                    self.last_activity = Instant::now();
                    if total >= READ_BUDGET {
                        return Ok((total, false));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok((total, false)),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::ConnectionReset => return Ok((total, true)),
                Err(e) => return Err(e),
            }
        }
    }

    /// Take the buffered inbound bytes (handler dispatch uses this to avoid
    /// aliasing the connection while the handler runs).
    pub(crate) fn take_inbuf(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.inbuf)
    }

    /// Put unconsumed inbound bytes back.
    pub(crate) fn restore_inbuf(&mut self, buf: Vec<u8>) {
        debug_assert!(self.inbuf.is_empty());
        self.inbuf = buf;
    }

    /// Queue one encoded frame, updating drop counters per the policy.
    pub fn enqueue(&mut self, frame: Arc<Vec<u8>>) -> PushOutcome {
        let (outcome, displaced) = self.outbox.push(frame);
        match outcome {
            PushOutcome::Queued => {}
            PushOutcome::QueuedEvicting(n) => self.counters.add_dropped(n, displaced),
            PushOutcome::Rejected => self.counters.add_dropped(1, displaced),
        }
        self.counters
            .set_queued(self.outbox.queued_bytes() as u64, self.outbox.len() as u64);
        outcome
    }

    /// Flush up to `budget` bytes of the outbox to the socket.
    pub(crate) fn flush(&mut self, budget: usize) -> io::Result<Flush> {
        if self.outbox.is_empty() {
            return Ok(Flush::default());
        }
        let flush = self.outbox.write_to(&mut self.stream, budget)?;
        if flush.written > 0 {
            self.counters
                .add_out(flush.written as u64, flush.frames_completed);
            self.last_activity = Instant::now();
        }
        if flush.blocked && !self.outbox.is_empty() {
            self.counters.add_stall();
        }
        self.counters
            .set_queued(self.outbox.queued_bytes() as u64, self.outbox.len() as u64);
        Ok(flush)
    }

    /// True when queued bytes are waiting on the socket.
    pub fn wants_write(&self) -> bool {
        !self.outbox.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize, byte: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![byte; n])
    }

    /// A writer that accepts a fixed number of bytes, then blocks.
    struct Throttle {
        accept: usize,
        sink: Vec<u8>,
    }

    impl Write for Throttle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.accept == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.accept);
            self.accept -= n;
            self.sink.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn drop_newest_rejects_when_full() {
        let mut ob = Outbox::new(10, OverflowPolicy::DropNewest);
        assert_eq!(ob.push(frame(6, b'a')).0, PushOutcome::Queued);
        assert_eq!(ob.push(frame(6, b'b')).0, PushOutcome::Rejected);
        assert_eq!(ob.queued_bytes(), 6);
    }

    #[test]
    fn drop_oldest_evicts_whole_frames() {
        let mut ob = Outbox::new(10, OverflowPolicy::DropOldest);
        ob.push(frame(4, b'a'));
        ob.push(frame(4, b'b'));
        let (outcome, bytes) = ob.push(frame(8, b'c'));
        assert_eq!(outcome, PushOutcome::QueuedEvicting(2));
        assert_eq!(bytes, 8);
        assert_eq!(ob.len(), 1);
        assert_eq!(ob.queued_bytes(), 8);
    }

    #[test]
    fn partially_written_head_is_never_evicted() {
        let mut ob = Outbox::new(10, OverflowPolicy::DropOldest);
        ob.push(frame(8, b'a'));
        let mut w = Throttle {
            accept: 3,
            sink: Vec::new(),
        };
        let f = ob.write_to(&mut w, usize::MAX).unwrap();
        assert_eq!(f.written, 3);
        assert!(f.blocked);
        // Overflow with the head partially written: the head survives, so
        // the stream stays frame-aligned.
        let (outcome, _) = ob.push(frame(9, b'b'));
        assert_eq!(outcome, PushOutcome::Queued);
        assert_eq!(ob.len(), 2);
        let mut w2 = Throttle {
            accept: usize::MAX,
            sink: Vec::new(),
        };
        let f2 = ob.write_to(&mut w2, usize::MAX).unwrap();
        assert_eq!(f2.frames_completed, 2);
        let mut expect = vec![b'a'; 5];
        expect.extend_from_slice(&[b'b'; 9]);
        assert_eq!(w2.sink, expect);
    }

    #[test]
    fn partial_writes_resume_mid_frame() {
        let mut ob = Outbox::new(1024, OverflowPolicy::DropOldest);
        ob.push(frame(100, b'x'));
        ob.push(frame(50, b'y'));
        let mut got = Vec::new();
        while !ob.is_empty() {
            let mut w = Throttle {
                accept: 7,
                sink: Vec::new(),
            };
            ob.write_to(&mut w, usize::MAX).unwrap();
            got.extend_from_slice(&w.sink);
        }
        let mut expect = vec![b'x'; 100];
        expect.extend_from_slice(&[b'y'; 50]);
        assert_eq!(got, expect);
    }

    #[test]
    fn write_budget_caps_a_flush() {
        let mut ob = Outbox::new(usize::MAX, OverflowPolicy::DropOldest);
        for _ in 0..10 {
            ob.push(frame(100, b'z'));
        }
        let mut w = Throttle {
            accept: usize::MAX,
            sink: Vec::new(),
        };
        let f = ob.write_to(&mut w, 250).unwrap();
        assert_eq!(f.written, 250);
        assert_eq!(f.frames_completed, 2);
        assert_eq!(ob.queued_bytes(), 750);
    }

    #[test]
    fn broadcast_frames_share_one_allocation() {
        let shared = frame(64, b's');
        let mut a = Outbox::new(1024, OverflowPolicy::DropOldest);
        let mut b = Outbox::new(1024, OverflowPolicy::DropOldest);
        a.push(shared.clone());
        b.push(shared.clone());
        // One payload allocation, three handles: encode once, write N.
        assert_eq!(Arc::strong_count(&shared), 3);
    }
}
