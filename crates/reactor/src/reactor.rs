//! The event loop: one thread driving every socket of the network edge.
//!
//! A [`Reactor`] owns a [`Poller`], a [`TimerWheel`] and a set of
//! connections, all serviced by a single loop thread.  Other threads talk
//! to the loop through a command queue paired with a [`Waker`], so every
//! handle method is nonblocking:
//!
//! ```text
//!            Reactor handle (any thread)
//!   listen / adopt / send / broadcast / close / shutdown
//!                    │  commands + wakeup
//!                    ▼
//!   ┌─────────────── event-loop thread ────────────────┐
//!   │ poll ─► accept ─► read ─► handler ─► outbox ─► … │
//!   │   ▲                 timer wheel (idle timeouts)  │
//!   └───┴──────────────────────────────────────────────┘
//! ```
//!
//! Handlers run on the loop thread and must not block; they consume
//! inbound bytes and queue outbound frames through [`ConnIo`].  Outbound
//! frames are `Arc<Vec<u8>>`, so a broadcast enqueues one allocation on
//! every subscriber — encode once, write N.

use crate::conn::{Conn, PushOutcome, SocketCounters, SocketStats};
use crate::poller::{drain_wakeups, Backend, Interest, Poller, Readiness, Source, Waker};
use crate::timer::TimerWheel;
use jamm_core::channel::{unbounded, Receiver, Sender};
use jamm_core::sync::Mutex;
use jamm_core::OverflowPolicy;
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifies a connection on a reactor (also its poller token).
pub type ConnId = u64;

/// Identifies a listening socket on a reactor.
pub type ListenerId = u64;

/// Why a connection was closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed or reset the stream.
    PeerClosed,
    /// No byte progress in either direction within the idle timeout.
    IdleTimeout,
    /// A handler or handle asked for the close.
    Requested,
    /// The reactor shut down (after draining queued frames).
    Drained,
    /// An I/O error on the socket.
    Error(String),
}

/// Tuning for [`Reactor::start`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Readiness backend (defaults to the platform's best).
    pub backend: Backend,
    /// Most simultaneous connections; accepts beyond this are refused.
    pub max_connections: usize,
    /// Most outbound bytes written per connection per flush.
    pub write_budget: usize,
    /// Byte budget of each connection's outbound queue.
    pub outbox_capacity: usize,
    /// What a full outbound queue does to new frames.
    pub overflow: OverflowPolicy,
    /// Close connections with no byte progress for this long.
    pub idle_timeout: Option<Duration>,
    /// How long shutdown waits for queued frames to drain.
    pub drain_timeout: Duration,
    /// Name of the loop thread.
    pub thread_name: String,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            backend: Backend::native(),
            max_connections: 16_384,
            write_budget: 256 * 1024,
            outbox_capacity: 4 * 1024 * 1024,
            overflow: OverflowPolicy::DropOldest,
            idle_timeout: None,
            drain_timeout: Duration::from_secs(2),
            thread_name: "jamm-reactor".to_string(),
        }
    }
}

/// Callbacks for one connection, invoked on the loop thread.
///
/// Handlers must not block: they consume inbound bytes, queue outbound
/// frames and return.
pub trait ConnHandler: Send {
    /// The connection is registered and writable state is fresh.
    fn on_open(&mut self, _io: &mut ConnIo<'_>) {}

    /// Buffered inbound bytes are available.  Return how many bytes of
    /// `buf` were consumed; the rest is kept and re-presented (with more
    /// data appended) on the next read.
    fn on_data(&mut self, io: &mut ConnIo<'_>, buf: &[u8]) -> usize;

    /// The connection is gone.  Always the last callback.
    fn on_close(&mut self, _id: ConnId, _reason: &CloseReason) {}
}

/// Builds a [`ConnHandler`] for each connection a listener accepts.
pub trait Acceptor: Send {
    /// Called on the loop thread for every accepted connection.
    fn accept(&mut self, id: ConnId, peer: &str) -> Box<dyn ConnHandler>;
}

impl<F> Acceptor for F
where
    F: FnMut(ConnId, &str) -> Box<dyn ConnHandler> + Send,
{
    fn accept(&mut self, id: ConnId, peer: &str) -> Box<dyn ConnHandler> {
        self(id, peer)
    }
}

/// Handler-side view of the connection being serviced.
pub struct ConnIo<'a> {
    conn: &'a mut Conn,
}

impl ConnIo<'_> {
    /// The connection id.
    pub fn id(&self) -> ConnId {
        self.conn.id()
    }

    /// The peer address.
    pub fn peer(&self) -> &str {
        self.conn.peer()
    }

    /// Queue one encoded frame; the loop flushes it after the handler
    /// returns.
    pub fn send(&mut self, frame: Arc<Vec<u8>>) -> PushOutcome {
        self.conn.enqueue(frame)
    }

    /// Request a graceful close: queued frames are flushed first.
    pub fn close(&mut self) {
        self.conn.begin_close();
    }

    /// The connection's shared counters.
    pub fn counters(&self) -> &Arc<SocketCounters> {
        self.conn.counters()
    }
}

/// One row of [`Reactor::socket_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketRow {
    /// Connection id.
    pub conn: ConnId,
    /// Peer address.
    pub peer: String,
    /// The listener that accepted it, or `None` for adopted (outbound)
    /// connections.
    pub listener: Option<ListenerId>,
    /// Counter snapshot.
    pub stats: SocketStats,
}

enum Cmd {
    Listen {
        id: ListenerId,
        listener: TcpListener,
        acceptor: Box<dyn Acceptor>,
    },
    Adopt {
        id: ConnId,
        stream: TcpStream,
        handler: Box<dyn ConnHandler>,
    },
    Send {
        conn: ConnId,
        frame: Arc<Vec<u8>>,
        strict: bool,
    },
    Broadcast {
        listener: ListenerId,
        frame: Arc<Vec<u8>>,
    },
    Close {
        conn: ConnId,
    },
    Unlisten {
        listener: ListenerId,
        close_conns: bool,
    },
    Shutdown,
}

struct RegEntry {
    peer: String,
    listener: Option<ListenerId>,
    counters: Arc<SocketCounters>,
}

#[derive(Default)]
struct Shared {
    registry: Mutex<HashMap<ConnId, RegEntry>>,
    conn_count: AtomicUsize,
    refused: AtomicU64,
    next_id: AtomicU64,
    ticks: AtomicU64,
    poll_wait_ns: AtomicU64,
    dispatch_ns: AtomicU64,
}

/// Point-in-time copy of the event loop's saturation counters: how the
/// loop thread's time divides between waiting in `poll(2)` and dispatching
/// ready work.  A loop spending most of its time dispatching is the
/// single-threaded edge's bottleneck signal — it has no headroom for more
/// subscribers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Completed loop iterations.
    pub ticks: u64,
    /// Nanoseconds spent blocked in the poller waiting for readiness.
    pub poll_wait_ns: u64,
    /// Nanoseconds spent dispatching ready sockets, commands and timers.
    pub dispatch_ns: u64,
}

impl LoopStats {
    /// Fraction of loop time spent dispatching (0.0 = idle, 1.0 = saturated).
    pub fn saturation(&self) -> f64 {
        let total = self.poll_wait_ns + self.dispatch_ns;
        if total == 0 {
            0.0
        } else {
            self.dispatch_ns as f64 / total as f64
        }
    }
}

/// Handle to a running reactor.  All methods are nonblocking except
/// [`Reactor::shutdown`]; the handle is `Send + Sync` and usable behind an
/// `Arc` from any number of threads.
pub struct Reactor {
    cmds: Sender<Cmd>,
    waker: Waker,
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("connections", &self.connections())
            .finish()
    }
}

impl Reactor {
    /// Spawn the event-loop thread.
    pub fn start(config: ReactorConfig) -> io::Result<Reactor> {
        let (tx, rx) = unbounded();
        let (waker, wake_rx) = Waker::pair()?;
        let shared = Arc::new(Shared {
            // Token 0 is reserved for the waker.
            next_id: AtomicU64::new(1),
            ..Shared::default()
        });
        let name = config.thread_name.clone();
        let lp = EventLoop::new(config, rx, wake_rx, Arc::clone(&shared));
        let thread = std::thread::Builder::new()
            .name(name)
            .spawn(move || lp.run())?;
        Ok(Reactor {
            cmds: tx,
            waker,
            shared,
            thread: Mutex::new(Some(thread)),
        })
    }

    fn submit(&self, cmd: Cmd) {
        if self.cmds.send(cmd).is_ok() {
            self.waker.wake();
        }
    }

    /// Register a listening socket; `acceptor` builds a handler for every
    /// connection it accepts.
    pub fn listen(
        &self,
        listener: TcpListener,
        acceptor: Box<dyn Acceptor>,
    ) -> io::Result<ListenerId> {
        listener.set_nonblocking(true)?;
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.submit(Cmd::Listen {
            id,
            listener,
            acceptor,
        });
        Ok(id)
    }

    /// Hand an already-connected stream to the loop (the outbound/client
    /// side of the edge).
    pub fn adopt(&self, stream: TcpStream, handler: Box<dyn ConnHandler>) -> io::Result<ConnId> {
        stream.set_nonblocking(true)?;
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.submit(Cmd::Adopt {
            id,
            stream,
            handler,
        });
        Ok(id)
    }

    /// Queue one encoded frame on one connection.  A full outbox applies
    /// the configured overflow policy (frames may be dropped, counted in
    /// the connection's [`SocketStats`]).
    pub fn send(&self, conn: ConnId, frame: Arc<Vec<u8>>) {
        self.submit(Cmd::Send {
            conn,
            frame,
            strict: false,
        });
    }

    /// Like [`Reactor::send`], but a frame the outbox cannot take without
    /// dropping anything closes the connection (flush what is queued,
    /// then drop) instead of applying the overflow policy.  For
    /// request/response protocols where a lost frame desyncs the peer,
    /// closing is the only safe overflow behavior.
    pub fn send_strict(&self, conn: ConnId, frame: Arc<Vec<u8>>) {
        self.submit(Cmd::Send {
            conn,
            frame,
            strict: true,
        });
    }

    /// Queue the same encoded frame on every connection accepted by
    /// `listener` — encode once, write N.
    pub fn broadcast(&self, listener: ListenerId, frame: Arc<Vec<u8>>) {
        self.submit(Cmd::Broadcast { listener, frame });
    }

    /// Request a graceful close of one connection.
    pub fn close(&self, conn: ConnId) {
        self.submit(Cmd::Close { conn });
    }

    /// Stop accepting on one listener.  With `close_conns`, also gracefully
    /// close (flush, then drop) every connection it accepted — other
    /// listeners and adopted connections are untouched, so several edges
    /// can share one reactor and tear down independently.
    pub fn unlisten(&self, listener: ListenerId, close_conns: bool) {
        self.submit(Cmd::Unlisten {
            listener,
            close_conns,
        });
    }

    /// Live connection count.
    pub fn connections(&self) -> usize {
        self.shared.conn_count.load(Ordering::Relaxed)
    }

    /// Accepts refused because `max_connections` was reached.
    pub fn refused(&self) -> u64 {
        self.shared.refused.load(Ordering::Relaxed)
    }

    /// Saturation counters for the loop thread: poll-wait vs dispatch time.
    pub fn loop_stats(&self) -> LoopStats {
        LoopStats {
            ticks: self.shared.ticks.load(Ordering::Relaxed),
            poll_wait_ns: self.shared.poll_wait_ns.load(Ordering::Relaxed),
            dispatch_ns: self.shared.dispatch_ns.load(Ordering::Relaxed),
        }
    }

    /// Counter snapshot of every live connection, ordered by id.
    pub fn socket_stats(&self) -> Vec<SocketRow> {
        let reg = self.shared.registry.lock();
        let mut rows: Vec<SocketRow> = reg
            .iter()
            .map(|(&conn, e)| SocketRow {
                conn,
                peer: e.peer.clone(),
                listener: e.listener,
                stats: e.counters.snapshot(),
            })
            .collect();
        rows.sort_by_key(|r| r.conn);
        rows
    }

    /// Drain outbound queues, close every connection and stop the loop.
    /// Blocks until the loop thread exits; idempotent.
    pub fn shutdown(&self) {
        let handle = self.thread.lock().take();
        if let Some(handle) = handle {
            self.submit(Cmd::Shutdown);
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

const WAKE_TOKEN: u64 = 0;
const TIMER_TICK: Duration = Duration::from_millis(25);
const TIMER_SLOTS: usize = 512;
const IDLE_POLL: Duration = Duration::from_millis(250);
const DRAIN_POLL: Duration = Duration::from_millis(5);

struct LoopConn {
    conn: Conn,
    handler: Box<dyn ConnHandler>,
    listener: Option<ListenerId>,
    interest: Interest,
}

struct EventLoop {
    cfg: ReactorConfig,
    poller: Poller,
    timers: TimerWheel,
    cmds: Receiver<Cmd>,
    wake_rx: UdpSocket,
    shared: Arc<Shared>,
    listeners: HashMap<u64, (TcpListener, Box<dyn Acceptor>)>,
    conns: HashMap<u64, LoopConn>,
    draining: Option<Instant>,
    scratch: Vec<u8>,
    scratch_ids: Vec<u64>,
}

impl EventLoop {
    fn new(
        cfg: ReactorConfig,
        cmds: Receiver<Cmd>,
        wake_rx: UdpSocket,
        shared: Arc<Shared>,
    ) -> EventLoop {
        let mut poller = Poller::new(cfg.backend);
        poller.register(WAKE_TOKEN, Source::new(&wake_rx), Interest::READ);
        EventLoop {
            cfg,
            poller,
            timers: TimerWheel::new(TIMER_TICK, TIMER_SLOTS),
            cmds,
            wake_rx,
            shared,
            listeners: HashMap::new(),
            conns: HashMap::new(),
            draining: None,
            scratch: vec![0u8; 64 * 1024],
            scratch_ids: Vec::new(),
        }
    }

    fn run(mut self) {
        let mut readiness: Vec<Readiness> = Vec::new();
        let mut expired: Vec<u64> = Vec::new();
        loop {
            if let Some(deadline) = self.draining {
                // Draining: close flushed connections, force the rest once
                // the deadline passes.
                self.scratch_ids.clear();
                let force = Instant::now() >= deadline;
                for (&id, lc) in &self.conns {
                    if force || !lc.conn.wants_write() {
                        self.scratch_ids.push(id);
                    }
                }
                let ids = std::mem::take(&mut self.scratch_ids);
                for id in &ids {
                    self.close_conn(*id, CloseReason::Drained);
                }
                self.scratch_ids = ids;
                if self.conns.is_empty() {
                    break;
                }
            }
            let timeout = self.poll_timeout();
            let wait_start = Instant::now();
            if self.poller.poll(timeout, &mut readiness).is_err() {
                // A poll-level error (e.g. a racing close left a bad fd) is
                // not actionable per-connection; back off briefly.
                std::thread::sleep(Duration::from_millis(1));
            }
            let dispatch_start = Instant::now();
            self.shared.poll_wait_ns.fetch_add(
                (dispatch_start - wait_start).as_nanos() as u64,
                Ordering::Relaxed,
            );
            let events = std::mem::take(&mut readiness);
            for &r in &events {
                if r.token == WAKE_TOKEN {
                    drain_wakeups(&self.wake_rx);
                } else if self.listeners.contains_key(&r.token) {
                    self.accept_ready(r.token);
                } else {
                    self.conn_ready(r);
                }
            }
            readiness = events;
            self.drain_cmds();
            expired.clear();
            self.timers.collect_expired(Instant::now(), &mut expired);
            for &token in &expired {
                self.timer_fired(token);
            }
            self.shared.dispatch_ns.fetch_add(
                dispatch_start.elapsed().as_nanos() as u64,
                Ordering::Relaxed,
            );
            self.shared.ticks.fetch_add(1, Ordering::Relaxed);
        }
        // Loop exit: everything is already closed (draining loop above).
    }

    fn poll_timeout(&self) -> Duration {
        let base = if self.draining.is_some() {
            DRAIN_POLL
        } else {
            IDLE_POLL
        };
        match self.timers.next_timeout(Instant::now()) {
            Some(t) => t.min(base).max(Duration::from_millis(1)),
            None => base,
        }
    }

    fn accept_ready(&mut self, token: u64) {
        loop {
            let accepted = {
                let Some((listener, acceptor)) = self.listeners.get_mut(&token) else {
                    return;
                };
                match listener.accept() {
                    Ok((stream, addr)) => {
                        if self.conns.len() >= self.cfg.max_connections {
                            self.shared.refused.fetch_add(1, Ordering::Relaxed);
                            drop(stream);
                            continue;
                        }
                        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
                        let peer = addr.to_string();
                        let handler = acceptor.accept(id, &peer);
                        Some((id, stream, peer, handler))
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Transient accept failure (EMFILE, aborted
                        // handshake): count it and let the next readiness
                        // event retry.
                        self.shared.refused.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            };
            match accepted {
                Some((id, stream, peer, handler)) => {
                    self.install_conn(id, stream, peer, handler, Some(token));
                }
                None => return,
            }
        }
    }

    fn install_conn(
        &mut self,
        id: ConnId,
        stream: TcpStream,
        peer: String,
        mut handler: Box<dyn ConnHandler>,
        listener: Option<ListenerId>,
    ) {
        if let Err(e) = stream.set_nonblocking(true) {
            self.shared.refused.fetch_add(1, Ordering::Relaxed);
            handler.on_close(id, &CloseReason::Error(e.to_string()));
            return;
        }
        let _ = stream.set_nodelay(true);
        let conn = Conn::new(
            id,
            stream,
            peer.clone(),
            self.cfg.outbox_capacity,
            self.cfg.overflow,
        );
        self.poller
            .register(id, conn.poller_source(), Interest::READ);
        self.shared.registry.lock().insert(
            id,
            RegEntry {
                peer,
                listener,
                counters: Arc::clone(conn.counters()),
            },
        );
        self.shared.conn_count.fetch_add(1, Ordering::Relaxed);
        if let Some(idle) = self.cfg.idle_timeout {
            self.timers.schedule(id, Instant::now(), idle);
        }
        self.conns.insert(
            id,
            LoopConn {
                conn,
                handler,
                listener,
                interest: Interest::READ,
            },
        );
        let lc = self.conns.get_mut(&id).expect("just inserted");
        lc.handler.on_open(&mut ConnIo { conn: &mut lc.conn });
        self.after_io(id);
    }

    fn conn_ready(&mut self, r: Readiness) {
        let mut close: Option<CloseReason> = None;
        {
            let Some(lc) = self.conns.get_mut(&r.token) else {
                return;
            };
            if r.readable && !lc.conn.is_closing() {
                let mut scratch = std::mem::take(&mut self.scratch);
                let read = lc.conn.fill_inbuf(&mut scratch);
                self.scratch = scratch;
                match read {
                    Ok((n, eof)) => {
                        if n > 0 {
                            let buf = lc.conn.take_inbuf();
                            let consumed = lc
                                .handler
                                .on_data(&mut ConnIo { conn: &mut lc.conn }, &buf)
                                .min(buf.len());
                            let mut buf = buf;
                            if consumed > 0 {
                                buf.drain(..consumed);
                            }
                            lc.conn.restore_inbuf(buf);
                        }
                        if eof {
                            close = Some(CloseReason::PeerClosed);
                        }
                    }
                    Err(e) => close = Some(close_reason_for(&e)),
                }
            } else if r.hangup && !lc.conn.wants_write() {
                // Error/hangup on a connection we are not reading from.
                close = Some(CloseReason::PeerClosed);
            }
        }
        if let Some(reason) = close {
            self.close_conn(r.token, reason);
        } else {
            self.flush_conn(r.token);
        }
    }

    /// Flush pending output and settle the connection's state: close it if
    /// flushing failed or a graceful close finished, otherwise refresh its
    /// poller interest.
    fn flush_conn(&mut self, id: ConnId) {
        let mut close: Option<CloseReason> = None;
        if let Some(lc) = self.conns.get_mut(&id) {
            if lc.conn.wants_write() {
                if let Err(e) = lc.conn.flush(self.cfg.write_budget) {
                    close = Some(close_reason_for(&e));
                }
            }
        } else {
            return;
        }
        if let Some(reason) = close {
            self.close_conn(id, reason);
        } else {
            self.after_io(id);
        }
    }

    fn after_io(&mut self, id: ConnId) {
        let Some(lc) = self.conns.get_mut(&id) else {
            return;
        };
        if lc.conn.is_closing() && !lc.conn.wants_write() {
            self.close_conn(id, CloseReason::Requested);
            return;
        }
        let want = Interest {
            read: !lc.conn.is_closing(),
            write: lc.conn.wants_write(),
        };
        if want != lc.interest {
            lc.interest = want;
            self.poller.set_interest(id, want);
        }
    }

    fn close_conn(&mut self, id: ConnId, reason: CloseReason) {
        if let Some(mut lc) = self.conns.remove(&id) {
            lc.handler.on_close(id, &reason);
            self.poller.deregister(id);
            self.timers.cancel(id);
            self.shared.registry.lock().remove(&id);
            self.shared.conn_count.fetch_sub(1, Ordering::Relaxed);
            // Dropping `lc.conn` closes the stream.
        }
    }

    fn timer_fired(&mut self, token: u64) {
        let Some(idle) = self.cfg.idle_timeout else {
            return;
        };
        let Some(lc) = self.conns.get_mut(&token) else {
            return;
        };
        let elapsed = lc.conn.last_activity().elapsed();
        if elapsed >= idle {
            self.close_conn(token, CloseReason::IdleTimeout);
        } else {
            self.timers.schedule(token, Instant::now(), idle - elapsed);
        }
    }

    fn deliver(&mut self, id: ConnId, frame: Arc<Vec<u8>>, strict: bool) {
        {
            let Some(lc) = self.conns.get_mut(&id) else {
                return;
            };
            if lc.conn.is_closing() {
                return;
            }
            if lc.conn.enqueue(frame) != PushOutcome::Queued && strict {
                // A strict sender's frame was rejected or displaced older
                // queued frames; either way the peer's stream is desynced,
                // so flush what remains and close.
                lc.conn.begin_close();
            }
        }
        // Eager flush keeps broadcast latency low and frees the queue slot
        // before the next batch.
        self.flush_conn(id);
    }

    fn drain_cmds(&mut self) {
        while let Ok(cmd) = self.cmds.try_recv() {
            match cmd {
                Cmd::Listen {
                    id,
                    listener,
                    acceptor,
                } => {
                    if self.draining.is_some() {
                        continue;
                    }
                    self.poller
                        .register(id, Source::new(&listener), Interest::READ);
                    self.listeners.insert(id, (listener, acceptor));
                    // Connections may already be queued on the backlog.
                    self.accept_ready(id);
                }
                Cmd::Adopt {
                    id,
                    mut handler,
                    stream,
                } => {
                    if self.draining.is_some() || self.conns.len() >= self.cfg.max_connections {
                        self.shared.refused.fetch_add(1, Ordering::Relaxed);
                        handler.on_close(id, &CloseReason::Error("connection refused".into()));
                        continue;
                    }
                    let peer = stream
                        .peer_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_else(|_| "?".to_string());
                    self.install_conn(id, stream, peer, handler, None);
                }
                Cmd::Send {
                    conn,
                    frame,
                    strict,
                } => self.deliver(conn, frame, strict),
                Cmd::Broadcast { listener, frame } => {
                    self.scratch_ids.clear();
                    for (&id, lc) in &self.conns {
                        if lc.listener == Some(listener) {
                            self.scratch_ids.push(id);
                        }
                    }
                    let ids = std::mem::take(&mut self.scratch_ids);
                    for &id in &ids {
                        self.deliver(id, Arc::clone(&frame), false);
                    }
                    self.scratch_ids = ids;
                }
                Cmd::Close { conn } => {
                    if let Some(lc) = self.conns.get_mut(&conn) {
                        lc.conn.begin_close();
                    }
                    self.flush_conn(conn);
                }
                Cmd::Unlisten {
                    listener,
                    close_conns,
                } => {
                    if self.listeners.remove(&listener).is_some() {
                        self.poller.deregister(listener);
                    }
                    if close_conns {
                        self.scratch_ids.clear();
                        for (&id, lc) in &mut self.conns {
                            if lc.listener == Some(listener) {
                                lc.conn.begin_close();
                                self.scratch_ids.push(id);
                            }
                        }
                        let ids = std::mem::take(&mut self.scratch_ids);
                        for &id in &ids {
                            self.flush_conn(id);
                        }
                        self.scratch_ids = ids;
                    }
                }
                Cmd::Shutdown => {
                    if self.draining.is_none() {
                        self.draining = Some(Instant::now() + self.cfg.drain_timeout);
                        // scratch_ids may hold connection ids left over
                        // from a Broadcast/Unlisten restore; deregistering
                        // those would strand their queued frames.
                        self.scratch_ids.clear();
                        for &id in self.listeners.keys() {
                            self.scratch_ids.push(id);
                        }
                        let ids = std::mem::take(&mut self.scratch_ids);
                        for &id in &ids {
                            self.poller.deregister(id);
                            self.listeners.remove(&id);
                        }
                        self.scratch_ids = ids;
                        // Stop reading; what remains is flush-and-close.
                        for (&id, lc) in &mut self.conns {
                            lc.conn.begin_close();
                            let want = Interest {
                                read: false,
                                write: lc.conn.wants_write(),
                            };
                            lc.interest = want;
                            self.poller.set_interest(id, want);
                        }
                    }
                }
            }
        }
    }
}

fn close_reason_for(e: &io::Error) -> CloseReason {
    match e.kind() {
        io::ErrorKind::BrokenPipe | io::ErrorKind::ConnectionReset => CloseReason::PeerClosed,
        _ => CloseReason::Error(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::atomic::AtomicBool;

    /// Echoes every byte back and records close reasons.
    struct Echo {
        closed: Arc<AtomicBool>,
    }

    impl ConnHandler for Echo {
        fn on_data(&mut self, io: &mut ConnIo<'_>, buf: &[u8]) -> usize {
            io.send(Arc::new(buf.to_vec()));
            buf.len()
        }

        fn on_close(&mut self, _id: ConnId, _reason: &CloseReason) {
            self.closed.store(true, Ordering::SeqCst);
        }
    }

    fn echo_acceptor(closed: Arc<AtomicBool>) -> Box<dyn Acceptor> {
        Box::new(move |_id: ConnId, _peer: &str| {
            Box::new(Echo {
                closed: Arc::clone(&closed),
            }) as Box<dyn ConnHandler>
        })
    }

    fn start_with(backend: Backend, tweak: impl FnOnce(&mut ReactorConfig)) -> Reactor {
        let mut cfg = ReactorConfig {
            backend,
            ..ReactorConfig::default()
        };
        tweak(&mut cfg);
        Reactor::start(cfg).unwrap()
    }

    #[test]
    fn loop_stats_count_ticks_and_split_wait_from_dispatch() {
        let closed = Arc::new(AtomicBool::new(false));
        let reactor = start_with(Backend::native(), |_| {});
        let listener = reactor
            .listen(
                TcpListener::bind("127.0.0.1:0").unwrap(),
                echo_acceptor(closed),
            )
            .unwrap();
        // Every submit wakes the loop, so a few broadcasts force ticks.
        let deadline = Instant::now() + Duration::from_secs(5);
        while reactor.loop_stats().ticks < 3 {
            assert!(Instant::now() < deadline, "loop never ticked");
            reactor.broadcast(listener, Arc::new(vec![0u8]));
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = reactor.loop_stats();
        assert!(stats.ticks >= 3);
        assert!(stats.poll_wait_ns + stats.dispatch_ns > 0);
        let s = stats.saturation();
        assert!((0.0..=1.0).contains(&s), "saturation {s} out of range");
        assert_eq!(LoopStats::default().saturation(), 0.0);
        reactor.shutdown();
    }

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Poll, Backend::Sweep]
        } else {
            vec![Backend::Sweep]
        }
    }

    #[test]
    fn echo_round_trip_on_every_backend() {
        for backend in backends() {
            let reactor = start_with(backend, |_| {});
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            reactor
                .listen(listener, echo_acceptor(Arc::new(AtomicBool::new(false))))
                .unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            client.write_all(b"ping pong").unwrap();
            let mut back = [0u8; 9];
            client
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            client.read_exact(&mut back).unwrap();
            assert_eq!(&back, b"ping pong", "{backend:?}");
            reactor.shutdown();
        }
    }

    #[test]
    fn broadcast_reaches_every_subscriber() {
        let reactor = start_with(Backend::native(), |_| {});
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        struct Quiet;
        impl ConnHandler for Quiet {
            fn on_data(&mut self, _io: &mut ConnIo<'_>, buf: &[u8]) -> usize {
                buf.len()
            }
        }
        let lid = reactor
            .listen(
                listener,
                Box::new(|_id: ConnId, _peer: &str| Box::new(Quiet) as Box<dyn ConnHandler>),
            )
            .unwrap();
        let mut clients: Vec<TcpStream> =
            (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        while reactor.connections() < 8 {
            assert!(Instant::now() < deadline, "subscribers never registered");
            std::thread::sleep(Duration::from_millis(1));
        }
        let frame = Arc::new(b"broadcast-frame".to_vec());
        reactor.broadcast(lid, frame);
        for c in &mut clients {
            c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut got = [0u8; 15];
            c.read_exact(&mut got).unwrap();
            assert_eq!(&got, b"broadcast-frame");
        }
        reactor.shutdown();
    }

    #[test]
    fn idle_connections_are_closed_by_the_timer() {
        let closed = Arc::new(AtomicBool::new(false));
        let reactor = start_with(Backend::native(), |cfg| {
            cfg.idle_timeout = Some(Duration::from_millis(60));
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        reactor
            .listen(listener, echo_acceptor(Arc::clone(&closed)))
            .unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // The idle server side should close; our read then sees EOF.
        let mut buf = [0u8; 1];
        let n = client.read(&mut buf).unwrap();
        assert_eq!(n, 0, "expected EOF from idle-timeout close");
        assert!(closed.load(Ordering::SeqCst));
        reactor.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_frames_and_closes_every_conn() {
        let closed = Arc::new(AtomicBool::new(false));
        let reactor = start_with(Backend::native(), |_| {});
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let lid = reactor
            .listen(listener, echo_acceptor(Arc::clone(&closed)))
            .unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while reactor.connections() < 1 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
        let payload = Arc::new(vec![7u8; 128 * 1024]);
        reactor.broadcast(lid, Arc::clone(&payload));
        reactor.shutdown();
        assert_eq!(reactor.connections(), 0, "shutdown left live connections");
        assert!(closed.load(Ordering::SeqCst), "on_close never ran");
        // Every queued byte arrived before the close.
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got.len(), payload.len());
        assert!(got.iter().all(|&b| b == 7));
    }

    /// Regression: `Cmd::Broadcast` parks connection ids in `scratch_ids`
    /// and restores them after the fan-out.  `Cmd::Shutdown` must clear
    /// that scratch before collecting listener ids — reusing the stale
    /// contents deregistered live connections, so their still-queued
    /// frames never got another writable event and were force-dropped at
    /// the drain deadline.  Broadcast-then-shutdown with more queued
    /// bytes than the kernel socket buffers take must still deliver
    /// everything, quickly.
    #[test]
    fn broadcast_then_shutdown_drains_stalled_connections() {
        let reactor = start_with(Backend::native(), |cfg| {
            cfg.outbox_capacity = 64 * 1024 * 1024;
            cfg.drain_timeout = Duration::from_secs(10);
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let lid = reactor
            .listen(listener, echo_acceptor(Arc::new(AtomicBool::new(false))))
            .unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while reactor.connections() < 1 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
        // Far more than loopback socket buffering: the connection still
        // wants_write when Shutdown lands right after Broadcast.
        let payload = Arc::new(vec![9u8; 16 * 1024 * 1024]);
        let reader = std::thread::spawn(move || {
            let mut client = client;
            client
                .set_read_timeout(Some(Duration::from_secs(8)))
                .unwrap();
            let mut got = Vec::new();
            client.read_to_end(&mut got).unwrap();
            got
        });
        reactor.broadcast(lid, Arc::clone(&payload));
        let start = Instant::now();
        reactor.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown stalled to the drain deadline: {:?}",
            start.elapsed()
        );
        let got = reader.join().unwrap();
        assert_eq!(got.len(), payload.len(), "queued frames were dropped");
        assert!(got.iter().all(|&b| b == 9));
    }

    #[test]
    fn max_connections_refuses_the_overflow() {
        let reactor = start_with(Backend::native(), |cfg| {
            cfg.max_connections = 2;
        });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        reactor
            .listen(listener, echo_acceptor(Arc::new(AtomicBool::new(false))))
            .unwrap();
        let _keep: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        while reactor.refused() < 2 {
            assert!(
                Instant::now() < deadline,
                "refused = {}, connections = {}",
                reactor.refused(),
                reactor.connections()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(reactor.connections(), 2);
        reactor.shutdown();
    }

    #[test]
    fn socket_stats_expose_per_connection_counters() {
        let reactor = start_with(Backend::native(), |_| {});
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        reactor
            .listen(listener, echo_acceptor(Arc::new(AtomicBool::new(false))))
            .unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"0123456789").unwrap();
        let mut back = [0u8; 10];
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        client.read_exact(&mut back).unwrap();
        // The loop thread updates counters just after the write syscall, so
        // give the (eventually consistent) stats a moment to catch up.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let rows = reactor.socket_stats();
            assert_eq!(rows.len(), 1);
            assert!(rows[0].listener.is_some());
            if rows[0].stats.bytes_in == 10 && rows[0].stats.bytes_out == 10 {
                break;
            }
            assert!(Instant::now() < deadline, "counters stuck at {rows:?}");
            std::thread::sleep(Duration::from_millis(1));
        }
        reactor.shutdown();
    }
}
