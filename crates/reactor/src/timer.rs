//! A hashed timer wheel for connection timeouts.
//!
//! The wheel divides time into fixed ticks and hashes each deadline into
//! `slots[deadline_tick % slots]`.  Scheduling and cancelling are O(1)
//! (cancellation is lazy: the authoritative deadline lives in a map, and a
//! stale slot entry is dropped when its slot is next visited).  Collecting
//! expired timers walks only the slots the clock has passed since the last
//! collection, so an idle wheel costs nothing.
//!
//! Tokens are caller-defined — the reactor uses connection ids — and a
//! token has at most one pending deadline: rescheduling replaces.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A hashed timer wheel with lazy cancellation.
#[derive(Debug)]
pub struct TimerWheel {
    tick: Duration,
    slots: Vec<Vec<u64>>,
    /// token → absolute deadline tick (the authoritative record).
    deadlines: HashMap<u64, u64>,
    start: Instant,
    /// The next tick whose slot has not been collected yet.
    cursor: u64,
}

impl TimerWheel {
    /// Create a wheel with the given expiry granularity and slot count.
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        assert!(!tick.is_zero(), "timer tick must be non-zero");
        TimerWheel {
            tick,
            slots: vec![Vec::new(); slots.max(1)],
            deadlines: HashMap::new(),
            start: Instant::now(),
            cursor: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let from_start = at.saturating_duration_since(self.start);
        (from_start.as_nanos() / self.tick.as_nanos()) as u64
    }

    /// Schedule (or reschedule) `token` to fire `after` from `now`.
    ///
    /// The deadline is rounded *up* to the next tick so a timer never fires
    /// early.
    pub fn schedule(&mut self, token: u64, now: Instant, after: Duration) {
        let from_start = now.saturating_duration_since(self.start) + after;
        let nanos = from_start.as_nanos();
        let tick = self.tick.as_nanos();
        let deadline = (nanos.div_ceil(tick) as u64).max(self.cursor);
        self.deadlines.insert(token, deadline);
        let idx = (deadline % self.slots.len() as u64) as usize;
        self.slots[idx].push(token);
    }

    /// Cancel a pending timer.  Firing is suppressed lazily; unknown tokens
    /// are ignored.
    pub fn cancel(&mut self, token: u64) {
        self.deadlines.remove(&token);
    }

    /// Time until the earliest pending deadline, or `None` when idle.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let earliest = *self.deadlines.values().min()?;
        let offset = Duration::from_nanos((self.tick.as_nanos() as u64).saturating_mul(earliest));
        Some((self.start + offset).saturating_duration_since(now))
    }

    /// Append every token whose deadline has passed to `out`.
    pub fn collect_expired(&mut self, now: Instant, out: &mut Vec<u64>) {
        if self.deadlines.is_empty() {
            self.cursor = self.tick_of(now) + 1;
            return;
        }
        let now_tick = self.tick_of(now);
        let len = self.slots.len() as u64;
        // If the loop slept for more than a full revolution, every slot has
        // been passed at least once; one pass over the wheel covers them.
        let first = if now_tick >= self.cursor + len {
            now_tick + 1 - len
        } else {
            self.cursor
        };
        for t in first..=now_tick {
            let idx = (t % len) as usize;
            if self.slots[idx].is_empty() {
                continue;
            }
            let bucket = std::mem::take(&mut self.slots[idx]);
            for token in bucket {
                match self.deadlines.get(&token) {
                    Some(&d) if d <= now_tick => {
                        self.deadlines.remove(&token);
                        out.push(token);
                    }
                    // A later round of the wheel: keep it in its slot.
                    Some(_) => self.slots[idx].push(token),
                    // Cancelled or rescheduled away: drop the stale entry.
                    None => {}
                }
            }
        }
        self.cursor = now_tick + 1;
    }

    /// Number of pending timers.
    pub fn pending(&self) -> usize {
        self.deadlines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimerWheel {
        TimerWheel::new(Duration::from_millis(1), 8)
    }

    #[test]
    fn fires_after_deadline_not_before() {
        let mut w = wheel();
        let t0 = Instant::now();
        w.schedule(1, t0, Duration::from_millis(10));
        let mut out = Vec::new();
        w.collect_expired(t0 + Duration::from_millis(2), &mut out);
        assert!(out.is_empty(), "fired early");
        w.collect_expired(t0 + Duration::from_millis(20), &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn cancel_suppresses_firing() {
        let mut w = wheel();
        let t0 = Instant::now();
        w.schedule(1, t0, Duration::from_millis(5));
        w.schedule(2, t0, Duration::from_millis(5));
        w.cancel(1);
        let mut out = Vec::new();
        w.collect_expired(t0 + Duration::from_millis(50), &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn reschedule_replaces_deadline() {
        let mut w = wheel();
        let t0 = Instant::now();
        w.schedule(1, t0, Duration::from_millis(3));
        w.schedule(1, t0, Duration::from_millis(40));
        let mut out = Vec::new();
        w.collect_expired(t0 + Duration::from_millis(10), &mut out);
        assert!(out.is_empty(), "old deadline fired after reschedule");
        w.collect_expired(t0 + Duration::from_millis(60), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn survives_sleeping_past_a_full_revolution() {
        let mut w = wheel(); // 8 slots × 1ms tick = 8ms revolution
        let t0 = Instant::now();
        w.schedule(1, t0, Duration::from_millis(2));
        w.schedule(2, t0, Duration::from_millis(90));
        let mut out = Vec::new();
        w.collect_expired(t0 + Duration::from_millis(100), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn next_timeout_tracks_earliest() {
        let mut w = wheel();
        let t0 = Instant::now();
        assert!(w.next_timeout(t0).is_none());
        w.schedule(1, t0, Duration::from_millis(50));
        w.schedule(2, t0, Duration::from_millis(10));
        let next = w.next_timeout(t0).unwrap();
        assert!(next <= Duration::from_millis(11), "next = {next:?}");
        w.cancel(2);
        let next = w.next_timeout(t0).unwrap();
        assert!(next >= Duration::from_millis(40), "next = {next:?}");
    }
}
