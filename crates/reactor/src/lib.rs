//! # jamm-reactor — std-only nonblocking I/O core for the network edge
//!
//! The paper's central scaling claim is that adding consumers loads the
//! *gateway*, not the monitored host.  A thread-per-connection edge caps a
//! gateway at hundreds of subscriber sockets; this crate replaces it with a
//! single-threaded reactor that drives tens of thousands:
//!
//! * [`poller::Poller`] — readiness via a thin `poll(2)` shim (the crate's
//!   only `unsafe`, confined to `sys.rs`), with a pure-std sweep fallback
//!   so the crate builds and tests anywhere;
//! * [`poller::Waker`] — cross-thread wakeup over a loopback UDP socket
//!   pair, the std-only stand-in for a self-pipe;
//! * [`timer::TimerWheel`] — hashed-wheel timeouts for idle connections;
//! * [`conn::Conn`] / [`conn::Outbox`] — per-connection state with a
//!   frame-aligned outbound queue mapped onto the pipeline's own
//!   [`OverflowPolicy`](jamm_core::flow::OverflowPolicy) (`DropOldest` /
//!   `DropNewest`) and per-connection counters (bytes, queued, dropped,
//!   stalls) for observing slow consumers;
//! * [`reactor::Reactor`] — the event loop itself: accept, read, dispatch
//!   to [`reactor::ConnHandler`]s, flush outboxes under a write budget, and
//!   broadcast `Arc`-shared frames (encode once, write N).
//!
//! In the same discipline as the rest of the workspace, the crate depends
//! on nothing but `jamm-core` and std.

#![deny(missing_docs)]

pub mod conn;
pub mod poller;
pub mod reactor;
mod sys;
pub mod timer;

pub use conn::{Conn, Flush, Outbox, PushOutcome, SocketCounters, SocketStats};
pub use poller::{Backend, Interest, Poller, Readiness, Source, Waker};
pub use reactor::{
    Acceptor, CloseReason, ConnHandler, ConnId, ConnIo, ListenerId, LoopStats, Reactor,
    ReactorConfig, SocketRow,
};
pub use timer::TimerWheel;
