//! Platform syscall shim for readiness polling.
//!
//! The only `unsafe` in the crate lives here: a direct `extern "C"`
//! declaration of `poll(2)` (std already links libc on unix targets, so no
//! external crate is needed).  On non-Linux targets this module compiles to
//! nothing and [`crate::poller::Poller`] falls back to its pure-std sweep
//! backend.

#[cfg(target_os = "linux")]
pub(crate) mod linux {
    use std::io;

    /// Readable data (or a pending accept) is available.
    pub const POLLIN: i16 = 0x001;
    /// The socket can be written without blocking.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (output only).
    pub const POLLERR: i16 = 0x008;
    /// The peer hung up (output only).
    pub const POLLHUP: i16 = 0x010;
    /// The descriptor is not open (output only).
    pub const POLLNVAL: i16 = 0x020;

    /// Mirror of the kernel's `struct pollfd`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        /// The file descriptor to watch.
        pub fd: i32,
        /// Requested events (`POLLIN` / `POLLOUT`).
        pub events: i16,
        /// Returned events, filled in by the kernel.
        pub revents: i16,
    }

    extern "C" {
        // `nfds_t` is `unsigned long` on Linux, which matches `usize` on
        // every Linux target this workspace builds for.
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    /// Poll the whole slice, retrying on `EINTR`.  Returns the number of
    /// descriptors with non-zero `revents`.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` is a valid, exclusively borrowed slice of
            // `repr(C)` pollfd records and `nfds` is its exact length; the
            // kernel writes only the `revents` words inside that slice.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}
