//! Safe readiness polling over the platform shim, plus the cross-thread
//! [`Waker`].
//!
//! The [`Poller`] keeps a registry of `(token, socket, interest)` entries
//! and answers one question per call: *which of these sockets can make
//! progress right now?*  Two backends implement that answer:
//!
//! * [`Backend::Poll`] — the real thing: one `poll(2)` syscall over every
//!   registered descriptor (Linux; see `sys.rs` for the shim).
//! * [`Backend::Sweep`] — a pure-std fallback that sleeps for at most a
//!   millisecond and then reports every registered socket as ready for
//!   whatever it declared interest in.  The connection layer runs all
//!   sockets in nonblocking mode, so a false-positive wakeup costs one
//!   `EWOULDBLOCK` and nothing else.  This keeps the crate building (and
//!   its tests passing) on platforms without the shim.

use std::collections::HashMap;
use std::io;
use std::net::UdpSocket;
use std::sync::Arc;
use std::time::Duration;

/// Which readiness mechanism a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `poll(2)` through the thin syscall shim.  Only available on Linux;
    /// on other targets this silently behaves like [`Backend::Sweep`].
    Poll,
    /// Pure-std fallback: short sleep, then report every registered socket
    /// with its declared interest.
    Sweep,
}

impl Backend {
    /// The best backend available on this platform.
    pub fn native() -> Backend {
        if cfg!(target_os = "linux") {
            Backend::Poll
        } else {
            Backend::Sweep
        }
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::native()
    }
}

/// What a registered socket wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable (or accept-ready for listeners).
    pub read: bool,
    /// Wake when writable.
    pub write: bool,
}

impl Interest {
    /// Read interest only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write interest only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// Registered but dormant.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };

    /// True if either direction is wanted.
    pub fn any(self) -> bool {
        self.read || self.write
    }
}

/// One readiness event produced by [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Readiness {
    /// The token the socket was registered under.
    pub token: u64,
    /// The socket is readable (includes EOF and error conditions, which a
    /// read will surface).
    pub readable: bool,
    /// The socket is writable.
    pub writable: bool,
    /// The peer hung up or the descriptor errored.
    pub hangup: bool,
}

/// Identifies an OS socket to the poller.
///
/// On unix this captures the raw file descriptor; on other targets it is a
/// unit marker (the sweep backend never inspects the socket).
#[derive(Debug, Clone, Copy)]
pub struct Source {
    #[cfg(unix)]
    fd: i32,
}

impl Source {
    /// Capture a socket's poller identity.
    #[cfg(unix)]
    pub fn new(sock: &impl std::os::fd::AsRawFd) -> Source {
        Source {
            fd: sock.as_raw_fd(),
        }
    }

    /// Capture a socket's poller identity (non-unix: nothing to capture).
    #[cfg(not(unix))]
    pub fn new<T>(_sock: &T) -> Source {
        Source {}
    }
}

/// Readiness poller: a registry of sockets plus one blocking `poll` call.
///
/// Not thread-safe by design — it is owned by the event-loop thread; other
/// threads reach the loop through a [`Waker`] and a command queue.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
    entries: HashMap<u64, (Source, Interest)>,
    #[cfg(target_os = "linux")]
    fds: Vec<crate::sys::linux::PollFd>,
    #[cfg(target_os = "linux")]
    tokens: Vec<u64>,
}

impl Poller {
    /// Create a poller on the given backend.
    pub fn new(backend: Backend) -> Poller {
        Poller {
            backend,
            entries: HashMap::new(),
            #[cfg(target_os = "linux")]
            fds: Vec::new(),
            #[cfg(target_os = "linux")]
            tokens: Vec::new(),
        }
    }

    /// Which backend this poller actually runs on this platform.
    pub fn backend(&self) -> Backend {
        #[cfg(target_os = "linux")]
        return self.backend;
        #[cfg(not(target_os = "linux"))]
        return Backend::Sweep;
    }

    /// Register a socket under `token`.  Re-registering replaces the entry.
    pub fn register(&mut self, token: u64, source: Source, interest: Interest) {
        self.entries.insert(token, (source, interest));
    }

    /// Change what a registered socket is woken for.  Unknown tokens are
    /// ignored.
    pub fn set_interest(&mut self, token: u64, interest: Interest) {
        if let Some(entry) = self.entries.get_mut(&token) {
            entry.1 = interest;
        }
    }

    /// Remove a socket from the registry.
    pub fn deregister(&mut self, token: u64) {
        self.entries.remove(&token);
    }

    /// Number of registered sockets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Wait up to `timeout` for readiness; events are appended to `out`
    /// (which is cleared first).
    pub fn poll(&mut self, timeout: Duration, out: &mut Vec<Readiness>) -> io::Result<()> {
        out.clear();
        #[cfg(target_os = "linux")]
        if self.backend == Backend::Poll {
            return self.poll_native(timeout, out);
        }
        self.poll_sweep(timeout, out);
        Ok(())
    }

    #[cfg(target_os = "linux")]
    fn poll_native(&mut self, timeout: Duration, out: &mut Vec<Readiness>) -> io::Result<()> {
        use crate::sys::linux::{self, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

        self.fds.clear();
        self.tokens.clear();
        for (&token, &(source, interest)) in &self.entries {
            if !interest.any() {
                continue;
            }
            let mut events = 0i16;
            if interest.read {
                events |= POLLIN;
            }
            if interest.write {
                events |= POLLOUT;
            }
            self.fds.push(PollFd {
                fd: source.fd,
                events,
                revents: 0,
            });
            self.tokens.push(token);
        }
        if self.fds.is_empty() {
            std::thread::sleep(timeout);
            return Ok(());
        }
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = linux::poll_fds(&mut self.fds, ms)?;
        if n == 0 {
            return Ok(());
        }
        for (fd, &token) in self.fds.iter().zip(&self.tokens) {
            if fd.revents == 0 {
                continue;
            }
            let hangup = fd.revents & (POLLHUP | POLLERR | POLLNVAL) != 0;
            out.push(Readiness {
                token,
                readable: fd.revents & POLLIN != 0 || hangup,
                writable: fd.revents & POLLOUT != 0,
                hangup,
            });
        }
        Ok(())
    }

    fn poll_sweep(&mut self, timeout: Duration, out: &mut Vec<Readiness>) {
        let nap = timeout.min(Duration::from_millis(1));
        if !nap.is_zero() {
            std::thread::sleep(nap);
        }
        for (&token, &(_, interest)) in &self.entries {
            if interest.any() {
                out.push(Readiness {
                    token,
                    readable: interest.read,
                    writable: interest.write,
                    hangup: false,
                });
            }
        }
    }
}

/// Cross-thread wakeup for a blocked [`Poller::poll`] call.
///
/// A connected loopback UDP socket pair stands in for the classic
/// self-pipe: [`Waker::wake`] sends one datagram, the event loop registers
/// the receiving socket for read interest and drains it on wakeup.  Pure
/// std, works under both backends, and `Clone` so any number of threads can
/// hold one.
#[derive(Debug, Clone)]
pub struct Waker {
    tx: Arc<UdpSocket>,
}

impl Waker {
    /// Build the pair.  Returns the waker and the receiving socket the loop
    /// must register (already nonblocking).
    pub fn pair() -> io::Result<(Waker, UdpSocket)> {
        let rx = UdpSocket::bind("127.0.0.1:0")?;
        let tx = UdpSocket::bind("127.0.0.1:0")?;
        tx.connect(rx.local_addr()?)?;
        // Connecting the receiver back filters datagrams from strangers.
        rx.connect(tx.local_addr()?)?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        Ok((Waker { tx: Arc::new(tx) }, rx))
    }

    /// Wake the loop.  Best-effort and never blocks; a full socket buffer
    /// means wakeups are already pending, which is just as good.
    pub fn wake(&self) {
        let _ = self.tx.send(&[1u8]);
    }
}

/// Drain every pending wakeup datagram from the receiving socket.
pub fn drain_wakeups(rx: &UdpSocket) {
    let mut buf = [0u8; 16];
    while rx.recv(&mut buf).is_ok() {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Poll, Backend::Sweep]
        } else {
            vec![Backend::Sweep]
        }
    }

    #[test]
    fn readable_after_peer_writes() {
        for backend in backends() {
            let (mut a, b) = pair();
            b.set_nonblocking(true).unwrap();
            let mut poller = Poller::new(backend);
            poller.register(7, Source::new(&b), Interest::READ);
            a.write_all(b"hi").unwrap();
            let mut out = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                poller.poll(Duration::from_millis(50), &mut out).unwrap();
                if out.iter().any(|r| r.token == 7 && r.readable) {
                    break;
                }
                assert!(Instant::now() < deadline, "{backend:?}: never readable");
            }
        }
    }

    #[test]
    fn interest_none_reports_nothing() {
        for backend in backends() {
            let (mut a, b) = pair();
            let mut poller = Poller::new(backend);
            poller.register(1, Source::new(&b), Interest::NONE);
            a.write_all(b"data").unwrap();
            let mut out = Vec::new();
            poller.poll(Duration::from_millis(10), &mut out).unwrap();
            assert!(out.is_empty(), "{backend:?}: dormant socket woke");
        }
    }

    #[test]
    fn waker_unblocks_poll() {
        for backend in backends() {
            let (waker, rx) = Waker::pair().unwrap();
            let mut poller = Poller::new(backend);
            poller.register(0, Source::new(&rx), Interest::READ);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                waker.wake();
            });
            let mut out = Vec::new();
            let start = Instant::now();
            let deadline = start + Duration::from_secs(2);
            loop {
                poller.poll(Duration::from_millis(100), &mut out).unwrap();
                if out.iter().any(|r| r.token == 0 && r.readable) {
                    break;
                }
                assert!(Instant::now() < deadline, "{backend:?}: wakeup lost");
            }
            drain_wakeups(&rx);
            t.join().unwrap();
        }
    }

    #[test]
    fn deregistered_socket_is_silent() {
        let (mut a, b) = pair();
        for backend in backends() {
            let mut poller = Poller::new(backend);
            poller.register(3, Source::new(&b), Interest::READ);
            poller.deregister(3);
            assert!(poller.is_empty());
            a.write_all(b"x").unwrap();
            let mut out = Vec::new();
            poller.poll(Duration::from_millis(10), &mut out).unwrap();
            assert!(out.is_empty());
        }
    }
}
