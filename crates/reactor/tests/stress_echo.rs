//! Stress: one reactor thread serving 1,000 concurrent echo connections.
//!
//! Every client writes a distinct payload and must read exactly its own
//! bytes back — so this catches cross-connection buffer mixups, lost
//! wakeups and accept starvation, not just throughput.

use jamm_reactor::{Acceptor, Backend, ConnHandler, ConnId, ConnIo, Reactor, ReactorConfig};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CONNS: usize = 1_000;
const PAYLOAD: usize = 256;

struct Echo;

impl ConnHandler for Echo {
    fn on_data(&mut self, io: &mut ConnIo<'_>, buf: &[u8]) -> usize {
        io.send(Arc::new(buf.to_vec()));
        buf.len()
    }
}

fn echo_acceptor() -> Box<dyn Acceptor> {
    Box::new(|_id: ConnId, _peer: &str| Box::new(Echo) as Box<dyn ConnHandler>)
}

fn payload_for(i: usize) -> Vec<u8> {
    // Distinct, position-dependent bytes per connection.
    (0..PAYLOAD)
        .map(|j| ((i * 31 + j * 7) % 251) as u8)
        .collect()
}

#[test]
fn one_thousand_concurrent_echo_connections() {
    let reactor = Reactor::start(ReactorConfig {
        backend: Backend::native(),
        max_connections: CONNS + 16,
        ..ReactorConfig::default()
    })
    .unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    reactor.listen(listener, echo_acceptor()).unwrap();

    let mut clients = Vec::with_capacity(CONNS);
    for _ in 0..CONNS {
        let c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        clients.push(c);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while reactor.connections() < CONNS {
        assert!(
            Instant::now() < deadline,
            "only {} of {CONNS} connections registered",
            reactor.connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // All payloads in flight at once, then collect every echo.
    for (i, c) in clients.iter_mut().enumerate() {
        c.write_all(&payload_for(i)).unwrap();
    }
    for (i, c) in clients.iter_mut().enumerate() {
        let mut back = vec![0u8; PAYLOAD];
        c.read_exact(&mut back).unwrap();
        assert_eq!(back, payload_for(i), "echo mismatch on connection {i}");
    }

    // A second wave over the same (now warm) connections.
    for (i, c) in clients.iter_mut().enumerate() {
        c.write_all(&payload_for(i + CONNS)).unwrap();
    }
    for (i, c) in clients.iter_mut().enumerate() {
        let mut back = vec![0u8; PAYLOAD];
        c.read_exact(&mut back).unwrap();
        assert_eq!(back, payload_for(i + CONNS), "second echo mismatch on {i}");
    }

    let stats = reactor.socket_stats();
    assert_eq!(stats.len(), CONNS);
    let total_in: u64 = stats.iter().map(|r| r.stats.bytes_in).sum();
    assert_eq!(total_in as usize, CONNS * PAYLOAD * 2);

    reactor.shutdown();
    assert_eq!(reactor.connections(), 0, "shutdown left connections behind");
}
