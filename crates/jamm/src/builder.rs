//! [`JammBuilder`]: wire a complete JAMM deployment in a few lines.
//!
//! The paper's Figure 1 structure — sensor directory, per-site event
//! gateways, consumers subscribed through them — used to take a page of
//! imperative setup.  The builder names each part once and `build()`
//! returns a [`JammSystem`] holding the wired components.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use jamm_archive::EventArchive;
use jamm_consumers::archiver::ArchiverAgent;
use jamm_consumers::collector::EventCollector;
use jamm_consumers::GatewayRegistry;
use jamm_core::obs::{MetricsRegistry, MetricsSnapshot, Sample};
use jamm_core::query::{AggRow, Aggregator, Facts, Predicate};
use jamm_core::Sym;
use jamm_directory::{DirectoryServer, Dn, Filter};
use jamm_gateway::{
    EventFilter, EventGateway, GatewayConfig, PipelineTracer, QosConfig, Subscription, Tier,
    TraceClock, DEFAULT_SAMPLE_EVERY,
};
use jamm_reactor::{Reactor, ReactorConfig};
use jamm_rmi::edge::{EdgeConfig, EventEdge};
use jamm_ulm::{Event, SharedEvent};

pub use crate::admin::GatewayAdminStats;

/// Name of the internal gateway self-lifeline trace events flow through.
pub const SELF_GATEWAY: &str = "_jamm";

/// Errors from [`JammBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A DN (directory suffix or archive catalog DN) did not parse.
    BadDn(String),
    /// The deployment declares no event gateway.
    NoGateways,
    /// The persistent archive directory could not be opened.
    Archive(String),
    /// The network edge (reactor or a gateway's broadcast listener) could
    /// not be brought up.
    Edge(String),
    /// The self-monitoring plane (internal `_jamm` gateway subscription)
    /// could not be wired.
    SelfMonitor(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::BadDn(dn) => write!(f, "invalid DN: {dn}"),
            BuildError::NoGateways => write!(f, "deployment declares no event gateway"),
            BuildError::Archive(e) => write!(f, "cannot open archive store: {e}"),
            BuildError::Edge(e) => write!(f, "cannot start network edge: {e}"),
            BuildError::SelfMonitor(e) => write!(f, "cannot wire self-monitoring: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for a [`JammSystem`].
///
/// ```
/// use jamm::JammBuilder;
/// use jamm_ulm::{Event, Level, Timestamp};
///
/// // Directory + two site gateways + a collector, end to end:
/// let mut jamm = JammBuilder::new()
///     .directory("ldap://dir.lbl.gov", "o=grid")
///     .gateway("gw.lbl.gov:8765")
///     .gateway("gw.cairn.net:8765")
///     .collector("nlv-analyst")
///     .build()?;
/// assert_eq!(jamm.gateways.len(), 2);
///
/// // The collector subscribes through every gateway...
/// assert_eq!(jamm.connect_collectors(vec![]), 2);
///
/// // ...so an event published at either site reaches it.
/// let ev = Event::builder("vmstat", "dpss1.lbl.gov")
///     .level(Level::Usage)
///     .event_type("CPU_TOTAL")
///     .timestamp(Timestamp::from_secs(1))
///     .value(42.0)
///     .build();
/// jamm.publish("gw.lbl.gov:8765", &ev);
/// jamm.poll();
/// assert_eq!(jamm.collectors[0].events().len(), 1);
/// # Ok::<(), jamm::BuildError>(())
/// ```
#[derive(Debug, Default)]
pub struct JammBuilder {
    directory_url: Option<String>,
    directory_suffix: Option<String>,
    gateways: Vec<GatewayConfig>,
    collectors: Vec<String>,
    archiver: Option<(String, String)>,
    archive_dir: Option<std::path::PathBuf>,
    retention_micros: Option<u64>,
    gateway_shards: Option<usize>,
    delivery_workers: Option<usize>,
    gateway_qos: Option<QosConfig>,
    network_edge: bool,
    edge_max_connections: Option<usize>,
    edge_write_budget: Option<usize>,
    self_monitor: Option<u64>,
    self_monitor_clock: Option<TraceClock>,
}

impl JammBuilder {
    /// Start an empty deployment description.
    pub fn new() -> Self {
        JammBuilder::default()
    }

    /// The sensor directory: its published URL and its suffix DN (e.g.
    /// `o=grid`).  Defaults to `ldap://directory` with suffix `o=grid`.
    pub fn directory(mut self, url: impl Into<String>, suffix: impl Into<String>) -> Self {
        self.directory_url = Some(url.into());
        self.directory_suffix = Some(suffix.into());
        self
    }

    /// Add an open event gateway published under `name`.
    pub fn gateway(mut self, name: impl Into<String>) -> Self {
        self.gateways.push(GatewayConfig::open(name));
        self
    }

    /// Add a gateway with a full configuration (ACL, summary windows).
    pub fn gateway_config(mut self, config: GatewayConfig) -> Self {
        self.gateways.push(config);
        self
    }

    /// Add an event collector acting as the given consumer principal.
    pub fn collector(mut self, consumer: impl Into<String>) -> Self {
        self.collectors.push(consumer.into());
        self
    }

    /// Add an archiver agent (with its own archive) publishing its catalog
    /// at `catalog_dn`.
    pub fn archiver(mut self, consumer: impl Into<String>, catalog_dn: impl Into<String>) -> Self {
        self.archiver = Some((consumer.into(), catalog_dn.into()));
        self
    }

    /// Store the archive persistently in `dir` (WAL + segment files)
    /// instead of in memory.  The deployment's history then survives
    /// process restart.
    pub fn archive_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.archive_dir = Some(dir.into());
        self
    }

    /// Retention policy: [`JammSystem::archive_maintenance`] expires
    /// archived events older than this many microseconds.
    pub fn retention_micros(mut self, micros: u64) -> Self {
        self.retention_micros = Some(micros);
        self
    }

    /// Retention policy expressed in whole seconds.
    pub fn retention_secs(self, secs: u64) -> Self {
        self.retention_micros(secs * 1_000_000)
    }

    /// Deployment-wide fan-out tuning: split every gateway's routing table
    /// (and summary engine) across `shards` shards.  More shards mean less
    /// contention between publisher threads carrying different event
    /// types; the default is `jamm_gateway::DEFAULT_GATEWAY_SHARDS`.
    /// Applies to every gateway in the deployment, including ones added
    /// with [`JammBuilder::gateway_config`].
    pub fn gateway_shards(mut self, shards: usize) -> Self {
        self.gateway_shards = Some(shards.max(1));
        self
    }

    /// Deployment-wide fan-out tuning: give every gateway `workers`
    /// background delivery threads (0, the default, delivers synchronously
    /// inside publish).  Call [`JammSystem::quiesce`] before reading
    /// delivery counters when workers are enabled.  Applies to every
    /// gateway in the deployment.
    pub fn delivery_workers(mut self, workers: usize) -> Self {
        self.delivery_workers = Some(workers);
        self
    }

    /// Deployment-wide delivery QoS: give every gateway a tiering and
    /// overload-shedding plane ([`jamm_gateway::qos`]).  Subscriptions are
    /// classified `fast`/`lagging`/`probation` by observed drain rate,
    /// laggards get reduced queue budgets (and, with delivery workers,
    /// their own worker pool), and under declared overload raw events are
    /// shed lowest tier first while summaries and `_jamm` self-lifelines
    /// always survive.  Tier rows and shed counters appear in
    /// [`JammSystem::admin_stats`], the metrics exposition, and the
    /// `admin.qos` RMI method.
    pub fn gateway_qos(mut self, qos: QosConfig) -> Self {
        self.gateway_qos = Some(qos);
        self
    }

    /// Give the deployment a network edge: one reactor thread runs a TCP
    /// broadcast listener per gateway ([`jamm_rmi::edge::EventEdge`]), so
    /// remote subscribers receive each gateway's stream as encoded ULM
    /// frames with encode-once/write-N fan-out.  Listener addresses come
    /// from [`JammSystem::edge_addr`]; per-socket backpressure counters
    /// appear in [`JammSystem::admin_stats`].
    pub fn network_edge(mut self, enabled: bool) -> Self {
        self.network_edge = enabled;
        self
    }

    /// Edge tuning: most simultaneous subscriber connections across the
    /// deployment's reactor (accepts beyond this are refused).
    pub fn edge_max_connections(mut self, conns: usize) -> Self {
        self.edge_max_connections = Some(conns.max(1));
        self
    }

    /// Edge tuning: most outbound bytes the reactor writes per connection
    /// per flush — bounds how long one fast socket can monopolise the
    /// loop thread.
    pub fn edge_write_budget(mut self, bytes: usize) -> Self {
        self.edge_write_budget = Some(bytes.max(1));
        self
    }

    /// Monitor the monitor: sample one in every `sample_every` published
    /// events (rounded to a power of two) and follow it through the
    /// pipeline as a NetLogger lifeline — publish, route, subscription
    /// delivery and drain, edge encode and broadcast, archive append —
    /// emitted as ULM events (`PROG=_jamm`) into an internal [`SELF_GATEWAY`]
    /// gateway.  Drain them with `JammSystem::drain_self_events` and feed
    /// them to `jamm_netlogger::analysis::diagnose` to localise the slow
    /// stage.  Use [`jamm_gateway::DEFAULT_SAMPLE_EVERY`] for the default
    /// rate.
    pub fn self_monitor(mut self, sample_every: u64) -> Self {
        self.self_monitor = Some(sample_every);
        self
    }

    /// [`JammBuilder::self_monitor`] at the default 1-in-64 sample rate.
    pub fn self_monitor_default(self) -> Self {
        self.self_monitor(DEFAULT_SAMPLE_EVERY)
    }

    /// Stamp self-lifeline trace points from the given clock instead of
    /// the wall clock.  A simulation driving this deployment (the netsim
    /// scenario engine) passes a [`TraceClock::Shared`] cell it advances
    /// with its own simulated clock, so stage-to-stage durations in
    /// `diagnose()` reflect simulated time and the run is reproducible.
    pub fn self_monitor_clock(mut self, clock: TraceClock) -> Self {
        self.self_monitor_clock = Some(clock);
        self
    }

    /// Wire everything.
    pub fn build(self) -> Result<JammSystem, BuildError> {
        if self.gateways.is_empty() {
            return Err(BuildError::NoGateways);
        }
        let suffix = self
            .directory_suffix
            .unwrap_or_else(|| "o=grid".to_string());
        let suffix_dn = Dn::parse(&suffix).map_err(|_| BuildError::BadDn(suffix.clone()))?;
        let directory = Arc::new(DirectoryServer::new(
            self.directory_url
                .unwrap_or_else(|| "ldap://directory".to_string()),
            suffix_dn.clone(),
        ));
        // The self-monitoring plane: an internal, untraced gateway the
        // tracer emits lifeline events into (untraced, so tracing the
        // trace stream cannot recurse), plus the tracer all pipeline
        // stages share.
        let (self_gateway, tracer) = match self.self_monitor {
            Some(every) => {
                let sink = Arc::new(EventGateway::new(GatewayConfig::open(SELF_GATEWAY)));
                let clock = self.self_monitor_clock.unwrap_or_default();
                let tracer =
                    PipelineTracer::with_clock(Arc::clone(&sink), "jamm-monitor", every, clock);
                (Some(sink), Some(tracer))
            }
            None => (None, None),
        };
        let mut registry = GatewayRegistry::new();
        let mut gateways = Vec::new();
        for mut config in self.gateways {
            if let Some(shards) = self.gateway_shards {
                config = config.with_shards(shards);
            }
            if let Some(workers) = self.delivery_workers {
                config = config.with_delivery_workers(workers);
            }
            if let Some(qos) = &self.gateway_qos {
                config = config.with_qos(qos.clone());
            }
            if let Some(t) = &tracer {
                config = config.with_tracer(Arc::clone(t));
            }
            let name = config.name.clone();
            let gw = Arc::new(EventGateway::new(config));
            registry.register(name, Arc::clone(&gw));
            gateways.push(gw);
        }
        let mut collectors: Vec<EventCollector> = self
            .collectors
            .into_iter()
            .map(EventCollector::new)
            .collect();
        if let Some(t) = &tracer {
            for c in &mut collectors {
                c.set_tracer(Arc::clone(t));
            }
        }
        let archive = match &self.archive_dir {
            Some(dir) => {
                Arc::new(EventArchive::open(dir).map_err(|e| BuildError::Archive(e.to_string()))?)
            }
            None => Arc::new(EventArchive::new()),
        };
        let archiver = match self.archiver {
            Some((consumer, catalog_dn)) => {
                let dn = Dn::parse(&catalog_dn).map_err(|_| BuildError::BadDn(catalog_dn))?;
                let mut agent = ArchiverAgent::new(consumer, Arc::clone(&archive), dn);
                if let Some(t) = &tracer {
                    agent.set_tracer(Arc::clone(t));
                }
                Some(agent)
            }
            None => None,
        };
        let (reactor, edges) = if self.network_edge {
            let mut config = ReactorConfig {
                thread_name: "jamm-edge".to_string(),
                ..ReactorConfig::default()
            };
            if let Some(conns) = self.edge_max_connections {
                config.max_connections = conns;
            }
            if let Some(bytes) = self.edge_write_budget {
                config.write_budget = bytes;
            }
            let reactor =
                Arc::new(Reactor::start(config).map_err(|e| BuildError::Edge(e.to_string()))?);
            let mut edges = Vec::with_capacity(gateways.len());
            for gw in &gateways {
                edges.push(
                    EventEdge::open(Arc::clone(&reactor), Arc::clone(gw), EdgeConfig::default())
                        .map_err(|e| BuildError::Edge(e.to_string()))?,
                );
            }
            (Some(reactor), edges)
        } else {
            (None, Vec::new())
        };
        // A generously bounded subscription on the self-gateway buffers
        // lifeline events until the operator drains them.
        let self_sub = match &self_gateway {
            Some(gw) => Some(
                gw.subscribe()
                    .stream()
                    .capacity(65_536)
                    .as_consumer("_monitor")
                    .open()
                    .map_err(|e| BuildError::SelfMonitor(e.to_string()))?,
            ),
            None => None,
        };
        let metrics = Arc::new(MetricsRegistry::new());
        register_metric_collectors(
            &metrics,
            &gateways,
            &edges,
            reactor.as_ref(),
            &archive,
            tracer.as_ref(),
        );
        Ok(JammSystem {
            directory,
            suffix: suffix_dn,
            registry,
            gateways,
            collectors,
            archiver,
            archive,
            retention_micros: self.retention_micros,
            edges,
            reactor,
            self_gateway,
            tracer,
            self_sub,
            self_log: Arc::new(jamm_core::sync::Mutex::new(Vec::new())),
            metrics,
            query_tiers: Arc::new(QueryTierStats::default()),
        })
    }
}

/// Register one collector per observable component: each closure captures
/// only cheap `Arc` handles to the live atomic counters, so a snapshot
/// reads exactly the numbers `admin_stats` reads.
fn register_metric_collectors(
    metrics: &MetricsRegistry,
    gateways: &[Arc<EventGateway>],
    edges: &[EventEdge],
    reactor: Option<&Arc<Reactor>>,
    archive: &Arc<EventArchive>,
    tracer: Option<&Arc<PipelineTracer>>,
) {
    use jamm_core::obs::SampleValue;
    for gw in gateways {
        let gw = Arc::clone(gw);
        metrics.register_collector(Box::new(move |out: &mut Vec<Sample>| {
            use std::sync::atomic::Ordering;
            let name = gw.name().to_string();
            let stats = gw.stats();
            let with_gw = |s: Sample| s.with_label("gateway", name.clone());
            out.push(with_gw(Sample::counter(
                "jamm_gateway_events_in",
                stats.events_in.load(Ordering::Relaxed),
            )));
            out.push(with_gw(Sample::counter(
                "jamm_gateway_events_out",
                stats.events_out.load(Ordering::Relaxed),
            )));
            out.push(with_gw(Sample::counter(
                "jamm_gateway_events_dropped",
                stats.events_dropped.load(Ordering::Relaxed),
            )));
            out.push(with_gw(Sample::counter(
                "jamm_gateway_bytes_out",
                stats.bytes_out.load(Ordering::Relaxed),
            )));
            out.push(with_gw(Sample::counter(
                "jamm_gateway_queries",
                stats.queries.load(Ordering::Relaxed),
            )));
            out.push(with_gw(Sample {
                name: "jamm_gateway_route_us".to_string(),
                labels: Vec::new(),
                value: SampleValue::Histogram(stats.route_us.snapshot()),
            }));
            for report in gw.delivery_report() {
                let with_sub = |s: Sample| {
                    s.with_label("gateway", name.clone())
                        .with_label("consumer", report.consumer.clone())
                        .with_label("subscription", report.id.to_string())
                };
                out.push(with_sub(Sample::counter(
                    "jamm_subscription_delivered",
                    report.delivered,
                )));
                out.push(with_sub(Sample::counter(
                    "jamm_subscription_dropped",
                    report.dropped,
                )));
                out.push(with_sub(Sample::counter(
                    "jamm_subscription_bytes",
                    report.bytes,
                )));
            }
            if let Some(snap) = gw.qos_snapshot() {
                out.push(with_gw(Sample::gauge(
                    "jamm_gateway_overload_level",
                    snap.level as u8 as f64,
                )));
                out.push(with_gw(Sample::gauge(
                    "jamm_gateway_overload_pressure",
                    snap.pressure,
                )));
                out.push(with_gw(Sample::counter(
                    "jamm_gateway_retiers",
                    snap.retiers,
                )));
                let tier_rows = gw.tier_report();
                for tier in Tier::ALL {
                    let with_tier =
                        |s: Sample| with_gw(s).with_label("tier", tier.as_str().to_string());
                    out.push(with_tier(Sample::counter(
                        "jamm_gateway_shed_total",
                        snap.shed[tier as usize],
                    )));
                    out.push(with_tier(Sample::counter(
                        "jamm_gateway_budget_drops_total",
                        snap.budget_drops[tier as usize],
                    )));
                    out.push(with_tier(Sample::gauge(
                        "jamm_gateway_tier_subscriptions",
                        tier_rows.iter().filter(|r| r.tier == tier).count() as f64,
                    )));
                }
            }
        }));
    }
    if let Some(reactor) = reactor {
        let reactor = Arc::clone(reactor);
        metrics.register_collector(Box::new(move |out: &mut Vec<Sample>| {
            let ls = reactor.loop_stats();
            out.push(Sample::counter("jamm_reactor_ticks", ls.ticks));
            out.push(Sample::counter(
                "jamm_reactor_poll_wait_ns",
                ls.poll_wait_ns,
            ));
            out.push(Sample::counter("jamm_reactor_dispatch_ns", ls.dispatch_ns));
            out.push(Sample::gauge("jamm_reactor_saturation", ls.saturation()));
            out.push(Sample::gauge(
                "jamm_reactor_connections",
                reactor.connections() as f64,
            ));
        }));
    }
    for edge in edges {
        let name = edge.gateway_name().to_string();
        let handle = edge.stats_handle();
        let listener = edge.listener();
        let gw = gateways
            .iter()
            .find(|g| g.name() == edge.gateway_name())
            .map(Arc::clone);
        let Some(reactor) = reactor.map(Arc::clone) else {
            continue;
        };
        metrics.register_collector(Box::new(move |out: &mut Vec<Sample>| {
            let stats = handle.stats();
            let with_gw = |s: Sample| s.with_label("gateway", name.clone());
            out.push(with_gw(Sample::counter("jamm_edge_batches", stats.batches)));
            out.push(with_gw(Sample::counter("jamm_edge_events", stats.events)));
            out.push(with_gw(Sample::counter(
                "jamm_edge_encoded_bytes",
                stats.encoded_bytes,
            )));
            let rows: Vec<_> = reactor
                .socket_stats()
                .into_iter()
                .filter(|r| r.listener == Some(listener))
                .collect();
            out.push(with_gw(Sample::gauge(
                "jamm_edge_subscribers",
                rows.len() as f64,
            )));
            out.push(with_gw(Sample::counter(
                "jamm_edge_socket_bytes_out",
                rows.iter().map(|r| r.stats.bytes_out).sum(),
            )));
            let dropped_frames: u64 = rows.iter().map(|r| r.stats.dropped_frames).sum();
            out.push(with_gw(Sample::counter(
                "jamm_edge_socket_dropped_frames",
                dropped_frames,
            )));
            out.push(with_gw(Sample::counter(
                "jamm_edge_socket_stalls",
                rows.iter().map(|r| r.stats.stalls).sum(),
            )));
            // With a QoS plane, the edge's socket frame drops are also
            // attributed to the tier its gateway subscription currently
            // sits in, so `admin.metrics` answers "is the network edge
            // the laggard?" without scraping per-socket rows.
            if let Some(gw) = &gw {
                if gw.qos_snapshot().is_some() {
                    let tier = gw
                        .tier_report()
                        .iter()
                        .find(|r| r.consumer == "edge")
                        .map(|r| r.tier)
                        .unwrap_or(Tier::Fast);
                    out.push(
                        with_gw(Sample::counter(
                            "jamm_edge_tier_dropped_frames",
                            dropped_frames,
                        ))
                        .with_label("tier", tier.as_str().to_string()),
                    );
                }
            }
        }));
    }
    {
        let archive = Arc::clone(archive);
        metrics.register_collector(Box::new(move |out: &mut Vec<Sample>| {
            let stats = archive.stats();
            out.push(Sample::counter("jamm_tsdb_appended", stats.appended()));
            out.push(Sample::counter(
                "jamm_tsdb_sealed_segments",
                stats.sealed_segments(),
            ));
            out.push(Sample::counter(
                "jamm_tsdb_compactions",
                stats.compactions(),
            ));
            out.push(Sample::counter(
                "jamm_tsdb_segments_scanned",
                stats.segments_scanned(),
            ));
            out.push(Sample::counter(
                "jamm_tsdb_segments_pruned",
                stats.segments_pruned(),
            ));
            out.push(Sample::counter(
                "jamm_tsdb_expired_events",
                stats.expired_events(),
            ));
            for (name, h) in [
                ("jamm_tsdb_append_us", stats.append_us()),
                ("jamm_tsdb_seal_us", stats.seal_us()),
                ("jamm_tsdb_compact_us", stats.compact_us()),
                ("jamm_tsdb_scan_setup_us", stats.scan_setup_us()),
            ] {
                out.push(Sample {
                    name: name.to_string(),
                    labels: Vec::new(),
                    value: SampleValue::Histogram(h.snapshot()),
                });
            }
        }));
    }
    if let Some(tracer) = tracer {
        let tracer = Arc::clone(tracer);
        metrics.register_collector(Box::new(move |out: &mut Vec<Sample>| {
            out.push(Sample::gauge(
                "jamm_trace_sample_every",
                tracer.sample_every() as f64,
            ));
            out.push(Sample::counter(
                "jamm_trace_sampled",
                tracer.sampled_count(),
            ));
            out.push(Sample::counter("jamm_trace_points", tracer.point_count()));
        }));
    }
}

/// A wired JAMM deployment: directory, gateways, consumers.
pub struct JammSystem {
    /// The sensor directory.
    pub directory: Arc<DirectoryServer>,
    /// The directory's suffix DN (the root of sensor publication).
    pub suffix: Dn,
    /// Gateway registry consumers resolve through.
    pub registry: GatewayRegistry,
    /// The gateways, in declaration order.
    pub gateways: Vec<Arc<EventGateway>>,
    /// Event collectors, in declaration order.
    pub collectors: Vec<EventCollector>,
    /// The archiver agent, if one was declared.
    pub archiver: Option<ArchiverAgent>,
    /// The archive written by the archiver agent.
    pub archive: Arc<EventArchive>,
    /// Retention policy applied by [`JammSystem::archive_maintenance`].
    pub retention_micros: Option<u64>,
    /// One broadcast edge per gateway when [`JammBuilder::network_edge`]
    /// is on (declared before `reactor` so edges stop before the loop).
    pub edges: Vec<EventEdge>,
    /// The shared reactor running every edge listener, if enabled.
    pub reactor: Option<Arc<Reactor>>,
    /// The internal gateway self-lifeline trace events flow through, when
    /// [`JammBuilder::self_monitor`] is on.
    pub self_gateway: Option<Arc<EventGateway>>,
    /// The pipeline tracer every stage shares, when self-monitoring is on.
    pub tracer: Option<Arc<PipelineTracer>>,
    /// Bounded subscription buffering lifeline events until drained.
    self_sub: Option<Subscription>,
    /// Lifeline events drained so far, in arrival order — shared with the
    /// RMI `admin.diagnose` closure.
    self_log: Arc<jamm_core::sync::Mutex<Vec<SharedEvent>>>,
    /// The metrics registry every component reports through.
    metrics: Arc<MetricsRegistry>,
    /// Which tier served each [`JammSystem::query`] history answer —
    /// shared with the RMI `admin.diagnose` closure.
    query_tiers: Arc<QueryTierStats>,
}

impl std::fmt::Debug for JammSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JammSystem")
            .field("gateways", &self.gateways.len())
            .field("collectors", &self.collectors.len())
            .field("archiver", &self.archiver.is_some())
            .field("edges", &self.edges.len())
            .finish_non_exhaustive()
    }
}

impl JammSystem {
    /// Subscribe every collector to every gateway with the given extra
    /// filters (no directory discovery; that needs sensors published —
    /// see [`EventCollector::discover`]).  Returns subscriptions opened.
    pub fn connect_collectors(&mut self, extra_filters: Vec<EventFilter>) -> usize {
        let names = self.registry.names();
        let mut opened = 0;
        for collector in &mut self.collectors {
            for name in &names {
                if collector.subscribe_gateway(&self.registry, name, extra_filters.clone()) {
                    opened += 1;
                }
            }
        }
        opened
    }

    /// Subscribe every collector through directory discovery: find sensors
    /// matching `filter` under the suffix, subscribe at their serving
    /// gateways with per-host filters.  Returns subscriptions opened.
    pub fn discover_and_connect(&mut self, filter: &Filter, extra: Vec<EventFilter>) -> usize {
        let mut opened = 0;
        for collector in &mut self.collectors {
            collector.discover(&self.directory, &self.suffix.clone(), filter);
            opened += collector.subscribe_all(&self.registry, extra.clone());
        }
        opened
    }

    /// Subscribe the archiver at every gateway with the given filters.
    pub fn connect_archiver(&mut self, filters: Vec<EventFilter>) -> usize {
        let names = self.registry.names();
        let mut opened = 0;
        if let Some(archiver) = &mut self.archiver {
            for name in &names {
                if archiver
                    .subscribe(&self.registry, name, filters.clone())
                    .is_ok()
                {
                    opened += 1;
                }
            }
        }
        opened
    }

    /// Publish one event at a named gateway.  Returns deliveries, or 0 for
    /// an unknown gateway.
    pub fn publish(&self, gateway: &str, event: &jamm_ulm::Event) -> usize {
        self.registry
            .resolve(gateway)
            .map(|gw| gw.publish(event))
            .unwrap_or(0)
    }

    /// Drain every consumer's pending subscriptions (collectors and the
    /// archiver).  Returns events moved.
    pub fn poll(&mut self) -> usize {
        let mut moved = 0;
        for collector in &mut self.collectors {
            moved += collector.poll();
        }
        if let Some(archiver) = &mut self.archiver {
            moved += archiver.poll();
        }
        moved
    }

    /// Run the archive's periodic maintenance (an administrative operation
    /// a deployment would schedule): seal the hot tier, merge small
    /// segments, apply the retention policy relative to `now`, and refresh
    /// the archive's directory entries.  Storage errors never abort the
    /// pass (each step fails clean) but are carried in the report — a
    /// retention policy that silently stopped working would otherwise look
    /// like a no-op until the disk fills.
    pub fn archive_maintenance(&mut self, now: jamm_ulm::Timestamp) -> ArchiveMaintenanceReport {
        let mut errors = Vec::new();
        let sealed = match self.archive.try_seal() {
            Ok(catalog) => catalog.is_some(),
            Err(e) => {
                errors.push(format!("seal: {e}"));
                false
            }
        };
        let segments_merged = match self.archive.try_compact() {
            Ok(n) => n,
            Err(e) => {
                errors.push(format!("compact: {e}"));
                0
            }
        };
        let events_expired = match self.retention_micros {
            Some(r) => match self.archive.try_expire_before(now.sub_micros(r)) {
                Ok(n) => n,
                Err(e) => {
                    errors.push(format!("retention: {e}"));
                    0
                }
            },
            None => 0,
        };
        if let Some(archiver) = &mut self.archiver {
            if !archiver.publish_catalog(&self.directory, now) {
                errors.push("catalog publication failed".to_string());
            }
        }
        ArchiveMaintenanceReport {
            sealed,
            segments_merged,
            events_expired,
            errors,
        }
    }

    /// Wait until every gateway's delivery workers have routed what they
    /// were handed (a no-op under synchronous delivery).  Call before
    /// reading [`JammSystem::admin_stats`] when
    /// [`JammBuilder::delivery_workers`] is non-zero.
    pub fn quiesce(&self) {
        for gw in &self.gateways {
            gw.quiesce();
        }
    }

    /// Administrative statistics: one row per gateway with its cumulative
    /// totals, routing latency, the per-shard delivered/dropped/bytes
    /// breakdown from the fan-out engine (per-subscription totals alone
    /// cannot show a hot shard or a skewed event-type distribution), edge
    /// socket rows and the reactor's loop saturation.  The same counters
    /// back [`JammSystem::metrics`], so both views always agree.
    pub fn admin_stats(&self) -> Vec<GatewayAdminStats> {
        crate::admin::gateway_admin_stats(&self.gateways, &self.edges, self.reactor.as_deref())
    }

    /// Point-in-time reading of every metric the deployment exposes:
    /// gateway and subscription counters, routing and storage latency
    /// histograms, edge broadcast and socket totals, reactor loop
    /// saturation, and the self-lifeline tracer's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The deployment's metrics in Prometheus-style text exposition format.
    pub fn render_metrics(&self) -> String {
        self.metrics().render_text()
    }

    /// The metrics registry itself, for registering extra collectors or
    /// serving the exposition remotely.
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Expose the deployment's observability plane on an RMI bus as the
    /// `admin` service: method `metrics` returns the text exposition,
    /// method `diagnose` runs [`jamm_netlogger::analysis::diagnose`] over
    /// the lifelines drained so far and returns its report rendered as
    /// text, and method `qos` returns each gateway's delivery-QoS state —
    /// shed level, pressure, per-tier shed counters and the per-
    /// subscription tier table — as a JSON document.  Call
    /// [`JammSystem::drain_self_events`] before invoking `diagnose`
    /// remotely, or pass the lifelines explicitly.
    pub fn register_admin_rmi(&self, bus: &jamm_rmi::MessageBus) {
        use jamm_core::json::Json;
        let metrics = Arc::clone(&self.metrics);
        let self_log = Arc::clone(&self.self_log);
        let query_tiers = Arc::clone(&self.query_tiers);
        let gateways: Vec<Arc<EventGateway>> = self.gateways.iter().map(Arc::clone).collect();
        bus.register_fn("admin", move |method, _args| match method {
            "metrics" => Ok(Json::String(metrics.snapshot().render_text())),
            "diagnose" => {
                let log = self_log.lock();
                let report = jamm_netlogger::analysis::diagnose(log.iter().map(|e| e.as_ref()));
                let mut text = report.render_text();
                text.push_str(&format!(
                    "\nquery tiers: views_served={} archive_scans={}\n",
                    query_tiers.views_served.load(Relaxed),
                    query_tiers.archive_scans.load(Relaxed),
                ));
                for gw in &gateways {
                    for view in gw.views().all() {
                        text.push_str(&format!(
                            "view {}/{}: updates={} reads={}\n",
                            gw.name(),
                            view.name(),
                            view.updates(),
                            view.reads(),
                        ));
                    }
                }
                Ok(Json::String(text))
            }
            "qos" => {
                let rows = gateways
                    .iter()
                    .map(|gw| {
                        let mut obj =
                            vec![("gateway".to_string(), Json::from(gw.name().to_string()))];
                        match gw.qos_snapshot() {
                            Some(snap) => {
                                obj.push(("level".to_string(), Json::from(snap.level.as_str())));
                                obj.push(("pressure".to_string(), Json::from(snap.pressure)));
                                obj.push(("retiers".to_string(), Json::from(snap.retiers)));
                                for tier in Tier::ALL {
                                    obj.push((
                                        format!("shed_{tier}"),
                                        Json::from(snap.shed[tier as usize]),
                                    ));
                                    obj.push((
                                        format!("budget_drops_{tier}"),
                                        Json::from(snap.budget_drops[tier as usize]),
                                    ));
                                }
                                let tiers = gw
                                    .tier_report()
                                    .into_iter()
                                    .map(|r| {
                                        Json::Object(
                                            [
                                                ("id".to_string(), Json::from(r.id)),
                                                (
                                                    "consumer".to_string(),
                                                    Json::from(r.consumer.clone()),
                                                ),
                                                ("tier".to_string(), Json::from(r.tier.as_str())),
                                                ("score".to_string(), Json::from(r.score)),
                                                (
                                                    "queue_len".to_string(),
                                                    Json::from(r.queue_len as u64),
                                                ),
                                                (
                                                    "capacity".to_string(),
                                                    Json::from(r.capacity as u64),
                                                ),
                                            ]
                                            .into_iter()
                                            .collect(),
                                        )
                                    })
                                    .collect();
                                obj.push(("subscriptions".to_string(), Json::Array(tiers)));
                            }
                            None => obj.push(("qos".to_string(), Json::from(false))),
                        }
                        Json::Object(obj.into_iter().collect())
                    })
                    .collect();
                Ok(Json::Array(rows))
            }
            other => Err(jamm_rmi::RmiError::NoSuchMethod(other.to_string())),
        });
    }

    /// Feed the shared reactor's event-loop saturation into every
    /// gateway's overload machine, so declared overload reflects network-
    /// edge pressure as well as queue fill.  Call it on the same cadence
    /// as metric scrapes (or from a maintenance loop); a no-op without a
    /// network edge or without [`JammBuilder::gateway_qos`].
    pub fn feed_reactor_pressure(&self) {
        if let Some(reactor) = &self.reactor {
            let saturation = reactor.loop_stats().saturation();
            for gw in &self.gateways {
                gw.set_external_pressure(saturation);
            }
        }
    }

    /// Re-classify every gateway's subscriptions now (instead of waiting
    /// for the publish-count cadence) and refresh the declared overload
    /// level.  A no-op without [`JammBuilder::gateway_qos`].
    pub fn retier_now(&self) {
        for gw in &self.gateways {
            gw.retier_now();
        }
    }

    /// Drain lifeline trace events from the self-monitoring gateway into
    /// the retained log ([`JammSystem::self_events`]).  Returns how many
    /// arrived.  A no-op without [`JammBuilder::self_monitor`].
    pub fn drain_self_events(&mut self) -> usize {
        use jamm_core::EventSource;
        match &mut self.self_sub {
            Some(sub) => sub.drain_into(&mut self.self_log.lock()),
            None => 0,
        }
    }

    /// Snapshot of the self-lifeline trace events drained so far, in
    /// arrival order — the input to `jamm_netlogger::analysis::diagnose`.
    pub fn self_events(&self) -> Vec<SharedEvent> {
        self.self_log.lock().clone()
    }

    /// The TCP address remote subscribers connect to for a gateway's
    /// stream, when the deployment has a network edge.
    pub fn edge_addr(&self, gateway: &str) -> Option<std::net::SocketAddr> {
        self.edges
            .iter()
            .find(|e| e.gateway_name() == gateway)
            .map(|e| e.addr())
    }

    /// Stop every edge listener (subscriber connections are flushed and
    /// closed) and shut the reactor down.  Called automatically on drop;
    /// explicit shutdown makes teardown deterministic for tests and
    /// orderly restarts.
    pub fn shutdown_edges(&mut self) {
        for edge in &mut self.edges {
            edge.stop();
        }
        self.edges.clear();
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
    }

    /// Replay an archived range through a named gateway, so current
    /// subscribers (collectors, nlv-style analysis) see the historical run
    /// as a live stream.  Returns events delivered into the gateway, or 0
    /// for an unknown gateway.
    pub fn replay_through(&self, gateway: &str, query: &jamm_archive::ArchiveQuery) -> usize {
        let Some(gw) = self.registry.resolve(gateway) else {
            return 0;
        };
        jamm_archive::ReplaySource::new(&self.archive, query).pump(gw.as_ref())
    }

    /// The unified query endpoint: one query string, answered by every
    /// tier the deployment has.
    ///
    /// The text parses into a single query-plane predicate
    /// ([`jamm_core::query::Predicate::parse`]) whose compiled plan is
    /// evaluated against:
    ///
    /// * **live state** — every gateway's query cache (the most recent
    ///   event per series), via the same plan the gateways route with;
    /// * **summaries** — each gateway's windowed averages, filtered by
    ///   the plan's host/type pushdown facts (a summary for `CPU_TOTAL`
    ///   answers a `(type=CPU_TOTAL)` query even though its synthetic
    ///   event type is `CPU_TOTAL_AVG_1MIN`);
    /// * **history** — a materialized view when one matches the query
    ///   exactly (snapshot read, no scan), else a plan-driven archive
    ///   scan with full segment pruning and limit pushdown.  The answer's
    ///   [`QueryAnswer::history_source`] says which tier served it.
    ///
    /// Access control applies per gateway exactly as for direct queries
    /// and summary requests.
    pub fn query(
        &self,
        consumer: &str,
        query: &str,
        now: jamm_ulm::Timestamp,
    ) -> Result<QueryAnswer, QueryError> {
        let pred = Predicate::parse(query).map_err(|e| QueryError::BadQuery(e.to_string()))?;
        let plan = pred.compile();
        let canonical = pred.to_string();
        let mut live = Vec::new();
        let mut summaries = Vec::new();
        let mut view_names = Vec::new();
        let mut view_updates = 0u64;
        let mut view_history: Vec<Event> = Vec::new();
        let mut aggregates: Vec<AggRow> = Vec::new();
        for gw in &self.gateways {
            live.extend(
                gw.query_matching(consumer, &plan)
                    .map_err(|e| QueryError::Denied(e.to_string()))?,
            );
            summaries.extend(
                gw.summaries(consumer, now)
                    .map_err(|e| QueryError::Denied(e.to_string()))?
                    .into_iter()
                    .filter(|s| summary_admitted(plan.facts(), s)),
            );
            // A continuous query materializing exactly this predicate
            // (canonical text match) answers history from its snapshot —
            // one Arc clone, no archive scan, no per-reader work.
            if let Some(view) = gw.views().by_query_text(&canonical) {
                let snap = view.snapshot();
                view_names.push(format!("{}/{}", gw.name(), view.name()));
                view_updates += snap.updates;
                view_history.extend(snap.events.iter().map(|e| (**e).clone()));
                aggregates.extend(snap.aggregates.iter().cloned());
            }
        }
        let (history, history_source) = if view_names.is_empty() {
            // The historical scan runs through its own plan clone (fresh
            // stateful memory), with segment pruning and limit pushdown.
            let scanned0 = self.archive.stats().segments_scanned();
            let pruned0 = self.archive.stats().segments_pruned();
            let history: Vec<Event> = self.archive.scan_plan(&plan).collect();
            self.query_tiers.archive_scans.fetch_add(1, Relaxed);
            // Ad-hoc aggregate queries fold the scan result; continuous
            // queries maintain theirs incrementally.
            if let Some(spec) = plan.aggregate() {
                let mut agg = Aggregator::new(spec.clone());
                for event in &history {
                    agg.push(event);
                }
                aggregates = agg.rows(now.as_micros());
            }
            let source = HistorySource::ArchiveScan {
                segments_scanned: self.archive.stats().segments_scanned() - scanned0,
                segments_pruned: self.archive.stats().segments_pruned() - pruned0,
            };
            (history, source)
        } else {
            self.query_tiers.views_served.fetch_add(1, Relaxed);
            let source = HistorySource::MaterializedView {
                views: view_names,
                updates: view_updates,
            };
            (view_history, source)
        };
        Ok(QueryAnswer {
            live,
            summaries,
            history,
            aggregates,
            history_source,
        })
    }

    /// Register a continuous query on every gateway: from now on each
    /// gateway maintains the materialized view on its publish path, and
    /// [`JammSystem::query`] with the same predicate text is served from
    /// view snapshots instead of archive scans.
    pub fn register_continuous_query(&self, name: &str, text: &str) -> Result<(), QueryError> {
        for gw in &self.gateways {
            gw.register_view(name, text)
                .map_err(|e| QueryError::BadQuery(e.to_string()))?;
        }
        Ok(())
    }

    /// Counters for which tier served query history — the numbers behind
    /// the scenario engine's `served_from_views` expectation.
    pub fn query_tier_stats(&self) -> &QueryTierStats {
        &self.query_tiers
    }
}

/// Does a synthetic summary event answer a query's pushdown facts?  The
/// summary's event type is `{base}_AVG_{window}`, so the type fact matches
/// against the base series type; the host fact matches directly.  Time
/// bounds and severity floors are about raw events, not rollups, and are
/// not applied here.
fn summary_admitted(facts: &Facts, summary: &Event) -> bool {
    if let Some(hosts) = &facts.hosts {
        let ok = Sym::lookup(&summary.host).is_some_and(|h| hosts.contains(&h));
        if !ok {
            return false;
        }
    }
    if let Some(types) = &facts.types {
        let ok = types.iter().any(|t| {
            summary
                .event_type
                .strip_prefix(t.as_str())
                .is_some_and(|rest| rest.starts_with("_AVG_"))
        });
        if !ok {
            return false;
        }
    }
    true
}

/// What [`JammSystem::query`] returns: the same question answered by each
/// tier of the deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Most recent matching event per live series, from every gateway's
    /// query cache (shared handles; nothing is copied).
    pub live: Vec<SharedEvent>,
    /// Windowed summary events whose series the query selects.
    pub summaries: Vec<Event>,
    /// Matching archived history, in time order (limit applied by the
    /// storage engine's scan).
    pub history: Vec<Event>,
    /// Aggregate rows when the query carries group-by / top-k / rate
    /// directives — maintained incrementally when a view served the
    /// query, folded from the scan otherwise.
    pub aggregates: Vec<AggRow>,
    /// Which tier produced [`QueryAnswer::history`].
    pub history_source: HistorySource,
}

/// Provenance of a [`QueryAnswer`]'s history: which tier actually did
/// the work.  Tests and `admin.diagnose` assert on this instead of
/// guessing from timings.
#[derive(Debug, Clone, PartialEq)]
pub enum HistorySource {
    /// Served from continuous-query snapshots — no archive scan ran.
    MaterializedView {
        /// `gateway/view` labels of every snapshot consulted.
        views: Vec<String>,
        /// Total publish-path updates folded into those snapshots.
        updates: u64,
    },
    /// Served by scanning the archive.
    ArchiveScan {
        /// Segments the scan actually opened.
        segments_scanned: u64,
        /// Segments skipped whole by catalog pruning.
        segments_pruned: u64,
    },
}

/// Counters for which tier served [`JammSystem::query`] history answers.
#[derive(Debug, Default)]
pub struct QueryTierStats {
    /// Queries answered from materialized views (no scan).
    pub views_served: AtomicU64,
    /// Queries that fell back to an archive scan.
    pub archive_scans: AtomicU64,
}

/// Errors from [`JammSystem::query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query string did not parse.
    BadQuery(String),
    /// A gateway's access policy rejected the consumer.
    Denied(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::BadQuery(e) => write!(f, "bad query: {e}"),
            QueryError::Denied(e) => write!(f, "query denied: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// What one [`JammSystem::archive_maintenance`] pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveMaintenanceReport {
    /// Whether the hot tier had events to seal.
    pub sealed: bool,
    /// Net segments removed by compaction merges.
    pub segments_merged: usize,
    /// Events dropped by the retention policy.
    pub events_expired: usize,
    /// Steps that failed (each step fails clean; the rest of the pass
    /// still runs).
    pub errors: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_ulm::{Event, Level, Timestamp};

    fn ev(host: &str, level: Level, t: u64) -> Event {
        Event::builder("sensor", host)
            .level(level)
            .event_type("CPU_TOTAL")
            .timestamp(Timestamp::from_secs(t))
            .value(50.0)
            .build()
    }

    #[test]
    fn builder_requires_a_gateway_and_valid_dns() {
        assert_eq!(
            JammBuilder::new().build().unwrap_err(),
            BuildError::NoGateways
        );
        assert!(matches!(
            JammBuilder::new()
                .directory("ldap://x", "not a dn !!")
                .gateway("gw")
                .build(),
            Err(BuildError::BadDn(_))
        ));
        assert!(matches!(
            JammBuilder::new()
                .gateway("gw")
                .archiver("a", "also not a dn !!")
                .build(),
            Err(BuildError::BadDn(_))
        ));
    }

    #[test]
    fn full_system_flows_events_to_collector_and_archiver() {
        let mut jamm = JammBuilder::new()
            .directory("ldap://dir", "o=grid")
            .gateway("gw1")
            .gateway("gw2")
            .collector("ops")
            .archiver("archiver", "archive=main,o=grid")
            .build()
            .unwrap();
        assert_eq!(jamm.connect_collectors(vec![]), 2);
        assert_eq!(
            jamm.connect_archiver(vec![EventFilter::MinLevel(Level::Warning)]),
            2
        );
        jamm.publish("gw1", &ev("h1", Level::Usage, 1));
        jamm.publish("gw2", &ev("h2", Level::Error, 2));
        assert_eq!(jamm.publish("missing", &ev("h", Level::Usage, 3)), 0);
        jamm.poll();
        assert_eq!(jamm.collectors[0].events().len(), 2);
        assert_eq!(jamm.archive.len(), 1, "archiver only keeps problems");
    }

    #[test]
    fn default_directory_is_provided() {
        let jamm = JammBuilder::new().gateway("gw").build().unwrap();
        assert_eq!(jamm.directory.entry_count(), 0);
        assert_eq!(jamm.suffix, Dn::parse("o=grid").unwrap());
        assert!(jamm.archiver.is_none());
    }

    #[test]
    fn persistent_archive_and_retention_are_wired() {
        let dir = jamm_tsdb::test_util::TempDir::new("builder-archive");
        {
            let mut jamm = JammBuilder::new()
                .gateway("gw1")
                .archiver("archiver", "archive=main,o=grid")
                .archive_dir(dir.path())
                .retention_secs(60)
                .build()
                .unwrap();
            jamm.connect_archiver(vec![]);
            for t in 0..50u64 {
                jamm.publish("gw1", &ev("h", Level::Usage, t));
            }
            jamm.poll();
            // Maintenance at t=100: retention 60s expires t < 40.
            let report = jamm.archive_maintenance(Timestamp::from_secs(100));
            assert!(report.sealed);
            assert_eq!(report.events_expired, 40);
            assert!(report.errors.is_empty());
            assert_eq!(jamm.archive.len(), 10);
            // The refreshed catalog entry reflects the cut.
            let dn = Dn::parse("archive=main,o=grid").unwrap();
            let entry = jamm.directory.lookup(&dn).unwrap();
            assert_eq!(entry.get("eventcount"), Some("10"));
        }
        // A new system over the same directory sees the surviving history.
        let jamm = JammBuilder::new()
            .gateway("gw1")
            .archiver("archiver", "archive=main,o=grid")
            .archive_dir(dir.path())
            .build()
            .unwrap();
        assert_eq!(jamm.archive.len(), 10);
    }

    #[test]
    fn fanout_knobs_and_admin_stats_expose_per_shard_counters() {
        let mut jamm = JammBuilder::new()
            .gateway("gw1")
            .gateway("gw2")
            .collector("ops")
            .gateway_shards(4)
            .delivery_workers(2)
            .build()
            .unwrap();
        assert!(jamm
            .gateways
            .iter()
            .all(|gw| gw.shard_count() == 4 && gw.delivery_worker_count() == 2));
        jamm.connect_collectors(vec![]);
        for t in 0..40u64 {
            jamm.publish("gw1", &ev("h1", Level::Usage, t));
        }
        jamm.quiesce();
        let stats = jamm.admin_stats();
        assert_eq!(stats.len(), 2);
        let gw1 = &stats[0];
        assert_eq!(gw1.name, "gw1");
        assert_eq!(gw1.events_in, 40);
        assert_eq!(gw1.events_out, 40);
        assert_eq!(gw1.delivery_workers, 2);
        assert_eq!(gw1.shards.len(), 4);
        // The shard rows decompose the gateway totals.
        assert_eq!(gw1.shards.iter().map(|s| s.events_in).sum::<u64>(), 40);
        assert_eq!(gw1.shards.iter().map(|s| s.delivered).sum::<u64>(), 40);
        assert_eq!(
            gw1.shards.iter().map(|s| s.bytes).sum::<u64>(),
            gw1.bytes_out
        );
        assert_eq!(gw1.subscriptions.len(), 1);
        assert_eq!(gw1.subscriptions[0].delivered, 40);
        // The idle gateway's rows are all zero but still present.
        assert_eq!(stats[1].events_in, 0);
        assert_eq!(stats[1].shards.len(), 4);
    }

    #[test]
    fn network_edge_broadcasts_to_remote_subscribers() {
        use std::io::Read as _;
        use std::time::{Duration, Instant};

        let mut jamm = JammBuilder::new()
            .gateway("gw1")
            .collector("ops")
            .network_edge(true)
            .edge_max_connections(64)
            .edge_write_budget(64 * 1024)
            .build()
            .unwrap();
        let addr = jamm.edge_addr("gw1").unwrap();
        assert!(jamm.edge_addr("missing").is_none());
        jamm.connect_collectors(vec![]);

        let mut sub = std::net::TcpStream::connect(addr).unwrap();
        sub.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while jamm.edges[0].subscribers() < 1 {
            assert!(Instant::now() < deadline, "subscriber never registered");
            std::thread::sleep(Duration::from_millis(2));
        }

        let events: Vec<Event> = (0..8).map(|t| ev("h1", Level::Usage, t)).collect();
        for e in &events {
            jamm.publish("gw1", e);
        }

        // The remote subscriber sees the same stream local consumers get,
        // as binary ULM frames.
        let codec = jamm_ulm::codec::codec_for(jamm_ulm::codec::BINARY).unwrap();
        let expected: usize = events.iter().map(|e| codec.encode(e).len()).sum();
        let mut got = vec![0u8; expected];
        sub.read_exact(&mut got).unwrap();
        assert_eq!(codec.decode_batch(&got).unwrap(), events);
        jamm.poll();
        assert_eq!(jamm.collectors[0].events().len(), 8);

        // admin_stats carries the per-socket backpressure rows.  The loop
        // thread's counters are eventually consistent with the bytes the
        // client has read.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let stats = jamm.admin_stats();
            let rows = &stats[0].sockets;
            if rows.len() == 1 && rows[0].stats.bytes_out as usize >= expected {
                assert_eq!(rows[0].stats.dropped_frames, 0);
                break;
            }
            assert!(Instant::now() < deadline, "socket row never converged");
            std::thread::sleep(Duration::from_millis(2));
        }

        jamm.shutdown_edges();
        assert!(jamm.admin_stats()[0].sockets.is_empty());
        let mut rest = Vec::new();
        sub.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "edge shutdown flushed then closed");
    }

    #[test]
    fn unified_query_answers_from_cache_summaries_and_archive() {
        let mut jamm = JammBuilder::new()
            .gateway("gw1")
            .archiver("archiver", "archive=main,o=grid")
            .build()
            .unwrap();
        jamm.connect_archiver(vec![]);
        for t in 0..30u64 {
            jamm.publish("gw1", &ev("h1", Level::Usage, 1_000 + t));
            jamm.publish(
                "gw1",
                &Event::builder("sensor", "h2")
                    .level(Level::Warning)
                    .event_type("MEM_FREE")
                    .timestamp(Timestamp::from_secs(1_000 + t))
                    .value(t as f64)
                    .build(),
            );
        }
        jamm.poll();

        let answer = jamm
            .query(
                "ops",
                "(&(type=CPU_TOTAL)(host=h1))",
                Timestamp::from_secs(1_030),
            )
            .unwrap();
        // Live: the cached latest CPU reading for h1 only.
        assert_eq!(answer.live.len(), 1);
        assert_eq!(answer.live[0].event_type, "CPU_TOTAL");
        assert_eq!(answer.live[0].timestamp, Timestamp::from_secs(1_029));
        // Summaries: the CPU series' windows, not MEM_FREE's.
        assert!(!answer.summaries.is_empty());
        assert!(answer
            .summaries
            .iter()
            .all(|s| s.event_type.starts_with("CPU_TOTAL_AVG")));
        // History: all 30 archived CPU events, in time order.
        assert_eq!(answer.history.len(), 30);
        assert!(answer.history.iter().all(|e| e.event_type == "CPU_TOTAL"));

        // The same endpoint takes richer predicates: severity floor plus
        // limit pushdown against the archive.
        let warn = jamm
            .query(
                "ops",
                "(&(level>=warning)(limit=5))",
                Timestamp::from_secs(1_030),
            )
            .unwrap();
        assert_eq!(warn.history.len(), 5);
        assert!(warn.history.iter().all(|e| e.event_type == "MEM_FREE"));

        // Parse errors surface, not panic.
        assert!(matches!(
            jamm.query("ops", "(nonsense", Timestamp::from_secs(0)),
            Err(QueryError::BadQuery(_))
        ));
    }

    #[test]
    fn continuous_queries_serve_history_without_archive_scans() {
        let mut jamm = JammBuilder::new()
            .gateway("gw1")
            .archiver("archiver", "archive=main,o=grid")
            .build()
            .unwrap();
        jamm.connect_archiver(vec![]);
        let text = "(&(type=CPU_TOTAL)(host=h1))";

        // Before any view exists the archive serves history and says so.
        jamm.publish("gw1", &ev("h1", Level::Usage, 1_000));
        jamm.poll();
        let cold = jamm
            .query("ops", text, Timestamp::from_secs(1_001))
            .unwrap();
        assert!(matches!(
            cold.history_source,
            HistorySource::ArchiveScan { .. }
        ));
        assert_eq!(jamm.query_tier_stats().archive_scans.load(Relaxed), 1);

        // Register the view; matching publishes fold in from then on.
        jamm.register_continuous_query("hot-cpu", text).unwrap();
        for t in 0..10u64 {
            jamm.publish("gw1", &ev("h1", Level::Usage, 2_000 + t));
            jamm.publish("gw1", &ev("h2", Level::Usage, 2_000 + t)); // filtered
        }
        jamm.gateways[0].views().flush();

        let scans_before = jamm.archive.stats().segments_scanned();
        let warm = jamm
            .query("ops", text, Timestamp::from_secs(2_010))
            .unwrap();
        match &warm.history_source {
            HistorySource::MaterializedView { views, updates } => {
                assert_eq!(views, &["gw1/hot-cpu".to_string()]);
                assert_eq!(*updates, 10);
            }
            other => panic!("expected view provenance, got {other:?}"),
        }
        assert_eq!(warm.history.len(), 10);
        assert!(warm.history.iter().all(|e| e.host == "h1"));
        // The archive was not touched: zero new segment scans.
        assert_eq!(jamm.archive.stats().segments_scanned(), scans_before);
        assert_eq!(jamm.query_tier_stats().views_served.load(Relaxed), 1);

        // A *different* predicate still falls back to the archive.
        let miss = jamm
            .query("ops", "(type=MEM_FREE)", Timestamp::from_secs(2_010))
            .unwrap();
        assert!(matches!(
            miss.history_source,
            HistorySource::ArchiveScan { .. }
        ));
        assert_eq!(jamm.query_tier_stats().archive_scans.load(Relaxed), 2);

        // Bad view queries are rejected at registration.
        assert!(matches!(
            jamm.register_continuous_query("bad", "((("),
            Err(QueryError::BadQuery(_))
        ));
    }

    #[test]
    fn aggregate_queries_fold_rows_from_either_tier() {
        let mut jamm = JammBuilder::new()
            .gateway("gw1")
            .archiver("archiver", "archive=main,o=grid")
            .build()
            .unwrap();
        jamm.connect_archiver(vec![]);
        let text = "(&(type=CPU_TOTAL)(groupby=host)(topk=2))";
        for t in 0..6u64 {
            jamm.publish("gw1", &ev("h1", Level::Usage, 1_000 + t));
        }
        for t in 0..3u64 {
            jamm.publish("gw1", &ev("h2", Level::Usage, 1_000 + t));
        }
        jamm.publish("gw1", &ev("h3", Level::Usage, 1_000));
        jamm.poll();

        // Ad-hoc: folded from the archive scan.
        let adhoc = jamm
            .query("ops", text, Timestamp::from_secs(1_010))
            .unwrap();
        assert!(matches!(
            adhoc.history_source,
            HistorySource::ArchiveScan { .. }
        ));
        assert_eq!(adhoc.aggregates.len(), 2, "top-k cut");
        assert_eq!(adhoc.aggregates[0].host.unwrap().as_str(), "h1");
        assert_eq!(adhoc.aggregates[0].count, 6);
        assert_eq!(adhoc.aggregates[1].count, 3);

        // Continuous: maintained on the publish path, same answer shape.
        jamm.register_continuous_query("by-host", text).unwrap();
        for t in 0..6u64 {
            jamm.publish("gw1", &ev("h1", Level::Usage, 3_000 + t));
        }
        for t in 0..3u64 {
            jamm.publish("gw1", &ev("h2", Level::Usage, 3_000 + t));
        }
        jamm.gateways[0].views().flush();
        let cont = jamm
            .query("ops", text, Timestamp::from_secs(3_010))
            .unwrap();
        assert!(matches!(
            cont.history_source,
            HistorySource::MaterializedView { .. }
        ));
        assert_eq!(cont.aggregates.len(), 2);
        assert_eq!(cont.aggregates[0].host.unwrap().as_str(), "h1");
        assert_eq!(cont.aggregates[0].count, 6);
    }

    #[test]
    fn self_monitoring_traces_lifelines_and_unifies_metrics() {
        let mut jamm = JammBuilder::new()
            .gateway("gw1")
            .collector("ops")
            .archiver("keeper", "archive=main,o=grid")
            .self_monitor(1) // sample every published event
            .build()
            .unwrap();
        jamm.connect_collectors(vec![]);
        jamm.connect_archiver(vec![]);
        for t in 0..16u64 {
            jamm.publish("gw1", &ev("h1", Level::Usage, t));
        }
        jamm.poll();
        assert!(jamm.drain_self_events() > 0);

        // The lifelines cover publish, route, delivery, drain and archive
        // append, correlated by NL.OID and targeted per consumer.
        let lifeline_log = jamm.self_events();
        let stages: std::collections::BTreeSet<&str> =
            lifeline_log.iter().map(|e| e.event_type.as_str()).collect();
        for stage in [
            jamm_ulm::keys::jamm::GW_PUBLISH,
            jamm_ulm::keys::jamm::GW_ROUTED,
            jamm_ulm::keys::jamm::SUB_DELIVER,
            jamm_ulm::keys::jamm::SUB_DRAIN,
            jamm_ulm::keys::jamm::ARCHIVE_APPEND,
        ] {
            assert!(stages.contains(stage), "missing stage {stage}: {stages:?}");
        }
        assert!(lifeline_log
            .iter()
            .all(|e| e.program == "_jamm" && e.object_id().is_some()));

        // Metrics and admin_stats read the same atomics: identical numbers.
        let snapshot = jamm.metrics();
        let admin = jamm.admin_stats();
        assert_eq!(
            snapshot.counter_with("jamm_gateway_events_in", "gateway", "gw1"),
            Some(admin[0].events_in)
        );
        assert_eq!(
            snapshot
                .counter_with("jamm_subscription_delivered", "consumer", "ops")
                .unwrap(),
            admin[0]
                .subscriptions
                .iter()
                .find(|s| s.consumer == "ops")
                .unwrap()
                .delivered
        );
        assert_eq!(admin[0].route_us.count(), 16, "one routing sample/publish");
        let text = jamm.render_metrics();
        assert!(text.contains("jamm_gateway_events_in"));
        assert!(text.contains("jamm_trace_sampled"));
        assert!(text.contains("jamm_tsdb_appended"));

        // The RMI admin method serves the same exposition remotely.
        let bus = jamm_rmi::MessageBus::new();
        jamm.register_admin_rmi(&bus);
        let served = bus
            .invoke(&jamm_rmi::MethodCall::new(
                "admin",
                "metrics",
                jamm_core::json::Json::Null,
            ))
            .unwrap();
        assert!(served.as_str().unwrap().contains("jamm_gateway_events_in"));
        // ... and the diagnosis over the drained lifelines.
        let report = bus
            .invoke(&jamm_rmi::MethodCall::new(
                "admin",
                "diagnose",
                jamm_core::json::Json::Null,
            ))
            .unwrap();
        let report = report.as_str().unwrap();
        assert!(report.contains("bottleneck:"), "{report}");
        assert!(!report.contains("bottleneck: none"), "{report}");
        assert!(matches!(
            bus.invoke(&jamm_rmi::MethodCall::new(
                "admin",
                "nope",
                jamm_core::json::Json::Null
            )),
            Err(jamm_rmi::RmiError::NoSuchMethod(_))
        ));
    }

    #[test]
    fn gateway_qos_surfaces_in_admin_stats_metrics_and_rmi() {
        use jamm_gateway::ShedLevel;

        let jamm = JammBuilder::new()
            .gateway("gw1")
            .gateway_qos(QosConfig {
                retier_every: u64::MAX, // driven manually below
                ..QosConfig::default()
            })
            .build()
            .unwrap();
        let gw = &jamm.gateways[0];
        let mut fast = gw
            .subscribe()
            .as_consumer("fast")
            .capacity(64)
            .open()
            .unwrap();
        let _stalled = gw
            .subscribe()
            .as_consumer("stalled")
            .capacity(64)
            .open()
            .unwrap();
        for round in 0..6u64 {
            for t in 0..64u64 {
                jamm.publish("gw1", &ev("h1", Level::Usage, round * 64 + t));
            }
            fast.drain();
            jamm.retier_now();
        }

        // admin_stats carries the tier table and the QoS snapshot.
        let admin = jamm.admin_stats();
        let tier_of = |name: &str| {
            admin[0]
                .tiers
                .iter()
                .find(|r| r.consumer == name)
                .unwrap()
                .tier
        };
        assert_eq!(tier_of("fast"), Tier::Fast);
        assert_eq!(tier_of("stalled"), Tier::Probation);
        assert!(admin[0].qos.is_some());

        // Metrics expose the same tier census and the shed counters.
        let snapshot = jamm.metrics();
        assert_eq!(
            snapshot.gauge_with("jamm_gateway_tier_subscriptions", "tier", "probation"),
            Some(1.0)
        );
        let text = jamm.render_metrics();
        assert!(text.contains("jamm_gateway_shed_total"));
        assert!(text.contains("jamm_gateway_overload_level"));

        // Declared overload sheds raw events; the RMI surface reports it.
        jamm.gateways[0].set_external_pressure(1.0);
        jamm.retier_now();
        assert_eq!(
            jamm.gateways[0].qos_snapshot().unwrap().level,
            ShedLevel::All
        );
        jamm.publish("gw1", &ev("h1", Level::Usage, 1_000));
        let bus = jamm_rmi::MessageBus::new();
        jamm.register_admin_rmi(&bus);
        let qos = bus
            .invoke(&jamm_rmi::MethodCall::new(
                "admin",
                "qos",
                jamm_core::json::Json::Null,
            ))
            .unwrap();
        assert_eq!(qos[0]["gateway"].as_str(), Some("gw1"));
        assert_eq!(qos[0]["level"].as_str(), Some("all"));
        let shed: f64 = ["shed_fast", "shed_lagging", "shed_probation"]
            .iter()
            .filter_map(|k| qos[0][*k].as_f64())
            .sum();
        assert!(shed >= 1.0, "overload publish was not counted as shed");
        assert!(qos[0]["subscriptions"]
            .as_array()
            .unwrap()
            .iter()
            .any(|row| row["tier"].as_str() == Some("probation")));
    }

    #[test]
    fn archived_history_replays_through_a_gateway() {
        let mut jamm = JammBuilder::new()
            .gateway("gw1")
            .collector("analyst")
            .archiver("archiver", "archive=main,o=grid")
            .build()
            .unwrap();
        jamm.connect_archiver(vec![]);
        for t in 0..20u64 {
            jamm.publish("gw1", &ev("h", Level::Usage, t));
        }
        jamm.poll();
        // A collector subscribing *after* the fact sees the archived run
        // replayed as a live stream.
        assert_eq!(jamm.connect_collectors(vec![]), 1);
        let q = jamm_archive::ArchiveQuery::all()
            .between(Timestamp::from_secs(5), Timestamp::from_secs(15));
        assert_eq!(jamm.replay_through("gw1", &q), 10);
        assert_eq!(jamm.replay_through("missing", &q), 0);
        jamm.poll();
        assert_eq!(jamm.collectors[0].events().len(), 10);
    }
}
