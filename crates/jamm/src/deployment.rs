//! Complete JAMM deployments over the simulated testbed.
//!
//! A deployment is the paper's Figure 4: every monitored host runs a sensor
//! manager feeding its site's event gateway; sensor publication records live
//! in the (replicated) directory; an event collector and an archiver agent
//! subscribe through the gateways; and the monitored application (the MATISSE
//! frame player pulling data from the DPSS) runs underneath, oblivious to all
//! of it.

use std::sync::Arc;

use jamm_archive::EventArchive;
use jamm_consumers::archiver::ArchiverAgent;
use jamm_consumers::collector::EventCollector;
use jamm_consumers::GatewayRegistry;
use jamm_directory::{DirectoryServer, Dn, Filter};
use jamm_gateway::{EventFilter, EventGateway};

use crate::builder::JammBuilder;
use jamm_manager::config::{ManagerConfig, RunPolicy, SensorConfigEntry, SensorTemplate};
use jamm_manager::manager::{PortActivitySource, SensorManager};
use jamm_netlogger::nlv::NlvChart;
use jamm_netsim::scenario::{MatisseConfig, MatisseScenario};
use jamm_netsim::Network;
use jamm_sensors::sim::NetworkSource;
use jamm_ulm::{keys, Event, Level};

/// How often (in simulated milliseconds) the sensor managers run a
/// monitoring cycle.
const MANAGER_PERIOD_MS: u64 = 10;

/// Configuration of a full JAMM deployment.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// The underlying MATISSE scenario (topology, player, seed).
    pub matisse: MatisseConfig,
    /// Port the DPSS serves data on (watched by the port monitor).
    pub dpss_port: u16,
    /// Whether host monitoring is port-triggered (the paper's on-demand
    /// monitoring) or always on.  Experiment E8 compares the two.
    pub port_triggered: bool,
    /// Whether the archiver agent runs.
    pub archive: bool,
}

impl DeploymentConfig {
    /// The §6 wide-area MATISSE deployment with `dpss_servers` block servers.
    pub fn matisse_wan(dpss_servers: usize) -> Self {
        DeploymentConfig {
            matisse: MatisseConfig {
                dpss_servers,
                wan: true,
                ..MatisseConfig::default()
            },
            dpss_port: 7_000,
            port_triggered: false,
            archive: true,
        }
    }

    /// The LAN variant (used for the LAN comparisons and fast tests).
    pub fn matisse_lan(dpss_servers: usize) -> Self {
        DeploymentConfig {
            matisse: MatisseConfig {
                dpss_servers,
                wan: false,
                ..MatisseConfig::default()
            },
            dpss_port: 7_000,
            port_triggered: false,
            archive: true,
        }
    }
}

/// Adapter: the simulated network answers the port monitor's questions.
struct NetPorts<'a> {
    net: &'a Network,
}

impl PortActivitySource for NetPorts<'_> {
    fn bytes_on_port(&self, host: &str, port: u16) -> u64 {
        self.net
            .host_by_name(host)
            .map(|id| self.net.port_activity(id, port))
            .unwrap_or(0)
    }
}

/// A fully wired JAMM system running over the simulated testbed.
pub struct JammDeployment {
    /// The monitored application scenario (network + DPSS + player + trace).
    pub scenario: MatisseScenario,
    /// The sensor directory (one site-wide server in this deployment).
    pub directory: Arc<DirectoryServer>,
    /// Gateways by published name.
    pub registry: GatewayRegistry,
    gateways: Vec<Arc<EventGateway>>,
    managers: Vec<SensorManager>,
    /// The real-time event collector consumer.
    pub collector: EventCollector,
    archiver: Option<ArchiverAgent>,
    /// The event archive (written by the archiver agent).
    pub archive: Arc<EventArchive>,
    config: DeploymentConfig,
    subscribed: bool,
}

impl JammDeployment {
    /// Build the MATISSE deployment of §6: JAMM monitoring every host of the
    /// storage cluster, the receiving host, and the routers in between.
    pub fn matisse(config: DeploymentConfig) -> Self {
        let scenario = MatisseScenario::new(config.matisse.clone());

        // One gateway per site, as in Figure 6: the storage cluster's events
        // go through the LBNL gateway, the compute cluster's through ISI's.
        // The builder wires directory + gateways + consumers in one place.
        let mut builder = JammBuilder::new()
            .directory("ldap://dir.lbl.gov", "o=grid")
            .gateway("gw.lbl.gov:8765")
            .gateway("gw.cairn.net:8765")
            .collector("nlv-analyst");
        if config.archive {
            builder = builder.archiver("archiver", "archive=matisse,o=lbl,o=grid");
        }
        let system = builder
            .build()
            .expect("static deployment description is valid");
        let directory = system.directory;
        let registry = system.registry;
        let gateways = system.gateways;
        let mut collectors = system.collectors;
        let collector = collectors.pop().expect("one collector declared");
        let archiver = system.archiver;
        let archive = system.archive;

        // Sensor managers: one per monitored host.
        let mut managers = Vec::new();
        let host_policy = |port_triggered: bool, port: u16| {
            if port_triggered {
                RunPolicy::PortTriggered {
                    port,
                    idle_secs: 2.0,
                }
            } else {
                RunPolicy::Always
            }
        };
        for (i, &host_id) in scenario.storage_hosts.iter().enumerate() {
            let host = scenario.net.host(host_id).name().to_string();
            let mut cfg = ManagerConfig::empty(host.clone(), "gw.lbl.gov:8765");
            cfg.sensors.push(SensorConfigEntry {
                template: SensorTemplate::Cpu,
                frequency_secs: 1.0,
                policy: host_policy(config.port_triggered, config.dpss_port),
            });
            cfg.sensors.push(SensorConfigEntry {
                template: SensorTemplate::Memory,
                frequency_secs: 5.0,
                policy: host_policy(config.port_triggered, config.dpss_port),
            });
            cfg.sensors.push(SensorConfigEntry {
                template: SensorTemplate::Tcp,
                frequency_secs: 1.0,
                policy: host_policy(config.port_triggered, config.dpss_port),
            });
            cfg.sensors.push(SensorConfigEntry {
                template: SensorTemplate::Process {
                    process: "dpss_block_server".into(),
                },
                frequency_secs: 5.0,
                policy: RunPolicy::Always,
            });
            if i == 0 {
                cfg.sensors.push(SensorConfigEntry {
                    template: SensorTemplate::Process {
                        process: "dpss_master".into(),
                    },
                    frequency_secs: 5.0,
                    policy: RunPolicy::Always,
                });
                // The first storage host's manager also polls the site's
                // routers over SNMP (network sensors run remotely, §2.2).
                for router in scenario.net.routers() {
                    cfg.sensors.push(SensorConfigEntry {
                        template: SensorTemplate::Snmp {
                            device: router.name.clone(),
                        },
                        frequency_secs: 5.0,
                        policy: RunPolicy::Always,
                    });
                }
            }
            managers.push(SensorManager::new(
                &cfg,
                Dn::parse("o=lbl,o=grid").expect("valid base"),
            ));
        }

        // The receiving host (compute cluster head) at ISI.
        let client_host = scenario.net.host(scenario.client).name().to_string();
        let mut client_cfg = ManagerConfig::empty(client_host, "gw.cairn.net:8765");
        for (template, freq) in [
            (SensorTemplate::Cpu, 0.5),
            (SensorTemplate::Memory, 5.0),
            (SensorTemplate::Tcp, 0.5),
        ] {
            client_cfg.sensors.push(SensorConfigEntry {
                template,
                frequency_secs: freq,
                policy: host_policy(config.port_triggered, config.dpss_port),
            });
        }
        client_cfg.sensors.push(SensorConfigEntry {
            template: SensorTemplate::Process {
                process: "mplay".into(),
            },
            frequency_secs: 5.0,
            policy: RunPolicy::Always,
        });
        managers.push(SensorManager::new(
            &client_cfg,
            Dn::parse("o=isi,o=grid").expect("valid base"),
        ));

        JammDeployment {
            scenario,
            directory,
            registry,
            gateways,
            managers,
            collector,
            archiver,
            archive,
            config,
            subscribed: false,
        }
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// The gateways, in registration order (LBNL first).
    pub fn gateways(&self) -> &[Arc<EventGateway>] {
        &self.gateways
    }

    /// Connect the consumers: the collector discovers sensors in the
    /// directory and subscribes through the gateways; the archiver subscribes
    /// to warnings and errors.  Called automatically on the first step once
    /// some sensors have been published, but can be called explicitly.
    pub fn connect_consumers(&mut self) -> usize {
        let found = self.collector.discover(
            &self.directory,
            &Dn::parse("o=grid").expect("valid"),
            &Filter::parse("(objectclass=sensor)").expect("valid filter"),
        );
        let opened = self.collector.subscribe_all(&self.registry, vec![]);
        if let Some(archiver) = &mut self.archiver {
            for name in ["gw.lbl.gov:8765", "gw.cairn.net:8765"] {
                let _ = archiver.subscribe(
                    &self.registry,
                    name,
                    vec![EventFilter::MinLevel(Level::Warning)],
                );
            }
        }
        self.subscribed = opened > 0 && !found.is_empty();
        opened
    }

    /// Advance the whole system by one simulated millisecond.
    pub fn step(&mut self) {
        self.scenario.step();
        let now_ms = self.scenario.net.clock().now_us() / 1_000;
        if now_ms.is_multiple_of(MANAGER_PERIOD_MS) {
            let now = self.scenario.net.clock().timestamp();
            let stats = NetworkSource::new(&self.scenario.net);
            let ports = NetPorts {
                net: &self.scenario.net,
            };
            let lbl_count = self.managers_on_lbl();
            for (i, manager) in self.managers.iter_mut().enumerate() {
                let gateway = if i < lbl_count {
                    &self.gateways[0]
                } else {
                    &self.gateways[1]
                };
                manager.tick(now, &stats, &ports, gateway.as_ref(), Some(&self.directory));
            }
            if !self.subscribed {
                self.connect_consumers();
            }
            self.collector.poll();
            if let Some(archiver) = &mut self.archiver {
                archiver.poll();
                if now_ms.is_multiple_of(1_000) {
                    archiver.publish_catalog(&self.directory, now);
                }
            }
        }
    }

    fn managers_on_lbl(&self) -> usize {
        self.scenario.storage_hosts.len()
    }

    /// Run for a number of simulated seconds.
    pub fn run_secs(&mut self, secs: f64) {
        let ticks = (secs * 1_000.0).round() as u64;
        for _ in 0..ticks {
            self.step();
        }
    }

    /// Events gathered by the real-time collector so far.
    pub fn collector_event_count(&self) -> usize {
        self.collector.events().len()
    }

    /// Total events the application itself emitted (the trace the NetLogger
    /// analysis merges with the sensor data).
    pub fn application_event_count(&self) -> usize {
        self.scenario.trace.len()
    }

    /// The merged event log for analysis: application trace + everything the
    /// collector gathered, time-ordered.
    pub fn merged_log(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self.scenario.trace.events().to_vec();
        all.extend(self.collector.events().iter().map(|e| (**e).clone()));
        all.sort_by_key(|e| e.timestamp);
        all
    }

    /// Build the Figure 7 chart from the merged log: frame lifelines over the
    /// DPSS and player stages, CPU/memory loadlines on the receiving host,
    /// and TCP retransmission points.
    pub fn figure7_chart(&self) -> NlvChart {
        let log = self.merged_log();
        let client = "mems.cairn.net";
        NlvChart::build(
            &log,
            &[
                keys::matisse::DPSS_SERV_IN,
                keys::matisse::DPSS_START_WRITE,
                keys::matisse::DPSS_END_WRITE,
                keys::matisse::START_READ_FRAME,
                keys::matisse::END_READ_FRAME,
                keys::matisse::START_PUT_IMAGE,
                keys::matisse::END_PUT_IMAGE,
            ],
            &[
                (client, keys::cpu::SYS),
                (client, keys::cpu::USER),
                (client, keys::mem::FREE),
            ],
            &[(Some(client), keys::tcp::RETRANSMITS)],
        )
    }

    /// Total monitoring events delivered by all gateways to all consumers.
    pub fn events_delivered(&self) -> u64 {
        self.gateways
            .iter()
            .map(|g| {
                g.stats()
                    .events_out
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .sum()
    }

    /// Total monitoring events published into the gateways by the managers.
    pub fn events_published(&self) -> u64 {
        self.gateways
            .iter()
            .map(|g| {
                g.stats()
                    .events_in
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .sum()
    }

    /// Number of sensors currently listed as running in the directory.
    pub fn sensors_running(&self) -> usize {
        self.directory
            .search(
                &Dn::parse("o=grid").expect("valid"),
                jamm_directory::Scope::Subtree,
                &Filter::parse("(&(objectclass=sensor)(status=running))").expect("valid"),
            )
            .map(|r| r.entries.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lan_deployment() -> JammDeployment {
        let mut cfg = DeploymentConfig::matisse_lan(2);
        cfg.matisse.player.frame_bytes = 400_000;
        cfg.matisse.player.max_frames = 0;
        cfg.matisse.seed = 11;
        JammDeployment::matisse(cfg)
    }

    #[test]
    fn deployment_monitors_the_application_end_to_end() {
        let mut jamm = small_lan_deployment();
        jamm.run_secs(8.0);
        // The application made progress...
        assert!(jamm.scenario.player.frames_displayed() > 0);
        assert!(jamm.application_event_count() > 0);
        // ...the sensors were published and ran...
        assert!(jamm.sensors_running() > 0);
        assert!(jamm.events_published() > 0);
        // ...and the collector received monitoring data through the gateways.
        assert!(jamm.collector_event_count() > 0);
        assert!(jamm.events_delivered() >= jamm.collector_event_count() as u64);
        // The merged log is time ordered and contains both kinds of events.
        let log = jamm.merged_log();
        assert!(log.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        assert!(log
            .iter()
            .any(|e| e.event_type == keys::matisse::END_READ_FRAME));
        assert!(log.iter().any(|e| e.event_type == keys::cpu::SYS));
    }

    #[test]
    fn figure7_chart_contains_lifelines_and_loadlines() {
        let mut jamm = small_lan_deployment();
        jamm.run_secs(6.0);
        let chart = jamm.figure7_chart();
        assert!(!chart.lifelines.is_empty(), "frame lifelines present");
        assert!(chart.loadlines.iter().any(|l| !l.samples.is_empty()));
        assert!(chart.time_range().is_some());
    }

    #[test]
    fn port_triggered_monitoring_produces_fewer_events_than_always_on() {
        let run = |port_triggered: bool| {
            let mut cfg = DeploymentConfig::matisse_lan(1);
            cfg.matisse.player.frame_bytes = 400_000;
            // Frames only for the first part of the run; afterwards the
            // application is idle and on-demand monitoring should go quiet.
            cfg.matisse.player.max_frames = 5;
            cfg.matisse.seed = 3;
            cfg.port_triggered = port_triggered;
            let mut jamm = JammDeployment::matisse(cfg);
            jamm.run_secs(20.0);
            jamm.events_published()
        };
        let always_on = run(false);
        let on_demand = run(true);
        assert!(
            on_demand < always_on / 2,
            "port-triggered monitoring should collect far less: {on_demand} vs {always_on}"
        );
        assert!(on_demand > 0, "but not nothing");
    }
}
