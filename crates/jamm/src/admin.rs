//! Administrative views of a running deployment.
//!
//! Two things live here:
//!
//! * [`gateway_admin_stats`] — the one aggregation that turns a
//!   deployment's live atomic counters (gateway stats, per-shard and
//!   per-subscription reports, edge socket rows, the reactor's loop
//!   saturation) into [`GatewayAdminStats`] rows.  `JammSystem::admin_stats`
//!   and the metrics exposition both read through the same underlying
//!   counters, so an operator comparing the two views always sees the same
//!   numbers.
//! * [`AdminEffort`] — the administrative-effort accounting of experiment
//!   E9.  The paper closes its results section with an effort argument:
//!   "One would need to have an account on every system, with superuser
//!   privileges (to run the tcpdump sensor), and log into every system (13
//!   in this example) and start every sensor by hand, and then copy the
//!   results to one place for analysis. ...  Using JAMM, all that is
//!   required is for the application user to start up a consumer and
//!   subscribe to the relevant sensor data."  This module turns that
//!   narrative into a counted model so the comparison can be reported as
//!   numbers.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use jamm_gateway::EventGateway;
use jamm_reactor::{LoopStats, Reactor, SocketRow};
use jamm_rmi::edge::EventEdge;

/// One gateway's row of `JammSystem::admin_stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayAdminStats {
    /// Gateway name.
    pub name: String,
    /// Events published into the gateway.
    pub events_in: u64,
    /// Event copies delivered to streaming consumers.
    pub events_out: u64,
    /// Event copies dropped on full subscription queues.
    pub events_dropped: u64,
    /// Approximate payload bytes delivered.
    pub bytes_out: u64,
    /// Query-mode requests served.
    pub queries: u64,
    /// Routing (fan-out) latency distribution per publish, microseconds.
    pub route_us: jamm_core::obs::HistogramSnapshot,
    /// Background delivery workers (0 = synchronous delivery).
    pub delivery_workers: usize,
    /// Per-shard routing breakdown: how traffic, deliveries, drops and
    /// bytes distribute across the fan-out engine's shards.
    pub shards: Vec<jamm_gateway::ShardReport>,
    /// Per-subscription delivery totals.
    pub subscriptions: Vec<jamm_gateway::DeliveryReport>,
    /// Per-subscription QoS tier assignments (current tier plus the
    /// smoothed lag score behind it); empty when the gateway runs
    /// without a QoS plane.
    pub tiers: Vec<jamm_gateway::TierRow>,
    /// Overload/shedding counters of the QoS plane, when enabled: the
    /// declared shed level, current pressure, and per-tier shed and
    /// budget-drop totals.
    pub qos: Option<jamm_gateway::QosSnapshot>,
    /// Per-socket rows of the gateway's network edge (queued bytes, drops,
    /// stalls per remote subscriber); empty when no edge is running.
    pub sockets: Vec<SocketRow>,
    /// The shared reactor's loop-saturation counters (poll-wait vs
    /// dispatch time), present when this gateway has a network edge.
    /// `loop_stats.saturation()` near 1.0 means the single loop thread is
    /// the bottleneck.
    pub loop_stats: Option<LoopStats>,
}

/// Build the admin rows for a set of gateways from their live counters.
/// This is the single aggregation both `JammSystem::admin_stats` and the
/// metrics exposition trust; the numbers come straight from the same
/// atomics the hot paths increment.
pub fn gateway_admin_stats(
    gateways: &[Arc<EventGateway>],
    edges: &[EventEdge],
    reactor: Option<&Reactor>,
) -> Vec<GatewayAdminStats> {
    gateways
        .iter()
        .map(|gw| {
            let stats = gw.stats();
            let edge = edges.iter().find(|e| e.gateway_name() == gw.name());
            GatewayAdminStats {
                name: gw.name().to_string(),
                events_in: stats.events_in.load(Ordering::Relaxed),
                events_out: stats.events_out.load(Ordering::Relaxed),
                events_dropped: stats.events_dropped.load(Ordering::Relaxed),
                bytes_out: stats.bytes_out.load(Ordering::Relaxed),
                queries: stats.queries.load(Ordering::Relaxed),
                route_us: stats.route_us.snapshot(),
                delivery_workers: gw.delivery_worker_count(),
                shards: gw.shard_report(),
                subscriptions: gw.delivery_report(),
                tiers: gw
                    .qos_snapshot()
                    .map(|_| gw.tier_report())
                    .unwrap_or_default(),
                qos: gw.qos_snapshot(),
                sockets: edge.map(|e| e.socket_stats()).unwrap_or_default(),
                loop_stats: edge.and(reactor).map(|r| r.loop_stats()),
            }
        })
        .collect()
}

/// The administrative operations needed to run one monitored analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdminEffort {
    /// Accounts that must exist (and be kept) for the analyst.
    pub accounts_required: usize,
    /// Interactive logins performed for one analysis session.
    pub logins: usize,
    /// Privileged (root) operations, e.g. starting tcpdump by hand.
    pub privileged_ops: usize,
    /// Sensor processes started manually.
    pub manual_sensor_starts: usize,
    /// Result files copied to the analysis host afterwards.
    pub file_copies: usize,
    /// Consumer subscriptions issued (the JAMM path).
    pub subscriptions: usize,
}

impl AdminEffort {
    /// Total number of human operations.
    pub fn total_ops(&self) -> usize {
        self.logins
            + self.privileged_ops
            + self.manual_sensor_starts
            + self.file_copies
            + self.subscriptions
    }
}

/// Effort to run the analysis by hand, without JAMM: log into every host,
/// start every sensor (the TCP sensor needs root), and copy every host's log
/// back for merging.
pub fn manual_effort(
    hosts: usize,
    sensors_per_host: usize,
    privileged_sensors_per_host: usize,
) -> AdminEffort {
    AdminEffort {
        accounts_required: hosts,
        logins: hosts,
        privileged_ops: hosts * privileged_sensors_per_host,
        manual_sensor_starts: hosts * sensors_per_host,
        file_copies: hosts,
        subscriptions: 0,
    }
}

/// Effort with JAMM: the sensors are already managed; the analyst starts one
/// consumer and subscribes once per event gateway involved.
pub fn jamm_effort(gateways: usize) -> AdminEffort {
    AdminEffort {
        accounts_required: 0,
        logins: 0,
        privileged_ops: 0,
        manual_sensor_starts: 0,
        file_copies: 0,
        subscriptions: 1 + gateways,
    }
}

/// The MATISSE numbers: 13 hosts, roughly 5 sensors each of which one
/// (tcpdump) needs root, versus two site gateways.
pub fn matisse_comparison() -> (AdminEffort, AdminEffort) {
    (manual_effort(13, 5, 1), jamm_effort(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_effort_scales_with_hosts_and_jamm_does_not() {
        let small_manual = manual_effort(4, 5, 1);
        let big_manual = manual_effort(13, 5, 1);
        assert!(big_manual.total_ops() > small_manual.total_ops());
        let jamm_small = jamm_effort(1);
        let jamm_big = jamm_effort(2);
        assert_eq!(jamm_big.total_ops() - jamm_small.total_ops(), 1);
        assert_eq!(jamm_big.accounts_required, 0);
    }

    #[test]
    fn matisse_comparison_matches_the_papers_narrative() {
        let (manual, jamm) = matisse_comparison();
        assert_eq!(manual.logins, 13);
        assert_eq!(manual.accounts_required, 13);
        assert!(manual.privileged_ops >= 13);
        assert!(manual.total_ops() > 20 * jamm.total_ops());
        assert_eq!(jamm.total_ops(), 3);
    }
}
