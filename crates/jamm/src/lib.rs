//! # jamm — Java Agents for Monitoring and Management, in Rust
//!
//! The facade crate of the JAMM reproduction (Tierney et al., "A Monitoring
//! Sensor Management System for Grid Environments", HPDC 2000).  One
//! dependency wires the paper's whole architecture; the individual pieces
//! live in the `jamm-*` crates re-exported below.
//!
//! ## Paper component → crate map (§2.2)
//!
//! | Paper component | Crate |
//! |---|---|
//! | Sensors (host / network / process / application) | [`jamm_sensors`] |
//! | Sensor managers, port monitor agent | [`jamm_manager`] |
//! | Event gateways (filters, summaries, access control) | [`jamm_gateway`] |
//! | Sensor directory (LDAP-like) | [`jamm_directory`] |
//! | Consumers: collector, archiver, procmon, overview | [`jamm_consumers`] |
//! | Event archive | [`jamm_archive`] |
//! | Archive storage engine (WAL, segments, pruned scans) | [`jamm_tsdb`] |
//! | ULM events and the text/binary/JSON codecs | [`jamm_ulm`] |
//! | NetLogger toolkit (API, merge, clocks, nlv) | [`jamm_netlogger`] |
//! | RMI substrate and event bridge | [`jamm_rmi`] |
//! | Certificates, grid-mapfile, policy | [`jamm_auth`] |
//! | Simulated Grid testbed | [`jamm_netsim`] |
//!
//! Every hop speaks the shared pipeline vocabulary from `jamm-core`: events
//! move through [`jamm_core::flow::EventSink`] / `EventSource`
//! implementations over **bounded** channels, wire formats implement
//! [`jamm_core::codec::Codec`] and are negotiated by content type, and
//! consumers subscribe with the gateway's fluent `SubscriptionBuilder`.
//!
//! ## Entry points
//!
//! * [`JammBuilder`] — declare a deployment (directory, gateways,
//!   consumers) and get a wired [`builder::JammSystem`]:
//!
//! ```
//! use jamm::JammBuilder;
//!
//! let mut jamm = JammBuilder::new()
//!     .directory("ldap://dir.lbl.gov", "o=grid")
//!     .gateway("gw.lbl.gov:8765")
//!     .collector("nlv-analyst")
//!     .build()
//!     .expect("valid deployment");
//! assert_eq!(jamm.connect_collectors(vec![]), 1);
//! ```
//!
//! * [`deployment::JammDeployment`] — the paper's Figure 4 / §6 MATISSE
//!   case study running over the simulated testbed:
//!
//! ```
//! use jamm::deployment::{DeploymentConfig, JammDeployment};
//!
//! // A small LAN MATISSE run: 2 DPSS servers streaming frames to a client,
//! // fully monitored by JAMM.
//! let mut config = DeploymentConfig::matisse_lan(2);
//! config.matisse.player.max_frames = 5;
//! let mut jamm = JammDeployment::matisse(config);
//! jamm.run_secs(5.0);
//! assert!(jamm.collector_event_count() > 0);
//! ```
//!
//! * [`cluster::ClusterDeployment`] — the §1.1 monitored compute farm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod builder;
pub mod cluster;
pub mod deployment;

pub use builder::{
    ArchiveMaintenanceReport, BuildError, GatewayAdminStats, HistorySource, JammBuilder,
    JammSystem, QueryAnswer, QueryError, QueryTierStats, SELF_GATEWAY,
};
pub use deployment::{DeploymentConfig, JammDeployment};
pub use jamm_core::query::AggRow;
pub use jamm_ulm::SharedEvent;

// Re-export the sub-crates under predictable names so downstream users need
// only one dependency.
pub use jamm_archive;
pub use jamm_auth;
pub use jamm_consumers;
pub use jamm_core;
pub use jamm_directory;
pub use jamm_gateway;
pub use jamm_manager;
pub use jamm_netlogger;
pub use jamm_netsim;
pub use jamm_reactor;
pub use jamm_rmi;
pub use jamm_sensors;
pub use jamm_tsdb;
pub use jamm_ulm;
