//! A JAMM-monitored compute farm.
//!
//! "this agent-based monitoring architecture ... could be used in large
//! compute farms or clusters that require constant monitoring to ensure all
//! nodes are running correctly" (§1.1).  This module provides that
//! deployment: `n` worker nodes behind one switch, each with a sensor
//! manager, all publishing through one (or more) gateways, with a process
//! monitor restarting dead workers and an overview monitor watching the
//! whole service.  It is also the substrate for the gateway-scalability
//! experiment (E7): many consumers subscribing to the same sensor data.

use std::sync::Arc;

use jamm_consumers::collector::EventCollector;
use jamm_consumers::overview::OverviewMonitor;
use jamm_consumers::procmon::{ProcessMonitorConsumer, RecoveryAction};
use jamm_consumers::GatewayRegistry;
use jamm_directory::{DirectoryServer, Dn};
use jamm_gateway::{EventFilter, EventGateway, GatewayConfig};
use jamm_manager::config::ManagerConfig;
use jamm_manager::manager::{NoPortActivity, SensorManager};
use jamm_netsim::scenario::cluster_topology;
use jamm_netsim::{HostId, Network};
use jamm_sensors::sim::NetworkSource;
use jamm_ulm::Timestamp;

/// A monitored compute farm.
pub struct ClusterDeployment {
    /// The simulated cluster network.
    pub net: Network,
    /// The worker nodes.
    pub nodes: Vec<HostId>,
    /// The sensor directory.
    pub directory: Arc<DirectoryServer>,
    /// Gateways (one by default; more can be added for scaling experiments).
    pub gateways: Vec<Arc<EventGateway>>,
    /// Gateway registry used by consumers.
    pub registry: GatewayRegistry,
    managers: Vec<SensorManager>,
    /// Streaming consumers attached for scalability experiments.
    pub consumers: Vec<EventCollector>,
    /// The administrator's process monitor.
    pub process_monitor: ProcessMonitorConsumer,
    /// The administrator's overview monitor.
    pub overview: OverviewMonitor,
    manager_period_ms: u64,
}

impl ClusterDeployment {
    /// Build a monitored cluster of `nodes` workers using `n_gateways`
    /// gateways (nodes are assigned to gateways round-robin).
    pub fn new(nodes: usize, n_gateways: usize, seed: u64) -> Self {
        assert!(n_gateways >= 1);
        let (net, node_ids, _switch) = cluster_topology(nodes, seed);
        let directory = Arc::new(DirectoryServer::new(
            "ldap://dir.farm.lbl.gov",
            Dn::parse("o=farm,o=grid").expect("valid suffix"),
        ));
        let mut registry = GatewayRegistry::new();
        let mut gateways = Vec::new();
        for g in 0..n_gateways {
            let name = format!("gw{g}.farm.lbl.gov:8765");
            let gw = Arc::new(EventGateway::new(GatewayConfig::open(name.clone())));
            registry.register(name, Arc::clone(&gw));
            gateways.push(gw);
        }
        let mut managers = Vec::new();
        for (i, &id) in node_ids.iter().enumerate() {
            let host = net.host(id).name().to_string();
            let gw_name = format!("gw{}.farm.lbl.gov:8765", i % n_gateways);
            let cfg = ManagerConfig::standard_host(host, gw_name, &["worker"]);
            managers.push(SensorManager::new(
                &cfg,
                Dn::parse("o=farm,o=grid").expect("valid base"),
            ));
        }
        let mut process_monitor = ProcessMonitorConsumer::new("farm-admin");
        process_monitor.watch("worker", None, vec![RecoveryAction::Restart]);
        let mut overview = OverviewMonitor::new("farm-admin");
        overview.alert_when_all_down(
            "farm-down",
            "worker",
            net.hosts().iter().map(|h| h.name().to_string()).collect(),
        );
        for g in 0..n_gateways {
            let name = format!("gw{g}.farm.lbl.gov:8765");
            process_monitor.subscribe(&registry, &name);
            overview.subscribe(&registry, &name);
        }
        ClusterDeployment {
            net,
            nodes: node_ids,
            directory,
            gateways,
            registry,
            managers,
            consumers: Vec::new(),
            process_monitor,
            overview,
            manager_period_ms: 100,
        }
    }

    /// Attach `n` streaming consumers, each subscribing to every gateway with
    /// the given filters (used by E7 / E10).
    pub fn attach_consumers(&mut self, n: usize, filters: Vec<EventFilter>) {
        for i in 0..n {
            let mut c = EventCollector::new(format!("consumer-{i}"));
            for g in 0..self.gateways.len() {
                c.subscribe_gateway(
                    &self.registry,
                    &format!("gw{g}.farm.lbl.gov:8765"),
                    filters.clone(),
                );
            }
            self.consumers.push(c);
        }
    }

    /// Advance the cluster by one simulated millisecond.
    pub fn step(&mut self) {
        self.net.step();
        let now_ms = self.net.clock().now_us() / 1_000;
        if !now_ms.is_multiple_of(self.manager_period_ms) {
            return;
        }
        let now: Timestamp = self.net.clock().timestamp();
        let stats = NetworkSource::new(&self.net);
        let n_gw = self.gateways.len();
        for (i, manager) in self.managers.iter_mut().enumerate() {
            let gw = &self.gateways[i % n_gw];
            manager.tick(
                now,
                &stats,
                &NoPortActivity,
                gw.as_ref(),
                Some(&self.directory),
            );
        }
        for c in &mut self.consumers {
            c.poll();
        }
        // The recovery consumer restarts dead workers.
        let actions = self.process_monitor.poll();
        for action in actions {
            if action.action == RecoveryAction::Restart {
                if let Some(id) = self.net.host_by_name(&action.host) {
                    self.net.host_mut(id).restart_process(&action.process);
                }
            }
        }
        self.overview.poll();
    }

    /// Run for a number of simulated seconds.
    pub fn run_secs(&mut self, secs: f64) {
        let ticks = (secs * 1_000.0).round() as u64;
        for _ in 0..ticks {
            self.step();
        }
    }

    /// Kill the worker process on one node (fault injection).
    pub fn kill_worker(&mut self, node: usize) {
        let id = self.nodes[node];
        self.net.host_mut(id).kill_process("worker");
    }

    /// True if the worker on the given node is alive.
    pub fn worker_alive(&self, node: usize) -> bool {
        self.net
            .host(self.nodes[node])
            .processes()
            .any(|(p, alive)| p == "worker" && alive)
    }

    /// Total events published into all gateways.
    pub fn events_published(&self) -> u64 {
        self.gateways
            .iter()
            .map(|g| {
                g.stats()
                    .events_in
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .sum()
    }

    /// Total event copies delivered to consumers by all gateways.
    pub fn events_delivered(&self) -> u64 {
        self.gateways
            .iter()
            .map(|g| {
                g.stats()
                    .events_out
                    .load(std::sync::atomic::Ordering::Relaxed)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_monitors_all_nodes_and_recovers_dead_workers() {
        let mut cluster = ClusterDeployment::new(8, 1, 17);
        cluster.run_secs(3.0);
        assert!(cluster.events_published() > 0);
        assert!(
            cluster.directory.entry_count() >= 8 * 4,
            "sensors published"
        );
        // Kill a worker; the process monitor notices and restarts it.
        cluster.kill_worker(3);
        assert!(!cluster.worker_alive(3));
        cluster.run_secs(6.0);
        assert!(
            cluster.worker_alive(3),
            "restarted by the recovery consumer"
        );
        assert!(!cluster.process_monitor.history().is_empty());
    }

    #[test]
    fn consumers_multiply_delivered_volume_not_published_volume() {
        let mut one = ClusterDeployment::new(4, 1, 5);
        one.attach_consumers(1, vec![]);
        one.run_secs(5.0);
        let mut many = ClusterDeployment::new(4, 1, 5);
        many.attach_consumers(8, vec![]);
        many.run_secs(5.0);
        // The sensors do the same work regardless of consumer count...
        assert_eq!(one.events_published(), many.events_published());
        // ...and the gateway absorbs the fan-out.
        assert!(many.events_delivered() >= 7 * one.events_delivered());
    }

    #[test]
    fn overview_alert_fires_only_when_every_worker_is_down() {
        let mut cluster = ClusterDeployment::new(3, 1, 9);
        cluster.run_secs(2.0);
        cluster.kill_worker(0);
        cluster.kill_worker(1);
        cluster.run_secs(1.0);
        // Recovery may have restarted them already, but the full-outage alert
        // must not have fired while at least one worker stayed up the whole
        // time... kill all three faster than the recovery acts by checking
        // immediately after.
        assert!(cluster.overview.alerts().is_empty());
    }
}
