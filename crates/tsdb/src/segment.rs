//! Immutable sorted segments and their compressed on-disk format.
//!
//! A segment is a batch of events sorted by `(timestamp, sequence)`, frozen
//! when the memtable seals.  The encoding is built for monitoring streams:
//!
//! * **delta-of-delta timestamps** — sensors emit at near-regular periods,
//!   so the second difference of consecutive timestamps is usually 0 or
//!   tiny, and a zigzag varint makes it one byte;
//! * **varint values** — counters and sizes are unsigned varints, signed
//!   readings are zigzag varints, only genuine floats pay eight bytes;
//! * **a per-segment string dictionary** — hosts, programs, event types,
//!   field keys and repeated string values are stored once and referenced
//!   by varint index.
//!
//! Each segment carries a [`SegmentCatalog`] (min/max timestamp, host and
//! event-type sets, per-series counts) that the store consults to *prune*
//! segments from a range scan without touching their data, and decoding is
//! cursor-based so a scan streams events out of the compressed buffer one
//! at a time instead of materializing the segment.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

use jamm_core::intern::Sym;
use jamm_core::query::{BatchScratch, ColumnBatch, Facts, Plan, Selection};
use jamm_ulm::{binary, Event, Timestamp, Value};

use crate::codec::{
    fnv64, get_bytes, get_ivarint, get_str, get_uvarint, put_ivarint, put_str, put_uvarint,
};
use crate::{Result, TsdbError};

/// Magic bytes opening a segment file.  `JSG3` lays the event stream out
/// as per-field *columns* (see [`Segment`]); the previous row-major
/// generations stay readable: `JSG2` added the catalog's maximum severity
/// rank (level-floor pruning) and `JSG1` predates even that
/// ([`Segment::from_bytes`] treats those as containing every level, so
/// they are never level-pruned).  A `JSG`-prefixed magic this build does
/// not know is reported as an unsupported *version* rather than
/// corruption, so downgrading past a future format fails loudly and
/// clearly.
pub const SEGMENT_MAGIC: &[u8; 4] = b"JSG3";

/// Previous-generation row-major magic (still readable).
pub const SEGMENT_MAGIC_V2: &[u8; 4] = b"JSG2";

/// First-generation magic: identical to `JSG2` minus the catalog's
/// `max_level` byte (still readable).
pub const SEGMENT_MAGIC_V1: &[u8; 4] = b"JSG1";

/// File extension of segment files inside a store directory.
pub const SEGMENT_EXT: &str = "jseg";

const TAG_UINT: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;

/// What a segment contains, without reading its data: the pruning index
/// for range scans and the unit of the archiver's per-segment directory
/// publication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentCatalog {
    /// Segment identifier (unique within a store, monotonically assigned).
    pub id: u64,
    /// Number of events in the segment.
    pub event_count: usize,
    /// Smallest event timestamp.
    pub min_ts: Timestamp,
    /// Largest event timestamp.
    pub max_ts: Timestamp,
    /// Hosts present, with per-host event counts.
    pub hosts: BTreeMap<String, usize>,
    /// Event types present, with per-type event counts.
    pub event_types: BTreeMap<String, usize>,
    /// Per-series `(host, event type)` event counts.
    pub series: BTreeMap<(String, String), usize>,
    /// Highest severity rank present (see `jamm_ulm::Level::severity`),
    /// so a `level>=` query can skip segments of routine readings.
    pub max_level: u8,
}

impl SegmentCatalog {
    /// True when a query's pushdown [`Facts`] could be satisfied by events
    /// in this segment; the store skips (prunes) segments for which this
    /// is false without decoding any data.  The tiers, cheapest first:
    ///
    /// 1. **time** — the segment's `[min_ts, max_ts]` window misses the
    ///    query's half-open range;
    /// 2. **level** — the query's severity floor exceeds every event's;
    /// 3. **host / type sets** — none of the required hosts (or event
    ///    types) occurs in the segment;
    /// 4. **per-series counts** — hosts *and* types are both constrained
    ///    but no required `(host, type)` series exists here (a segment can
    ///    contain `h1` and `CPU_TOTAL` without containing `h1`'s
    ///    `CPU_TOTAL` readings).
    pub fn overlaps(&self, facts: &Facts) -> bool {
        if let Some(from) = facts.from_micros {
            if self.max_ts.as_micros() < from {
                return false;
            }
        }
        if let Some(to) = facts.to_micros {
            if self.min_ts.as_micros() >= to {
                return false;
            }
        }
        if let Some(floor) = facts.level_floor {
            if self.max_level < floor {
                return false;
            }
        }
        if let Some(hosts) = &facts.hosts {
            if !hosts.iter().any(|h| self.hosts.contains_key(h.as_str())) {
                return false;
            }
        }
        if let Some(types) = &facts.types {
            if !types
                .iter()
                .any(|t| self.event_types.contains_key(t.as_str()))
            {
                return false;
            }
        }
        if let (Some(hosts), Some(types)) = (&facts.hosts, &facts.types) {
            let series_hit = self.series.keys().any(|(h, t)| {
                hosts.iter().any(|hs| hs.as_str() == h) && types.iter().any(|ts| ts.as_str() == t)
            });
            if !series_hit {
                return false;
            }
        }
        true
    }
}

/// An immutable sorted run of compressed events.
///
/// Newly built segments are **columnar** (`JSG3`): each event field lives
/// in its own region — delta-of-delta timestamps, sequence deltas, level
/// codes, host/program/type dictionary indices, a typed `f64` column for
/// the conventional `VAL` reading (with presence bitmap), per-row field
/// counts and key lists, and *sparse per-key columns* holding the
/// remaining field payloads grouped by key.  A plan scan decodes the fixed
/// columns a batch at a time, runs the vectorized
/// [`jamm_core::query::Plan::eval_batch`] over them, and only
/// *materializes* full [`Event`]s for rows that survive the filter (late
/// materialization) — skipped rows pay varint skips, never a `String`.
#[derive(Debug)]
pub struct Segment {
    catalog: SegmentCatalog,
    /// Smallest sequence number in the segment.  Together with `max_seq`
    /// this identifies the segment's generation: live segments have
    /// pairwise-disjoint sequence ranges, so an overlap found at open
    /// marks a crash leftover to reconcile.
    min_seq: u64,
    /// Largest sequence number in the segment (restart continues after it).
    max_seq: u64,
    /// String dictionary referenced by the data stream.
    dict: Vec<String>,
    /// The compressed event stream, row-major (legacy) or columnar.
    repr: Repr,
}

/// The two on-disk generations of a segment's event stream.
#[derive(Debug)]
enum Repr {
    /// `JSG1`/`JSG2` row-major stream: events concatenated field-by-field.
    /// Read-compat only — new segments are never built in this shape.
    Rows(Vec<u8>),
    /// `JSG3` per-field columns.
    Cols(Box<ColData>),
}

/// The encoded column regions of a `JSG3` segment.
#[derive(Debug, Default)]
struct ColData {
    /// Timestamps: first row uvarint, second row uvarint delta, then
    /// zigzag delta-of-delta varints.
    ts: Vec<u8>,
    /// Sequence numbers as zigzag deltas.
    seqs: Vec<u8>,
    /// One `binary::level_code` byte per row.
    levels: Vec<u8>,
    /// Host dictionary indices, uvarint per row.
    host_ix: Vec<u8>,
    /// Program dictionary indices, uvarint per row.
    prog_ix: Vec<u8>,
    /// Event-type dictionary indices, uvarint per row.
    type_ix: Vec<u8>,
    /// Bit `r%8` of byte `r/8` set when row `r` has a numeric `VAL`
    /// reading (i.e. `Event::value()` is `Some`).
    val_present: Vec<u8>,
    /// Subset of `val_present`: rows whose *first* `VAL` field is a
    /// `Value::Float` — those fields are omitted from the sparse columns
    /// and reconstructed from the typed `vals` column on materialization.
    val_float: Vec<u8>,
    /// Packed little-endian `f64`, one per `val_present` row, in row order.
    vals: Vec<u8>,
    /// Per-row field count, uvarint per row.
    nfields: Vec<u8>,
    /// Per-row key list: field-key dictionary indices in field order,
    /// row-major (`sum(nfields)` uvarints) — this is what preserves exact
    /// field order and duplicate keys across the columnar split.
    keys: Vec<u8>,
    /// Sparse per-key value columns: `uvarint n_keys`, then per key
    /// `uvarint key_ix, uvarint n_entries, uvarint byte_len, entries…`
    /// where each entry is `tag + payload` in row order (same encoding as
    /// the row-major generations).
    sparse: Vec<u8>,
}

impl ColData {
    fn total_bytes(&self) -> usize {
        self.ts.len()
            + self.seqs.len()
            + self.levels.len()
            + self.host_ix.len()
            + self.prog_ix.len()
            + self.type_ix.len()
            + self.val_present.len()
            + self.val_float.len()
            + self.vals.len()
            + self.nfields.len()
            + self.keys.len()
            + self.sparse.len()
    }
}

/// Test a row bit in a `val_present`/`val_float` style bitmap.
fn bitmap_get(bits: &[u8], row: usize) -> bool {
    bits.get(row / 8)
        .is_some_and(|b| b & (1u8 << (row % 8)) != 0)
}

impl Segment {
    /// Freeze a batch of `(sequence, event)` pairs, **already sorted** by
    /// `(timestamp, sequence)`, into a segment.  Panics on an empty batch —
    /// the store never seals an empty memtable.
    ///
    /// Generic over `Borrow<Event>`: the seal path hands the memtable's
    /// shared (`Arc<Event>`) batch in without copying any event, while
    /// compaction and retention rewrites pass owned decoded events.
    pub fn build<B: std::borrow::Borrow<Event>>(id: u64, sorted: &[(u64, B)]) -> Segment {
        assert!(!sorted.is_empty(), "segments are never empty");
        // The string dictionary, built in one pass over the batch.  The
        // *identifier* strings (hosts, programs, event types, field keys)
        // repeat thousands of times and come from a bounded set, so their
        // index is keyed by interned `Sym` — each repeat lookup hashes a
        // u32 instead of a string.  String *values* are unbounded payload
        // data and must never reach the leaking interner (see
        // `jamm_core::intern`); they go through a borrowed-str index local
        // to this build.
        let mut dict: Vec<String> = Vec::new();
        let mut sym_index: HashMap<Sym, u64> = HashMap::new();
        let collect = |s: &str, dict: &mut Vec<String>, index: &mut HashMap<Sym, u64>| -> u64 {
            let sym = Sym::intern(s);
            *index.entry(sym).or_insert_with(|| {
                dict.push(s.to_string());
                dict.len() as u64 - 1
            })
        };
        let mut value_index: HashMap<&str, u64> = HashMap::new();
        let mut cols = ColData::default();
        let nrows = sorted.len();
        cols.val_present = vec![0u8; nrows.div_ceil(8)];
        cols.val_float = vec![0u8; nrows.div_ceil(8)];
        // Per-key sparse columns accumulate out of line and are stitched
        // into the `sparse` region after the row loop; BTreeMap keeps the
        // key directory in deterministic (dictionary-index) order.
        let mut sparse_cols: BTreeMap<u64, (u64, Vec<u8>)> = BTreeMap::new();
        let mut prev_ts = 0u64;
        let mut prev_delta = 0u64;
        let mut prev_seq = 0u64;
        let mut min_seq = u64::MAX;
        let mut max_seq = 0u64;
        let mut hosts: BTreeMap<String, usize> = BTreeMap::new();
        let mut event_types: BTreeMap<String, usize> = BTreeMap::new();
        let mut series: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut max_level = 0u8;
        for (r, (seq, e)) in sorted.iter().enumerate() {
            let e = e.borrow();
            let ts = e.timestamp.as_micros();
            match r {
                0 => put_uvarint(&mut cols.ts, ts),
                1 => {
                    let delta = ts.wrapping_sub(prev_ts);
                    put_uvarint(&mut cols.ts, delta);
                    prev_delta = delta;
                }
                _ => {
                    let delta = ts.wrapping_sub(prev_ts);
                    put_ivarint(&mut cols.ts, delta.wrapping_sub(prev_delta) as i64);
                    prev_delta = delta;
                }
            }
            prev_ts = ts;
            put_ivarint(&mut cols.seqs, seq.wrapping_sub(prev_seq) as i64);
            prev_seq = *seq;
            min_seq = min_seq.min(*seq);
            max_seq = max_seq.max(*seq);
            cols.levels.push(binary::level_code(e.level));
            let host_ix = collect(&e.host, &mut dict, &mut sym_index);
            put_uvarint(&mut cols.host_ix, host_ix);
            let prog_ix = collect(&e.program, &mut dict, &mut sym_index);
            put_uvarint(&mut cols.prog_ix, prog_ix);
            let ty_ix = collect(&e.event_type, &mut dict, &mut sym_index);
            put_uvarint(&mut cols.type_ix, ty_ix);
            if let Some(v) = e.value() {
                cols.val_present[r / 8] |= 1u8 << (r % 8);
                cols.vals.extend_from_slice(&v.to_le_bytes());
            }
            put_uvarint(&mut cols.nfields, e.fields.len() as u64);
            let mut saw_val = false;
            for (k, v) in &e.fields {
                let key_ix = collect(k, &mut dict, &mut sym_index);
                put_uvarint(&mut cols.keys, key_ix);
                if !saw_val && k == jamm_ulm::keys::VALUE {
                    saw_val = true;
                    if matches!(v, Value::Float(_)) {
                        // The typed `vals` column already holds exactly this
                        // float (it is the first `VAL` field, which is what
                        // `Event::value()` reads); don't store it twice.
                        cols.val_float[r / 8] |= 1u8 << (r % 8);
                        continue;
                    }
                }
                let (count, data) = sparse_cols.entry(key_ix).or_default();
                *count += 1;
                match v {
                    Value::UInt(u) => {
                        data.push(TAG_UINT);
                        put_uvarint(data, *u);
                    }
                    Value::Int(s) => {
                        data.push(TAG_INT);
                        put_ivarint(data, *s);
                    }
                    Value::Float(f) => {
                        data.push(TAG_FLOAT);
                        data.extend_from_slice(&f.to_le_bytes());
                    }
                    Value::Bool(b) => {
                        data.push(TAG_BOOL);
                        data.push(*b as u8);
                    }
                    Value::Str(s) => {
                        data.push(TAG_STR);
                        // Reuse an identifier's slot when the value is the
                        // same string (e.g. a PEER=host field) — `lookup`
                        // never inserts, so payload values still cannot
                        // reach the leaking interner.
                        let identifier_slot =
                            Sym::lookup(s).and_then(|sym| sym_index.get(&sym).copied());
                        let str_ix = identifier_slot.unwrap_or_else(|| {
                            *value_index.entry(s.as_str()).or_insert_with(|| {
                                dict.push(s.clone());
                                dict.len() as u64 - 1
                            })
                        });
                        put_uvarint(data, str_ix);
                    }
                }
            }
            *hosts.entry(e.host.clone()).or_insert(0) += 1;
            *event_types.entry(e.event_type.clone()).or_insert(0) += 1;
            *series
                .entry((e.host.clone(), e.event_type.clone()))
                .or_insert(0) += 1;
            max_level = max_level.max(e.level.severity());
        }
        put_uvarint(&mut cols.sparse, sparse_cols.len() as u64);
        for (key_ix, (count, data)) in &sparse_cols {
            put_uvarint(&mut cols.sparse, *key_ix);
            put_uvarint(&mut cols.sparse, *count);
            put_uvarint(&mut cols.sparse, data.len() as u64);
            cols.sparse.extend_from_slice(data);
        }

        Segment {
            catalog: SegmentCatalog {
                id,
                event_count: sorted.len(),
                min_ts: sorted.first().expect("non-empty").1.borrow().timestamp,
                max_ts: sorted.last().expect("non-empty").1.borrow().timestamp,
                hosts,
                event_types,
                series,
                max_level,
            },
            min_seq,
            max_seq,
            dict,
            repr: Repr::Cols(Box::new(cols)),
        }
    }

    /// The segment's pruning catalog.
    pub fn catalog(&self) -> &SegmentCatalog {
        &self.catalog
    }

    /// Segment identifier.
    pub fn id(&self) -> u64 {
        self.catalog.id
    }

    /// Number of events in the segment.
    pub fn len(&self) -> usize {
        self.catalog.event_count
    }

    /// Segments are never empty, so this is always false; present for API
    /// symmetry.
    pub fn is_empty(&self) -> bool {
        self.catalog.event_count == 0
    }

    /// Smallest sequence number stored in the segment.
    pub fn min_seq(&self) -> u64 {
        self.min_seq
    }

    /// Largest sequence number stored in the segment.
    pub fn max_seq(&self) -> u64 {
        self.max_seq
    }

    /// Size in bytes of the compressed event stream (excluding dictionary
    /// and catalog).
    pub fn data_bytes(&self) -> usize {
        match &self.repr {
            Repr::Rows(data) => data.len(),
            Repr::Cols(cols) => cols.total_bytes(),
        }
    }

    /// True when the segment stores per-field columns (`JSG3`) rather than
    /// a legacy row-major stream.
    pub(crate) fn is_columnar(&self) -> bool {
        matches!(self.repr, Repr::Cols(_))
    }

    /// Serialize the segment to its file form: `JSG3` for columnar
    /// segments, `JSG2` for a loaded legacy row-major segment (so
    /// re-serializing an old segment never silently re-encodes it; only a
    /// rebuild through [`Segment::build`] — seal, compaction, retention —
    /// upgrades the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.data_bytes() + 256);
        put_uvarint(&mut body, self.catalog.id);
        put_uvarint(&mut body, self.min_seq);
        put_uvarint(&mut body, self.max_seq);
        put_uvarint(&mut body, self.catalog.event_count as u64);
        put_uvarint(&mut body, self.catalog.min_ts.as_micros());
        put_uvarint(&mut body, self.catalog.max_ts.as_micros());
        body.push(self.catalog.max_level);
        put_uvarint(&mut body, self.catalog.hosts.len() as u64);
        for (h, n) in &self.catalog.hosts {
            put_str(&mut body, h);
            put_uvarint(&mut body, *n as u64);
        }
        put_uvarint(&mut body, self.catalog.event_types.len() as u64);
        for (t, n) in &self.catalog.event_types {
            put_str(&mut body, t);
            put_uvarint(&mut body, *n as u64);
        }
        put_uvarint(&mut body, self.catalog.series.len() as u64);
        for ((h, t), n) in &self.catalog.series {
            put_str(&mut body, h);
            put_str(&mut body, t);
            put_uvarint(&mut body, *n as u64);
        }
        put_uvarint(&mut body, self.dict.len() as u64);
        for s in &self.dict {
            put_str(&mut body, s);
        }
        let magic = match &self.repr {
            Repr::Rows(data) => {
                put_uvarint(&mut body, data.len() as u64);
                body.extend_from_slice(data);
                SEGMENT_MAGIC_V2
            }
            Repr::Cols(cols) => {
                for region in [
                    &cols.ts,
                    &cols.seqs,
                    &cols.levels,
                    &cols.host_ix,
                    &cols.prog_ix,
                    &cols.type_ix,
                    &cols.val_present,
                    &cols.val_float,
                    &cols.vals,
                    &cols.nfields,
                    &cols.keys,
                    &cols.sparse,
                ] {
                    put_uvarint(&mut body, region.len() as u64);
                    body.extend_from_slice(region);
                }
                SEGMENT_MAGIC
            }
        };

        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(magic);
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv64(&body).to_le_bytes());
        out
    }

    /// Deserialize a segment from its file form, verifying magic and
    /// checksum.  `JSG1` files (written before the catalog carried a
    /// maximum severity rank) load with `max_level = u8::MAX`, so an old
    /// store stays readable and is simply never level-pruned.
    pub fn from_bytes(bytes: &[u8]) -> Result<Segment> {
        if bytes.len() < 12 {
            return Err(TsdbError::Corrupt("bad segment magic"));
        }
        let version = match &bytes[..4] {
            m if m == SEGMENT_MAGIC_V1 => 1u8,
            m if m == SEGMENT_MAGIC_V2 => 2,
            m if m == SEGMENT_MAGIC => 3,
            m if &m[..3] == b"JSG" => {
                // A future generation this build does not know: refuse with
                // a version error, not a corruption error, so operators see
                // "upgrade the reader" instead of "restore from backup".
                return Err(TsdbError::Corrupt(
                    "unsupported segment version (written by a newer build)",
                ));
            }
            _ => return Err(TsdbError::Corrupt("bad segment magic")),
        };
        let v1 = version == 1;
        let body = &bytes[4..bytes.len() - 8];
        let stored = u64::from_le_bytes(
            bytes[bytes.len() - 8..]
                .try_into()
                .expect("8 checksum bytes"),
        );
        if fnv64(body) != stored {
            return Err(TsdbError::Corrupt("segment checksum mismatch"));
        }
        let mut pos = 0usize;
        let id = get_uvarint(body, &mut pos)?;
        let min_seq = get_uvarint(body, &mut pos)?;
        let max_seq = get_uvarint(body, &mut pos)?;
        let event_count = get_uvarint(body, &mut pos)? as usize;
        let min_ts = Timestamp::from_micros(get_uvarint(body, &mut pos)?);
        let max_ts = Timestamp::from_micros(get_uvarint(body, &mut pos)?);
        let max_level = if v1 {
            // Unknown in the old format: assume every level is present so
            // level-floor pruning never skips a legacy segment.
            u8::MAX
        } else {
            let lvl = *body
                .get(pos)
                .ok_or(TsdbError::Corrupt("truncated max level"))?;
            pos += 1;
            lvl
        };
        let mut hosts = BTreeMap::new();
        for _ in 0..get_uvarint(body, &mut pos)? {
            let h = get_str(body, &mut pos)?;
            hosts.insert(h, get_uvarint(body, &mut pos)? as usize);
        }
        let mut event_types = BTreeMap::new();
        for _ in 0..get_uvarint(body, &mut pos)? {
            let t = get_str(body, &mut pos)?;
            event_types.insert(t, get_uvarint(body, &mut pos)? as usize);
        }
        let mut series = BTreeMap::new();
        for _ in 0..get_uvarint(body, &mut pos)? {
            let h = get_str(body, &mut pos)?;
            let t = get_str(body, &mut pos)?;
            series.insert((h, t), get_uvarint(body, &mut pos)? as usize);
        }
        let dict_len = get_uvarint(body, &mut pos)? as usize;
        let mut dict = Vec::with_capacity(dict_len.min(1 << 16));
        for _ in 0..dict_len {
            dict.push(get_str(body, &mut pos)?);
        }
        let repr = if version <= 2 {
            let data_len = get_uvarint(body, &mut pos)? as usize;
            if body.len() - pos != data_len {
                return Err(TsdbError::Corrupt("segment data length mismatch"));
            }
            Repr::Rows(body[pos..].to_vec())
        } else {
            let mut region = || -> Result<Vec<u8>> {
                let len = get_uvarint(body, &mut pos)? as usize;
                let end = pos
                    .checked_add(len)
                    .filter(|end| *end <= body.len())
                    .ok_or(TsdbError::Corrupt("truncated column region"))?;
                let bytes = body[pos..end].to_vec();
                pos = end;
                Ok(bytes)
            };
            let cols = ColData {
                ts: region()?,
                seqs: region()?,
                levels: region()?,
                host_ix: region()?,
                prog_ix: region()?,
                type_ix: region()?,
                val_present: region()?,
                val_float: region()?,
                vals: region()?,
                nfields: region()?,
                keys: region()?,
                sparse: region()?,
            };
            if pos != body.len() {
                return Err(TsdbError::Corrupt("segment data length mismatch"));
            }
            Repr::Cols(Box::new(cols))
        };
        Ok(Segment {
            catalog: SegmentCatalog {
                id,
                event_count,
                min_ts,
                max_ts,
                hosts,
                event_types,
                series,
                max_level,
            },
            min_seq,
            max_seq,
            dict,
            repr,
        })
    }

    /// Write the segment to `dir` as `seg-<id>.jseg`, atomically (write to
    /// a temp name, fsync, rename) so a crash never leaves a half-written
    /// segment with a valid name.
    pub fn write_to_dir(&self, dir: &Path) -> Result<PathBuf> {
        let path = dir.join(Segment::file_name(self.catalog.id));
        let tmp = dir.join(format!("seg-{:08}.tmp", self.catalog.id));
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp).map_err(TsdbError::from)?;
            f.write_all(&self.to_bytes()).map_err(TsdbError::from)?;
            f.sync_all().map_err(TsdbError::from)?;
        }
        std::fs::rename(&tmp, &path).map_err(TsdbError::from)?;
        Ok(path)
    }

    /// Load a segment file.
    pub fn read_from_file(path: &Path) -> Result<Segment> {
        let bytes = std::fs::read(path).map_err(TsdbError::from)?;
        Segment::from_bytes(&bytes)
    }

    /// Canonical file name of a segment id.
    pub fn file_name(id: u64) -> String {
        format!("seg-{id:08}.{SEGMENT_EXT}")
    }

    /// A cursor decoding the segment's events one at a time.
    pub fn cursor(self: &std::sync::Arc<Self>) -> SegmentCursor {
        SegmentCursor {
            seg: std::sync::Arc::clone(self),
            state: CursorState::default(),
        }
    }

    /// A batched columnar scan over this segment, or `None` when the
    /// segment is a legacy row-major one (those scan through
    /// [`Segment::cursor`] instead).
    pub(crate) fn col_scan(self: &std::sync::Arc<Self>) -> Option<ColScan> {
        self.is_columnar()
            .then(|| ColScan::new(std::sync::Arc::clone(self)))
    }

    /// Build a segment in the legacy `JSG2` row-major shape — what PR 5-era
    /// code wrote.  Test-only: it exists so compatibility tests can
    /// produce genuine old-format fixtures (and exercise the row-major
    /// scan path) now that [`Segment::build`] always emits columns.
    #[cfg(test)]
    pub(crate) fn build_rows_legacy<B: std::borrow::Borrow<Event>>(
        id: u64,
        sorted: &[(u64, B)],
    ) -> Segment {
        let columnar = Segment::build(id, sorted);
        let mut data = Vec::new();
        let mut dict: Vec<String> = Vec::new();
        let mut sym_index: HashMap<Sym, u64> = HashMap::new();
        let collect = |s: &str, dict: &mut Vec<String>, index: &mut HashMap<Sym, u64>| -> u64 {
            let sym = Sym::intern(s);
            *index.entry(sym).or_insert_with(|| {
                dict.push(s.to_string());
                dict.len() as u64 - 1
            })
        };
        let mut value_index: HashMap<String, u64> = HashMap::new();
        let mut prev_ts = 0u64;
        let mut prev_delta = 0u64;
        let mut prev_seq = 0u64;
        for (i, (seq, e)) in sorted.iter().enumerate() {
            let e = e.borrow();
            let ts = e.timestamp.as_micros();
            match i {
                0 => put_uvarint(&mut data, ts),
                1 => {
                    let delta = ts.wrapping_sub(prev_ts);
                    put_uvarint(&mut data, delta);
                    prev_delta = delta;
                }
                _ => {
                    let delta = ts.wrapping_sub(prev_ts);
                    put_ivarint(&mut data, delta.wrapping_sub(prev_delta) as i64);
                    prev_delta = delta;
                }
            }
            prev_ts = ts;
            put_ivarint(&mut data, seq.wrapping_sub(prev_seq) as i64);
            prev_seq = *seq;
            data.push(binary::level_code(e.level));
            put_uvarint(&mut data, collect(&e.host, &mut dict, &mut sym_index));
            put_uvarint(&mut data, collect(&e.program, &mut dict, &mut sym_index));
            put_uvarint(&mut data, collect(&e.event_type, &mut dict, &mut sym_index));
            put_uvarint(&mut data, e.fields.len() as u64);
            for (k, v) in &e.fields {
                put_uvarint(&mut data, collect(k, &mut dict, &mut sym_index));
                match v {
                    Value::UInt(u) => {
                        data.push(TAG_UINT);
                        put_uvarint(&mut data, *u);
                    }
                    Value::Int(s) => {
                        data.push(TAG_INT);
                        put_ivarint(&mut data, *s);
                    }
                    Value::Float(f) => {
                        data.push(TAG_FLOAT);
                        data.extend_from_slice(&f.to_le_bytes());
                    }
                    Value::Bool(b) => {
                        data.push(TAG_BOOL);
                        data.push(*b as u8);
                    }
                    Value::Str(s) => {
                        data.push(TAG_STR);
                        let identifier_slot =
                            Sym::lookup(s).and_then(|sym| sym_index.get(&sym).copied());
                        let str_ix = identifier_slot.unwrap_or_else(|| {
                            *value_index.entry(s.clone()).or_insert_with(|| {
                                dict.push(s.clone());
                                dict.len() as u64 - 1
                            })
                        });
                        put_uvarint(&mut data, str_ix);
                    }
                }
            }
        }
        Segment {
            catalog: columnar.catalog,
            min_seq: columnar.min_seq,
            max_seq: columnar.max_seq,
            dict,
            repr: Repr::Rows(data),
        }
    }
}

/// Streaming decoder over one segment's compressed data.  Yields events in
/// `(timestamp, sequence)` order without materializing the segment, and
/// works over both the legacy row-major stream and the columnar layout.
#[derive(Debug)]
pub struct SegmentCursor {
    seg: std::sync::Arc<Segment>,
    state: CursorState,
}

/// Mutable decode position and delta-decoding state, split from the
/// segment handle so the hot decode loop borrows the two disjointly (no
/// per-event `Arc` clone).
#[derive(Debug, Default)]
struct CursorState {
    /// Row-major stream position (legacy repr only).
    pos: usize,
    decoded: usize,
    prev_ts: u64,
    prev_delta: u64,
    prev_seq: u64,
    /// Columnar region positions, initialized on first decode of a
    /// columnar segment.
    cols: Option<Box<ColsPos>>,
}

/// Per-region decode positions for a columnar segment.
#[derive(Debug, Default)]
struct ColsPos {
    ts: usize,
    seqs: usize,
    host: usize,
    prog: usize,
    ty: usize,
    /// Byte offset into the packed `vals` column.
    vals: usize,
    nf: usize,
    keys: usize,
    /// Per-key cursor into the sparse region, keyed by dictionary index.
    sparse: HashMap<u64, SparseCur>,
}

/// A cursor into one key's sparse value column.
#[derive(Debug, Clone, Copy)]
struct SparseCur {
    pos: usize,
    end: usize,
}

impl ColsPos {
    /// Parse the sparse-region key directory into per-key cursors.
    fn init(cols: &ColData) -> Result<ColsPos> {
        let mut cp = ColsPos::default();
        let data: &[u8] = &cols.sparse;
        let mut pos = 0usize;
        let n_keys = get_uvarint(data, &mut pos)? as usize;
        for _ in 0..n_keys {
            let key_ix = get_uvarint(data, &mut pos)?;
            let _n_entries = get_uvarint(data, &mut pos)?;
            let byte_len = get_uvarint(data, &mut pos)? as usize;
            let end = pos
                .checked_add(byte_len)
                .filter(|end| *end <= data.len())
                .ok_or(TsdbError::Corrupt("truncated sparse column"))?;
            cp.sparse.insert(key_ix, SparseCur { pos, end });
            pos = end;
        }
        Ok(cp)
    }
}

impl SegmentCursor {
    /// Decode the next event; `None` at the end of the segment.  Corrupt
    /// in-memory data is unreachable (segments are checksummed at load),
    /// so decode errors surface as `Some(Err)` only for defensive depth.
    pub fn next_event(&mut self) -> Option<Result<(u64, Event)>> {
        if self.state.decoded >= self.seg.len() {
            return None;
        }
        Some(match &self.seg.repr {
            Repr::Rows(_) => decode_event(&self.seg, &mut self.state),
            Repr::Cols(_) => decode_event_cols(&self.seg, &mut self.state),
        })
    }

    /// The segment this cursor reads.
    pub(crate) fn segment(&self) -> &std::sync::Arc<Segment> {
        &self.seg
    }
}

/// Decode one event from a legacy row-major stream, advancing the cursor
/// state only on success.
fn decode_event(seg: &Segment, st: &mut CursorState) -> Result<(u64, Event)> {
    let data: &[u8] = match &seg.repr {
        Repr::Rows(data) => data,
        Repr::Cols(_) => unreachable!("row decode on a columnar segment"),
    };
    let mut pos = st.pos;
    let ts = match st.decoded {
        0 => get_uvarint(data, &mut pos)?,
        1 => {
            let delta = get_uvarint(data, &mut pos)?;
            st.prev_delta = delta;
            st.prev_ts.wrapping_add(delta)
        }
        _ => {
            let dod = get_ivarint(data, &mut pos)?;
            let delta = st.prev_delta.wrapping_add(dod as u64);
            st.prev_delta = delta;
            st.prev_ts.wrapping_add(delta)
        }
    };
    st.prev_ts = ts;
    let dseq = get_ivarint(data, &mut pos)?;
    let seq = st.prev_seq.wrapping_add(dseq as u64);
    st.prev_seq = seq;
    let level = *data.get(pos).ok_or(TsdbError::Corrupt("truncated level"))?;
    pos += 1;
    let level = binary::level_from_code(level).map_err(|_| TsdbError::Corrupt("bad level code"))?;
    let host = dict_str(seg, data, &mut pos)?;
    let program = dict_str(seg, data, &mut pos)?;
    let event_type = dict_str(seg, data, &mut pos)?;
    let n_fields = get_uvarint(data, &mut pos)? as usize;
    let mut fields = Vec::with_capacity(n_fields);
    for _ in 0..n_fields {
        let key = dict_str(seg, data, &mut pos)?;
        let tag = *data.get(pos).ok_or(TsdbError::Corrupt("truncated tag"))?;
        pos += 1;
        let value = match tag {
            TAG_UINT => Value::UInt(get_uvarint(data, &mut pos)?),
            TAG_INT => Value::Int(get_ivarint(data, &mut pos)?),
            TAG_FLOAT => Value::Float(f64::from_le_bytes(get_bytes::<8>(data, &mut pos)?)),
            TAG_BOOL => {
                let b = *data.get(pos).ok_or(TsdbError::Corrupt("truncated bool"))?;
                pos += 1;
                Value::Bool(b != 0)
            }
            TAG_STR => Value::Str(dict_str(seg, data, &mut pos)?),
            _ => return Err(TsdbError::Corrupt("unknown value tag")),
        };
        fields.push((key, value));
    }
    st.pos = pos;
    st.decoded += 1;
    Ok((
        seq,
        Event {
            timestamp: Timestamp::from_micros(ts),
            host,
            program,
            level,
            event_type,
            fields,
        },
    ))
}

/// Decode one event from the columnar regions, advancing every column
/// position by one row.
fn decode_event_cols(seg: &Segment, st: &mut CursorState) -> Result<(u64, Event)> {
    let cols = match &seg.repr {
        Repr::Cols(cols) => cols,
        Repr::Rows(_) => unreachable!("column decode on a row-major segment"),
    };
    if st.cols.is_none() {
        st.cols = Some(Box::new(ColsPos::init(cols)?));
    }
    let r = st.decoded;
    let cp = st.cols.as_mut().expect("initialized above");
    let ts = match r {
        0 => get_uvarint(&cols.ts, &mut cp.ts)?,
        1 => {
            let delta = get_uvarint(&cols.ts, &mut cp.ts)?;
            st.prev_delta = delta;
            st.prev_ts.wrapping_add(delta)
        }
        _ => {
            let dod = get_ivarint(&cols.ts, &mut cp.ts)?;
            let delta = st.prev_delta.wrapping_add(dod as u64);
            st.prev_delta = delta;
            st.prev_ts.wrapping_add(delta)
        }
    };
    st.prev_ts = ts;
    let dseq = get_ivarint(&cols.seqs, &mut cp.seqs)?;
    let seq = st.prev_seq.wrapping_add(dseq as u64);
    st.prev_seq = seq;
    let level = *cols
        .levels
        .get(r)
        .ok_or(TsdbError::Corrupt("truncated level column"))?;
    let level = binary::level_from_code(level).map_err(|_| TsdbError::Corrupt("bad level code"))?;
    let host = dict_str(seg, &cols.host_ix, &mut cp.host)?;
    let program = dict_str(seg, &cols.prog_ix, &mut cp.prog)?;
    let event_type = dict_str(seg, &cols.type_ix, &mut cp.ty)?;
    let val = if bitmap_get(&cols.val_present, r) {
        Some(f64::from_le_bytes(get_bytes::<8>(
            &cols.vals,
            &mut cp.vals,
        )?))
    } else {
        None
    };
    let val_is_float = bitmap_get(&cols.val_float, r);
    let n_fields = get_uvarint(&cols.nfields, &mut cp.nf)? as usize;
    let mut fields = Vec::with_capacity(n_fields);
    let mut saw_val = false;
    for _ in 0..n_fields {
        let key_ix = get_uvarint(&cols.keys, &mut cp.keys)?;
        let key = seg
            .dict
            .get(key_ix as usize)
            .cloned()
            .ok_or(TsdbError::Corrupt("dictionary index out of range"))?;
        if !saw_val && key == jamm_ulm::keys::VALUE {
            saw_val = true;
            if val_is_float {
                let v = val.ok_or(TsdbError::Corrupt("float VAL bit without typed value"))?;
                fields.push((key, Value::Float(v)));
                continue;
            }
        }
        let cur = cp
            .sparse
            .get_mut(&key_ix)
            .ok_or(TsdbError::Corrupt("missing sparse column"))?;
        let value = read_sparse_value(seg, &cols.sparse, cur)?;
        fields.push((key, value));
    }
    st.decoded += 1;
    Ok((
        seq,
        Event {
            timestamp: Timestamp::from_micros(ts),
            host,
            program,
            level,
            event_type,
            fields,
        },
    ))
}

/// Read one `tag + payload` entry from a sparse column.
fn read_sparse_value(seg: &Segment, data: &[u8], cur: &mut SparseCur) -> Result<Value> {
    if cur.pos >= cur.end {
        return Err(TsdbError::Corrupt("sparse column exhausted"));
    }
    let tag = data[cur.pos];
    cur.pos += 1;
    let value = match tag {
        TAG_UINT => Value::UInt(get_uvarint(data, &mut cur.pos)?),
        TAG_INT => Value::Int(get_ivarint(data, &mut cur.pos)?),
        TAG_FLOAT => Value::Float(f64::from_le_bytes(get_bytes::<8>(data, &mut cur.pos)?)),
        TAG_BOOL => {
            let b = *data
                .get(cur.pos)
                .ok_or(TsdbError::Corrupt("truncated bool"))?;
            cur.pos += 1;
            Value::Bool(b != 0)
        }
        TAG_STR => Value::Str(dict_str(seg, data, &mut cur.pos)?),
        _ => return Err(TsdbError::Corrupt("unknown value tag")),
    };
    Ok(value)
}

/// Skip one `tag + payload` entry in a sparse column — the late-
/// materialization fast path for rows the filter rejected: no dictionary
/// lookup, no `String`, just position arithmetic.
fn skip_sparse_value(data: &[u8], cur: &mut SparseCur) -> Result<()> {
    if cur.pos >= cur.end {
        return Err(TsdbError::Corrupt("sparse column exhausted"));
    }
    let tag = data[cur.pos];
    cur.pos += 1;
    match tag {
        TAG_UINT | TAG_STR => {
            get_uvarint(data, &mut cur.pos)?;
        }
        TAG_INT => {
            get_ivarint(data, &mut cur.pos)?;
        }
        TAG_FLOAT => {
            get_bytes::<8>(data, &mut cur.pos)?;
        }
        TAG_BOOL => {
            if cur.pos >= data.len() {
                return Err(TsdbError::Corrupt("truncated bool"));
            }
            cur.pos += 1;
        }
        _ => return Err(TsdbError::Corrupt("unknown value tag")),
    }
    Ok(())
}

/// Resolve a dictionary reference from a data stream.
fn dict_str(seg: &Segment, data: &[u8], pos: &mut usize) -> Result<String> {
    let idx = get_uvarint(data, pos)? as usize;
    seg.dict
        .get(idx)
        .cloned()
        .ok_or(TsdbError::Corrupt("dictionary index out of range"))
}

// ---------------------------------------------------------------------------
// Batched columnar scan
// ---------------------------------------------------------------------------

/// How a [`ColScan`] filters each decoded batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColMode {
    /// The plan's batch evaluation is exact ([`Plan::batch_definite`]):
    /// selected rows *are* the matches, and the scan's merge loop skips
    /// the row-at-a-time re-check for rows from this source.
    Exact,
    /// The plan carries attribute leaves the columns can't decide: batch
    /// evaluation selects a superset, and survivors are re-checked
    /// row-wise after materialization.
    Superset,
    /// The plan is stateful: batch-select by the pushdown [`Facts`] only,
    /// so *every* facts-admissible row reaches the row evaluator in merge
    /// order and per-series memory sees exactly the stream the row-
    /// oriented scan would have fed it.
    FactsOnly,
}

/// Rows per [`ColScan`] decode batch.
const COL_BATCH: usize = 1024;

/// A scan-optimized reader over one columnar segment: decodes the fixed
/// columns a batch at a time into reusable buffers, evaluates the plan
/// once per batch via [`Plan::eval_batch`], and materializes only the
/// selected rows.
#[derive(Debug)]
pub struct ColScan {
    seg: std::sync::Arc<Segment>,
    state: CursorState,
    /// Decoded fixed columns for the current batch (reused).
    ts: Vec<u64>,
    seqs: Vec<u64>,
    level_codes: Vec<u8>,
    levels_sev: Vec<u8>,
    hosts: Vec<u32>,
    progs: Vec<u32>,
    types: Vec<u32>,
    vals: Vec<f64>,
    present: Vec<u64>,
    floats: Vec<u64>,
    sel: Selection,
    scratch: BatchScratch,
    /// Materialized matches awaiting the merge loop.
    out: std::collections::VecDeque<(u64, Event)>,
    done: bool,
}

impl ColScan {
    fn new(seg: std::sync::Arc<Segment>) -> ColScan {
        ColScan {
            seg,
            state: CursorState::default(),
            ts: Vec::new(),
            seqs: Vec::new(),
            level_codes: Vec::new(),
            levels_sev: Vec::new(),
            hosts: Vec::new(),
            progs: Vec::new(),
            types: Vec::new(),
            vals: Vec::new(),
            present: Vec::new(),
            floats: Vec::new(),
            sel: Selection::new(),
            scratch: BatchScratch::new(),
            out: std::collections::VecDeque::new(),
            done: false,
        }
    }

    /// The next row surviving the batch filter, in `(timestamp, sequence)`
    /// order; `None` when the segment (or the plan's time window) is
    /// exhausted.
    pub fn next_match(&mut self, plan: &Plan, mode: ColMode) -> Option<Result<(u64, Event)>> {
        loop {
            if let Some(hit) = self.out.pop_front() {
                return Some(Ok(hit));
            }
            if self.done || self.state.decoded >= self.seg.len() {
                return None;
            }
            if let Err(e) = self.fill_batch(plan, mode) {
                self.done = true;
                return Some(Err(e));
            }
        }
    }

    /// Decode one batch of fixed columns, filter it, and materialize the
    /// survivors into `out`.
    fn fill_batch(&mut self, plan: &Plan, mode: ColMode) -> Result<()> {
        let seg = &*self.seg;
        let cols = match &seg.repr {
            Repr::Cols(cols) => cols,
            Repr::Rows(_) => unreachable!("ColScan over a row-major segment"),
        };
        let st = &mut self.state;
        if st.cols.is_none() {
            st.cols = Some(Box::new(ColsPos::init(cols)?));
        }
        let base = st.decoded;
        let n = (seg.len() - base).min(COL_BATCH);
        let words = n.div_ceil(64);
        self.ts.clear();
        self.seqs.clear();
        self.level_codes.clear();
        self.levels_sev.clear();
        self.hosts.clear();
        self.progs.clear();
        self.types.clear();
        self.vals.clear();
        self.present.clear();
        self.present.resize(words, 0);
        self.floats.clear();
        self.floats.resize(words, 0);
        {
            let cp = st.cols.as_mut().expect("initialized above");
            for i in 0..n {
                let r = base + i;
                let ts = match r {
                    0 => get_uvarint(&cols.ts, &mut cp.ts)?,
                    1 => {
                        let delta = get_uvarint(&cols.ts, &mut cp.ts)?;
                        st.prev_delta = delta;
                        st.prev_ts.wrapping_add(delta)
                    }
                    _ => {
                        let dod = get_ivarint(&cols.ts, &mut cp.ts)?;
                        let delta = st.prev_delta.wrapping_add(dod as u64);
                        st.prev_delta = delta;
                        st.prev_ts.wrapping_add(delta)
                    }
                };
                st.prev_ts = ts;
                self.ts.push(ts);
                let dseq = get_ivarint(&cols.seqs, &mut cp.seqs)?;
                let seq = st.prev_seq.wrapping_add(dseq as u64);
                st.prev_seq = seq;
                self.seqs.push(seq);
                let code = *cols
                    .levels
                    .get(r)
                    .ok_or(TsdbError::Corrupt("truncated level column"))?;
                self.level_codes.push(code);
                let level = binary::level_from_code(code)
                    .map_err(|_| TsdbError::Corrupt("bad level code"))?;
                self.levels_sev.push(level.severity());
                self.hosts
                    .push(get_uvarint(&cols.host_ix, &mut cp.host)? as u32);
                self.progs
                    .push(get_uvarint(&cols.prog_ix, &mut cp.prog)? as u32);
                self.types
                    .push(get_uvarint(&cols.type_ix, &mut cp.ty)? as u32);
                if bitmap_get(&cols.val_present, r) {
                    self.present[i / 64] |= 1u64 << (i % 64);
                    self.vals.push(f64::from_le_bytes(get_bytes::<8>(
                        &cols.vals,
                        &mut cp.vals,
                    )?));
                } else {
                    self.vals.push(0.0);
                }
                if bitmap_get(&cols.val_float, r) {
                    self.floats[i / 64] |= 1u64 << (i % 64);
                }
            }
            st.decoded = base + n;
        }

        // Early stop: a sorted segment whose batch starts at or past the
        // plan's exclusive upper time bound has nothing left to offer.
        if let Some(to) = plan.facts().to_micros {
            if self.ts.first().is_some_and(|first| *first >= to) {
                self.done = true;
                return Ok(());
            }
        }

        let batch = ColumnBatch {
            ts_micros: &self.ts,
            host_ids: &self.hosts,
            type_ids: &self.types,
            levels: &self.levels_sev,
            values: &self.vals,
            val_present: &self.present,
            dict: &seg.dict,
        };
        match mode {
            ColMode::Exact | ColMode::Superset => {
                plan.eval_batch(&batch, &mut self.sel, &mut self.scratch);
            }
            ColMode::FactsOnly => {
                plan.facts()
                    .eval_batch(&batch, &mut self.sel, &mut self.scratch);
            }
        }

        // Late materialization: walk the rows in order (the key-list and
        // sparse positions are strictly sequential), building an `Event`
        // only for selected rows; rejected rows pay varint skips.
        let cp = st.cols.as_mut().expect("initialized above");
        for i in 0..n {
            let n_fields = get_uvarint(&cols.nfields, &mut cp.nf)? as usize;
            let selected = self.sel.contains(i);
            let val_is_float = self.floats[i / 64] & (1u64 << (i % 64)) != 0;
            let mut fields = if selected {
                Vec::with_capacity(n_fields)
            } else {
                Vec::new()
            };
            let mut saw_val = false;
            for _ in 0..n_fields {
                let key_ix = get_uvarint(&cols.keys, &mut cp.keys)?;
                let key_str = seg
                    .dict
                    .get(key_ix as usize)
                    .ok_or(TsdbError::Corrupt("dictionary index out of range"))?;
                if !saw_val && key_str == jamm_ulm::keys::VALUE {
                    saw_val = true;
                    if val_is_float {
                        if selected {
                            fields.push((key_str.clone(), Value::Float(self.vals[i])));
                        }
                        continue;
                    }
                }
                let cur = cp
                    .sparse
                    .get_mut(&key_ix)
                    .ok_or(TsdbError::Corrupt("missing sparse column"))?;
                if selected {
                    let value = read_sparse_value(seg, &cols.sparse, cur)?;
                    fields.push((key_str.clone(), value));
                } else {
                    skip_sparse_value(&cols.sparse, cur)?;
                }
            }
            if selected {
                let dict_at = |ix: u32| -> Result<String> {
                    seg.dict
                        .get(ix as usize)
                        .cloned()
                        .ok_or(TsdbError::Corrupt("dictionary index out of range"))
                };
                self.out.push_back((
                    self.seqs[i],
                    Event {
                        timestamp: Timestamp::from_micros(self.ts[i]),
                        host: dict_at(self.hosts[i])?,
                        program: dict_at(self.progs[i])?,
                        level: binary::level_from_code(self.level_codes[i])
                            .map_err(|_| TsdbError::Corrupt("bad level code"))?,
                        event_type: dict_at(self.types[i])?,
                        fields,
                    },
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_ulm::Level;
    use std::sync::Arc;

    fn ev(host: &str, ty: &str, t_micros: u64, v: f64) -> Event {
        Event::builder("vmstat", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_micros(t_micros))
            .value(v)
            .field("COUNT", 42u64)
            .field("DELTA", -7i64)
            .field("UP", true)
            .field("PEER", "mems.cairn.net")
            .build()
    }

    fn sorted_batch(n: u64) -> Vec<(u64, Event)> {
        (0..n)
            .map(|i| {
                (
                    i + 1,
                    ev(
                        if i % 3 == 0 { "h1" } else { "h2" },
                        if i % 2 == 0 { "CPU_TOTAL" } else { "MEM_FREE" },
                        1_000_000 + i * 250_000, // regular 250ms period
                        i as f64,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn build_and_cursor_round_trip() {
        let batch = sorted_batch(200);
        let seg = Arc::new(Segment::build(9, &batch));
        assert_eq!(seg.len(), 200);
        assert_eq!(seg.min_seq(), 1);
        assert_eq!(seg.max_seq(), 200);
        let mut cur = seg.cursor();
        for (seq, e) in &batch {
            let (got_seq, got) = cur.next_event().unwrap().unwrap();
            assert_eq!(got_seq, *seq);
            assert_eq!(&got, e);
        }
        assert!(cur.next_event().is_none());
    }

    #[test]
    fn catalog_counts_and_bounds() {
        let batch = sorted_batch(30);
        let seg = Segment::build(1, &batch);
        let c = seg.catalog();
        assert_eq!(c.event_count, 30);
        assert_eq!(c.min_ts, Timestamp::from_micros(1_000_000));
        assert_eq!(c.max_ts, Timestamp::from_micros(1_000_000 + 29 * 250_000));
        assert_eq!(c.hosts.len(), 2);
        assert_eq!(c.event_types.len(), 2);
        assert_eq!(c.hosts.values().sum::<usize>(), 30);
        assert_eq!(c.series.values().sum::<usize>(), 30);
    }

    #[test]
    fn overlaps_prunes_time_host_and_type() {
        let seg = Segment::build(1, &sorted_batch(10));
        let c = seg.catalog().clone();
        let facts = |q: &crate::query::TsdbQuery| q.to_plan().facts().clone();
        use crate::query::TsdbQuery;
        assert!(c.overlaps(&facts(&TsdbQuery::default())));
        assert!(!c.overlaps(&facts(
            &TsdbQuery::default().between(Timestamp::from_secs(100), Timestamp::from_secs(200))
        )));
        assert!(!c.overlaps(&facts(
            &TsdbQuery::default().between(Timestamp::EPOCH, Timestamp::from_micros(1_000_000))
        )));
        assert!(!c.overlaps(&facts(&TsdbQuery::default().host("nowhere"))));
        assert!(c.overlaps(&facts(&TsdbQuery::default().host("h1"))));
        assert!(!c.overlaps(&facts(&TsdbQuery::default().event_type("DISK_IO"))));
    }

    #[test]
    fn overlaps_prunes_by_level_floor_and_series_counts() {
        use jamm_core::query::Predicate;
        let seg = Segment::build(1, &sorted_batch(10)); // all Usage events
        let c = seg.catalog().clone();
        assert_eq!(c.max_level, Level::Usage.severity());
        let warnings = Predicate::parse("(level>=warning)").unwrap().compile();
        assert!(!c.overlaps(warnings.facts()), "no warnings stored here");
        let usage = Predicate::parse("(level>=usage)").unwrap().compile();
        assert!(c.overlaps(usage.facts()));

        // h1 only ever emits CPU_TOTAL (i % 3 == 0 implies i % 2 == 0 is
        // not guaranteed — check the batch invariant first).
        assert!(c
            .series
            .contains_key(&("h1".to_string(), "CPU_TOTAL".to_string())));
        // The segment has host h2 and type CPU_TOTAL, but if a particular
        // (host, type) pairing is absent the series tier prunes it.
        let absent = c
            .hosts
            .keys()
            .flat_map(|h| c.event_types.keys().map(move |t| (h.clone(), t.clone())))
            .find(|pair| !c.series.contains_key(pair));
        if let Some((h, t)) = absent {
            let q = Predicate::parse(&format!("(&(host={h})(type={t}))"))
                .unwrap()
                .compile();
            assert!(!c.overlaps(q.facts()), "series tier must prune ({h}, {t})");
        }
        // A mixed-level batch records the max.
        let mut batch = sorted_batch(4);
        batch[2].1.level = Level::Error;
        let seg = Segment::build(2, &batch);
        assert_eq!(seg.catalog().max_level, Level::Error.severity());
        assert!(seg.catalog().overlaps(warnings.facts()));
    }

    #[test]
    fn file_round_trip_and_checksum() {
        let seg = Segment::build(3, &sorted_batch(50));
        let bytes = seg.to_bytes();
        let back = Segment::from_bytes(&bytes).unwrap();
        assert_eq!(back.catalog(), seg.catalog());
        assert_eq!(back.min_seq(), seg.min_seq());
        assert_eq!(back.max_seq(), seg.max_seq());
        let mut a = Arc::new(seg).cursor();
        let mut b = Arc::new(back).cursor();
        while let Some(x) = a.next_event() {
            assert_eq!(x.unwrap(), b.next_event().unwrap().unwrap());
        }

        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xFF;
        assert!(matches!(
            Segment::from_bytes(&corrupted),
            Err(TsdbError::Corrupt(_))
        ));
        assert!(Segment::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn legacy_jsg1_segments_still_load_and_are_never_level_pruned() {
        use jamm_core::query::Predicate;
        // all Usage level; JSG2-shaped so stripping max_level yields JSG1
        let seg = Segment::build_rows_legacy(7, &sorted_batch(25));
        let bytes = seg.to_bytes();
        // Re-encode as the previous generation: JSG1 magic, no max_level
        // byte (it sits right after the sixth leading varint), fresh
        // checksum.
        let body = &bytes[4..bytes.len() - 8];
        let mut pos = 0usize;
        for _ in 0..6 {
            get_uvarint(body, &mut pos).unwrap(); // id..max_ts
        }
        let mut v1_body = body[..pos].to_vec();
        v1_body.extend_from_slice(&body[pos + 1..]); // skip max_level
        let mut v1 = Vec::with_capacity(v1_body.len() + 12);
        v1.extend_from_slice(SEGMENT_MAGIC_V1);
        v1.extend_from_slice(&v1_body);
        v1.extend_from_slice(&fnv64(&v1_body).to_le_bytes());

        let back = Segment::from_bytes(&v1).expect("JSG1 stays readable");
        assert_eq!(back.len(), seg.len());
        assert_eq!(back.catalog().hosts, seg.catalog().hosts);
        assert_eq!(back.catalog().max_level, u8::MAX, "unknown = all levels");
        // Unknown level data must never be pruned by a severity floor...
        let errors = Predicate::parse("(level>=error)").unwrap().compile();
        assert!(back.catalog().overlaps(errors.facts()));
        // ...and the events themselves still decode identically.
        let mut a = Arc::new(seg).cursor();
        let mut b = Arc::new(back).cursor();
        while let Some(x) = a.next_event() {
            assert_eq!(x.unwrap(), b.next_event().unwrap().unwrap());
        }
    }

    #[test]
    fn compression_beats_binary_frames_on_regular_streams() {
        let batch = sorted_batch(1_000);
        let seg = Segment::build(1, &batch);
        let frames: usize = batch.iter().map(|(_, e)| binary::encode(e).len()).sum();
        let compressed = seg.to_bytes().len();
        assert!(
            compressed * 3 < frames,
            "expected >3x compression, got {frames} -> {compressed}"
        );
    }

    #[test]
    fn irregular_timestamps_still_round_trip() {
        // Jittery, repeated and out-of-pattern timestamps (still sorted).
        let ts = [
            0u64,
            0,
            1,
            1_000_000,
            1_000_001,
            1_000_001,
            u32::MAX as u64 * 3,
        ];
        let batch: Vec<(u64, Event)> = ts
            .iter()
            .enumerate()
            .map(|(i, &t)| (i as u64 + 10, ev("h", "X", t, 0.0)))
            .collect();
        let seg = Arc::new(Segment::build(1, &batch));
        let mut cur = seg.cursor();
        for (seq, e) in &batch {
            let (got_seq, got) = cur.next_event().unwrap().unwrap();
            assert_eq!((got_seq, got.timestamp), (*seq, e.timestamp));
        }
    }

    #[test]
    fn write_and_read_dir() {
        let dir = crate::test_util::TempDir::new("segment-io");
        let seg = Segment::build(12, &sorted_batch(20));
        let path = seg.write_to_dir(dir.path()).unwrap();
        assert!(path.ends_with("seg-00000012.jseg"));
        let back = Segment::read_from_file(&path).unwrap();
        assert_eq!(back.catalog(), seg.catalog());
    }

    #[test]
    fn jsg2_fixture_written_by_pr5_era_code_still_opens_and_scans() {
        // `build_rows_legacy` reproduces the exact PR 5-era encoder, so
        // its bytes are a faithful JSG2 fixture: JSG2 magic, row-major
        // stream after the dictionary.
        let batch = sorted_batch(40);
        let legacy = Segment::build_rows_legacy(4, &batch);
        let bytes = legacy.to_bytes();
        assert_eq!(&bytes[..4], SEGMENT_MAGIC_V2);

        let back = Arc::new(Segment::from_bytes(&bytes).expect("JSG2 stays readable"));
        assert!(!back.is_columnar(), "legacy bytes load as row-major");
        assert_eq!(back.catalog(), legacy.catalog());
        // Events decode identically to the same batch built columnar.
        let modern = Arc::new(Segment::build(4, &batch));
        assert!(modern.is_columnar());
        let mut a = back.cursor();
        let mut b = modern.cursor();
        while let Some(x) = a.next_event() {
            assert_eq!(x.unwrap(), b.next_event().unwrap().unwrap());
        }
        assert!(b.next_event().is_none());
        // Round-trips through a file like any current segment.
        let dir = crate::test_util::TempDir::new("segment-jsg2");
        std::fs::write(dir.path().join(Segment::file_name(4)), &bytes).unwrap();
        let from_file = Segment::read_from_file(&dir.path().join(Segment::file_name(4))).unwrap();
        assert_eq!(from_file.catalog(), legacy.catalog());
        // Re-serializing a loaded legacy segment preserves its generation.
        assert_eq!(&from_file.to_bytes()[..4], SEGMENT_MAGIC_V2);
    }

    #[test]
    fn unknown_future_segment_version_errors_clearly() {
        let mut bytes = Segment::build(1, &sorted_batch(5)).to_bytes();
        assert_eq!(&bytes[..4], SEGMENT_MAGIC);
        bytes[3] = b'9'; // "JSG9": a generation this build does not know
        let err = Segment::from_bytes(&bytes).expect_err("future version");
        assert!(
            err.to_string().contains("unsupported segment version"),
            "got {err}"
        );
        // Non-JSG garbage is still plain corruption, not a version error.
        bytes[0] = b'X';
        let err = Segment::from_bytes(&bytes).expect_err("garbage");
        assert!(err.to_string().contains("bad segment magic"), "got {err}");
    }

    #[test]
    fn columnar_round_trip_covers_field_shapes() {
        // Duplicate keys, non-float VAL, float VAL, missing VAL, numeric
        // string VAL, NaN-free mixed payloads — the shapes the sparse
        // key columns and the typed-VAL reconstruction must preserve
        // exactly, in order.
        let mk = |t: u64, fields: Vec<(&str, Value)>| {
            let mut b = Event::builder("prog", "h")
                .event_type("T")
                .timestamp(Timestamp::from_micros(t));
            for (k, v) in fields {
                b = b.field(k, v);
            }
            b.build()
        };
        let batch: Vec<(u64, Event)> = vec![
            (
                1,
                mk(10, vec![("VAL", Value::Float(1.5)), ("N", Value::UInt(7))]),
            ),
            (
                2,
                mk(
                    20,
                    vec![("VAL", Value::UInt(9)), ("VAL", Value::Float(2.5))],
                ),
            ),
            (
                3,
                mk(
                    30,
                    vec![("A", Value::Str("x".into())), ("A", Value::Str("y".into()))],
                ),
            ),
            (
                4,
                mk(40, vec![("N", Value::Int(-3)), ("B", Value::Bool(true))]),
            ),
            (5, mk(50, vec![("VAL", Value::Str("4.25".into()))])),
            (6, mk(60, vec![])),
        ];
        let seg = Arc::new(Segment::build(1, &batch));
        // Sequential cursor reproduces every event bit-for-bit.
        let mut cur = seg.cursor();
        for (seq, e) in &batch {
            let (got_seq, got) = cur.next_event().unwrap().unwrap();
            assert_eq!((got_seq, &got), (*seq, e));
        }
        assert!(cur.next_event().is_none());
        // File round trip preserves the columnar generation.
        let back = Arc::new(Segment::from_bytes(&seg.to_bytes()).unwrap());
        assert!(back.is_columnar());
        let mut cur = back.cursor();
        for (seq, e) in &batch {
            let (got_seq, got) = cur.next_event().unwrap().unwrap();
            assert_eq!((got_seq, &got), (*seq, e));
        }
    }

    #[test]
    fn col_scan_matches_cursor_under_every_mode() {
        use jamm_core::query::Predicate;
        let mut batch = sorted_batch(300);
        batch[7].1.level = Level::Error;
        let seg = Arc::new(Segment::build(1, &batch));
        for (text, want_mode) in [
            ("(&(host=h1)(type=CPU_TOTAL)(val>=30))", ColMode::Exact),
            ("(&(host=h1)(PEER=mems.cairn.net))", ColMode::Superset),
            ("(onchange)", ColMode::FactsOnly),
        ] {
            let plan = Predicate::parse(text).unwrap().compile();
            let mode = if plan.is_stateful() {
                ColMode::FactsOnly
            } else if plan.batch_definite() {
                ColMode::Exact
            } else {
                ColMode::Superset
            };
            assert_eq!(mode, want_mode, "{text}");
            // Oracle: row-at-a-time over the sequential cursor with a
            // fresh plan clone (fresh stateful memory).
            let oracle_plan = plan.clone();
            let mut cur = seg.cursor();
            let mut want = Vec::new();
            while let Some(item) = cur.next_event() {
                let (seq, e) = item.unwrap();
                if oracle_plan.facts().admits(&e) && oracle_plan.eval(&e) {
                    want.push((seq, e));
                }
            }
            // Columnar: batch filter + (except Exact) row re-check, the
            // same shape ScanIter runs.
            let mut scan = seg.col_scan().expect("columnar");
            let col_plan = plan.clone();
            let mut got = Vec::new();
            while let Some(item) = scan.next_match(&col_plan, mode) {
                let (seq, e) = item.unwrap();
                if mode == ColMode::Exact || col_plan.eval(&e) {
                    got.push((seq, e));
                }
            }
            assert_eq!(got, want, "{text}");
        }
    }
}
